//! The reference stepper: the pre-refactor `Inst`-matching interpreter,
//! kept verbatim for one release.
//!
//! [`Machine::step`] now dispatches over the pre-decoded stream
//! ([`crate::decode`]). This module preserves the original semantics as
//! an executable oracle with two jobs:
//!
//! 1. **Equivalence pinning** — the decode round-trip property tests run
//!    random programs through both steppers and require identical
//!    architectural state, cycle counts, and PMCs.
//! 2. **Baseline measurement** — `regen bench-uarch` reports the decoded
//!    dispatch loop's speedup over this interpreter, so the number in
//!    `BENCH_uarch.json` is a real before/after on the same build.
//!
//! The snapshot is *whole-interpreter*: besides the `Inst`-match dispatch
//! loop, it pins the seed's subsystem implementations (linear-scan TLB
//! walk, unfiltered store-buffer scans, bytewise physical memory access,
//! `Inst`-fetching transient windows) via the `*_reference` entry points,
//! so later fast paths in the shared subsystems cannot leak into the
//! baseline measurement.
//!
//! Nothing here is called on any hot path; do not optimize this file.

use crate::fault::{Fault, SimError};
use crate::isa::{Flags, Inst, Pmc, Reg, Width};
use crate::machine::{Env, Machine, Stop};
use crate::model::Vendor;
use crate::msr::MsrEffect;
use crate::predictor::PrivMode;
use crate::program::INST_SIZE;
use crate::trace::TraceRecord;
use crate::transient::{self, TransientStart};

impl Machine {
    /// Runs the reference stepper until `Halt`, `Vmcall`, an error, or the
    /// instruction budget is exhausted — the pre-refactor equivalent of
    /// [`Machine::run`].
    pub fn run_reference(&mut self, env: &mut dyn Env, budget: u64) -> Result<Stop, SimError> {
        let mut remaining = budget;
        loop {
            if remaining == 0 {
                return Err(SimError::InstructionBudgetExhausted);
            }
            remaining -= 1;
            match self.step_reference(env)? {
                Some(stop) => return Ok(stop),
                None => continue,
            }
        }
    }

    /// Executes one committed instruction with the original `Inst`-match
    /// interpreter. Semantically identical to [`Machine::step`], byte for
    /// byte on every counter; only the dispatch mechanism differs.
    pub fn step_reference(&mut self, env: &mut dyn Env) -> Result<Option<Stop>, SimError> {
        let pc = self.pc;
        let inst = match self.code.fetch(pc) {
            Some(i) => i.clone(),
            None => return Err(SimError::BadFetch { addr: pc }),
        };
        self.insts += 1;
        self.pmc.incr(Pmc::Instructions);
        if let Some(t) = &mut self.tracer {
            t.record(TraceRecord {
                pc,
                cycles: self.cycles,
                mode: self.mode,
                mnemonic: inst.mnemonic(),
            });
        }

        // Privilege check first: privileged instructions fault in user mode.
        if self.mode == PrivMode::User && inst.is_privileged() {
            self.deliver_fault(Fault::GeneralProtection, pc)?;
            return Ok(None);
        }

        let lfence_shadow = std::mem::take(&mut self.lfence_shadow);

        match inst {
            Inst::Nop | Inst::Pause => {
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Inst::Halt => {
                self.charge(self.model.lat.alu);
                // Advance past the halt so callers can resume execution
                // at the following instruction (checkpoint pattern).
                self.pc += INST_SIZE;
                return Ok(Some(Stop::Halted));
            }
            Inst::Vmcall => {
                // Guest-visible exit cost; host adds its handling time.
                self.charge(self.model.lat.vmexit);
                self.pc += INST_SIZE;
                return Ok(Some(Stop::Vmcall));
            }
            Inst::Host(id) => {
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
                env.host_call(self, id)?;
            }

            Inst::MovImm(d, v) => self.alu1(|_| v, d),
            Inst::Mov(d, s) => {
                let v = self.reg(s);
                self.alu1(|_| v, d)
            }
            Inst::Add(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x.wrapping_add(v), d)
            }
            Inst::AddImm(d, v) => self.alu1(|x| x.wrapping_add(v), d),
            Inst::Sub(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x.wrapping_sub(v), d)
            }
            Inst::SubImm(d, v) => self.alu1(|x| x.wrapping_sub(v), d),
            Inst::Mul(d, s) => {
                let v = self.reg(s);
                self.charge(2); // multiply is slightly slower than simple ALU
                self.alu1_free(|x| x.wrapping_mul(v), d)
            }
            Inst::Div(d, s) => {
                let divisor = self.reg(s);
                if divisor == 0 {
                    self.deliver_fault(Fault::DivideError, pc)?;
                    return Ok(None);
                }
                let div_lat = self.model.lat.div;
                self.charge(div_lat);
                self.pmc.add(Pmc::DividerActive, div_lat);
                let v = self.reg(d) / divisor;
                self.set_reg(d, v);
                self.pc += INST_SIZE;
            }
            Inst::And(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x & v, d)
            }
            Inst::AndImm(d, v) => self.alu1(|x| x & v, d),
            Inst::Or(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x | v, d)
            }
            Inst::Xor(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x ^ v, d)
            }
            Inst::XorImm(d, v) => self.alu1(|x| x ^ v, d),
            Inst::Shl(d, n) => self.alu1(|x| x << (n & 63), d),
            Inst::Shr(d, n) => self.alu1(|x| x >> (n & 63), d),
            Inst::Not(d) => self.alu1(|x| !x, d),

            Inst::Load { dst, base, offset, width } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                match self.read_virt_reference(vaddr, width) {
                    Ok(v) => {
                        self.set_reg(dst, v);
                        // Speculative Store Bypass: if the load *forwarded*
                        // from an in-flight store, a vulnerable part may
                        // first have run ahead with the stale value.
                        self.maybe_ssb_window_reference(vaddr, width, dst, pc + INST_SIZE);
                        self.pc += INST_SIZE;
                    }
                    Err(fault) => {
                        // The faulting load's dependents execute transiently
                        // with whatever the vulnerability lets through
                        // (Meltdown / L1TF / MDS).
                        transient::run_window_reference(
                            self,
                            TransientStart::FaultingLoad { vaddr, width, dst, next_pc: pc + INST_SIZE },
                        );
                        self.deliver_fault(fault, pc)?;
                    }
                }
            }
            Inst::Store { src, base, offset, width } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                let value = self.reg(src);
                match self.write_virt_reference(vaddr, value, width) {
                    Ok(()) => self.pc += INST_SIZE,
                    Err(fault) => self.deliver_fault(fault, pc)?,
                }
            }

            Inst::Cmp(a, b) => {
                self.flags = Flags::compare(self.reg(a), self.reg(b));
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Inst::CmpImm(a, imm) => {
                self.flags = Flags::compare(self.reg(a), imm);
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Inst::Test(a, b) => {
                let v = self.reg(a) & self.reg(b);
                self.flags = Flags { zero: v == 0, carry: false, sign: (v as i64) < 0, overflow: false };
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }

            Inst::Jcc(cond, target) => {
                self.charge(self.model.lat.alu);
                let taken = self.flags.eval(cond);
                let predicted_taken = self.cond_pred.predict(pc, &self.bhb);
                if predicted_taken != taken {
                    self.charge(self.model.lat.mispredict_penalty);
                    let wrong_path = if predicted_taken { target } else { pc + INST_SIZE };
                    transient::run_window_reference(self, TransientStart::WrongPath { pc: wrong_path });
                }
                self.cond_pred.update(pc, &self.bhb, taken);
                if taken {
                    self.bhb.record(pc, target);
                    self.pc = target;
                } else {
                    self.pc += INST_SIZE;
                }
            }
            Inst::Jmp(target) => {
                self.charge(self.model.lat.alu);
                self.bhb.record(pc, target);
                self.pc = target;
            }
            Inst::JmpInd(r) => {
                let target = self.reg(r);
                self.indirect_branch_reference(pc, target, lfence_shadow);
                self.pc = target;
            }
            Inst::Call(target) => {
                self.charge(self.model.lat.alu);
                self.push_stack_reference(pc + INST_SIZE)?;
                self.rsb.push(pc + INST_SIZE);
                self.bhb.record(pc, target);
                self.pc = target;
            }
            Inst::CallInd(r) => {
                let target = self.reg(r);
                self.indirect_branch_reference(pc, target, lfence_shadow);
                self.push_stack_reference(pc + INST_SIZE)?;
                self.rsb.push(pc + INST_SIZE);
                self.pc = target;
            }
            Inst::Ret => {
                self.charge(self.model.lat.alu);
                let actual = self.pop_stack_reference()?;
                let predicted = self.rsb.pop();
                match predicted {
                    Some(p) if p == actual => {}
                    Some(p) => {
                        // RSB mispredict: speculation goes to the stale RSB
                        // entry. This is both the retpoline capture (by
                        // design) and the SpectreRSB vector.
                        self.charge(self.model.lat.ret_mispredict);
                        transient::run_window_reference(self, TransientStart::WrongPath { pc: p });
                    }
                    None => {
                        // RSB underflow: newer parts fall back to the BTB.
                        self.charge(self.model.lat.ret_mispredict);
                        if let Some(p) = self.predict_indirect(pc) {
                            if p != actual {
                                transient::run_window_reference(self, TransientStart::WrongPath { pc: p });
                            }
                        }
                    }
                }
                self.bhb.record(pc, actual);
                self.pc = actual;
            }

            Inst::Cmov(cond, d, s) => {
                // Conditional moves are cheap to execute but sit on the
                // dependency chain of whatever consumes the result — for
                // index masking, the following load cannot begin until the
                // flags and both inputs resolve. The extra cycles model
                // that serialization (the real cost of the mitigation,
                // §5.4).
                let v = self.reg(s);
                let take = self.flags.eval(cond);
                self.charge(self.model.lat.alu + 3);
                if take {
                    self.set_reg(d, v);
                }
                self.pc += INST_SIZE;
            }
            Inst::CmovImm(cond, d, imm) => {
                let take = self.flags.eval(cond);
                self.charge(self.model.lat.alu + 3);
                if take {
                    self.set_reg(d, imm);
                }
                self.pc += INST_SIZE;
            }

            Inst::Lfence => {
                // On Intel, `lfence` only waits for in-flight loads: with
                // nothing outstanding (e.g. right after `swapgs` on kernel
                // entry) it is nearly free — which is why the paper found
                // no measurable LEBench impact from the Spectre V1 kernel
                // mitigation (§4.6). On AMD it is dispatch-serializing (as
                // Linux configures it), so the full cost always applies.
                let loads_in_flight = self.cycles.saturating_sub(self.last_load_cycle) < 20;
                let cost = if self.model.vendor == Vendor::Amd || loads_in_flight {
                    self.model.lat.lfence
                } else {
                    2
                };
                self.charge(cost);
                if self.model.vendor == Vendor::Amd {
                    // The next indirect branch will not speculate.
                    self.lfence_shadow = true;
                }
                self.pc += INST_SIZE;
            }
            Inst::Mfence | Inst::Sfence => {
                self.charge(self.model.lat.lfence + 10);
                self.store_buffer.flush();
                self.pc += INST_SIZE;
            }
            Inst::Clflush(r) => {
                let vaddr = self.reg(r);
                self.charge(self.model.lat.l1_hit + 8);
                let user = self.mode == PrivMode::User;
                if let Ok(tr) = self.mmu.translate_reference(vaddr, crate::mmu::Access::Read, user) {
                    self.l1d.flush_line(tr.paddr);
                }
                self.pc += INST_SIZE;
            }

            Inst::Rdtsc(d) => {
                self.charge(15);
                let c = self.cycles;
                self.set_reg(d, c);
                self.pc += INST_SIZE;
            }
            Inst::Rdpmc { pmc, dst } => {
                self.charge(20);
                let v = self.pmc.read(pmc);
                self.set_reg(dst, v);
                self.pc += INST_SIZE;
            }
            Inst::Wrmsr { msr, src } => {
                let value = self.reg(src);
                let cost = if msr == crate::isa::msr_index::IA32_SPEC_CTRL {
                    self.model.lat.wrmsr_spec_ctrl
                } else if msr == crate::isa::msr_index::IA32_PRED_CMD {
                    self.model.lat.ibpb
                } else if msr == crate::isa::msr_index::IA32_FLUSH_CMD {
                    self.model.lat.l1d_flush
                } else {
                    100
                };
                match self.msrs.write(msr, value) {
                    Ok(effect) => {
                        self.charge(cost);
                        match effect {
                            MsrEffect::None => {}
                            MsrEffect::Ibpb => self.btb.ibpb(),
                            MsrEffect::L1dFlush => self.l1d.flush_all(),
                        }
                        self.pc += INST_SIZE;
                    }
                    Err(fault) => self.deliver_fault(fault, pc)?,
                }
            }
            Inst::Rdmsr { msr, dst } => match self.msrs.read(msr) {
                Ok(v) => {
                    self.charge(60);
                    self.set_reg(dst, v);
                    self.pc += INST_SIZE;
                }
                Err(fault) => self.deliver_fault(fault, pc)?,
            },

            Inst::Syscall => {
                if self.mode == PrivMode::Kernel {
                    return Err(SimError::ModeViolation { what: "syscall from kernel mode" });
                }
                let entry = match self.syscall_entry {
                    Some(e) => e,
                    None => return Err(SimError::ModeViolation { what: "syscall with no entry" }),
                };
                self.charge(self.model.lat.syscall);
                // Return address convention: syscall leaves it in R11.
                self.set_reg(Reg::R11, pc + INST_SIZE);
                self.mode = PrivMode::Kernel;
                self.kernel_entry_side_effects();
                self.pc = entry;
            }
            Inst::Sysret => {
                self.charge(self.model.lat.sysret);
                self.mode = PrivMode::User;
                self.pc = self.reg(Reg::R11);
            }
            Inst::Swapgs => {
                self.charge(self.model.lat.alu + 2);
                self.swapgs_user = !self.swapgs_user;
                self.pc += INST_SIZE;
            }
            Inst::Iret => {
                let frame = match self.fault_frame.take() {
                    Some(f) => f,
                    None => return Err(SimError::ModeViolation { what: "iret with no frame" }),
                };
                self.charge(self.model.lat.sysret + 20);
                self.mode = frame.prior_mode;
                self.pc = frame.resume_pc;
            }
            Inst::MovCr3(r) => {
                let value = self.reg(r);
                self.charge(self.model.lat.swap_cr3);
                if !self.mmu.load_cr3(value) {
                    return Err(SimError::BadPageTable { cr3: value });
                }
                self.pc += INST_SIZE;
            }
            Inst::Verw => {
                if self.model.spec.md_clear {
                    self.charge(self.model.lat.verw_clear);
                    self.fill_buffers.clear();
                } else {
                    self.charge(self.model.lat.verw_legacy);
                }
                self.pc += INST_SIZE;
            }
            Inst::Invlpg(r) => {
                let vaddr = self.reg(r);
                self.charge(120);
                self.mmu.flush_tlb_page(vaddr);
                self.pc += INST_SIZE;
            }

            Inst::Fadd(..)
            | Inst::Fsub(..)
            | Inst::Fmul(..)
            | Inst::Fdiv(..)
            | Inst::FmovImm(..)
            | Inst::Fload { .. }
            | Inst::Fstore { .. }
            | Inst::FtoG(..) => {
                if !self.fpu.enabled {
                    // LazyFP trap point: architecturally this faults. On a
                    // vulnerable part the *transient* dependents still see
                    // the stale registers.
                    if self.model.vuln.lazy_fp {
                        transient::run_window_reference(
                            self,
                            TransientStart::StaleFpu {
                                inst: crate::decode::decode(&inst),
                                next_pc: pc + INST_SIZE,
                            },
                        );
                    }
                    self.deliver_fault(Fault::DeviceNotAvailable, pc)?;
                    return Ok(None);
                }
                if let Err(fault) = self.exec_fp(&inst) {
                    self.deliver_fault(fault, pc)?;
                    return Ok(None);
                }
                self.pc += INST_SIZE;
            }
            Inst::Xsave => {
                let cost = if self.model.spec.xsaveopt {
                    self.model.lat.xsave
                } else {
                    self.model.lat.xsave * 2
                };
                self.charge(cost);
                self.pc += INST_SIZE;
            }
            Inst::Xrstor => {
                self.charge(self.model.lat.xrstor);
                self.pc += INST_SIZE;
            }
        }
        Ok(None)
    }

    /// Executes an enabled-FPU floating point instruction.
    fn exec_fp(&mut self, inst: &Inst) -> Result<(), Fault> {
        match *inst {
            Inst::Fadd(d, s) => {
                self.charge(3);
                self.fpu.state.regs[d.index()] += self.fpu.state.regs[s.index()];
            }
            Inst::Fsub(d, s) => {
                self.charge(3);
                self.fpu.state.regs[d.index()] -= self.fpu.state.regs[s.index()];
            }
            Inst::Fmul(d, s) => {
                self.charge(4);
                self.fpu.state.regs[d.index()] *= self.fpu.state.regs[s.index()];
            }
            Inst::Fdiv(d, s) => {
                let lat = self.model.lat.div;
                self.charge(lat);
                self.pmc.add(Pmc::DividerActive, lat);
                self.fpu.state.regs[d.index()] /= self.fpu.state.regs[s.index()];
            }
            Inst::FmovImm(d, v) => {
                self.charge(self.model.lat.alu);
                self.fpu.state.regs[d.index()] = v;
            }
            Inst::Fload { dst, base, offset } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                let bits = self.read_virt_reference(vaddr, Width::B8)?;
                self.fpu.state.regs[dst.index()] = f64::from_bits(bits);
            }
            Inst::Fstore { src, base, offset } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                let bits = self.fpu.state.regs[src.index()].to_bits();
                self.write_virt_reference(vaddr, bits, Width::B8)?;
            }
            Inst::FtoG(d, s) => {
                self.charge(self.model.lat.alu + 1);
                self.regs[d.index()] = self.fpu.state.regs[s.index()].to_bits();
            }
            // A non-FP instruction routed here is a decoder bug in the
            // caller; surface it as an architectural #UD instead of
            // aborting the whole process.
            _ => return Err(Fault::InvalidOpcode),
        }
        Ok(())
    }

    fn alu1(&mut self, f: impl FnOnce(u64) -> u64, d: Reg) {
        self.charge(self.model.lat.alu);
        self.alu1_free(f, d);
    }

    fn alu1_free(&mut self, f: impl FnOnce(u64) -> u64, d: Reg) {
        let v = f(self.reg(d));
        self.set_reg(d, v);
        self.pc += INST_SIZE;
    }
}

// ---------------------------------------------------------------------------
// Frozen seed helpers.
//
// The refactor also introduced fast paths inside shared subsystems (TLB
// micro-cache, store-buffer disjoint filter, single-frame physical memory
// access, decoded transient windows). The reference stepper must not
// benefit from any of them — it is the *seed* interpreter, frozen whole.
// These helpers are the seed's committed load/store/branch/stack paths
// verbatim, wired to the `_reference` subsystem entry points. They are
// observable-identical to the fast versions; the decode round-trip
// property tests pin that equivalence.
// ---------------------------------------------------------------------------

use crate::cache::CacheOutcome;
use crate::mmu::Access;
use crate::store_buffer::ForwardOutcome;

impl Machine {
    /// Seed committed load: translate, charge TLB/SSBD/cache costs,
    /// consult the store buffer, read physical memory bytewise.
    fn read_virt_reference(&mut self, vaddr: u64, width: Width) -> Result<u64, Fault> {
        let user = self.mode == PrivMode::User;
        let tr = self.mmu.translate_reference(vaddr, Access::Read, user)?;
        if !tr.tlb_hit {
            self.charge(self.model.lat.tlb_miss);
        }
        let now = self.cycles;
        if self.ssbd_active()
            && now.saturating_sub(self.last_ssbd_stall) > 12
            && self.store_buffer.has_unresolved_store(now, 6)
        {
            self.charge(self.model.lat.ssbd_forward_stall);
            self.last_ssbd_stall = self.cycles;
        }
        let value = match self.store_buffer.check_load_reference(vaddr, width, now) {
            ForwardOutcome::Forwarded { value } => {
                self.charge(self.model.lat.l1_hit);
                self.l1d.access(tr.paddr);
                value
            }
            ForwardOutcome::PartialOverlap => {
                self.charge(self.model.lat.l1_hit + 12);
                self.l1d.access(tr.paddr);
                self.mem.read_reference(tr.paddr, width)
            }
            ForwardOutcome::NoConflict => {
                let cost = match self.l1d.access(tr.paddr) {
                    CacheOutcome::Hit => self.model.lat.l1_hit,
                    CacheOutcome::Miss => {
                        self.pmc.incr(Pmc::L1dMiss);
                        match self.l2.access(tr.paddr) {
                            CacheOutcome::Hit => self.model.lat.l2_hit,
                            CacheOutcome::Miss => self.model.lat.l1_miss,
                        }
                    }
                };
                self.charge(cost);
                self.mem.read_reference(tr.paddr, width)
            }
        };
        self.fill_buffers.record(value);
        self.last_load_cycle = self.cycles;
        Ok(value)
    }

    /// Seed committed store; see [`Machine::read_virt_reference`].
    fn write_virt_reference(&mut self, vaddr: u64, value: u64, width: Width) -> Result<(), Fault> {
        let user = self.mode == PrivMode::User;
        let tr = self.mmu.translate_reference(vaddr, Access::Write, user)?;
        if !tr.tlb_hit {
            self.charge(self.model.lat.tlb_miss);
        }
        self.l1d.access(tr.paddr);
        self.l2.access(tr.paddr);
        self.charge(self.model.lat.l1_hit);
        let now = self.cycles;
        let stale = self.mem.read_reference(tr.paddr, width);
        self.store_buffer.push(vaddr, width, value, stale, now);
        self.mem.write_reference(tr.paddr, value, width);
        self.fill_buffers.record(width.truncate(value));
        Ok(())
    }

    /// Seed committed indirect branch: prediction check, transient window
    /// on mispredict, BTB training, BHB update.
    fn indirect_branch_reference(&mut self, pc: u64, actual: u64, lfence_shadow: bool) {
        if lfence_shadow {
            let overlap =
                self.model.lat.lfence.saturating_sub(self.model.lat.amd_retpoline_extra);
            self.refund(overlap);
        }
        self.charge(self.model.lat.indirect_branch);
        let predicted = self.predict_indirect(pc);
        match predicted {
            Some(p) if p == actual => {}
            Some(p) => {
                self.charge(self.model.lat.indirect_mispredict);
                self.pmc.incr(Pmc::IndirectMispredict);
                if !lfence_shadow {
                    transient::run_window_reference(self, TransientStart::WrongPath { pc: p });
                }
            }
            None => {
                self.charge(self.model.lat.indirect_mispredict);
                self.pmc.incr(Pmc::IndirectMispredict);
            }
        }
        self.btb.train(pc, actual, self.mode, &self.bhb);
        self.bhb.record(pc, actual);
    }

    /// Seed SSB window check on a committed load that may have forwarded.
    fn maybe_ssb_window_reference(&mut self, vaddr: u64, width: Width, dst: Reg, next_pc: u64) {
        if !self.model.vuln.ssb || self.ssbd_active() {
            return;
        }
        let now = self.cycles;
        let stale = match self.store_buffer.bypass_value_reference(vaddr, width, now) {
            Some(s) => s,
            None => return,
        };
        if stale == self.reg(dst) {
            return;
        }
        transient::run_window_reference(self, TransientStart::StoreBypass { stale, dst, next_pc });
    }

    /// Seed stack push (SP convention register).
    fn push_stack_reference(&mut self, value: u64) -> Result<(), SimError> {
        let sp = self.reg(Reg::SP).wrapping_sub(8);
        self.set_reg(Reg::SP, sp);
        match self.write_virt_reference(sp, value, Width::B8) {
            Ok(()) => Ok(()),
            Err(_) => Err(SimError::ModeViolation { what: "stack push faulted" }),
        }
    }

    /// Seed stack pop.
    fn pop_stack_reference(&mut self) -> Result<u64, SimError> {
        let sp = self.reg(Reg::SP);
        let v = match self.read_virt_reference(sp, Width::B8) {
            Ok(v) => v,
            Err(_) => return Err(SimError::ModeViolation { what: "stack pop faulted" }),
        };
        self.set_reg(Reg::SP, sp.wrapping_add(8));
        Ok(v)
    }
}
