//! Optional execution tracing: a bounded ring of recently committed
//! instructions, for debugging programs that run on the simulator.
//!
//! Tracing is off by default and costs nothing when disabled; enable it
//! with [`crate::machine::Machine::enable_trace`].

use std::collections::VecDeque;

use crate::predictor::PrivMode;

/// One committed instruction record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Code address.
    pub pc: u64,
    /// Cycle count *before* the instruction committed.
    pub cycles: u64,
    /// Privilege mode it executed in.
    pub mode: PrivMode,
    /// Instruction mnemonic.
    pub mnemonic: &'static str,
}

/// A bounded trace ring.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
}

impl Tracer {
    /// Creates a tracer keeping the last `capacity` records.
    pub fn new(capacity: usize) -> Tracer {
        Tracer { ring: VecDeque::with_capacity(capacity), capacity }
    }

    /// Records a committed instruction.
    pub fn record(&mut self, rec: TraceRecord) {
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
    }

    /// The records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Renders the trace, oldest first.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for r in &self.ring {
            let mode = match r.mode {
                PrivMode::User => "u",
                PrivMode::Kernel => "k",
            };
            s.push_str(&format!("{:>12}  {mode} {:#010x}  {}\n", r.cycles, r.pc, r.mnemonic));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let mut t = Tracer::new(3);
        for i in 0..5u64 {
            t.record(TraceRecord {
                pc: 0x1000 + i * 4,
                cycles: i * 10,
                mode: PrivMode::User,
                mnemonic: "nop",
            });
        }
        assert_eq!(t.len(), 3);
        let pcs: Vec<u64> = t.records().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0x1008, 0x100c, 0x1010]);
        let dump = t.dump();
        assert_eq!(dump.lines().count(), 3);
        assert!(dump.contains("0x00001010"));
    }
}
