//! FPU state and the lazy-versus-eager switching model behind LazyFP.
//!
//! With lazy FPU switching the OS leaves the previous process's registers
//! in place, marks the FPU disabled, and handles the resulting
//! device-not-available trap on first use. LazyFP (§3.1) leaks because a
//! vulnerable CPU lets *transient* FP instructions read the stale
//! registers even while the FPU is disabled. The mitigation — eager
//! save/restore on every context switch — is modelled by the kernel
//! executing `xsave`/`xrstor` in its switch path.

/// Architectural FPU state: eight scalar f64 registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpuState {
    /// Register file.
    pub regs: [f64; 8],
}

impl Default for FpuState {
    fn default() -> FpuState {
        FpuState { regs: [0.0; 8] }
    }
}

/// The FPU: register file plus the enable bit (`!CR0.TS`) and owner.
#[derive(Debug, Clone)]
pub struct Fpu {
    /// Live register contents. With lazy switching these may belong to a
    /// process other than the current one — the LazyFP leak source.
    pub state: FpuState,
    /// Whether FP instructions may execute (clear = trap on use).
    pub enabled: bool,
    /// Which process id the live registers belong to (`None` = nobody).
    pub owner: Option<u64>,
}

impl Default for Fpu {
    fn default() -> Fpu {
        Fpu { state: FpuState::default(), enabled: true, owner: None }
    }
}

impl Fpu {
    /// Creates an enabled FPU with zeroed registers.
    pub fn new() -> Fpu {
        Fpu::default()
    }

    /// Saves the live state (the `xsave` payload).
    pub fn save(&self) -> FpuState {
        self.state
    }

    /// Restores saved state and marks `owner` as the owner.
    pub fn restore(&mut self, state: FpuState, owner: u64) {
        self.state = state;
        self.owner = Some(owner);
        self.enabled = true;
    }

    /// Disables the FPU without touching the registers (lazy switch).
    pub fn disable(&mut self) {
        self.enabled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_restore_roundtrip() {
        let mut fpu = Fpu::new();
        fpu.state.regs[3] = 2.5;
        let saved = fpu.save();
        fpu.state.regs[3] = 0.0;
        fpu.restore(saved, 7);
        assert_eq!(fpu.state.regs[3], 2.5);
        assert_eq!(fpu.owner, Some(7));
        assert!(fpu.enabled);
    }

    #[test]
    fn lazy_disable_keeps_stale_registers() {
        let mut fpu = Fpu::new();
        fpu.state.regs[0] = 42.0;
        fpu.owner = Some(1);
        fpu.disable();
        // The stale data is still there — that's the LazyFP leak source.
        assert!(!fpu.enabled);
        assert_eq!(fpu.state.regs[0], 42.0);
        assert_eq!(fpu.owner, Some(1));
    }
}
