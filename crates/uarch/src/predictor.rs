//! Branch prediction structures: BTB, RSB, BHB, and a conditional
//! predictor.
//!
//! These are the structures Spectre attacks poison:
//!
//! * the **Branch Target Buffer** predicts indirect branch targets and is
//!   the Spectre V2 injection point;
//! * the **Return Stack Buffer** predicts `ret` targets; generic
//!   retpolines deliberately capture it, and SpectreRSB exploits it;
//! * the **Branch History Buffer** folds recent control flow into the BTB
//!   lookup; Zen 3's tighter use of it is (per the paper's hypothesis,
//!   §6.2) why their probe could not poison that part at all;
//! * the **conditional predictor** is what Spectre V1 trains to run a
//!   bounds check the wrong way.

use crate::isa::spec_ctrl;

/// CPU privilege mode. BTB entries are tagged with the mode they were
/// created in; whether the tag is *enforced* depends on eIBRS (paper §6.2.2
/// speculates the BTB is "partitioned or tagged using a bit indicating the
/// current privilege mode").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivMode {
    /// User mode (CPL 3).
    User,
    /// Kernel / supervisor mode (CPL 0).
    Kernel,
}

impl PrivMode {
    /// Whether this mode is more privileged than `other`.
    pub fn more_privileged_than(self, other: PrivMode) -> bool {
        self == PrivMode::Kernel && other == PrivMode::User
    }
}

/// Branch history buffer: a folded signature of recent branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bhb {
    bits: u64,
    len: usize,
}

impl Bhb {
    /// Creates an empty history of the given length (in recorded branches).
    pub fn new(len: usize) -> Bhb {
        Bhb { bits: 0, len }
    }

    /// Records a taken branch from `from` to `to`.
    pub fn record(&mut self, from: u64, to: u64) {
        let fold = (from >> 2) ^ (to >> 2) ^ (to >> 19);
        self.bits = self.bits.rotate_left(3) ^ (fold & 0xffff);
        // Constrain the effective history length by masking high bits: a
        // shorter history forgets older branches faster.
        if self.len < 64 {
            self.bits &= (1u64 << self.len.max(1)) - 1;
        }
    }

    /// The current history signature.
    pub fn signature(&self) -> u64 {
        self.bits
    }

    /// Clears the history.
    pub fn clear(&mut self) {
        self.bits = 0;
    }
}

/// A BTB entry.
#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    /// Full virtual address of the branch instruction (tag).
    branch: u64,
    /// Predicted target.
    target: u64,
    /// Privilege mode at training time.
    mode: PrivMode,
    /// BHB signature at training time.
    bhb_sig: u64,
}

/// The branch target buffer.
#[derive(Debug)]
pub struct Btb {
    entries: Vec<Option<BtbEntry>>,
    mask: u64,
    /// Enforce privilege-mode tags (eIBRS behaviour).
    pub priv_tagged: bool,
    /// Require the BHB signature at prediction time to match training time
    /// (the Zen 3 behaviour that defeated the paper's probe).
    pub history_tagged: bool,
    /// Number of IBPB flushes performed (diagnostics).
    pub flushes: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two() && entries > 0);
        Btb {
            entries: vec![None; entries],
            mask: (entries - 1) as u64,
            priv_tagged: false,
            history_tagged: false,
            flushes: 0,
        }
    }

    #[inline]
    fn index(&self, branch: u64, bhb: &Bhb) -> usize {
        let mut h = (branch >> 2) ^ (branch >> 13);
        if self.history_tagged {
            // History-indexed BTB (the Zen 3 model): each (branch,
            // history) context gets its own entry, so steady loops still
            // predict perfectly while cross-context training lands in a
            // different slot.
            let sig = bhb.signature();
            h ^= sig ^ (sig >> 7) ^ (sig >> 29);
        }
        (h & self.mask) as usize
    }

    /// Trains the BTB: the branch at `branch` went to `target`.
    pub fn train(&mut self, branch: u64, target: u64, mode: PrivMode, bhb: &Bhb) {
        let idx = self.index(branch, bhb);
        self.entries[idx] =
            Some(BtbEntry { branch, target, mode, bhb_sig: bhb.signature() });
    }

    /// Looks up a prediction for the branch at `branch` executed in `mode`
    /// with the given history.
    ///
    /// `spec_ctrl` is the live `IA32_SPEC_CTRL` value and
    /// `ibrs_blocks_all` the pre-Spectre quirk: when IBRS is set on such a
    /// part, *no* indirect prediction happens at all (§6.2.1). With eIBRS
    /// semantics (`priv_tagged`), entries only predict in the mode that
    /// trained them.
    pub fn predict(
        &self,
        branch: u64,
        mode: PrivMode,
        bhb: &Bhb,
        spec_ctrl_value: u64,
        ibrs_blocks_all: bool,
    ) -> Option<u64> {
        let ibrs_on = spec_ctrl_value & spec_ctrl::IBRS != 0;
        if ibrs_on && ibrs_blocks_all {
            // Pre-Spectre IBRS: indirect prediction disabled everywhere.
            return None;
        }
        let e = self.entries[self.index(branch, bhb)]?;
        if e.branch != branch {
            return None;
        }
        if self.priv_tagged && e.mode != mode {
            // eIBRS: privilege-tagged BTB never crosses modes.
            return None;
        }
        if !self.priv_tagged && ibrs_on && mode.more_privileged_than(e.mode) {
            // Legacy IBRS semantics: lower-privilege training cannot steer
            // more-privileged execution while IBRS is set.
            return None;
        }
        if self.history_tagged && e.bhb_sig != bhb.signature() {
            return None;
        }
        Some(e.target)
    }

    /// Indirect Branch Prediction Barrier: flush every entry.
    ///
    /// The paper observes (§5.3) that post-IBPB indirect branches still
    /// count as *mispredicted*, suggesting entries are redirected to a
    /// harmless gadget rather than erased; for prediction purposes the
    /// effect is identical, so the model erases them.
    pub fn ibpb(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
        self.flushes += 1;
    }

    /// Flushes only entries trained in the given mode (the periodic
    /// kernel-entry flush observed with eIBRS, §6.2.2).
    pub fn flush_mode(&mut self, mode: PrivMode) {
        for e in &mut self.entries {
            if matches!(e, Some(entry) if entry.mode == mode) {
                *e = None;
            }
        }
    }

    /// Number of live entries (diagnostics).
    pub fn live_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// The return stack buffer.
#[derive(Debug)]
pub struct Rsb {
    stack: Vec<u64>,
    capacity: usize,
    /// Number of underflows observed (diagnostics; SpectreRSB pressure).
    pub underflows: u64,
}

impl Rsb {
    /// Creates an RSB with the given depth (16 or 32 on real parts).
    pub fn new(capacity: usize) -> Rsb {
        Rsb { stack: Vec::with_capacity(capacity), capacity, underflows: 0 }
    }

    /// Pushes a return address (on `call`). Overflow discards the oldest.
    pub fn push(&mut self, ret_addr: u64) {
        if self.stack.len() >= self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(ret_addr);
    }

    /// Pops the predicted return address (on `ret`).
    pub fn pop(&mut self) -> Option<u64> {
        let v = self.stack.pop();
        if v.is_none() {
            self.underflows += 1;
        }
        v
    }

    /// Overwrites the top entry (SpectreRSB's direct manipulation vector).
    pub fn poison_top(&mut self, target: u64) {
        if let Some(top) = self.stack.last_mut() {
            *top = target;
        } else {
            self.stack.push(target);
        }
    }

    /// Fills the buffer to capacity with a harmless target (RSB stuffing,
    /// Table 7). Returns the number of entries written.
    pub fn stuff(&mut self, harmless: u64) -> usize {
        self.stack.clear();
        for _ in 0..self.capacity {
            self.stack.push(harmless);
        }
        self.capacity
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the buffer (context-switch without stuffing).
    pub fn clear(&mut self) {
        self.stack.clear();
    }
}

/// Saturating 2-bit counter states for the conditional predictor.
/// The shared `Taken` postfix is the textbook naming for these states.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Counter {
    StrongNotTaken,
    WeakNotTaken,
    WeakTaken,
    StrongTaken,
}

impl Counter {
    fn predict_taken(self) -> bool {
        matches!(self, Counter::WeakTaken | Counter::StrongTaken)
    }

    fn update(self, taken: bool) -> Counter {
        use Counter::*;
        match (self, taken) {
            (StrongNotTaken, true) => WeakNotTaken,
            (WeakNotTaken, true) => WeakTaken,
            (WeakTaken, true) => StrongTaken,
            (StrongTaken, true) => StrongTaken,
            (StrongNotTaken, false) => StrongNotTaken,
            (WeakNotTaken, false) => StrongNotTaken,
            (WeakTaken, false) => WeakNotTaken,
            (StrongTaken, false) => WeakTaken,
        }
    }
}

/// A gshare-style conditional branch predictor with 2-bit counters.
#[derive(Debug)]
pub struct CondPredictor {
    counters: Vec<Counter>,
    mask: u64,
}

impl CondPredictor {
    /// Creates a predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> CondPredictor {
        assert!(entries.is_power_of_two() && entries > 0);
        CondPredictor {
            counters: vec![Counter::WeakNotTaken; entries],
            mask: (entries - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: u64, bhb: &Bhb) -> usize {
        (((pc >> 2) ^ bhb.signature()) & self.mask) as usize
    }

    /// Predicts whether the branch at `pc` is taken.
    pub fn predict(&self, pc: u64, bhb: &Bhb) -> bool {
        self.counters[self.index(pc, bhb)].predict_taken()
    }

    /// Updates the predictor with the actual outcome.
    pub fn update(&mut self, pc: u64, bhb: &Bhb, taken: bool) {
        let idx = self.index(pc, bhb);
        self.counters[idx] = self.counters[idx].update(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bhb() -> Bhb {
        Bhb::new(16)
    }

    #[test]
    fn btb_trains_and_predicts() {
        let mut btb = Btb::new(64);
        let h = bhb();
        btb.train(0x1000, 0x2000, PrivMode::User, &h);
        assert_eq!(btb.predict(0x1000, PrivMode::User, &h, 0, false), Some(0x2000));
        // Different branch address: no prediction.
        assert_eq!(btb.predict(0x1004, PrivMode::User, &h, 0, false), None);
    }

    #[test]
    fn btb_cross_mode_prediction_without_tagging() {
        // The classic user→kernel Spectre V2 scenario: user-mode training
        // steers kernel-mode prediction on untagged BTBs (Table 9).
        let mut btb = Btb::new(64);
        let h = bhb();
        btb.train(0x1000, 0x6666, PrivMode::User, &h);
        assert_eq!(btb.predict(0x1000, PrivMode::Kernel, &h, 0, false), Some(0x6666));
    }

    #[test]
    fn eibrs_priv_tagging_blocks_cross_mode() {
        let mut btb = Btb::new(64);
        btb.priv_tagged = true;
        let h = bhb();
        btb.train(0x1000, 0x6666, PrivMode::User, &h);
        assert_eq!(btb.predict(0x1000, PrivMode::Kernel, &h, spec_ctrl::IBRS, false), None);
        // Same-mode prediction still works (Table 10: user→user ✓ on eIBRS parts).
        assert_eq!(
            btb.predict(0x1000, PrivMode::User, &h, spec_ctrl::IBRS, false),
            Some(0x6666)
        );
    }

    #[test]
    fn legacy_ibrs_blocks_user_to_kernel_only() {
        let mut btb = Btb::new(64);
        let h = bhb();
        btb.train(0x1000, 0x6666, PrivMode::User, &h);
        // IBRS set: user-trained entry cannot steer kernel execution.
        assert_eq!(btb.predict(0x1000, PrivMode::Kernel, &h, spec_ctrl::IBRS, false), None);
        // user→user unaffected (on parts without the blocks-all quirk).
        assert_eq!(
            btb.predict(0x1000, PrivMode::User, &h, spec_ctrl::IBRS, false),
            Some(0x6666)
        );
        // IBRS clear: steering works again.
        assert_eq!(btb.predict(0x1000, PrivMode::Kernel, &h, 0, false), Some(0x6666));
    }

    #[test]
    fn pre_spectre_ibrs_blocks_everything() {
        // §6.2.1: on Broadwell/Skylake, IBRS disables all indirect
        // prediction, including user→user.
        let mut btb = Btb::new(64);
        let h = bhb();
        btb.train(0x1000, 0x6666, PrivMode::User, &h);
        assert_eq!(btb.predict(0x1000, PrivMode::User, &h, spec_ctrl::IBRS, true), None);
        assert_eq!(btb.predict(0x1000, PrivMode::User, &h, 0, true), Some(0x6666));
    }

    #[test]
    fn history_tagged_btb_requires_matching_bhb() {
        let mut btb = Btb::new(64);
        btb.history_tagged = true;
        let mut h = bhb();
        h.record(0x10, 0x20);
        btb.train(0x1000, 0x6666, PrivMode::User, &h);
        assert_eq!(btb.predict(0x1000, PrivMode::User, &h, 0, false), Some(0x6666));
        h.record(0x30, 0x40);
        assert_eq!(btb.predict(0x1000, PrivMode::User, &h, 0, false), None);
    }

    #[test]
    fn ibpb_flushes_all() {
        let mut btb = Btb::new(64);
        let h = bhb();
        btb.train(0x1000, 0x2000, PrivMode::User, &h);
        btb.train(0x3000, 0x4000, PrivMode::Kernel, &h);
        btb.ibpb();
        assert_eq!(btb.live_entries(), 0);
        assert_eq!(btb.flushes, 1);
    }

    #[test]
    fn flush_mode_is_selective() {
        let mut btb = Btb::new(64);
        let h = bhb();
        btb.train(0x1000, 0x2000, PrivMode::User, &h);
        btb.train(0x3000, 0x4000, PrivMode::Kernel, &h);
        btb.flush_mode(PrivMode::Kernel);
        assert_eq!(btb.predict(0x3000, PrivMode::Kernel, &h, 0, false), None);
        assert_eq!(btb.predict(0x1000, PrivMode::User, &h, 0, false), Some(0x2000));
    }

    #[test]
    fn rsb_lifo_order() {
        let mut rsb = Rsb::new(16);
        rsb.push(0x10);
        rsb.push(0x20);
        assert_eq!(rsb.pop(), Some(0x20));
        assert_eq!(rsb.pop(), Some(0x10));
        assert_eq!(rsb.pop(), None);
        assert_eq!(rsb.underflows, 1);
    }

    #[test]
    fn rsb_overflow_drops_oldest() {
        let mut rsb = Rsb::new(2);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3);
        assert_eq!(rsb.pop(), Some(3));
        assert_eq!(rsb.pop(), Some(2));
        assert_eq!(rsb.pop(), None);
    }

    #[test]
    fn rsb_stuffing_fills_to_capacity() {
        let mut rsb = Rsb::new(16);
        rsb.push(0xdead);
        assert_eq!(rsb.stuff(0x5afe), 16);
        assert_eq!(rsb.depth(), 16);
        for _ in 0..16 {
            assert_eq!(rsb.pop(), Some(0x5afe));
        }
    }

    #[test]
    fn rsb_poison_top() {
        let mut rsb = Rsb::new(4);
        rsb.push(0x10);
        rsb.poison_top(0x6666);
        assert_eq!(rsb.pop(), Some(0x6666));
    }

    #[test]
    fn cond_predictor_trains_toward_taken() {
        let mut p = CondPredictor::new(256);
        let h = bhb();
        // Default state is weak-not-taken.
        assert!(!p.predict(0x100, &h));
        p.update(0x100, &h, true);
        assert!(p.predict(0x100, &h));
        p.update(0x100, &h, true);
        // Now strongly taken: one not-taken outcome keeps the prediction.
        p.update(0x100, &h, false);
        assert!(p.predict(0x100, &h));
        p.update(0x100, &h, false);
        assert!(!p.predict(0x100, &h));
    }

    #[test]
    fn bhb_changes_with_history_and_clears() {
        let mut h = Bhb::new(16);
        let s0 = h.signature();
        h.record(0x1000, 0x2000);
        assert_ne!(h.signature(), s0);
        h.clear();
        assert_eq!(h.signature(), 0);
    }
}
