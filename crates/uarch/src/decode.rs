//! Pre-decoded instruction stream.
//!
//! [`crate::isa::Inst`] is the *assembly* representation: ergonomic to
//! build, pattern-match, and print, but expensive to execute — every step
//! would otherwise re-discriminate a 59-variant enum with embedded structs.
//! This module flattens each instruction **once**, at
//! [`crate::program::ProgramBuilder::link`] time, into a fixed 16-byte
//! [`DecodedInst`]: a dense [`Op`] tag, three byte-sized operand fields, a
//! metadata byte with precomputed attribute bits (privilege), and one
//! 64-bit immediate. The machine's dispatch loop then switches on the
//! dense tag — a jump table — and never touches the `Inst` enum again.
//!
//! [`DecodedProgram`] stores the stream struct-of-arrays: one dense tag
//! array (`Vec<Op>`, one byte per instruction), one operand-word array,
//! and one immediate array. Straight-line fetch walks three parallel
//! arrays sequentially, which is as prefetch-friendly as the layout gets.
//!
//! Decoding is lossless: [`DecodedInst::to_inst`] reconstructs the exact
//! original `Inst` (bit-exact even for `f64` immediates), which the
//! round-trip property tests pin.

use crate::isa::{Cond, FReg, Inst, Pmc, Reg, Width};
use crate::program::INST_SIZE;

/// Dense opcode tag, one per [`Inst`] variant.
///
/// The discriminants are contiguous from zero so a `match` compiles to a
/// jump table and the tag packs into one byte of the decoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // one-to-one with the documented `Inst` variants
pub enum Op {
    Nop = 0,
    Pause,
    Halt,
    MovImm,
    Mov,
    Add,
    AddImm,
    Sub,
    SubImm,
    Mul,
    Div,
    And,
    AndImm,
    Or,
    Xor,
    XorImm,
    Shl,
    Shr,
    Not,
    Load,
    Store,
    Cmp,
    CmpImm,
    Test,
    Jcc,
    Jmp,
    JmpInd,
    Call,
    CallInd,
    Ret,
    Cmov,
    CmovImm,
    Lfence,
    Mfence,
    Sfence,
    Clflush,
    Rdtsc,
    Rdpmc,
    Wrmsr,
    Rdmsr,
    Syscall,
    Sysret,
    Swapgs,
    Iret,
    MovCr3,
    Verw,
    Invlpg,
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    FmovImm,
    Fload,
    Fstore,
    FtoG,
    Xsave,
    Xrstor,
    Host,
    Vmcall,
}

impl Op {
    /// The same short mnemonic [`Inst::mnemonic`] reports, so trace output
    /// is identical whichever representation recorded it.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Nop => "nop",
            Op::Pause => "pause",
            Op::Halt => "hlt",
            Op::MovImm => "mov(imm)",
            Op::Mov => "mov",
            Op::Add | Op::AddImm => "add",
            Op::Sub | Op::SubImm => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::And | Op::AndImm => "and",
            Op::Or => "or",
            Op::Xor | Op::XorImm => "xor",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Not => "not",
            Op::Load => "load",
            Op::Store => "store",
            Op::Cmp | Op::CmpImm => "cmp",
            Op::Test => "test",
            Op::Jcc => "jcc",
            Op::Jmp => "jmp",
            Op::JmpInd => "jmp*",
            Op::Call => "call",
            Op::CallInd => "call*",
            Op::Ret => "ret",
            Op::Cmov | Op::CmovImm => "cmov",
            Op::Lfence => "lfence",
            Op::Mfence => "mfence",
            Op::Sfence => "sfence",
            Op::Clflush => "clflush",
            Op::Rdtsc => "rdtsc",
            Op::Rdpmc => "rdpmc",
            Op::Wrmsr => "wrmsr",
            Op::Rdmsr => "rdmsr",
            Op::Syscall => "syscall",
            Op::Sysret => "sysret",
            Op::Swapgs => "swapgs",
            Op::Iret => "iret",
            Op::MovCr3 => "mov cr3",
            Op::Verw => "verw",
            Op::Invlpg => "invlpg",
            Op::Fadd => "fadd",
            Op::Fsub => "fsub",
            Op::Fmul => "fmul",
            Op::Fdiv => "fdiv",
            Op::FmovImm => "fmov(imm)",
            Op::Fload => "fload",
            Op::Fstore => "fstore",
            Op::FtoG => "ftog",
            Op::Xsave => "xsave",
            Op::Xrstor => "xrstor",
            Op::Host => "host",
            Op::Vmcall => "vmcall",
        }
    }
}

/// Attribute bit in [`DecodedInst::meta`]: faults with `#GP` in user mode.
pub const META_PRIVILEGED: u8 = 1 << 0;

/// One pre-decoded instruction: 16 bytes, `Copy`, no embedded enums with
/// payloads. Operand meaning depends on [`Op`]; see [`decode`] for the
/// field assignment per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInst {
    /// Dense opcode tag.
    pub op: Op,
    /// First operand: destination/source GPR or FReg index, depending on op.
    pub a: u8,
    /// Second operand: source/base register index, shift amount, or PMC index.
    pub b: u8,
    /// Third operand: width index or condition-code index.
    pub c: u8,
    /// Precomputed attribute bits ([`META_PRIVILEGED`]).
    pub meta: u8,
    /// Immediate: value, branch target, displacement (as two's-complement
    /// `u64`), MSR number, host-hook id, or `f64` bits.
    pub imm: u64,
}

impl DecodedInst {
    /// Whether the instruction faults with `#GP` in user mode (precomputed
    /// from [`Inst::is_privileged`] at decode time).
    #[inline]
    pub fn is_privileged(self) -> bool {
        self.meta & META_PRIVILEGED != 0
    }

    /// Reconstructs the original [`Inst`]. Lossless for every constructible
    /// instruction, including bit-exact `f64` immediates.
    pub fn to_inst(self) -> Inst {
        let ra = || Reg::from_index((self.a & 15) as usize);
        let rb = || Reg::from_index((self.b & 15) as usize);
        let fa = || FReg::from_index((self.a & 7) as usize);
        let fb = || FReg::from_index((self.b & 7) as usize);
        let width = || Width::from_index((self.c & 3) as usize);
        let cond = || Cond::from_index(self.c as usize);
        match self.op {
            Op::Nop => Inst::Nop,
            Op::Pause => Inst::Pause,
            Op::Halt => Inst::Halt,
            Op::MovImm => Inst::MovImm(ra(), self.imm),
            Op::Mov => Inst::Mov(ra(), rb()),
            Op::Add => Inst::Add(ra(), rb()),
            Op::AddImm => Inst::AddImm(ra(), self.imm),
            Op::Sub => Inst::Sub(ra(), rb()),
            Op::SubImm => Inst::SubImm(ra(), self.imm),
            Op::Mul => Inst::Mul(ra(), rb()),
            Op::Div => Inst::Div(ra(), rb()),
            Op::And => Inst::And(ra(), rb()),
            Op::AndImm => Inst::AndImm(ra(), self.imm),
            Op::Or => Inst::Or(ra(), rb()),
            Op::Xor => Inst::Xor(ra(), rb()),
            Op::XorImm => Inst::XorImm(ra(), self.imm),
            Op::Shl => Inst::Shl(ra(), self.b),
            Op::Shr => Inst::Shr(ra(), self.b),
            Op::Not => Inst::Not(ra()),
            Op::Load => Inst::Load {
                dst: ra(),
                base: rb(),
                offset: self.imm as i64,
                width: width(),
            },
            Op::Store => Inst::Store {
                src: ra(),
                base: rb(),
                offset: self.imm as i64,
                width: width(),
            },
            Op::Cmp => Inst::Cmp(ra(), rb()),
            Op::CmpImm => Inst::CmpImm(ra(), self.imm),
            Op::Test => Inst::Test(ra(), rb()),
            Op::Jcc => Inst::Jcc(cond(), self.imm),
            Op::Jmp => Inst::Jmp(self.imm),
            Op::JmpInd => Inst::JmpInd(ra()),
            Op::Call => Inst::Call(self.imm),
            Op::CallInd => Inst::CallInd(ra()),
            Op::Ret => Inst::Ret,
            Op::Cmov => Inst::Cmov(cond(), ra(), rb()),
            Op::CmovImm => Inst::CmovImm(cond(), ra(), self.imm),
            Op::Lfence => Inst::Lfence,
            Op::Mfence => Inst::Mfence,
            Op::Sfence => Inst::Sfence,
            Op::Clflush => Inst::Clflush(ra()),
            Op::Rdtsc => Inst::Rdtsc(ra()),
            Op::Rdpmc => Inst::Rdpmc { pmc: Pmc::from_index((self.b & 7) as usize), dst: ra() },
            Op::Wrmsr => Inst::Wrmsr { msr: self.imm as u32, src: ra() },
            Op::Rdmsr => Inst::Rdmsr { msr: self.imm as u32, dst: ra() },
            Op::Syscall => Inst::Syscall,
            Op::Sysret => Inst::Sysret,
            Op::Swapgs => Inst::Swapgs,
            Op::Iret => Inst::Iret,
            Op::MovCr3 => Inst::MovCr3(ra()),
            Op::Verw => Inst::Verw,
            Op::Invlpg => Inst::Invlpg(ra()),
            Op::Fadd => Inst::Fadd(fa(), fb()),
            Op::Fsub => Inst::Fsub(fa(), fb()),
            Op::Fmul => Inst::Fmul(fa(), fb()),
            Op::Fdiv => Inst::Fdiv(fa(), fb()),
            Op::FmovImm => Inst::FmovImm(fa(), f64::from_bits(self.imm)),
            Op::Fload => Inst::Fload { dst: fa(), base: rb(), offset: self.imm as i64 },
            Op::Fstore => Inst::Fstore { src: fa(), base: rb(), offset: self.imm as i64 },
            Op::FtoG => Inst::FtoG(ra(), fb()),
            Op::Xsave => Inst::Xsave,
            Op::Xrstor => Inst::Xrstor,
            Op::Host => Inst::Host(self.imm as u16),
            Op::Vmcall => Inst::Vmcall,
        }
    }
}

/// Flattens one [`Inst`] into its decoded form. This runs exactly once per
/// instruction, at link time.
pub fn decode(inst: &Inst) -> DecodedInst {
    let mut d = DecodedInst { op: Op::Nop, a: 0, b: 0, c: 0, meta: 0, imm: 0 };
    if inst.is_privileged() {
        d.meta |= META_PRIVILEGED;
    }
    match *inst {
        Inst::Nop => d.op = Op::Nop,
        Inst::Pause => d.op = Op::Pause,
        Inst::Halt => d.op = Op::Halt,
        Inst::MovImm(r, v) => {
            d.op = Op::MovImm;
            d.a = r.index() as u8;
            d.imm = v;
        }
        Inst::Mov(a, b) => {
            d.op = Op::Mov;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Add(a, b) => {
            d.op = Op::Add;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::AddImm(r, v) => {
            d.op = Op::AddImm;
            d.a = r.index() as u8;
            d.imm = v;
        }
        Inst::Sub(a, b) => {
            d.op = Op::Sub;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::SubImm(r, v) => {
            d.op = Op::SubImm;
            d.a = r.index() as u8;
            d.imm = v;
        }
        Inst::Mul(a, b) => {
            d.op = Op::Mul;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Div(a, b) => {
            d.op = Op::Div;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::And(a, b) => {
            d.op = Op::And;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::AndImm(r, v) => {
            d.op = Op::AndImm;
            d.a = r.index() as u8;
            d.imm = v;
        }
        Inst::Or(a, b) => {
            d.op = Op::Or;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Xor(a, b) => {
            d.op = Op::Xor;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::XorImm(r, v) => {
            d.op = Op::XorImm;
            d.a = r.index() as u8;
            d.imm = v;
        }
        Inst::Shl(r, n) => {
            d.op = Op::Shl;
            d.a = r.index() as u8;
            d.b = n;
        }
        Inst::Shr(r, n) => {
            d.op = Op::Shr;
            d.a = r.index() as u8;
            d.b = n;
        }
        Inst::Not(r) => {
            d.op = Op::Not;
            d.a = r.index() as u8;
        }
        Inst::Load { dst, base, offset, width } => {
            d.op = Op::Load;
            d.a = dst.index() as u8;
            d.b = base.index() as u8;
            d.c = width.index() as u8;
            d.imm = offset as u64;
        }
        Inst::Store { src, base, offset, width } => {
            d.op = Op::Store;
            d.a = src.index() as u8;
            d.b = base.index() as u8;
            d.c = width.index() as u8;
            d.imm = offset as u64;
        }
        Inst::Cmp(a, b) => {
            d.op = Op::Cmp;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::CmpImm(r, v) => {
            d.op = Op::CmpImm;
            d.a = r.index() as u8;
            d.imm = v;
        }
        Inst::Test(a, b) => {
            d.op = Op::Test;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Jcc(cond, target) => {
            d.op = Op::Jcc;
            d.c = cond.index() as u8;
            d.imm = target;
        }
        Inst::Jmp(target) => {
            d.op = Op::Jmp;
            d.imm = target;
        }
        Inst::JmpInd(r) => {
            d.op = Op::JmpInd;
            d.a = r.index() as u8;
        }
        Inst::Call(target) => {
            d.op = Op::Call;
            d.imm = target;
        }
        Inst::CallInd(r) => {
            d.op = Op::CallInd;
            d.a = r.index() as u8;
        }
        Inst::Ret => d.op = Op::Ret,
        Inst::Cmov(cond, a, b) => {
            d.op = Op::Cmov;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
            d.c = cond.index() as u8;
        }
        Inst::CmovImm(cond, r, v) => {
            d.op = Op::CmovImm;
            d.a = r.index() as u8;
            d.c = cond.index() as u8;
            d.imm = v;
        }
        Inst::Lfence => d.op = Op::Lfence,
        Inst::Mfence => d.op = Op::Mfence,
        Inst::Sfence => d.op = Op::Sfence,
        Inst::Clflush(r) => {
            d.op = Op::Clflush;
            d.a = r.index() as u8;
        }
        Inst::Rdtsc(r) => {
            d.op = Op::Rdtsc;
            d.a = r.index() as u8;
        }
        Inst::Rdpmc { pmc, dst } => {
            d.op = Op::Rdpmc;
            d.a = dst.index() as u8;
            d.b = pmc.index() as u8;
        }
        Inst::Wrmsr { msr, src } => {
            d.op = Op::Wrmsr;
            d.a = src.index() as u8;
            d.imm = msr as u64;
        }
        Inst::Rdmsr { msr, dst } => {
            d.op = Op::Rdmsr;
            d.a = dst.index() as u8;
            d.imm = msr as u64;
        }
        Inst::Syscall => d.op = Op::Syscall,
        Inst::Sysret => d.op = Op::Sysret,
        Inst::Swapgs => d.op = Op::Swapgs,
        Inst::Iret => d.op = Op::Iret,
        Inst::MovCr3(r) => {
            d.op = Op::MovCr3;
            d.a = r.index() as u8;
        }
        Inst::Verw => d.op = Op::Verw,
        Inst::Invlpg(r) => {
            d.op = Op::Invlpg;
            d.a = r.index() as u8;
        }
        Inst::Fadd(a, b) => {
            d.op = Op::Fadd;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Fsub(a, b) => {
            d.op = Op::Fsub;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Fmul(a, b) => {
            d.op = Op::Fmul;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Fdiv(a, b) => {
            d.op = Op::Fdiv;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::FmovImm(r, v) => {
            d.op = Op::FmovImm;
            d.a = r.index() as u8;
            d.imm = v.to_bits();
        }
        Inst::Fload { dst, base, offset } => {
            d.op = Op::Fload;
            d.a = dst.index() as u8;
            d.b = base.index() as u8;
            d.imm = offset as u64;
        }
        Inst::Fstore { src, base, offset } => {
            d.op = Op::Fstore;
            d.a = src.index() as u8;
            d.b = base.index() as u8;
            d.imm = offset as u64;
        }
        Inst::FtoG(a, b) => {
            d.op = Op::FtoG;
            d.a = a.index() as u8;
            d.b = b.index() as u8;
        }
        Inst::Xsave => d.op = Op::Xsave,
        Inst::Xrstor => d.op = Op::Xrstor,
        Inst::Host(id) => {
            d.op = Op::Host;
            d.imm = id as u64;
        }
        Inst::Vmcall => d.op = Op::Vmcall,
    }
    d
}

/// A pre-decoded instruction stream for one linked segment, stored
/// struct-of-arrays: dense tags, packed operand words, and immediates in
/// three parallel arrays indexed by `(addr - base) / INST_SIZE`.
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    base: u64,
    /// Dense opcode tags, one byte per instruction.
    ops: Vec<Op>,
    /// Packed operand words: `[a, b, c, meta]` per instruction.
    operands: Vec<[u8; 4]>,
    /// 64-bit immediates (value / target / displacement / MSR / f64 bits).
    imms: Vec<u64>,
}

impl DecodedProgram {
    /// Decodes a linked instruction slice based at `base`.
    pub fn from_insts(base: u64, insts: &[Inst]) -> DecodedProgram {
        let mut ops = Vec::with_capacity(insts.len());
        let mut operands = Vec::with_capacity(insts.len());
        let mut imms = Vec::with_capacity(insts.len());
        for inst in insts {
            let d = decode(inst);
            ops.push(d.op);
            operands.push([d.a, d.b, d.c, d.meta]);
            imms.push(d.imm);
        }
        DecodedProgram { base, ops, operands, imms }
    }

    /// The base code address of the stream.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of instructions in the stream.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fetches the decoded instruction at `addr`: a bounds-and-alignment
    /// check plus three array reads, no search and no enum walk.
    #[inline]
    pub fn fetch(&self, addr: u64) -> Option<DecodedInst> {
        let off = addr.wrapping_sub(self.base);
        // A wrapped (addr < base) offset fails the bounds check below.
        if off & (INST_SIZE - 1) != 0 {
            return None;
        }
        let idx = (off / INST_SIZE) as usize;
        let op = *self.ops.get(idx)?;
        let [a, b, c, meta] = self.operands[idx];
        Some(DecodedInst { op, a, b, c, meta, imm: self.imms[idx] })
    }

    /// Whether `addr` is an instruction-aligned address inside this
    /// stream — i.e. [`DecodedProgram::fetch`] would succeed.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let off = addr.wrapping_sub(self.base);
        off & (INST_SIZE - 1) == 0 && (off / INST_SIZE) < self.ops.len() as u64
    }

    /// Fetches by instruction index. Callers walking the stream linearly
    /// (the transient window's inner loop) keep an index instead of
    /// re-resolving an address per instruction.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> DecodedInst {
        let op = self.ops[idx];
        let [a, b, c, meta] = self.operands[idx];
        DecodedInst { op, a, b, c, meta, imm: self.imms[idx] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_inst_is_16_bytes() {
        assert_eq!(std::mem::size_of::<DecodedInst>(), 16);
    }

    #[test]
    fn privilege_bit_precomputed() {
        let d = decode(&Inst::Wrmsr { msr: 0x48, src: Reg::R3 });
        assert!(d.is_privileged());
        let d = decode(&Inst::Rdtsc(Reg::R0));
        assert!(!d.is_privileged());
    }

    #[test]
    fn mnemonics_match_inst() {
        let insts = [
            Inst::Nop,
            Inst::MovImm(Reg::R1, 7),
            Inst::Load { dst: Reg::R0, base: Reg::R1, offset: -8, width: Width::B4 },
            Inst::Jcc(Cond::Above, 0x40),
            Inst::FmovImm(FReg::F3, 2.5),
            Inst::Host(7),
        ];
        for inst in &insts {
            assert_eq!(decode(inst).op.mnemonic(), inst.mnemonic());
        }
    }

    #[test]
    fn fetch_bounds_and_alignment() {
        let insts = vec![Inst::Nop, Inst::Halt];
        let dp = DecodedProgram::from_insts(0x1000, &insts);
        assert_eq!(dp.fetch(0x1000).map(|d| d.op), Some(Op::Nop));
        assert_eq!(dp.fetch(0x1004).map(|d| d.op), Some(Op::Halt));
        assert!(dp.fetch(0x1008).is_none());
        assert!(dp.fetch(0x0ffc).is_none());
        assert!(dp.fetch(0x1002).is_none(), "misaligned");
        assert!(dp.fetch(0).is_none());
    }
}
