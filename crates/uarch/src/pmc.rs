//! Performance counter bank.
//!
//! Counters deliberately include *transient* activity where the hardware
//! does: divide instructions executed in a squashed window still occupy the
//! divider, which is the whole basis of the paper's speculation probe
//! (§6.1, after Bölük).

use crate::isa::Pmc;

/// A bank of free-running performance counters.
#[derive(Debug, Clone, Default)]
pub struct PmcBank {
    counts: [u64; 6],
}

impl PmcBank {
    /// Creates a zeroed bank.
    pub fn new() -> PmcBank {
        PmcBank::default()
    }

    /// Reads a counter.
    #[inline]
    pub fn read(&self, pmc: Pmc) -> u64 {
        self.counts[pmc.index()]
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(&mut self, pmc: Pmc, n: u64) {
        self.counts[pmc.index()] += n;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&mut self, pmc: Pmc) {
        self.add(pmc, 1);
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.counts = [0; 6];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_independent() {
        let mut b = PmcBank::new();
        b.add(Pmc::DividerActive, 20);
        b.incr(Pmc::IndirectMispredict);
        assert_eq!(b.read(Pmc::DividerActive), 20);
        assert_eq!(b.read(Pmc::IndirectMispredict), 1);
        assert_eq!(b.read(Pmc::Cycles), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut b = PmcBank::new();
        for p in Pmc::ALL {
            b.add(p, 5);
        }
        b.reset();
        for p in Pmc::ALL {
            assert_eq!(b.read(p), 0);
        }
    }
}
