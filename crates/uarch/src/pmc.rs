//! Performance counter bank.
//!
//! Counters deliberately include *transient* activity where the hardware
//! does: divide instructions executed in a squashed window still occupy the
//! divider, which is the whole basis of the paper's speculation probe
//! (§6.1, after Bölük).

use crate::isa::Pmc;

/// A bank of free-running performance counters.
#[derive(Debug, Clone, Default)]
pub struct PmcBank {
    counts: [u64; 6],
}

impl PmcBank {
    /// Creates a zeroed bank.
    pub fn new() -> PmcBank {
        PmcBank::default()
    }

    /// Reads a counter.
    #[inline]
    pub fn read(&self, pmc: Pmc) -> u64 {
        self.counts[pmc.index()]
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(&mut self, pmc: Pmc, n: u64) {
        self.counts[pmc.index()] += n;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&mut self, pmc: Pmc) {
        self.add(pmc, 1);
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.counts = [0; 6];
    }
}

/// Process-wide interpreter throughput counters.
///
/// Every [`crate::machine::Machine`] publishes its committed-instruction
/// and transient-window deltas here when a run or slice ends (and on
/// drop). The per-step dispatch loop never touches these atomics — the
/// flush is batched — so the counters are free on the hot path but still
/// monotonic and accurate at every observation point that matters
/// (between experiment runs). The `serve` crate exports them as
/// `regen_uarch_*` metrics.
pub mod global {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Committed instructions across all machines in this process.
    pub static INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
    /// Transient (squashed) instructions across all machines.
    pub static TRANSIENT_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
    /// Transient windows opened across all machines.
    pub static TRANSIENT_WINDOWS: AtomicU64 = AtomicU64::new(0);

    /// Publishes one machine's counter deltas.
    pub fn flush(insts: u64, transient_insts: u64, transient_windows: u64) {
        if insts != 0 {
            INSTRUCTIONS.fetch_add(insts, Ordering::Relaxed);
        }
        if transient_insts != 0 {
            TRANSIENT_INSTRUCTIONS.fetch_add(transient_insts, Ordering::Relaxed);
        }
        if transient_windows != 0 {
            TRANSIENT_WINDOWS.fetch_add(transient_windows, Ordering::Relaxed);
        }
    }

    /// A consistent-enough snapshot of the three totals, in the order
    /// (instructions, transient instructions, transient windows).
    pub fn snapshot() -> (u64, u64, u64) {
        (
            INSTRUCTIONS.load(Ordering::Relaxed),
            TRANSIENT_INSTRUCTIONS.load(Ordering::Relaxed),
            TRANSIENT_WINDOWS.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_independent() {
        let mut b = PmcBank::new();
        b.add(Pmc::DividerActive, 20);
        b.incr(Pmc::IndirectMispredict);
        assert_eq!(b.read(Pmc::DividerActive), 20);
        assert_eq!(b.read(Pmc::IndirectMispredict), 1);
        assert_eq!(b.read(Pmc::Cycles), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut b = PmcBank::new();
        for p in Pmc::ALL {
            b.add(p, 5);
        }
        b.reset();
        for p in Pmc::ALL {
            assert_eq!(b.read(p), 0);
        }
    }
}
