//! Architectural faults and simulator errors.

use std::fmt;

/// Why a page fault occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFaultKind {
    /// No translation for the virtual address.
    NotMapped,
    /// The PTE exists but its present bit is clear (the L1TF trigger).
    NotPresent,
    /// User-mode access to a supervisor page (the Meltdown trigger).
    Supervisor,
    /// Write to a read-only mapping.
    ReadOnly,
    /// Instruction fetch from a no-execute page.
    NoExecute,
}

/// An architectural fault raised by instruction execution.
///
/// Faults vector to the kernel (via the machine's registered handlers);
/// whether the faulting instruction's *transient* effects leaked anything
/// first depends on the CPU model's vulnerability profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Page fault at the given virtual address.
    Page {
        /// Faulting virtual address.
        vaddr: u64,
        /// Cause.
        kind: PageFaultKind,
        /// Whether the access was a write.
        write: bool,
    },
    /// Privileged instruction in user mode, or bad MSR access.
    GeneralProtection,
    /// Integer division by zero.
    DivideError,
    /// FP instruction while the FPU is disabled (the LazyFP trap).
    DeviceNotAvailable,
    /// Undefined instruction.
    InvalidOpcode,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Page { vaddr, kind, write } => {
                write!(f, "page fault at {vaddr:#x} ({kind:?}, write={write})")
            }
            Fault::GeneralProtection => write!(f, "general protection fault"),
            Fault::DivideError => write!(f, "divide error"),
            Fault::DeviceNotAvailable => write!(f, "device not available (FPU)"),
            Fault::InvalidOpcode => write!(f, "invalid opcode"),
        }
    }
}

/// A simulator-level error: the *program* is broken (as opposed to an
/// architectural [`Fault`], which well-formed programs trigger and handle).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Instruction fetch from an address with no code loaded.
    BadFetch {
        /// The bad code address.
        addr: u64,
    },
    /// A `Host` instruction fired with no environment hook registered.
    MissingHostHook {
        /// The hook id.
        id: u16,
    },
    /// A fault occurred with no handler registered for it.
    UnhandledFault {
        /// The unhandled fault.
        fault: Fault,
        /// Code address of the faulting instruction.
        at: u64,
    },
    /// The instruction budget was exhausted (runaway program).
    InstructionBudgetExhausted,
    /// `Sysret` executed while already in user mode, double `Syscall`, etc.
    ModeViolation {
        /// Explanation.
        what: &'static str,
    },
    /// `MovCr3` loaded a value that names no registered page table.
    BadPageTable {
        /// The bad CR3 value.
        cr3: u64,
    },
    /// A VM-transition instruction executed outside hypervisor context.
    BadVmTransition,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadFetch { addr } => write!(f, "instruction fetch from {addr:#x}"),
            SimError::MissingHostHook { id } => write!(f, "no host hook registered for id {id}"),
            SimError::UnhandledFault { fault, at } => {
                write!(f, "unhandled fault at {at:#x}: {fault}")
            }
            SimError::InstructionBudgetExhausted => write!(f, "instruction budget exhausted"),
            SimError::ModeViolation { what } => write!(f, "privilege mode violation: {what}"),
            SimError::BadPageTable { cr3 } => write!(f, "cr3 {cr3:#x} names no page table"),
            SimError::BadVmTransition => write!(f, "VM transition outside hypervisor context"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display() {
        let f = Fault::Page {
            vaddr: 0x1000,
            kind: PageFaultKind::Supervisor,
            write: false,
        };
        let s = f.to_string();
        assert!(s.contains("0x1000") && s.contains("Supervisor"));
        assert_eq!(Fault::DivideError.to_string(), "divide error");
    }

    #[test]
    fn sim_error_display() {
        assert!(SimError::BadFetch { addr: 0xabc }.to_string().contains("0xabc"));
        assert!(SimError::MissingHostHook { id: 7 }.to_string().contains('7'));
    }
}
