//! The transient-execution window.
//!
//! When the committed path mispredicts a branch, takes a fault on a load,
//! or lets a load bypass an in-flight store, the machine opens a window
//! here: up to `spec.window` instructions execute on *shadow* register
//! state. Nothing architectural survives — no register writes, no memory
//! stores — but the microarchitectural side effects do:
//!
//! * loads fill L1D cache lines ([`crate::cache`]), the timing channel;
//! * data movement populates the fill buffers ([`crate::fill_buffer`]);
//! * divide instructions occupy the divider, bumping
//!   [`crate::isa::Pmc::DividerActive`] — the observable the paper's
//!   speculation probe is built on (§6.1).
//!
//! What a transient load *observes* is governed by the CPU model's
//! vulnerability profile: Meltdown parts see supervisor data, L1TF parts
//! see L1-resident data behind non-present PTEs, MDS parts sample stale
//! fill-buffer contents, and fixed parts see zeroes or stop the window.
//!
//! Like the committed path, the window executes from the pre-decoded
//! stream ([`crate::decode`]): wrong-path fetch is the same three-array
//! read as committed fetch, so deep windows stay cheap to simulate.

use crate::decode::{DecodedInst, Op};
use crate::fpu::FpuState;
use crate::isa::{Cond, Flags, Inst, Pmc, Width};
use crate::machine::Machine;
use crate::mem::PAGE_SHIFT;
use crate::predictor::PrivMode;
use crate::program::INST_SIZE;

/// How a transient window begins.
#[derive(Debug, Clone)]
pub enum TransientStart {
    /// A mispredicted branch: execution runs from the wrongly predicted
    /// target with otherwise-correct register state.
    WrongPath {
        /// First transient instruction.
        pc: u64,
    },
    /// A committed load faulted; its dependents run with whatever value
    /// the vulnerability profile lets through.
    FaultingLoad {
        /// Faulting virtual address.
        vaddr: u64,
        /// Load width.
        width: Width,
        /// Destination register (in shadow state).
        dst: crate::isa::Reg,
        /// Where the window continues.
        next_pc: u64,
    },
    /// A load bypassed an in-flight store (Speculative Store Bypass): its
    /// dependents transiently see the stale pre-store value.
    StoreBypass {
        /// The stale value observed.
        stale: u64,
        /// Destination register (in shadow state).
        dst: crate::isa::Reg,
        /// Where the window continues.
        next_pc: u64,
    },
    /// An FP instruction trapped on a disabled FPU but the part is LazyFP
    /// vulnerable: it and its dependents run on the stale FP registers.
    StaleFpu {
        /// The trapping FP instruction, pre-decoded.
        inst: DecodedInst,
        /// Where the window continues.
        next_pc: u64,
    },
}

/// Shadow architectural state for a window.
struct Shadow {
    regs: [u64; 16],
    flags: Flags,
    fregs: FpuState,
    pc: u64,
    /// Shadow return-address stack for calls made inside the window.
    ret_stack: Vec<u64>,
    /// Speculative stores: never reach memory, but *do* forward to
    /// younger loads inside the same window, exactly as an out-of-order
    /// core's store queue does. Without this, multi-instruction gadgets
    /// that pass the stolen value through memory (every stack-machine JIT
    /// gadget!) would not leak.
    stores: Vec<(u64, Width, u64)>,
}

/// Runs a transient window on `m`. Architectural state is untouched;
/// microarchitectural state (cache, fill buffers, PMCs) is not.
pub fn run_window(m: &mut Machine, start: TransientStart) {
    m.transient_windows += 1;
    let mut sh = Shadow {
        regs: m.regs,
        flags: m.flags,
        fregs: m.fpu.state,
        pc: 0,
        ret_stack: Vec::new(),
        stores: Vec::new(),
    };

    match start {
        TransientStart::WrongPath { pc } => sh.pc = pc,
        TransientStart::FaultingLoad { vaddr, width, dst, next_pc } => {
            match transient_load(m, &sh, vaddr, width, true) {
                Some(v) => sh.regs[dst.index()] = v,
                None => return,
            }
            sh.pc = next_pc;
        }
        TransientStart::StoreBypass { stale, dst, next_pc } => {
            sh.regs[dst.index()] = stale;
            sh.pc = next_pc;
        }
        TransientStart::StaleFpu { inst, next_pc } => {
            // Execute the trapping instruction itself on the stale state.
            if exec_transient(m, &mut sh, inst).is_none() {
                return;
            }
            sh.pc = next_pc;
        }
    }

    // The window loop proper. The overwhelmingly common transient
    // instructions — pure shadow-state ALU, compares, and control flow —
    // execute in an inner loop that pins the decoded segment once and
    // walks it *by index*: no per-instruction address resolution, no
    // machine-state traffic at all. That is legal precisely because hot
    // transient ops touch only `sh` (windows charge no cycles), so the
    // shared borrow of the stream never conflicts.
    //
    // The per-instruction counters are batched in `pending`: none of the
    // inline ops can observe them, and the batch is flushed before
    // anything that can (the full executor handles loads, stores, the
    // divider, `rdpmc`, the serializing set) and at every window exit, so
    // the architecturally visible counter values are bit-identical to
    // incrementing per instruction.
    let mut hint = 0usize;
    let mut left = m.model.spec.window;
    let mut pending: u64 = 0;
    'window: while left > 0 {
        let dp = match m.code.decoded_segment(sh.pc, &mut hint) {
            Some(dp) => dp,
            None => break,
        };
        let base = dp.base();
        let n = dp.len();
        let mut idx = ((sh.pc - base) / INST_SIZE) as usize;
        let mut deferred = None;
        while left > 0 && idx < n {
            let d = dp.get(idx);
            let a = (d.a & 15) as usize;
            let b = (d.b & 15) as usize;
            match d.op {
                Op::Nop | Op::Pause | Op::Mfence | Op::Sfence | Op::Clflush => idx += 1,
                Op::MovImm => {
                    sh.regs[a] = d.imm;
                    idx += 1;
                }
                Op::Mov => {
                    sh.regs[a] = sh.regs[b];
                    idx += 1;
                }
                Op::Add => {
                    sh.regs[a] = sh.regs[a].wrapping_add(sh.regs[b]);
                    idx += 1;
                }
                Op::AddImm => {
                    sh.regs[a] = sh.regs[a].wrapping_add(d.imm);
                    idx += 1;
                }
                Op::Sub => {
                    sh.regs[a] = sh.regs[a].wrapping_sub(sh.regs[b]);
                    idx += 1;
                }
                Op::SubImm => {
                    sh.regs[a] = sh.regs[a].wrapping_sub(d.imm);
                    idx += 1;
                }
                Op::Mul => {
                    sh.regs[a] = sh.regs[a].wrapping_mul(sh.regs[b]);
                    idx += 1;
                }
                Op::And => {
                    sh.regs[a] &= sh.regs[b];
                    idx += 1;
                }
                Op::AndImm => {
                    sh.regs[a] &= d.imm;
                    idx += 1;
                }
                Op::Or => {
                    sh.regs[a] |= sh.regs[b];
                    idx += 1;
                }
                Op::Xor => {
                    sh.regs[a] ^= sh.regs[b];
                    idx += 1;
                }
                Op::XorImm => {
                    sh.regs[a] ^= d.imm;
                    idx += 1;
                }
                Op::Shl => {
                    sh.regs[a] <<= (d.b & 63) as u32;
                    idx += 1;
                }
                Op::Shr => {
                    sh.regs[a] >>= (d.b & 63) as u32;
                    idx += 1;
                }
                Op::Not => {
                    sh.regs[a] = !sh.regs[a];
                    idx += 1;
                }
                Op::Cmp => {
                    sh.flags = Flags::compare(sh.regs[a], sh.regs[b]);
                    idx += 1;
                }
                Op::CmpImm => {
                    sh.flags = Flags::compare(sh.regs[a], d.imm);
                    idx += 1;
                }
                Op::Test => {
                    let v = sh.regs[a] & sh.regs[b];
                    sh.flags =
                        Flags { zero: v == 0, carry: false, sign: (v as i64) < 0, overflow: false };
                    idx += 1;
                }
                Op::Cmov => {
                    if sh.flags.eval(Cond::from_index(d.c as usize)) {
                        sh.regs[a] = sh.regs[b];
                    }
                    idx += 1;
                }
                Op::CmovImm => {
                    if sh.flags.eval(Cond::from_index(d.c as usize)) {
                        sh.regs[a] = d.imm;
                    }
                    idx += 1;
                }
                Op::Jcc => {
                    if sh.flags.eval(Cond::from_index(d.c as usize)) {
                        let off = d.imm.wrapping_sub(base);
                        if off & (INST_SIZE - 1) == 0 && off / INST_SIZE < n as u64 {
                            idx = (off / INST_SIZE) as usize;
                        } else {
                            // Target outside this segment: consume the
                            // branch, then re-resolve (or end the window).
                            sh.pc = d.imm;
                            left -= 1;
                            pending += 1;
                            continue 'window;
                        }
                    } else {
                        idx += 1;
                    }
                }
                Op::Jmp => {
                    let off = d.imm.wrapping_sub(base);
                    if off & (INST_SIZE - 1) == 0 && off / INST_SIZE < n as u64 {
                        idx = (off / INST_SIZE) as usize;
                    } else {
                        sh.pc = d.imm;
                        left -= 1;
                        pending += 1;
                        continue 'window;
                    }
                }
                Op::JmpInd => {
                    let t = sh.regs[a];
                    let off = t.wrapping_sub(base);
                    if off & (INST_SIZE - 1) == 0 && off / INST_SIZE < n as u64 {
                        idx = (off / INST_SIZE) as usize;
                    } else {
                        sh.pc = t;
                        left -= 1;
                        pending += 1;
                        continue 'window;
                    }
                }
                _ => {
                    // Loads, stores, divider, rdpmc, calls/rets, the
                    // serializing set: executed by the full executor once
                    // the stream borrow is released.
                    deferred = Some(d);
                    break;
                }
            }
            left -= 1;
            pending += 1;
        }
        sh.pc = base + idx as u64 * INST_SIZE;
        match deferred {
            Some(d) => {
                // Flush the batch first: the full executor may observe the
                // counters (`rdpmc`), and the current instruction counts
                // *before* it executes, exactly as the per-step path did.
                m.pmc.add(Pmc::TransientInstructions, pending + 1);
                m.transient_insts += pending + 1;
                pending = 0;
                if exec_transient(m, &mut sh, d).is_none() {
                    return;
                }
                left -= 1;
            }
            // Ran off the end of the segment (or exhausted the window):
            // re-resolve from `sh.pc`; an unmapped pc ends the window.
            None => continue 'window,
        }
    }
    m.pmc.add(Pmc::TransientInstructions, pending);
    m.transient_insts += pending;
}

/// Performs a transient load, applying vulnerability semantics.
///
/// `faulting` marks loads that architecturally fault (the committed
/// instruction raised a fault): these are the Meltdown/L1TF/MDS carriers.
/// Returns `None` when the window must end (the access stalls
/// unresolvable), `Some(value)` otherwise.
fn transient_load(
    m: &mut Machine,
    sh: &Shadow,
    vaddr: u64,
    width: Width,
    faulting: bool,
) -> Option<u64> {
    let _ = faulting;
    // Forwarding from the window's own (squashed) stores: youngest full
    // cover wins; partial overlap stalls the window.
    for (sv, sw, value) in sh.stores.iter().rev() {
        if *sv <= vaddr && vaddr + width.bytes() <= sv + sw.bytes() {
            let shift = (vaddr - sv) * 8;
            return Some(width.truncate(value >> shift));
        }
        let overlap = *sv < vaddr + width.bytes() && vaddr < sv + sw.bytes();
        if overlap {
            return None;
        }
    }
    let user = m.mode == PrivMode::User;
    let walk = m.mmu.walk(vaddr);
    let pte = match walk.pte {
        None => {
            // No translation at all: an MDS part's load port hands over
            // stale fill-buffer data; fixed parts stall the window.
            if m.model.vuln.mds {
                // The sampled entry is wider than the load; the load only
                // observes the bytes it asked for.
                return Some(width.truncate(m.fill_buffers.sample_rotating().unwrap_or(0)));
            }
            return None;
        }
        Some(p) => p,
    };
    let paddr = (pte.pfn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1));
    if !pte.present {
        // L1 Terminal Fault: the stale frame number is forwarded to the
        // L1 lookup; only L1-resident data is observable.
        if m.model.vuln.l1tf {
            if m.l1d.probe(paddr) {
                let v = m.mem.read(paddr, width);
                m.l1d.access(paddr);
                m.fill_buffers.record(v);
                return Some(v);
            }
            return Some(0);
        }
        if m.model.vuln.mds {
            return Some(width.truncate(m.fill_buffers.sample_rotating().unwrap_or(0)));
        }
        return None;
    }
    if user && !pte.user {
        // Meltdown: vulnerable parts forward the real supervisor data to
        // dependents before the fault aborts them; fixed parts (RDCL_NO)
        // forward zero.
        if m.model.vuln.meltdown {
            let v = m.mem.read(paddr, width);
            m.l1d.access(paddr);
            m.fill_buffers.record(v);
            return Some(v);
        }
        return Some(0);
    }
    // An ordinary, permitted transient load: this is the probe side of
    // every attack (e.g. `array2[x * 256]`), whose cache fill is the
    // side channel.
    let v = m.mem.read(paddr, width);
    m.l1d.access(paddr);
    m.fill_buffers.record(v);
    Some(v)
}

/// Executes one instruction transiently. `Some(())` continues the window,
/// `None` ends it.
fn exec_transient(m: &mut Machine, sh: &mut Shadow, d: DecodedInst) -> Option<()> {
    let pc = sh.pc;
    sh.pc = pc + INST_SIZE;
    let a = (d.a & 15) as usize;
    let b = (d.b & 15) as usize;
    match d.op {
        Op::Nop | Op::Pause => {}
        // Serializing / privileged / mode-changing: the window cannot
        // proceed past these.
        Op::Halt
        | Op::Vmcall
        | Op::Host
        | Op::Syscall
        | Op::Sysret
        | Op::Iret
        | Op::Swapgs
        | Op::Wrmsr
        | Op::Rdmsr
        | Op::MovCr3
        | Op::Verw
        | Op::Invlpg
        | Op::Xsave
        | Op::Xrstor => return None,
        // `lfence` waits for all loads: transient execution stops here.
        // This is exactly why `lfence` after a bounds check mitigates
        // Spectre V1.
        Op::Lfence => return None,
        Op::Mfence | Op::Sfence => {}
        Op::Clflush => {}
        Op::Rdtsc => sh.regs[a] = m.cycles(),
        Op::Rdpmc => sh.regs[a] = m.pmc.read(Pmc::from_index((d.b & 7) as usize)),

        Op::MovImm => sh.regs[a] = d.imm,
        Op::Mov => sh.regs[a] = sh.regs[b],
        Op::Add => sh.regs[a] = sh.regs[a].wrapping_add(sh.regs[b]),
        Op::AddImm => sh.regs[a] = sh.regs[a].wrapping_add(d.imm),
        Op::Sub => sh.regs[a] = sh.regs[a].wrapping_sub(sh.regs[b]),
        Op::SubImm => sh.regs[a] = sh.regs[a].wrapping_sub(d.imm),
        Op::Mul => sh.regs[a] = sh.regs[a].wrapping_mul(sh.regs[b]),
        Op::Div => {
            let divisor = sh.regs[b];
            if divisor == 0 {
                return None;
            }
            // The divider is occupied even though the result is squashed:
            // the probe's observable.
            let lat = m.model.lat.div;
            m.pmc.add(Pmc::DividerActive, lat);
            sh.regs[a] /= divisor;
        }
        Op::And => sh.regs[a] &= sh.regs[b],
        Op::AndImm => sh.regs[a] &= d.imm,
        Op::Or => sh.regs[a] |= sh.regs[b],
        Op::Xor => sh.regs[a] ^= sh.regs[b],
        Op::XorImm => sh.regs[a] ^= d.imm,
        Op::Shl => sh.regs[a] <<= (d.b & 63) as u32,
        Op::Shr => sh.regs[a] >>= (d.b & 63) as u32,
        Op::Not => sh.regs[a] = !sh.regs[a],

        Op::Load => {
            let width = Width::from_index((d.c & 3) as usize);
            let vaddr = sh.regs[b].wrapping_add(d.imm);
            // Within the window, an in-flight store may also be bypassed
            // (nested SSB), but the simple model reads the current memory
            // image, which already reflects committed stores.
            let v = transient_load(m, sh, vaddr, width, false)?;
            sh.regs[a] = v;
        }
        Op::Store => {
            // Transient stores never reach cache or memory — but they do
            // forward to younger loads in the same window (see
            // `Shadow::stores`).
            let width = Width::from_index((d.c & 3) as usize);
            let vaddr = sh.regs[b].wrapping_add(d.imm);
            let value = width.truncate(sh.regs[a]);
            sh.stores.push((vaddr, width, value));
        }

        Op::Cmp => sh.flags = Flags::compare(sh.regs[a], sh.regs[b]),
        Op::CmpImm => sh.flags = Flags::compare(sh.regs[a], d.imm),
        Op::Test => {
            let v = sh.regs[a] & sh.regs[b];
            sh.flags = Flags { zero: v == 0, carry: false, sign: (v as i64) < 0, overflow: false };
        }
        Op::Cmov => {
            // Data-dependent: resolves with the (shadow) flags, which is
            // why index masking works — the mask is applied even on the
            // wrong path.
            if sh.flags.eval(Cond::from_index(d.c as usize)) {
                sh.regs[a] = sh.regs[b];
            }
        }
        Op::CmovImm => {
            if sh.flags.eval(Cond::from_index(d.c as usize)) {
                sh.regs[a] = d.imm;
            }
        }

        Op::Jcc => {
            if sh.flags.eval(Cond::from_index(d.c as usize)) {
                sh.pc = d.imm;
            }
        }
        Op::Jmp => sh.pc = d.imm,
        Op::JmpInd => sh.pc = sh.regs[a],
        Op::Call => {
            sh.ret_stack.push(pc + INST_SIZE);
            sh.pc = d.imm;
        }
        Op::CallInd => {
            sh.ret_stack.push(pc + INST_SIZE);
            sh.pc = sh.regs[a];
        }
        Op::Ret => match sh.ret_stack.pop() {
            Some(ra) => sh.pc = ra,
            // Returning past the window's start: prediction state for it
            // is unknowable here, so the window ends.
            None => return None,
        },

        Op::Fadd | Op::Fsub | Op::Fmul | Op::Fdiv => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            // On LazyFP-vulnerable parts the stale registers are used.
            let fa = (d.a & 7) as usize;
            let sv = sh.fregs.regs[(d.b & 7) as usize];
            let dv = &mut sh.fregs.regs[fa];
            match d.op {
                Op::Fadd => *dv += sv,
                Op::Fsub => *dv -= sv,
                Op::Fmul => *dv *= sv,
                Op::Fdiv => {
                    let lat = m.model.lat.div;
                    m.pmc.add(Pmc::DividerActive, lat);
                    *dv /= sv;
                }
                _ => unreachable!(),
            }
        }
        Op::FmovImm => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            sh.fregs.regs[(d.a & 7) as usize] = f64::from_bits(d.imm);
        }
        Op::Fload => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            let vaddr = sh.regs[b].wrapping_add(d.imm);
            let bits = transient_load(m, sh, vaddr, Width::B8, false)?;
            sh.fregs.regs[(d.a & 7) as usize] = f64::from_bits(bits);
        }
        Op::Fstore => {}
        Op::FtoG => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            sh.regs[a] = sh.fregs.regs[(d.b & 7) as usize].to_bits();
        }
    }
    Some(())
}

// ---------------------------------------------------------------------------
// The seed's window machinery, frozen for the reference interpreter.
// ---------------------------------------------------------------------------

/// The pre-refactor window runner, kept verbatim for the reference
/// interpreter: per-instruction `Inst` fetch (binary search, no segment
/// hint) and a pattern-match executor, with the seed's bytewise memory
/// and uncached page walks underneath. Observable-identical to
/// [`run_window`]; `regen bench-uarch` times the two against each other
/// and the decode property tests pin the equivalence.
pub(crate) fn run_window_reference(m: &mut Machine, start: TransientStart) {
    m.transient_windows += 1;
    let mut sh = Shadow {
        regs: m.regs,
        flags: m.flags,
        fregs: m.fpu.state,
        pc: 0,
        ret_stack: Vec::new(),
        stores: Vec::new(),
    };

    match start {
        TransientStart::WrongPath { pc } => sh.pc = pc,
        TransientStart::FaultingLoad { vaddr, width, dst, next_pc } => {
            match transient_load_reference(m, &sh, vaddr, width, true) {
                Some(v) => sh.regs[dst.index()] = v,
                None => return,
            }
            sh.pc = next_pc;
        }
        TransientStart::StoreBypass { stale, dst, next_pc } => {
            sh.regs[dst.index()] = stale;
            sh.pc = next_pc;
        }
        TransientStart::StaleFpu { inst, next_pc } => {
            // Execute the trapping instruction itself on the stale state.
            if exec_transient_reference(m, &mut sh, &inst.to_inst()).is_none() {
                return;
            }
            sh.pc = next_pc;
        }
    }

    for _ in 0..m.model.spec.window {
        let inst = match m.code.fetch(sh.pc) {
            Some(i) => i.clone(),
            None => return,
        };
        m.pmc.incr(Pmc::TransientInstructions);
        m.transient_insts += 1;
        match exec_transient_reference(m, &mut sh, &inst) {
            Some(()) => {}
            None => return,
        }
    }
}

/// The seed's transient load: same vulnerability semantics as
/// [`transient_load`], on the pre-refactor walk and memory paths.
fn transient_load_reference(
    m: &mut Machine,
    sh: &Shadow,
    vaddr: u64,
    width: Width,
    faulting: bool,
) -> Option<u64> {
    let _ = faulting;
    for (sv, sw, value) in sh.stores.iter().rev() {
        if *sv <= vaddr && vaddr + width.bytes() <= sv + sw.bytes() {
            let shift = (vaddr - sv) * 8;
            return Some(width.truncate(value >> shift));
        }
        let overlap = *sv < vaddr + width.bytes() && vaddr < sv + sw.bytes();
        if overlap {
            return None;
        }
    }
    let user = m.mode == PrivMode::User;
    let walk = m.mmu.walk_reference(vaddr);
    let pte = match walk.pte {
        None => {
            if m.model.vuln.mds {
                return Some(width.truncate(m.fill_buffers.sample_rotating().unwrap_or(0)));
            }
            return None;
        }
        Some(p) => p,
    };
    let paddr = (pte.pfn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1));
    if !pte.present {
        if m.model.vuln.l1tf {
            if m.l1d.probe(paddr) {
                let v = m.mem.read_reference(paddr, width);
                m.l1d.access(paddr);
                m.fill_buffers.record(v);
                return Some(v);
            }
            return Some(0);
        }
        if m.model.vuln.mds {
            return Some(width.truncate(m.fill_buffers.sample_rotating().unwrap_or(0)));
        }
        return None;
    }
    if user && !pte.user {
        if m.model.vuln.meltdown {
            let v = m.mem.read_reference(paddr, width);
            m.l1d.access(paddr);
            m.fill_buffers.record(v);
            return Some(v);
        }
        return Some(0);
    }
    let v = m.mem.read_reference(paddr, width);
    m.l1d.access(paddr);
    m.fill_buffers.record(v);
    Some(v)
}

/// The seed's transient executor: one `Inst` pattern-match per shadow
/// instruction. `Some(())` continues the window, `None` ends it.
fn exec_transient_reference(m: &mut Machine, sh: &mut Shadow, inst: &Inst) -> Option<()> {
    use Inst::*;
    let pc = sh.pc;
    sh.pc = pc + INST_SIZE;
    match *inst {
        Nop | Pause => {}
        // Serializing / privileged / mode-changing: the window cannot
        // proceed past these.
        Halt | Vmcall | Host(_) | Syscall | Sysret | Iret | Swapgs | Wrmsr { .. }
        | Rdmsr { .. } | MovCr3(_) | Verw | Invlpg(_) | Xsave | Xrstor => return None,
        Lfence => return None,
        Mfence | Sfence => {}
        Clflush(_) => {}
        Rdtsc(d) => sh.regs[d.index()] = m.cycles(),
        Rdpmc { pmc, dst } => sh.regs[dst.index()] = m.pmc.read(pmc),

        MovImm(d, v) => sh.regs[d.index()] = v,
        Mov(d, s) => sh.regs[d.index()] = sh.regs[s.index()],
        Add(d, s) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_add(sh.regs[s.index()]),
        AddImm(d, v) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_add(v),
        Sub(d, s) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_sub(sh.regs[s.index()]),
        SubImm(d, v) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_sub(v),
        Mul(d, s) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_mul(sh.regs[s.index()]),
        Div(d, s) => {
            let divisor = sh.regs[s.index()];
            if divisor == 0 {
                return None;
            }
            let lat = m.model.lat.div;
            m.pmc.add(Pmc::DividerActive, lat);
            sh.regs[d.index()] /= divisor;
        }
        And(d, s) => sh.regs[d.index()] &= sh.regs[s.index()],
        AndImm(d, v) => sh.regs[d.index()] &= v,
        Or(d, s) => sh.regs[d.index()] |= sh.regs[s.index()],
        Xor(d, s) => sh.regs[d.index()] ^= sh.regs[s.index()],
        XorImm(d, v) => sh.regs[d.index()] ^= v,
        Shl(d, n) => sh.regs[d.index()] <<= (n & 63) as u32,
        Shr(d, n) => sh.regs[d.index()] >>= (n & 63) as u32,
        Not(d) => sh.regs[d.index()] = !sh.regs[d.index()],

        Load { dst, base, offset, width } => {
            let vaddr = sh.regs[base.index()].wrapping_add(offset as u64);
            let v = transient_load_reference(m, sh, vaddr, width, false)?;
            sh.regs[dst.index()] = v;
        }
        Store { src, base, offset, width } => {
            let vaddr = sh.regs[base.index()].wrapping_add(offset as u64);
            let value = width.truncate(sh.regs[src.index()]);
            sh.stores.push((vaddr, width, value));
        }

        Cmp(a, b) => sh.flags = Flags::compare(sh.regs[a.index()], sh.regs[b.index()]),
        CmpImm(a, v) => sh.flags = Flags::compare(sh.regs[a.index()], v),
        Test(a, b) => {
            let v = sh.regs[a.index()] & sh.regs[b.index()];
            sh.flags = Flags { zero: v == 0, carry: false, sign: (v as i64) < 0, overflow: false };
        }
        Cmov(c, d, s) => {
            if sh.flags.eval(c) {
                sh.regs[d.index()] = sh.regs[s.index()];
            }
        }
        CmovImm(c, d, v) => {
            if sh.flags.eval(c) {
                sh.regs[d.index()] = v;
            }
        }

        Jcc(c, target) => {
            if sh.flags.eval(c) {
                sh.pc = target;
            }
        }
        Jmp(target) => sh.pc = target,
        JmpInd(r) => sh.pc = sh.regs[r.index()],
        Call(target) => {
            sh.ret_stack.push(pc + INST_SIZE);
            sh.pc = target;
        }
        CallInd(r) => {
            sh.ret_stack.push(pc + INST_SIZE);
            sh.pc = sh.regs[r.index()];
        }
        Ret => match sh.ret_stack.pop() {
            Some(ra) => sh.pc = ra,
            None => return None,
        },

        Fadd(d, s) | Fsub(d, s) | Fmul(d, s) | Fdiv(d, s) => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            let sv = sh.fregs.regs[s.index()];
            let dv = &mut sh.fregs.regs[d.index()];
            match inst {
                Fadd(..) => *dv += sv,
                Fsub(..) => *dv -= sv,
                Fmul(..) => *dv *= sv,
                Fdiv(..) => {
                    let lat = m.model.lat.div;
                    m.pmc.add(Pmc::DividerActive, lat);
                    *dv /= sv;
                }
                _ => return None,
            }
        }
        FmovImm(d, v) => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            sh.fregs.regs[d.index()] = v;
        }
        Fload { dst, base, offset } => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            let vaddr = sh.regs[base.index()].wrapping_add(offset as u64);
            let bits = transient_load_reference(m, sh, vaddr, Width::B8, false)?;
            sh.fregs.regs[dst.index()] = f64::from_bits(bits);
        }
        Fstore { .. } => {}
        FtoG(d, s) => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            sh.regs[d.index()] = sh.fregs.regs[s.index()].to_bits();
        }
    }
    Some(())
}
