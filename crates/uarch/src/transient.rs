//! The transient-execution window.
//!
//! When the committed path mispredicts a branch, takes a fault on a load,
//! or lets a load bypass an in-flight store, the machine opens a window
//! here: up to `spec.window` instructions execute on *shadow* register
//! state. Nothing architectural survives — no register writes, no memory
//! stores — but the microarchitectural side effects do:
//!
//! * loads fill L1D cache lines ([`crate::cache`]), the timing channel;
//! * data movement populates the fill buffers ([`crate::fill_buffer`]);
//! * divide instructions occupy the divider, bumping
//!   [`crate::isa::Pmc::DividerActive`] — the observable the paper's
//!   speculation probe is built on (§6.1).
//!
//! What a transient load *observes* is governed by the CPU model's
//! vulnerability profile: Meltdown parts see supervisor data, L1TF parts
//! see L1-resident data behind non-present PTEs, MDS parts sample stale
//! fill-buffer contents, and fixed parts see zeroes or stop the window.

use crate::fpu::FpuState;
use crate::isa::{Flags, Inst, Pmc, Width};
use crate::machine::Machine;
use crate::mem::PAGE_SHIFT;
use crate::predictor::PrivMode;
use crate::program::INST_SIZE;

/// How a transient window begins.
#[derive(Debug, Clone)]
pub enum TransientStart {
    /// A mispredicted branch: execution runs from the wrongly predicted
    /// target with otherwise-correct register state.
    WrongPath {
        /// First transient instruction.
        pc: u64,
    },
    /// A committed load faulted; its dependents run with whatever value
    /// the vulnerability profile lets through.
    FaultingLoad {
        /// Faulting virtual address.
        vaddr: u64,
        /// Load width.
        width: Width,
        /// Destination register (in shadow state).
        dst: crate::isa::Reg,
        /// Where the window continues.
        next_pc: u64,
    },
    /// A load bypassed an in-flight store (Speculative Store Bypass): its
    /// dependents transiently see the stale pre-store value.
    StoreBypass {
        /// The stale value observed.
        stale: u64,
        /// Destination register (in shadow state).
        dst: crate::isa::Reg,
        /// Where the window continues.
        next_pc: u64,
    },
    /// An FP instruction trapped on a disabled FPU but the part is LazyFP
    /// vulnerable: it and its dependents run on the stale FP registers.
    StaleFpu {
        /// The trapping FP instruction.
        inst: Inst,
        /// Where the window continues.
        next_pc: u64,
    },
}

/// Shadow architectural state for a window.
struct Shadow {
    regs: [u64; 16],
    flags: Flags,
    fregs: FpuState,
    pc: u64,
    /// Shadow return-address stack for calls made inside the window.
    ret_stack: Vec<u64>,
    /// Speculative stores: never reach memory, but *do* forward to
    /// younger loads inside the same window, exactly as an out-of-order
    /// core's store queue does. Without this, multi-instruction gadgets
    /// that pass the stolen value through memory (every stack-machine JIT
    /// gadget!) would not leak.
    stores: Vec<(u64, Width, u64)>,
}

/// Runs a transient window on `m`. Architectural state is untouched;
/// microarchitectural state (cache, fill buffers, PMCs) is not.
pub fn run_window(m: &mut Machine, start: TransientStart) {
    let mut sh = Shadow {
        regs: m.regs,
        flags: m.flags,
        fregs: m.fpu.state,
        pc: 0,
        ret_stack: Vec::new(),
        stores: Vec::new(),
    };

    match start {
        TransientStart::WrongPath { pc } => sh.pc = pc,
        TransientStart::FaultingLoad { vaddr, width, dst, next_pc } => {
            match transient_load(m, &sh, vaddr, width, true) {
                Some(v) => sh.regs[dst.index()] = v,
                None => return,
            }
            sh.pc = next_pc;
        }
        TransientStart::StoreBypass { stale, dst, next_pc } => {
            sh.regs[dst.index()] = stale;
            sh.pc = next_pc;
        }
        TransientStart::StaleFpu { inst, next_pc } => {
            // Execute the trapping instruction itself on the stale state.
            if exec_transient(m, &mut sh, &inst).is_none() {
                return;
            }
            sh.pc = next_pc;
        }
    }

    for _ in 0..m.model.spec.window {
        let inst = match m.code.fetch(sh.pc) {
            Some(i) => i.clone(),
            None => return,
        };
        m.pmc.incr(Pmc::TransientInstructions);
        match exec_transient(m, &mut sh, &inst) {
            Some(()) => {}
            None => return,
        }
    }
}

/// Performs a transient load, applying vulnerability semantics.
///
/// `faulting` marks loads that architecturally fault (the committed
/// instruction raised a fault): these are the Meltdown/L1TF/MDS carriers.
/// Returns `None` when the window must end (the access stalls
/// unresolvable), `Some(value)` otherwise.
fn transient_load(
    m: &mut Machine,
    sh: &Shadow,
    vaddr: u64,
    width: Width,
    faulting: bool,
) -> Option<u64> {
    let _ = faulting;
    // Forwarding from the window's own (squashed) stores: youngest full
    // cover wins; partial overlap stalls the window.
    for (sv, sw, value) in sh.stores.iter().rev() {
        if *sv <= vaddr && vaddr + width.bytes() <= sv + sw.bytes() {
            let shift = (vaddr - sv) * 8;
            return Some(width.truncate(value >> shift));
        }
        let overlap = *sv < vaddr + width.bytes() && vaddr < sv + sw.bytes();
        if overlap {
            return None;
        }
    }
    let user = m.mode == PrivMode::User;
    let walk = m.mmu.walk(vaddr);
    let pte = match walk.pte {
        None => {
            // No translation at all: an MDS part's load port hands over
            // stale fill-buffer data; fixed parts stall the window.
            if m.model.vuln.mds {
                // The sampled entry is wider than the load; the load only
                // observes the bytes it asked for.
                return Some(width.truncate(m.fill_buffers.sample_rotating().unwrap_or(0)));
            }
            return None;
        }
        Some(p) => p,
    };
    let paddr = (pte.pfn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1));
    if !pte.present {
        // L1 Terminal Fault: the stale frame number is forwarded to the
        // L1 lookup; only L1-resident data is observable.
        if m.model.vuln.l1tf {
            if m.l1d.probe(paddr) {
                let v = m.mem.read(paddr, width);
                m.l1d.access(paddr);
                m.fill_buffers.record(v);
                return Some(v);
            }
            return Some(0);
        }
        if m.model.vuln.mds {
            return Some(width.truncate(m.fill_buffers.sample_rotating().unwrap_or(0)));
        }
        return None;
    }
    if user && !pte.user {
        // Meltdown: vulnerable parts forward the real supervisor data to
        // dependents before the fault aborts them; fixed parts (RDCL_NO)
        // forward zero.
        if m.model.vuln.meltdown {
            let v = m.mem.read(paddr, width);
            m.l1d.access(paddr);
            m.fill_buffers.record(v);
            return Some(v);
        }
        return Some(0);
    }
    // An ordinary, permitted transient load: this is the probe side of
    // every attack (e.g. `array2[x * 256]`), whose cache fill is the
    // side channel.
    let v = m.mem.read(paddr, width);
    m.l1d.access(paddr);
    m.fill_buffers.record(v);
    Some(v)
}

/// Executes one instruction transiently. `Some(())` continues the window,
/// `None` ends it.
fn exec_transient(m: &mut Machine, sh: &mut Shadow, inst: &Inst) -> Option<()> {
    use Inst::*;
    let pc = sh.pc;
    sh.pc = pc + INST_SIZE;
    match *inst {
        Nop | Pause => {}
        // Serializing / privileged / mode-changing: the window cannot
        // proceed past these.
        Halt | Vmcall | Host(_) | Syscall | Sysret | Iret | Swapgs | Wrmsr { .. }
        | Rdmsr { .. } | MovCr3(_) | Verw | Invlpg(_) | Xsave | Xrstor => return None,
        // `lfence` waits for all loads: transient execution stops here.
        // This is exactly why `lfence` after a bounds check mitigates
        // Spectre V1.
        Lfence => return None,
        Mfence | Sfence => {}
        Clflush(_) => {}
        Rdtsc(d) => sh.regs[d.index()] = m.cycles(),
        Rdpmc { pmc, dst } => sh.regs[dst.index()] = m.pmc.read(pmc),

        MovImm(d, v) => sh.regs[d.index()] = v,
        Mov(d, s) => sh.regs[d.index()] = sh.regs[s.index()],
        Add(d, s) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_add(sh.regs[s.index()]),
        AddImm(d, v) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_add(v),
        Sub(d, s) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_sub(sh.regs[s.index()]),
        SubImm(d, v) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_sub(v),
        Mul(d, s) => sh.regs[d.index()] = sh.regs[d.index()].wrapping_mul(sh.regs[s.index()]),
        Div(d, s) => {
            let divisor = sh.regs[s.index()];
            if divisor == 0 {
                return None;
            }
            // The divider is occupied even though the result is squashed:
            // the probe's observable.
            let lat = m.model.lat.div;
            m.pmc.add(Pmc::DividerActive, lat);
            sh.regs[d.index()] /= divisor;
        }
        And(d, s) => sh.regs[d.index()] &= sh.regs[s.index()],
        AndImm(d, v) => sh.regs[d.index()] &= v,
        Or(d, s) => sh.regs[d.index()] |= sh.regs[s.index()],
        Xor(d, s) => sh.regs[d.index()] ^= sh.regs[s.index()],
        XorImm(d, v) => sh.regs[d.index()] ^= v,
        Shl(d, n) => sh.regs[d.index()] <<= (n & 63) as u32,
        Shr(d, n) => sh.regs[d.index()] >>= (n & 63) as u32,
        Not(d) => sh.regs[d.index()] = !sh.regs[d.index()],

        Load { dst, base, offset, width } => {
            let vaddr = sh.regs[base.index()].wrapping_add(offset as u64);
            // Within the window, an in-flight store may also be bypassed
            // (nested SSB), but the simple model reads the current memory
            // image, which already reflects committed stores.
            let v = transient_load(m, sh, vaddr, width, false)?;
            sh.regs[dst.index()] = v;
        }
        Store { src, base, offset, width } => {
            // Transient stores never reach cache or memory — but they do
            // forward to younger loads in the same window (see
            // `Shadow::stores`).
            let vaddr = sh.regs[base.index()].wrapping_add(offset as u64);
            let value = width.truncate(sh.regs[src.index()]);
            sh.stores.push((vaddr, width, value));
        }

        Cmp(a, b) => sh.flags = Flags::compare(sh.regs[a.index()], sh.regs[b.index()]),
        CmpImm(a, v) => sh.flags = Flags::compare(sh.regs[a.index()], v),
        Test(a, b) => {
            let v = sh.regs[a.index()] & sh.regs[b.index()];
            sh.flags = Flags { zero: v == 0, carry: false, sign: (v as i64) < 0, overflow: false };
        }
        Cmov(c, d, s) => {
            // Data-dependent: resolves with the (shadow) flags, which is
            // why index masking works — the mask is applied even on the
            // wrong path.
            if sh.flags.eval(c) {
                sh.regs[d.index()] = sh.regs[s.index()];
            }
        }
        CmovImm(c, d, v) => {
            if sh.flags.eval(c) {
                sh.regs[d.index()] = v;
            }
        }

        Jcc(c, target) => {
            if sh.flags.eval(c) {
                sh.pc = target;
            }
        }
        Jmp(target) => sh.pc = target,
        JmpInd(r) => sh.pc = sh.regs[r.index()],
        Call(target) => {
            sh.ret_stack.push(pc + INST_SIZE);
            sh.pc = target;
        }
        CallInd(r) => {
            sh.ret_stack.push(pc + INST_SIZE);
            sh.pc = sh.regs[r.index()];
        }
        Ret => match sh.ret_stack.pop() {
            Some(ra) => sh.pc = ra,
            // Returning past the window's start: prediction state for it
            // is unknowable here, so the window ends.
            None => return None,
        },

        Fadd(d, s) | Fsub(d, s) | Fmul(d, s) | Fdiv(d, s) => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            // On LazyFP-vulnerable parts the stale registers are used.
            let sv = sh.fregs.regs[s.index()];
            let dv = &mut sh.fregs.regs[d.index()];
            match inst {
                Fadd(..) => *dv += sv,
                Fsub(..) => *dv -= sv,
                Fmul(..) => *dv *= sv,
                Fdiv(..) => {
                    let lat = m.model.lat.div;
                    m.pmc.add(Pmc::DividerActive, lat);
                    *dv /= sv;
                }
                _ => unreachable!(),
            }
        }
        FmovImm(d, v) => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            sh.fregs.regs[d.index()] = v;
        }
        Fload { dst, base, offset } => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            let vaddr = sh.regs[base.index()].wrapping_add(offset as u64);
            let bits = transient_load(m, sh, vaddr, Width::B8, false)?;
            sh.fregs.regs[dst.index()] = f64::from_bits(bits);
        }
        Fstore { .. } => {}
        FtoG(d, s) => {
            if !m.fpu.enabled && !m.model.vuln.lazy_fp {
                return None;
            }
            sh.regs[d.index()] = sh.fregs.regs[s.index()].to_bits();
        }
    }
    Some(())
}
