//! Fill buffers: the microarchitectural buffers MDS attacks sample.
//!
//! Real MDS variants (RIDL, ZombieLoad, Fallout) leak from line fill
//! buffers, load ports, and store buffers. The model collapses them into
//! one small queue of recently transferred data values. A transient
//! *faulting* load on an MDS-vulnerable part receives a stale value from
//! this queue instead of architectural data — untargeted, exactly like the
//! real attacks (§3.3: "MDS attacks cannot be targeted to specific victim
//! addresses").
//!
//! The `verw` instruction with the MD_CLEAR microcode update clears the
//! queue; that clearing is what costs ~500 cycles on every kernel→user
//! transition of a vulnerable CPU (Table 4).

use std::collections::VecDeque;

/// Number of fill-buffer entries (real parts have 10–12 LFBs).
pub const CAPACITY: usize = 12;

/// The collapsed fill-buffer / load-port / store-buffer leak source.
#[derive(Debug, Default)]
pub struct FillBuffers {
    entries: VecDeque<u64>,
    /// Rotation cursor for [`FillBuffers::sample_rotating`].
    cursor: usize,
}

impl FillBuffers {
    /// Creates empty fill buffers.
    pub fn new() -> FillBuffers {
        FillBuffers::default()
    }

    /// Records data movement through the core (every committed load/store
    /// value passes through here).
    pub fn record(&mut self, value: u64) {
        if self.entries.len() >= CAPACITY {
            self.entries.pop_front();
        }
        self.entries.push_back(value);
    }

    /// Samples a stale value, as a transient faulting load does on an
    /// MDS-vulnerable part. Returns the most recent entry, or `None` when
    /// the buffers are clear (mitigated, or nothing in flight).
    pub fn sample(&self) -> Option<u64> {
        self.entries.back().copied()
    }

    /// Samples like hardware does: which buffer entry leaks is effectively
    /// arbitrary, so successive samples rotate through the live entries.
    /// Real MDS exploitation repeats the attack and histograms the
    /// results (§3.3: the attacks "cannot be targeted"); this rotation is
    /// what makes that repetition meaningful in simulation.
    pub fn sample_rotating(&mut self) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        self.cursor = (self.cursor + 1) % self.entries.len();
        self.entries.get(self.cursor).copied()
    }

    /// Clears all buffers (the MD_CLEAR `verw` behaviour).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of live entries (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffers are empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_returns_most_recent() {
        let mut fb = FillBuffers::new();
        assert_eq!(fb.sample(), None);
        fb.record(0xaa);
        fb.record(0xbb);
        assert_eq!(fb.sample(), Some(0xbb));
    }

    #[test]
    fn clear_removes_everything() {
        let mut fb = FillBuffers::new();
        fb.record(0x11);
        fb.clear();
        assert!(fb.is_empty());
        assert_eq!(fb.sample(), None);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut fb = FillBuffers::new();
        for i in 0..100 {
            fb.record(i);
        }
        assert_eq!(fb.len(), CAPACITY);
        assert_eq!(fb.sample(), Some(99));
    }
}
