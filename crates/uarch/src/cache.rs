//! Set-associative L1 data cache model.
//!
//! The cache tracks *presence* of physical lines (data itself lives in
//! [`crate::mem::PhysMemory`]); hits and misses drive both timing — the
//! channel every attack in this repo reads — and the L1TF leak condition
//! (a transient load through a non-present PTE only observes data whose
//! line is resident in L1).
//!
//! Transient loads fill the cache exactly like committed ones. That fills
//! are not rolled back on squash is *the* microarchitectural side channel
//! behind Spectre and Meltdown, so this is the most load-bearing modelling
//! decision in the crate.

use crate::mem::line_number;

/// A set-associative cache of physical line numbers with LRU replacement.
#[derive(Debug, Clone)]
pub struct L1Cache {
    sets: Vec<Vec<LineEntry>>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    /// Total hits (diagnostics).
    pub hits: u64,
    /// Total misses (diagnostics).
    pub misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct LineEntry {
    line: u64,
    stamp: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was resident.
    Hit,
    /// The line was filled from memory.
    Miss,
}

impl L1Cache {
    /// Creates a cache with `sets` sets (power of two) and `ways` ways.
    ///
    /// The conventional 32 KiB, 8-way L1D is `L1Cache::new(64, 8)`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either argument is zero.
    pub fn new(sets: usize, ways: usize) -> L1Cache {
        assert!(sets.is_power_of_two() && sets > 0 && ways > 0);
        L1Cache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_mask: (sets - 1) as u64,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The standard 32 KiB / 8-way configuration.
    pub fn standard() -> L1Cache {
        L1Cache::new(64, 8)
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Returns whether the line containing physical address `paddr` is
    /// resident, without touching LRU state or statistics.
    pub fn probe(&self, paddr: u64) -> bool {
        let line = line_number(paddr);
        self.sets[self.set_index(line)].iter().any(|e| e.line == line)
    }

    /// Accesses the line containing `paddr`: returns `Hit` or `Miss`, and
    /// in either case leaves the line resident (fills on miss).
    pub fn access(&mut self, paddr: u64) -> CacheOutcome {
        let line = line_number(paddr);
        let idx = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.line == line) {
            e.stamp = stamp;
            self.hits += 1;
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        if set.len() >= self.ways {
            // Evict LRU.
            if let Some((victim, _)) = set.iter().enumerate().min_by_key(|(_, e)| e.stamp) {
                set.swap_remove(victim);
            }
        }
        set.push(LineEntry { line, stamp });
        CacheOutcome::Miss
    }

    /// Flushes the line containing `paddr` (clflush).
    pub fn flush_line(&mut self, paddr: u64) {
        let line = line_number(paddr);
        let idx = self.set_index(line);
        self.sets[idx].retain(|e| e.line != line);
    }

    /// Flushes the entire cache (the L1TF VM-entry mitigation).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident lines (diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = L1Cache::standard();
        assert_eq!(c.access(0x1000), CacheOutcome::Miss);
        assert_eq!(c.access(0x1000), CacheOutcome::Hit);
        assert_eq!(c.access(0x1008), CacheOutcome::Hit, "same line");
        assert_eq!(c.access(0x1040), CacheOutcome::Miss, "next line");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = L1Cache::standard();
        assert!(!c.probe(0x2000));
        c.access(0x2000);
        assert!(c.probe(0x2000));
        assert!(c.probe(0x203f));
        assert!(!c.probe(0x2040));
    }

    #[test]
    fn clflush_evicts_line() {
        let mut c = L1Cache::standard();
        c.access(0x3000);
        c.flush_line(0x3010); // same line, different offset
        assert!(!c.probe(0x3000));
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = L1Cache::standard();
        for i in 0..100u64 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() > 0);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: third distinct line evicts the least recent.
        let mut c = L1Cache::new(1, 2);
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(0); // refresh line 0
        c.access(128); // evicts line 1
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn set_capacity_is_bounded() {
        let mut c = L1Cache::new(4, 2);
        for i in 0..64u64 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() <= 8);
    }
}
