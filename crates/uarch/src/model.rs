//! CPU model descriptors: everything that distinguishes one simulated
//! processor from another.
//!
//! A [`CpuModel`] bundles three orthogonal aspects:
//!
//! * [`VulnProfile`] — which transient-execution attacks the part is
//!   vulnerable to (the paper's Table 1 follows from these flags plus the
//!   kernel's policy logic);
//! * [`LatencyProfile`] — per-primitive cycle costs, calibrated from the
//!   paper's microbenchmark tables (Tables 3–8);
//! * [`SpecProfile`] — speculation machinery geometry and behavioural
//!   quirks (BTB privilege tagging under eIBRS, Zen 3's branch-history
//!   indexing, the pre-Spectre IBRS behaviour of disabling all indirect
//!   prediction).
//!
//! The catalogue of the eight concrete CPUs evaluated by the paper lives in
//! the `cpu-models` crate; this module only defines the parameter space.

/// CPU vendor. Affects `lfence` semantics (AMD's is dispatch-serializing
/// once the kernel sets the relevant MSR bit, enabling the "AMD retpoline")
/// and which mitigations are applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Intel Corporation.
    Intel,
    /// Advanced Micro Devices.
    Amd,
    /// A RISC-V implementer (the extended, beyond-the-paper catalog).
    /// Behaves like a non-AMD part everywhere the machine dispatches on
    /// vendor: `lfence` is load-serializing without an MSR opt-in, and
    /// retpolines take the generic (not the AMD lfence-pause) form.
    RiscV,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Intel => write!(f, "Intel"),
            Vendor::Amd => write!(f, "AMD"),
            Vendor::RiscV => write!(f, "RISC-V"),
        }
    }
}

/// Which transient-execution attacks a CPU is vulnerable to.
///
/// `true` means vulnerable (the attack works absent software mitigation).
/// Spectre V1/V2 and Speculative Store Bypass are `true` on every part the
/// paper measured; Meltdown, L1TF, MDS and LazyFP were fixed in hardware on
/// newer parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VulnProfile {
    /// Meltdown (rogue data cache load): user-mode transient reads of
    /// supervisor pages return real data.
    pub meltdown: bool,
    /// L1 Terminal Fault: loads through non-present PTEs transiently
    /// return L1-cached data for the stale frame number.
    pub l1tf: bool,
    /// LazyFP: FP instructions with the FPU disabled transiently compute
    /// on the stale (previous process's) registers.
    pub lazy_fp: bool,
    /// Spectre V1 (bounds check bypass).
    pub spectre_v1: bool,
    /// Spectre V2 (branch target injection).
    pub spectre_v2: bool,
    /// Speculative Store Bypass (store-to-load forwarding bypass).
    pub ssb: bool,
    /// Microarchitectural Data Sampling: transient faulting loads sample
    /// stale fill-buffer contents.
    pub mds: bool,
    /// The `swapgs` variant of Spectre V1.
    pub swapgs: bool,
}

impl VulnProfile {
    /// Profile of a pre-2018 Intel part: vulnerable to everything.
    pub const fn pre_spectre_intel() -> VulnProfile {
        VulnProfile {
            meltdown: true,
            l1tf: true,
            lazy_fp: true,
            spectre_v1: true,
            spectre_v2: true,
            ssb: true,
            mds: true,
            swapgs: true,
        }
    }

    /// Profile of an AMD part: never vulnerable to Meltdown, L1TF, or MDS.
    pub const fn amd() -> VulnProfile {
        VulnProfile {
            meltdown: false,
            l1tf: false,
            lazy_fp: true,
            spectre_v1: true,
            spectre_v2: true,
            ssb: true,
            mds: false,
            swapgs: true,
        }
    }
}

/// Per-primitive cycle costs for a CPU model.
///
/// Calibration: the values for concrete CPUs are taken from the paper's own
/// microbenchmarks (Tables 3–8), so the simulator is anchored at the
/// instruction level and end-to-end results *emerge* from executing real
/// instruction sequences. All values are core cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyProfile {
    /// Base cost of a simple ALU instruction (throughput-normalized).
    pub alu: u64,
    /// Cost of an integer/FP divide; also the duration the divider unit is
    /// busy, which feeds the `ARITH.DIVIDER_ACTIVE` performance counter.
    pub div: u64,
    /// L1D hit latency.
    pub l1_hit: u64,
    /// L2 hit latency (an L1 miss that the L2 satisfies — e.g. refills
    /// right after an L1D flush).
    pub l2_hit: u64,
    /// Full cache-miss latency (both levels miss; to DRAM).
    pub l1_miss: u64,
    /// Page-walk cost on TLB miss.
    pub tlb_miss: u64,
    /// `syscall` instruction (Table 3).
    pub syscall: u64,
    /// `sysret` instruction (Table 3).
    pub sysret: u64,
    /// Root page-table swap, `mov %cr3` (Table 3; `None` if the part does
    /// not need PTI and the paper reports N/A).
    pub swap_cr3: u64,
    /// `verw` with the MD_CLEAR microcode update (Table 4); the cost of the
    /// legacy segmentation-only `verw` is [`LatencyProfile::verw_legacy`].
    pub verw_clear: u64,
    /// `verw` without MD_CLEAR (tens of cycles, paper §5.2).
    pub verw_legacy: u64,
    /// Baseline (unmitigated, correctly predicted) indirect branch
    /// (Table 5, "Baseline" column).
    pub indirect_branch: u64,
    /// Extra cycles an indirect branch costs with IBRS enabled (Table 5).
    pub ibrs_indirect_extra: u64,
    /// Extra cycles of a generic retpoline over a plain indirect branch
    /// (Table 5, "Generic").
    pub generic_retpoline_extra: u64,
    /// Extra cycles of an AMD (lfence) retpoline (Table 5, "AMD";
    /// meaningless on Intel parts where the sequence is not a mitigation).
    pub amd_retpoline_extra: u64,
    /// Indirect branch prediction barrier via `wrmsr IA32_PRED_CMD`
    /// (Table 6).
    pub ibpb: u64,
    /// Filling/stuffing the whole return stack buffer (Table 7).
    pub rsb_fill: u64,
    /// A single `lfence` in a quiet loop (Table 8). Real cost additionally
    /// depends on in-flight loads, which the machine models dynamically.
    pub lfence: u64,
    /// `wrmsr` to `IA32_SPEC_CTRL` (the per-entry cost of legacy IBRS).
    pub wrmsr_spec_ctrl: u64,
    /// Conditional-branch misprediction squash/refill penalty.
    pub mispredict_penalty: u64,
    /// Indirect-branch misprediction penalty: charged when the BTB has no
    /// (usable) prediction or predicted wrongly. On pre-eIBRS parts this is
    /// exactly the Table 5 "IBRS" column, since IBRS blocks prediction.
    pub indirect_mispredict: u64,
    /// `ret` misprediction penalty (RSB/actual mismatch): the dominant cost
    /// of a generic retpoline, calibrated from Table 5's "Generic" column.
    pub ret_mispredict: u64,
    /// Extra stall charged to a load that would have used store-to-load
    /// forwarding, when SSBD is enabled (drives Figure 5).
    pub ssbd_forward_stall: u64,
    /// `xsave`/`xsaveopt` of FPU state.
    pub xsave: u64,
    /// `xrstor` of FPU state.
    pub xrstor: u64,
    /// Trap-based lazy-FPU restore (device-not-available exception round
    /// trip); the paper notes this often exceeds the eager save cost.
    pub fpu_trap: u64,
    /// Full L1D flush via `IA32_FLUSH_CMD` (L1TF VM-entry mitigation).
    pub l1d_flush: u64,
    /// VM entry (host→guest).
    pub vmentry: u64,
    /// VM exit (guest→host).
    pub vmexit: u64,
    /// Base kernel-entry overhead beyond the `syscall` instruction itself
    /// (stack switch, register save).
    pub kernel_entry_base: u64,
    /// Extra cycles of the periodic slow kernel entry observed with eIBRS
    /// (paper §6.2.2 reports ~210 cycles on affected parts; 0 otherwise).
    pub eibrs_periodic_flush: u64,
}

impl LatencyProfile {
    /// A neutral, round-number profile for unit tests.
    pub fn test_default() -> LatencyProfile {
        LatencyProfile {
            alu: 1,
            div: 20,
            l1_hit: 4,
            l2_hit: 14,
            l1_miss: 200,
            tlb_miss: 40,
            syscall: 50,
            sysret: 40,
            swap_cr3: 200,
            verw_clear: 500,
            verw_legacy: 20,
            indirect_branch: 10,
            ibrs_indirect_extra: 20,
            generic_retpoline_extra: 30,
            amd_retpoline_extra: 25,
            ibpb: 1000,
            rsb_fill: 100,
            lfence: 15,
            wrmsr_spec_ctrl: 250,
            mispredict_penalty: 20,
            indirect_mispredict: 25,
            ret_mispredict: 30,
            ssbd_forward_stall: 40,
            xsave: 100,
            xrstor: 100,
            fpu_trap: 500,
            l1d_flush: 2000,
            vmentry: 800,
            vmexit: 1200,
            kernel_entry_base: 70,
            eibrs_periodic_flush: 0,
        }
    }
}

/// Speculation machinery geometry and behavioural quirks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecProfile {
    /// Maximum number of instructions executed in a transient window.
    pub window: usize,
    /// Number of BTB entries (power of two).
    pub btb_entries: usize,
    /// Return stack buffer depth (16 on older parts, 32 on newer).
    pub rsb_entries: usize,
    /// Branch history register length in recorded branches.
    pub bhb_len: usize,
    /// Enhanced IBRS: `IA32_SPEC_CTRL.IBRS` can be set once and the BTB is
    /// privilege-tagged (Cascade Lake and later Intel parts).
    pub eibrs: bool,
    /// Legacy IBRS supported at all (Zen 1 lacks it; Table 10 marks it N/A).
    pub ibrs_supported: bool,
    /// IBPB command supported.
    pub ibpb_supported: bool,
    /// SSBD supported.
    pub ssbd_supported: bool,
    /// The MD_CLEAR microcode update is present, giving `verw` its
    /// buffer-flushing behaviour.
    pub md_clear: bool,
    /// PCID support: `mov %cr3` with the no-flush bit preserves TLB entries
    /// tagged with other PCIDs (makes PTI's TLB impact marginal, §5.1).
    pub pcid: bool,
    /// `xsaveopt` available (fast eager FPU switching, §3.1 LazyFP).
    pub xsaveopt: bool,
    /// When eIBRS is enabled, BTB entries are tagged with the privilege
    /// mode they were created in and only predict in the same mode
    /// (paper §6.2.2 / Table 10).
    pub btb_priv_tagged: bool,
    /// Legacy-IBRS behaviour on pre-Spectre parts: while
    /// `IA32_SPEC_CTRL.IBRS` is set, *all* indirect branch prediction is
    /// disabled, in every privilege mode (paper §6.2.1 / Table 10 shows
    /// Broadwell and Skylake blocking even user→user prediction).
    pub ibrs_blocks_all_prediction: bool,
    /// Zen 3 behaviour: the BTB index/tag depends on branch-history state
    /// in a way the paper's probe could not reproduce across contexts, so
    /// cross-context poisoning fails (Table 9, Zen 3 row is empty).
    pub btb_history_tagged: bool,
    /// Ice Lake Client quirk (Table 10): with IBRS enabled, indirect branch
    /// prediction in *kernel* mode is suppressed entirely (kernel→kernel
    /// shows no speculation) while user→user prediction still works.
    pub ibrs_blocks_kernel_mode: bool,
    /// With eIBRS enabled, one in roughly `eibrs_flush_interval` kernel
    /// entries incurs an extra `eibrs_periodic_flush`-cycle stall and
    /// flushes kernel-mode BTB entries (paper §6.2.2's bimodal latency).
    /// `0` disables the behaviour.
    pub eibrs_flush_interval: u64,
    /// Simultaneous multithreading present (Table 2; everything except the
    /// Ryzen 3 1200).
    pub smt: bool,
}

impl SpecProfile {
    /// A neutral profile for unit tests: generous window, modern features.
    pub fn test_default() -> SpecProfile {
        SpecProfile {
            window: 64,
            btb_entries: 1024,
            rsb_entries: 16,
            bhb_len: 16,
            eibrs: false,
            ibrs_supported: true,
            ibpb_supported: true,
            ssbd_supported: true,
            md_clear: true,
            pcid: true,
            xsaveopt: true,
            btb_priv_tagged: false,
            ibrs_blocks_all_prediction: false,
            btb_history_tagged: false,
            ibrs_blocks_kernel_mode: false,
            eibrs_flush_interval: 0,
            smt: true,
        }
    }
}

/// A complete CPU model: identity, vulnerabilities, latencies, speculation
/// behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Marketing model name (e.g. "Xeon Silver 4210R").
    pub name: &'static str,
    /// Microarchitecture name as the paper uses it (e.g. "Cascade Lake").
    pub microarch: &'static str,
    /// Vendor.
    pub vendor: Vendor,
    /// Microarchitecture release year (Table 2).
    pub year: u32,
    /// TDP in watts (Table 2).
    pub power_watts: u32,
    /// Base clock in GHz (Table 2).
    pub clock_ghz: f64,
    /// Physical core count (Table 2).
    pub cores: u32,
    /// Vulnerability flags.
    pub vuln: VulnProfile,
    /// Primitive latencies.
    pub lat: LatencyProfile,
    /// Speculation machinery description.
    pub spec: SpecProfile,
}

impl CpuModel {
    /// A synthetic model for unit tests: vulnerable to everything, with
    /// round-number latencies.
    pub fn test_model() -> CpuModel {
        CpuModel {
            name: "TestCore 9000",
            microarch: "Test",
            vendor: Vendor::Intel,
            year: 2018,
            power_watts: 95,
            clock_ghz: 3.0,
            cores: 4,
            vuln: VulnProfile::pre_spectre_intel(),
            lat: LatencyProfile::test_default(),
            spec: SpecProfile::test_default(),
        }
    }

    /// Computes the value of the read-only `IA32_ARCH_CAPABILITIES` MSR
    /// this model reports, from its vulnerability profile.
    ///
    /// Note the deliberate omission: no shipping CPU sets `SSB_NO`, even
    /// models that postdate the attack by years (paper §4.3), so the bit is
    /// never derived from `vuln.ssb` here — it is always clear.
    pub fn arch_capabilities(&self) -> u64 {
        use crate::isa::arch_caps;
        let mut caps = 0;
        if !self.vuln.meltdown {
            caps |= arch_caps::RDCL_NO;
        }
        if self.spec.eibrs {
            caps |= arch_caps::IBRS_ALL;
        }
        if !self.vuln.l1tf {
            caps |= arch_caps::SKIP_L1DFL_VMENTRY;
        }
        if !self.vuln.mds {
            caps |= arch_caps::MDS_NO;
        }
        caps
    }

    /// Returns `true` if this model needs kernel page-table isolation.
    pub fn needs_pti(&self) -> bool {
        self.vuln.meltdown
    }

    /// Returns `true` if this model needs `verw` buffer clearing for MDS.
    pub fn needs_mds_clear(&self) -> bool {
        self.vuln.mds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::arch_caps;

    #[test]
    fn test_model_is_fully_vulnerable() {
        let m = CpuModel::test_model();
        assert!(m.vuln.meltdown && m.vuln.mds && m.vuln.l1tf && m.vuln.ssb);
        assert!(m.needs_pti());
        assert!(m.needs_mds_clear());
    }

    #[test]
    fn arch_caps_reflect_fixes() {
        let mut m = CpuModel::test_model();
        assert_eq!(m.arch_capabilities() & arch_caps::RDCL_NO, 0);
        m.vuln.meltdown = false;
        assert_ne!(m.arch_capabilities() & arch_caps::RDCL_NO, 0);
        m.vuln.mds = false;
        assert_ne!(m.arch_capabilities() & arch_caps::MDS_NO, 0);
    }

    #[test]
    fn ssb_no_is_never_advertised() {
        // Paper §4.3: no CPU sets SSB_NO, even ones immune on paper.
        let mut m = CpuModel::test_model();
        m.vuln.ssb = false;
        assert_eq!(m.arch_capabilities() & arch_caps::SSB_NO, 0);
    }

    #[test]
    fn amd_profile_immune_to_meltdown_class() {
        let v = VulnProfile::amd();
        assert!(!v.meltdown && !v.l1tf && !v.mds);
        assert!(v.spectre_v1 && v.spectre_v2 && v.ssb);
    }
}
