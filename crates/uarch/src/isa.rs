//! Instruction set of the simulated machine.
//!
//! The ISA is a compact, x86-flavoured register machine: sixteen 64-bit
//! general-purpose registers, eight floating-point registers, a flags
//! register, and the handful of privileged/serializing instructions that the
//! paper's mitigations are built from (`syscall`/`sysret`, `mov %cr3`,
//! `verw`, `lfence`, `wrmsr`/`rdmsr`, `rdtsc`/`rdpmc`, `clflush`).
//!
//! Programs are sequences of [`Inst`] values placed at 64-bit code
//! addresses. Code addresses matter: the branch target buffer and the
//! return stack buffer are indexed by them, exactly as on hardware, which
//! is what makes cross-context BTB poisoning (Spectre V2) expressible.

use std::fmt;

/// A general-purpose 64-bit register.
///
/// `R0`–`R15` mirror x86-64's sixteen GPRs. By convention in this codebase
/// `R15` is used as the stack pointer by [`crate::program::ProgramBuilder`]
/// helpers, but nothing in the machine enforces that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    /// Conventionally the stack pointer (`%rsp` analogue).
    R15,
}

impl Reg {
    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register's index in the register file (0–15).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        Reg::ALL[idx]
    }

    /// The stack-pointer register used by builder conventions.
    pub const SP: Reg = Reg::R15;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// A floating-point register (`%xmm` analogue, scalar f64 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FReg {
    F0,
    F1,
    F2,
    F3,
    F4,
    F5,
    F6,
    F7,
}

impl FReg {
    /// All eight floating point registers in index order.
    pub const ALL: [FReg; 8] = [
        FReg::F0,
        FReg::F1,
        FReg::F2,
        FReg::F3,
        FReg::F4,
        FReg::F5,
        FReg::F6,
        FReg::F7,
    ];

    /// Returns the register's index in the FP register file (0–7).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the FP register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn from_index(idx: usize) -> FReg {
        FReg::ALL[idx]
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.index())
    }
}

/// Access width for loads and stores, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl Width {
    /// All widths in index order.
    pub const ALL: [Width; 4] = [Width::B1, Width::B2, Width::B4, Width::B8];

    /// Returns the width's index in [`Width::ALL`] (0–3).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the width with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    #[inline]
    pub fn from_index(idx: usize) -> Width {
        Width::ALL[idx]
    }

    /// Number of bytes this width covers.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Truncates `v` to this width.
    #[inline]
    pub fn truncate(self, v: u64) -> u64 {
        match self {
            Width::B1 => v & 0xff,
            Width::B2 => v & 0xffff,
            Width::B4 => v & 0xffff_ffff,
            Width::B8 => v,
        }
    }
}

/// Condition codes for conditional branches and conditional moves.
///
/// Conditions are evaluated against the flags set by the most recent
/// `Cmp`/`CmpImm`/`Test` instruction. Unsigned comparisons (`Above`,
/// `Below`, …) are what array bounds checks use; the Spectre V1 gadgets and
/// the JIT's index-masking mitigation both rely on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (ZF set).
    Eq,
    /// Not equal (ZF clear).
    Ne,
    /// Unsigned below (CF set).
    Below,
    /// Unsigned above-or-equal (CF clear).
    AboveEq,
    /// Unsigned above (CF clear and ZF clear).
    Above,
    /// Unsigned below-or-equal (CF set or ZF set).
    BelowEq,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed greater-than.
    Gt,
    /// Signed less-or-equal.
    Le,
}

impl Cond {
    /// All condition codes in index order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Below,
        Cond::AboveEq,
        Cond::Above,
        Cond::BelowEq,
        Cond::Lt,
        Cond::Ge,
        Cond::Gt,
        Cond::Le,
    ];

    /// Returns the condition's index in [`Cond::ALL`] (0–9).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the condition with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 10`.
    #[inline]
    pub fn from_index(idx: usize) -> Cond {
        Cond::ALL[idx]
    }

    /// Returns the negation of this condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Below => Cond::AboveEq,
            Cond::AboveEq => Cond::Below,
            Cond::Above => Cond::BelowEq,
            Cond::BelowEq => Cond::Above,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
        }
    }
}

/// Flags register state produced by compare instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag: operands were equal.
    pub zero: bool,
    /// Carry flag: unsigned below.
    pub carry: bool,
    /// Sign flag: signed result was negative.
    pub sign: bool,
    /// Overflow flag.
    pub overflow: bool,
}

impl Flags {
    /// Computes flags for `a` compared against `b` (i.e. `a - b`).
    #[inline]
    pub fn compare(a: u64, b: u64) -> Flags {
        let (res, borrow) = a.overflowing_sub(b);
        let sa = a as i64;
        let sb = b as i64;
        let (sres, soverflow) = sa.overflowing_sub(sb);
        Flags {
            zero: res == 0,
            carry: borrow,
            sign: sres < 0,
            overflow: soverflow,
        }
    }

    /// Evaluates a condition code against these flags.
    #[inline]
    pub fn eval(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.zero,
            Cond::Ne => !self.zero,
            Cond::Below => self.carry,
            Cond::AboveEq => !self.carry,
            Cond::Above => !self.carry && !self.zero,
            Cond::BelowEq => self.carry || self.zero,
            Cond::Lt => self.sign != self.overflow,
            Cond::Ge => self.sign == self.overflow,
            Cond::Gt => !self.zero && (self.sign == self.overflow),
            Cond::Le => self.zero || (self.sign != self.overflow),
        }
    }
}

/// Model-specific register numbers understood by `wrmsr`/`rdmsr`.
///
/// The numbers match the real x86 MSR encodings so that kernel code in
/// `sim-kernel` reads like the Linux assembly it mirrors.
pub mod msr_index {
    /// `IA32_SPEC_CTRL`: bit 0 = IBRS, bit 1 = STIBP, bit 2 = SSBD.
    pub const IA32_SPEC_CTRL: u32 = 0x48;
    /// `IA32_PRED_CMD`: write-only; bit 0 = IBPB (flush indirect predictors).
    pub const IA32_PRED_CMD: u32 = 0x49;
    /// `IA32_ARCH_CAPABILITIES`: read-only enumeration of hardware fixes.
    pub const IA32_ARCH_CAPABILITIES: u32 = 0x10a;
    /// `IA32_FLUSH_CMD`: write-only; bit 0 = L1D flush.
    pub const IA32_FLUSH_CMD: u32 = 0x10b;
}

/// Bit positions within `IA32_SPEC_CTRL`.
pub mod spec_ctrl {
    /// Indirect Branch Restricted Speculation.
    pub const IBRS: u64 = 1 << 0;
    /// Single Thread Indirect Branch Predictors.
    pub const STIBP: u64 = 1 << 1;
    /// Speculative Store Bypass Disable.
    pub const SSBD: u64 = 1 << 2;
}

/// Bit positions within `IA32_ARCH_CAPABILITIES`.
pub mod arch_caps {
    /// `RDCL_NO`: not vulnerable to Meltdown (rogue data cache load).
    pub const RDCL_NO: u64 = 1 << 0;
    /// `IBRS_ALL`: enhanced IBRS is supported.
    pub const IBRS_ALL: u64 = 1 << 1;
    /// `SKIP_L1DFL_VMENTRY`: no L1D flush needed on VM entry.
    pub const SKIP_L1DFL_VMENTRY: u64 = 1 << 3;
    /// `SSB_NO`: not vulnerable to Speculative Store Bypass.
    ///
    /// The paper notes that no shipping CPU from either vendor sets this
    /// bit, even models released years after the attack (§4.3).
    pub const SSB_NO: u64 = 1 << 4;
    /// `MDS_NO`: not vulnerable to Microarchitectural Data Sampling.
    pub const MDS_NO: u64 = 1 << 5;
}

/// Hardware performance counters exposed through `rdpmc`.
///
/// The speculation probe (paper §6.1, Figure 6) relies on
/// [`Pmc::DividerActive`]: divide instructions executed *transiently* still
/// occupy the divider, so the counter reveals whether a poisoned branch
/// target was speculatively executed even though no architectural state
/// changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pmc {
    /// Cycles in which the divide unit was active (`ARITH.DIVIDER_ACTIVE`).
    DividerActive,
    /// Retired indirect branches that were mispredicted.
    IndirectMispredict,
    /// Committed (retired) instructions.
    Instructions,
    /// Core cycles.
    Cycles,
    /// L1D cache misses (committed and transient).
    L1dMiss,
    /// Transient (squashed) instructions executed.
    ///
    /// Not available on real hardware; exposed by the simulator for tests
    /// and diagnostics only.
    TransientInstructions,
}

impl Pmc {
    /// All counters, in encoding order.
    pub const ALL: [Pmc; 6] = [
        Pmc::DividerActive,
        Pmc::IndirectMispredict,
        Pmc::Instructions,
        Pmc::Cycles,
        Pmc::L1dMiss,
        Pmc::TransientInstructions,
    ];

    /// Returns the counter index used by `rdpmc`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the counter with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 6`.
    #[inline]
    pub fn from_index(idx: usize) -> Pmc {
        Pmc::ALL[idx]
    }
}

/// A single instruction of the simulated machine.
///
/// Each variant notes its architectural semantics; timing comes from the
/// [`crate::model::LatencyProfile`] of the CPU being simulated, plus
/// dynamic costs (cache misses, TLB walks, mispredictions) charged by the
/// machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Spin-loop hint; architecturally a no-op (used in retpoline pads).
    Pause,
    /// Stops the machine (normal program termination).
    Halt,

    /// `dst = imm`.
    MovImm(Reg, u64),
    /// `dst = src`.
    Mov(Reg, Reg),
    /// `dst = dst + src`.
    Add(Reg, Reg),
    /// `dst = dst + imm`.
    AddImm(Reg, u64),
    /// `dst = dst - src`.
    Sub(Reg, Reg),
    /// `dst = dst - imm`.
    SubImm(Reg, u64),
    /// `dst = dst * src` (low 64 bits).
    Mul(Reg, Reg),
    /// `dst = dst / src`; occupies the divider unit for the model's divide
    /// latency (visible via [`Pmc::DividerActive`]). Faults on division by
    /// zero.
    Div(Reg, Reg),
    /// `dst = dst & src`.
    And(Reg, Reg),
    /// `dst = dst & imm`.
    AndImm(Reg, u64),
    /// `dst = dst | src`.
    Or(Reg, Reg),
    /// `dst = dst ^ src`.
    Xor(Reg, Reg),
    /// `dst = dst ^ imm` (used by pointer-poisoning mitigations).
    XorImm(Reg, u64),
    /// `dst = dst << amount`.
    Shl(Reg, u8),
    /// `dst = dst >> amount` (logical).
    Shr(Reg, u8),
    /// `dst = !dst`.
    Not(Reg),

    /// Load `width` bytes from `[base + offset]` into `dst` (zero-extended).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement added to the base.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Store the low `width` bytes of `src` to `[base + offset]`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement added to the base.
        offset: i64,
        /// Access width.
        width: Width,
    },

    /// Compare two registers and set flags.
    Cmp(Reg, Reg),
    /// Compare a register against an immediate and set flags.
    CmpImm(Reg, u64),
    /// Set flags from `a & b` (only the zero flag is meaningful).
    Test(Reg, Reg),

    /// Conditional branch to an absolute code address.
    Jcc(Cond, u64),
    /// Unconditional branch to an absolute code address.
    Jmp(u64),
    /// Indirect branch to the address in a register. Predicted via the BTB;
    /// the canonical Spectre V2 victim instruction.
    JmpInd(Reg),
    /// Direct call: pushes the return address on the simulated stack and
    /// the return stack buffer, then branches.
    Call(u64),
    /// Indirect call through a register (BTB-predicted, RSB push).
    CallInd(Reg),
    /// Return: pops the return address from the stack; the RSB provides the
    /// prediction. A mismatch between the two is what generic retpolines
    /// exploit deliberately.
    Ret,

    /// `if cond { dst = src }` — data-dependent, never predicted, so it
    /// blocks Spectre V1 when used as an index mask.
    Cmov(Cond, Reg, Reg),
    /// `if cond { dst = imm }` — immediate form used by index masking
    /// (`cmov dst, 0`) and object-guard poisoning.
    CmovImm(Cond, Reg, u64),

    /// Load fence: waits for all prior loads to resolve and stops transient
    /// execution. On AMD models (with the serializing-lfence MSR bit set,
    /// as Linux requires) it is dispatch-serializing.
    Lfence,
    /// Full memory fence: drains the store buffer.
    Mfence,
    /// Store fence: drains the store buffer.
    Sfence,
    /// Flushes the cache line containing `[reg]` from the L1D (and, in this
    /// model, all levels). The probe uses it to force miss latency.
    Clflush(Reg),

    /// Reads the timestamp counter into `dst` (cycles).
    Rdtsc(Reg),
    /// Reads performance counter `pmc` into `dst`.
    Rdpmc {
        /// Which counter to read.
        pmc: Pmc,
        /// Destination register.
        dst: Reg,
    },
    /// Writes `src` to the MSR (privileged; faults in user mode).
    Wrmsr {
        /// MSR number (see [`msr_index`]).
        msr: u32,
        /// Source register.
        src: Reg,
    },
    /// Reads the MSR into `dst` (privileged; faults in user mode).
    Rdmsr {
        /// MSR number (see [`msr_index`]).
        msr: u32,
        /// Destination register.
        dst: Reg,
    },

    /// Enters the kernel at the registered syscall entry point.
    Syscall,
    /// Returns from the kernel to user mode at the address in `R11`
    /// (mirroring x86's `sysret` using `%rcx`). Privileged.
    Sysret,
    /// Swaps the user/kernel GS base (modelled as a flag flip; the paper's
    /// Spectre V1 `lfence after swapgs` mitigation guards this).
    Swapgs,
    /// Returns from a fault handler to the saved resume point (privileged).
    Iret,
    /// Loads a new root page table (and PCID) from `src`. Privileged.
    /// This is the PTI instruction whose cost Table 3 reports.
    MovCr3(Reg),
    /// `verw`: with the MD_CLEAR microcode update this flushes the
    /// microarchitectural buffers (MDS mitigation, Table 4); otherwise it
    /// retains only its legacy segmentation behaviour.
    Verw,
    /// Invalidates the TLB entry for the address in `reg` (privileged).
    Invlpg(Reg),

    /// Floating-point: `dst = dst + src`.
    Fadd(FReg, FReg),
    /// Floating-point: `dst = dst - src`.
    Fsub(FReg, FReg),
    /// Floating-point: `dst = dst * src`.
    Fmul(FReg, FReg),
    /// Floating-point: `dst = dst / src` (occupies the divider).
    Fdiv(FReg, FReg),
    /// Floating-point: `dst = imm`.
    FmovImm(FReg, f64),
    /// Load an `f64` from `[base + offset]` into an FP register.
    Fload {
        /// Destination FP register.
        dst: FReg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Store an FP register to `[base + offset]`.
    Fstore {
        /// Source FP register.
        src: FReg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Moves an FP register into a GPR (bitcast); faults if the FPU is
    /// disabled, which is the LazyFP trap point.
    FtoG(Reg, FReg),
    /// Saves the FPU state (privileged; `xsave`/`xsaveopt` analogue).
    Xsave,
    /// Restores the FPU state (privileged; `xrstor` analogue).
    Xrstor,

    /// Calls back into the host environment with an opaque hook id.
    /// `sim-kernel` uses this for syscall semantics whose instruction-level
    /// detail does not affect mitigation costs.
    Host(u16),
    /// Guest-to-hypervisor transition (`vmcall`): exits the VM.
    Vmcall,
}

impl Inst {
    /// Returns `true` for instructions that end a basic block (any control
    /// transfer or mode change).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jcc(..)
                | Inst::Jmp(..)
                | Inst::JmpInd(..)
                | Inst::Call(..)
                | Inst::CallInd(..)
                | Inst::Ret
                | Inst::Syscall
                | Inst::Sysret
                | Inst::Iret
                | Inst::Halt
                | Inst::Vmcall
        )
    }

    /// A short mnemonic for tracing and diagnostics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Nop => "nop",
            Inst::Pause => "pause",
            Inst::Halt => "hlt",
            Inst::MovImm(..) => "mov(imm)",
            Inst::Mov(..) => "mov",
            Inst::Add(..) | Inst::AddImm(..) => "add",
            Inst::Sub(..) | Inst::SubImm(..) => "sub",
            Inst::Mul(..) => "mul",
            Inst::Div(..) => "div",
            Inst::And(..) | Inst::AndImm(..) => "and",
            Inst::Or(..) => "or",
            Inst::Xor(..) | Inst::XorImm(..) => "xor",
            Inst::Shl(..) => "shl",
            Inst::Shr(..) => "shr",
            Inst::Not(..) => "not",
            Inst::Load { .. } => "load",
            Inst::Store { .. } => "store",
            Inst::Cmp(..) | Inst::CmpImm(..) => "cmp",
            Inst::Test(..) => "test",
            Inst::Jcc(..) => "jcc",
            Inst::Jmp(..) => "jmp",
            Inst::JmpInd(..) => "jmp*",
            Inst::Call(..) => "call",
            Inst::CallInd(..) => "call*",
            Inst::Ret => "ret",
            Inst::Cmov(..) | Inst::CmovImm(..) => "cmov",
            Inst::Lfence => "lfence",
            Inst::Mfence => "mfence",
            Inst::Sfence => "sfence",
            Inst::Clflush(..) => "clflush",
            Inst::Rdtsc(..) => "rdtsc",
            Inst::Rdpmc { .. } => "rdpmc",
            Inst::Wrmsr { .. } => "wrmsr",
            Inst::Rdmsr { .. } => "rdmsr",
            Inst::Syscall => "syscall",
            Inst::Sysret => "sysret",
            Inst::Swapgs => "swapgs",
            Inst::Iret => "iret",
            Inst::MovCr3(..) => "mov cr3",
            Inst::Verw => "verw",
            Inst::Invlpg(..) => "invlpg",
            Inst::Fadd(..) => "fadd",
            Inst::Fsub(..) => "fsub",
            Inst::Fmul(..) => "fmul",
            Inst::Fdiv(..) => "fdiv",
            Inst::FmovImm(..) => "fmov(imm)",
            Inst::Fload { .. } => "fload",
            Inst::Fstore { .. } => "fstore",
            Inst::FtoG(..) => "ftog",
            Inst::Xsave => "xsave",
            Inst::Xrstor => "xrstor",
            Inst::Host(..) => "host",
            Inst::Vmcall => "vmcall",
        }
    }

    /// Returns `true` for privileged instructions that fault in user mode.
    pub fn is_privileged(&self) -> bool {
        matches!(
            self,
            Inst::Wrmsr { .. }
                | Inst::Rdmsr { .. }
                | Inst::MovCr3(..)
                | Inst::Sysret
                | Inst::Iret
                | Inst::Xsave
                | Inst::Xrstor
                | Inst::Invlpg(..)
                | Inst::Swapgs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
    }

    #[test]
    fn width_truncation() {
        assert_eq!(Width::B1.truncate(0x1ff), 0xff);
        assert_eq!(Width::B2.truncate(0x1_ffff), 0xffff);
        assert_eq!(Width::B4.truncate(0x1_ffff_ffff), 0xffff_ffff);
        assert_eq!(Width::B8.truncate(u64::MAX), u64::MAX);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn flags_unsigned_compare() {
        let f = Flags::compare(1, 2);
        assert!(f.eval(Cond::Below));
        assert!(f.eval(Cond::Ne));
        assert!(!f.eval(Cond::AboveEq));

        let f = Flags::compare(2, 2);
        assert!(f.eval(Cond::Eq));
        assert!(f.eval(Cond::AboveEq));
        assert!(f.eval(Cond::BelowEq));
        assert!(!f.eval(Cond::Above));
    }

    #[test]
    fn flags_signed_compare() {
        let f = Flags::compare(-1i64 as u64, 1);
        assert!(f.eval(Cond::Lt));
        assert!(!f.eval(Cond::Ge));
        // Unsigned view: 0xffff.. is above 1.
        assert!(f.eval(Cond::Above));

        let f = Flags::compare(5, -3i64 as u64);
        assert!(f.eval(Cond::Gt));
        assert!(f.eval(Cond::Below)); // unsigned view
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Below,
            Cond::AboveEq,
            Cond::Above,
            Cond::BelowEq,
            Cond::Lt,
            Cond::Ge,
            Cond::Gt,
            Cond::Le,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn negated_cond_evaluates_opposite() {
        for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0), (0, u64::MAX)] {
            let f = Flags::compare(a, b);
            for c in [
                Cond::Eq,
                Cond::Ne,
                Cond::Below,
                Cond::AboveEq,
                Cond::Above,
                Cond::BelowEq,
                Cond::Lt,
                Cond::Ge,
                Cond::Gt,
                Cond::Le,
            ] {
                assert_eq!(f.eval(c), !f.eval(c.negate()), "{c:?} on {a} vs {b}");
            }
        }
    }

    #[test]
    fn control_flow_classification() {
        assert!(Inst::Ret.is_control_flow());
        assert!(Inst::Syscall.is_control_flow());
        assert!(!Inst::Nop.is_control_flow());
        assert!(!Inst::Lfence.is_control_flow());
    }

    #[test]
    fn privilege_classification() {
        assert!(Inst::MovCr3(Reg::R0).is_privileged());
        assert!(Inst::Wrmsr { msr: 0x48, src: Reg::R0 }.is_privileged());
        assert!(!Inst::Rdtsc(Reg::R0).is_privileged());
        assert!(!Inst::Verw.is_privileged());
    }
}
