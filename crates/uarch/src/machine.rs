//! The simulated machine: committed execution, faults, privilege
//! transitions, and cycle accounting.
//!
//! Transient (speculative) execution lives in [`crate::transient`]; the
//! machine decides *when* a transient window opens (mispredicted branch,
//! faulting load, store-bypass opportunity) and the window module decides
//! what leaks inside it.
//!
//! # Timing model
//!
//! Every committed instruction charges cycles from the CPU model's
//! [`crate::model::LatencyProfile`], plus dynamic costs: TLB walks, L1D
//! misses, branch misprediction penalties, SSBD forwarding stalls. The
//! cycle counter is the TSC that `rdtsc` reads — measurement code inside
//! the simulation sees exactly what a real `rdtsc`-based microbenchmark
//! sees.

use crate::cache::{CacheOutcome, L1Cache};
use crate::decode::{DecodedInst, Op};
use crate::fault::{Fault, SimError};
use crate::fill_buffer::FillBuffers;
use crate::fpu::Fpu;
use crate::isa::{spec_ctrl, Cond, Flags, Pmc, Reg, Width};
use crate::mem::PhysMemory;
use crate::mmu::{Access, Mmu};
use crate::model::{CpuModel, Vendor};
use crate::msr::{MsrEffect, MsrFile};
use crate::pmc::PmcBank;
use crate::predictor::{Bhb, Btb, CondPredictor, PrivMode, Rsb};
use crate::program::{CodeMem, Program, INST_SIZE};
use crate::store_buffer::{ForwardOutcome, StoreBuffer};
use crate::trace::{TraceRecord, Tracer};
use crate::transient::{self, TransientStart};

/// Why `Machine::run` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A `Halt` instruction committed.
    Halted,
    /// A `Vmcall` committed: the guest wants the hypervisor.
    Vmcall,
}

/// The host environment a running machine calls back into.
///
/// `sim-kernel` implements this to give `Host` instructions their
/// semantics (syscall dispatch, scheduling decisions) without modelling
/// every kernel instruction — the *mitigation-relevant* instructions are
/// all real, emitted into the entry/exit/switch paths.
pub trait Env {
    /// Handles a `Host(id)` instruction.
    fn host_call(&mut self, m: &mut Machine, id: u16) -> Result<(), SimError>;
}

/// An environment that rejects all host calls; fine for raw programs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoEnv;

impl Env for NoEnv {
    fn host_call(&mut self, _m: &mut Machine, id: u16) -> Result<(), SimError> {
        Err(SimError::MissingHostHook { id })
    }
}

/// Saved state for fault delivery / `iret`.
#[derive(Debug, Clone, Copy)]
pub struct FaultFrame {
    /// The fault that was delivered.
    pub fault: Fault,
    /// Address of the faulting instruction.
    pub faulting_pc: u64,
    /// Where `iret` resumes; defaults to `faulting_pc` (retry). Handlers
    /// may advance it (e.g. to skip a probing load in attack code).
    pub resume_pc: u64,
    /// Privilege mode before the fault.
    pub prior_mode: PrivMode,
}

/// Registered fault handler entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultVectors {
    /// Page fault handler.
    pub page_fault: Option<u64>,
    /// General protection fault handler.
    pub general_protection: Option<u64>,
    /// Divide error handler.
    pub divide_error: Option<u64>,
    /// Device-not-available (FPU) handler — the LazyFP trap.
    pub device_not_available: Option<u64>,
    /// Invalid opcode handler.
    pub invalid_opcode: Option<u64>,
}

impl FaultVectors {
    fn entry_for(&self, fault: Fault) -> Option<u64> {
        match fault {
            Fault::Page { .. } => self.page_fault,
            Fault::GeneralProtection => self.general_protection,
            Fault::DivideError => self.divide_error,
            Fault::DeviceNotAvailable => self.device_not_available,
            Fault::InvalidOpcode => self.invalid_opcode,
        }
    }
}

/// The simulated CPU plus its memory system.
///
/// The hot architectural state (registers, flags, PC, clock, instruction
/// count, fetch hint) is declared together at the top so the dispatch
/// loop's working set clusters into a few cache lines.
#[derive(Debug)]
pub struct Machine {
    /// General-purpose registers.
    pub regs: [u64; 16],
    /// Flags from the last compare.
    pub flags: Flags,
    /// Program counter.
    pub pc: u64,
    /// Cycle counter (the TSC).
    pub(crate) cycles: u64,
    /// Committed instruction count.
    pub(crate) insts: u64,
    /// Index of the code segment that satisfied the last decoded fetch;
    /// a pure performance hint (see [`CodeMem::fetch_decoded`]).
    seg_hint: usize,
    /// Current privilege mode.
    pub mode: PrivMode,
    /// An `lfence` just committed on an AMD part: the next indirect branch
    /// does not speculate (the "AMD retpoline" semantics).
    pub(crate) lfence_shadow: bool,
    /// Cycle at which the most recent committed load finished; `lfence`
    /// is only expensive while loads are in flight (paper §5.4's caveat).
    pub(crate) last_load_cycle: u64,
    /// The CPU model being simulated.
    pub model: CpuModel,
    /// Physical memory.
    pub mem: PhysMemory,
    /// Code memory.
    pub code: CodeMem,
    /// MMU: page tables + TLB.
    pub mmu: Mmu,
    /// L1 data cache.
    pub l1d: L1Cache,
    /// Unified L2 cache (presence only, like the L1 model). An L1D flush
    /// does not touch it, so post-flush refills pay L2 latency, not DRAM.
    pub l2: L1Cache,
    /// MDS leak source.
    pub fill_buffers: FillBuffers,
    /// Store buffer (store-to-load forwarding, SSB).
    pub store_buffer: StoreBuffer,
    /// Branch target buffer.
    pub btb: Btb,
    /// Return stack buffer.
    pub rsb: Rsb,
    /// Branch history buffer.
    pub bhb: Bhb,
    /// Conditional branch predictor.
    pub cond_pred: CondPredictor,
    /// Floating point unit.
    pub fpu: Fpu,
    /// Model-specific registers.
    pub msrs: MsrFile,
    /// Performance counters.
    pub pmc: PmcBank,
    /// Syscall entry point (kernel installs it).
    pub syscall_entry: Option<u64>,
    /// Fault handler entry points.
    pub fault_vectors: FaultVectors,
    /// Pending fault frame for `iret`.
    pub fault_frame: Option<FaultFrame>,
    /// Kernel entries seen while eIBRS is active (drives the §6.2.2
    /// bimodal-latency behaviour).
    entry_counter: u64,
    /// Cycle of the last SSBD disambiguation stall: once a load has
    /// waited out the store queue, the addresses are resolved and
    /// immediately-following loads need not wait again.
    pub(crate) last_ssbd_stall: u64,
    /// Transient (squashed) instructions executed, monotonic (unlike the
    /// resettable PMC copy); feeds the process-wide obs counters.
    pub(crate) transient_insts: u64,
    /// Transient windows opened, monotonic.
    pub(crate) transient_windows: u64,
    /// Portion of `insts` already published to [`crate::pmc::global`].
    flushed_insts: u64,
    /// Portion of `transient_insts` already published.
    flushed_transient: u64,
    /// Portion of `transient_windows` already published.
    flushed_windows: u64,
    /// GS-base selector (flips on `swapgs`; semantic payload is not
    /// modelled, only the mitigation cost around it).
    pub swapgs_user: bool,
    /// Optional execution trace (off by default; see
    /// [`Machine::enable_trace`]).
    pub tracer: Option<Tracer>,
}

impl Machine {
    /// Creates a machine for the given CPU model, with empty memory.
    pub fn new(model: CpuModel) -> Machine {
        let btb_entries = model.spec.btb_entries;
        let rsb_entries = model.spec.rsb_entries;
        let bhb_len = model.spec.bhb_len;
        let mut btb = Btb::new(btb_entries);
        btb.priv_tagged = model.spec.btb_priv_tagged;
        btb.history_tagged = model.spec.btb_history_tagged;
        let arch_caps = model.arch_capabilities();
        let mut mmu = Mmu::new(1536);
        mmu.pcid_enabled = model.spec.pcid;
        Machine {
            regs: [0; 16],
            flags: Flags::default(),
            pc: 0,
            mode: PrivMode::Kernel,
            mem: PhysMemory::new(),
            code: CodeMem::new(),
            mmu,
            l1d: L1Cache::standard(),
            l2: L1Cache::new(1024, 8),
            fill_buffers: FillBuffers::new(),
            store_buffer: StoreBuffer::new(),
            btb,
            rsb: Rsb::new(rsb_entries),
            bhb: Bhb::new(bhb_len),
            cond_pred: CondPredictor::new(4096),
            fpu: Fpu::new(),
            msrs: MsrFile::new(arch_caps),
            pmc: PmcBank::new(),
            syscall_entry: None,
            fault_vectors: FaultVectors::default(),
            fault_frame: None,
            cycles: 0,
            insts: 0,
            seg_hint: 0,
            entry_counter: 0,
            lfence_shadow: false,
            last_load_cycle: 0,
            last_ssbd_stall: 0,
            transient_insts: 0,
            transient_windows: 0,
            flushed_insts: 0,
            flushed_transient: 0,
            flushed_windows: 0,
            swapgs_user: true,
            tracer: None,
            model,
        }
    }

    /// Enables execution tracing, keeping the last `capacity` committed
    /// instructions (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// Current cycle count (the TSC value).
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Committed instruction count.
    #[inline]
    pub fn inst_count(&self) -> u64 {
        self.insts
    }

    /// Transient (squashed, wrong-path) instructions executed.
    #[inline]
    pub fn transient_inst_count(&self) -> u64 {
        self.transient_insts
    }

    /// Transient-execution windows opened (mispredicts, faulting loads,
    /// store-bypass opportunities, stale-FPU uses).
    #[inline]
    pub fn transient_window_count(&self) -> u64 {
        self.transient_windows
    }

    /// Adds cycles to the clock (used by host hooks to charge for work
    /// done in Rust on the machine's behalf, and by the hypervisor for
    /// host-side handling time).
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.pmc.add(Pmc::Cycles, cycles);
    }

    /// Refunds cycles that overlapped with other work (e.g. an `lfence`
    /// whose wait overlaps the following branch's target resolution).
    #[inline]
    pub(crate) fn refund(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_sub(cycles);
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Loads a program into code memory.
    pub fn load_program(&mut self, program: Program) {
        self.code.load(program);
    }

    /// Whether SSBD is currently in effect.
    #[inline]
    pub fn ssbd_active(&self) -> bool {
        self.model.spec.ssbd_supported && self.msrs.spec_ctrl() & spec_ctrl::SSBD != 0
    }

    /// Whether the live `IA32_SPEC_CTRL.IBRS` bit is set.
    #[inline]
    pub fn ibrs_active(&self) -> bool {
        self.msrs.spec_ctrl() & spec_ctrl::IBRS != 0
    }

    /// Looks up the BTB prediction for an indirect branch at `branch_pc`
    /// in the current mode, applying all model quirks (eIBRS privilege
    /// tagging, pre-Spectre IBRS blocking everything, the Ice Lake Client
    /// kernel-mode suppression, Zen 3 history tagging).
    pub fn predict_indirect(&self, branch_pc: u64) -> Option<u64> {
        if self.ibrs_active()
            && self.model.spec.ibrs_blocks_kernel_mode
            && self.mode == PrivMode::Kernel
        {
            return None;
        }
        self.btb.predict(
            branch_pc,
            self.mode,
            &self.bhb,
            self.msrs.spec_ctrl(),
            self.model.spec.ibrs_blocks_all_prediction,
        )
    }

    /// Translates and performs a committed load, charging TLB/cache/SSBD
    /// costs. Returns the loaded value.
    pub fn read_virt(&mut self, vaddr: u64, width: Width) -> Result<u64, Fault> {
        let user = self.mode == PrivMode::User;
        let tr = self.mmu.translate(vaddr, Access::Read, user)?;
        if !tr.tlb_hit {
            self.charge(self.model.lat.tlb_miss);
        }
        let now = self.cycles;
        // SSBD semantics: the load may not speculatively assume it does
        // not alias an older store whose address is still unresolved; it
        // stalls whenever a store issued within the resolution window,
        // aliasing or not. Store addresses resolve within a few cycles,
        // so the window is short — the cost comes from how *often* hot
        // loops load right after storing.
        if self.ssbd_active()
            && now.saturating_sub(self.last_ssbd_stall) > 12
            && self.store_buffer.has_unresolved_store(now, 6)
        {
            self.charge(self.model.lat.ssbd_forward_stall);
            self.last_ssbd_stall = self.cycles;
        }
        let value = match self.store_buffer.check_load(vaddr, width, now) {
            ForwardOutcome::Forwarded { value } => {
                self.charge(self.model.lat.l1_hit);
                // The line is (or becomes) resident either way.
                self.l1d.access(tr.paddr);
                value
            }
            ForwardOutcome::PartialOverlap => {
                // Must wait for the store buffer to drain: costly either way.
                self.charge(self.model.lat.l1_hit + 12);
                self.l1d.access(tr.paddr);
                self.mem.read(tr.paddr, width)
            }
            ForwardOutcome::NoConflict => {
                let cost = match self.l1d.access(tr.paddr) {
                    CacheOutcome::Hit => self.model.lat.l1_hit,
                    CacheOutcome::Miss => {
                        self.pmc.incr(Pmc::L1dMiss);
                        match self.l2.access(tr.paddr) {
                            CacheOutcome::Hit => self.model.lat.l2_hit,
                            CacheOutcome::Miss => self.model.lat.l1_miss,
                        }
                    }
                };
                self.charge(cost);
                self.mem.read(tr.paddr, width)
            }
        };
        self.fill_buffers.record(value);
        self.last_load_cycle = self.cycles;
        Ok(value)
    }

    /// Translates and performs a committed store.
    pub fn write_virt(&mut self, vaddr: u64, value: u64, width: Width) -> Result<(), Fault> {
        let user = self.mode == PrivMode::User;
        let tr = self.mmu.translate(vaddr, Access::Write, user)?;
        if !tr.tlb_hit {
            self.charge(self.model.lat.tlb_miss);
        }
        // Write-allocate; stores retire through the store buffer so the
        // visible latency is just the issue cost.
        self.l1d.access(tr.paddr);
        self.l2.access(tr.paddr);
        self.charge(self.model.lat.l1_hit);
        let now = self.cycles;
        // The overwritten value is what a bypassing load would see (SSB).
        let stale = self.mem.read(tr.paddr, width);
        self.store_buffer.push(vaddr, width, value, stale, now);
        self.mem.write(tr.paddr, value, width);
        self.fill_buffers.record(width.truncate(value));
        Ok(())
    }

    /// Runs until `Halt`, `Vmcall`, an error, or the instruction budget is
    /// exhausted.
    pub fn run(&mut self, env: &mut dyn Env, budget: u64) -> Result<Stop, SimError> {
        let result = self.run_inner(env, budget);
        self.flush_global_counters();
        result
    }

    fn run_inner(&mut self, env: &mut dyn Env, budget: u64) -> Result<Stop, SimError> {
        let mut remaining = budget;
        loop {
            // Tight inline loop over the hot ops: unprivileged ALU,
            // compares, and direct jumps execute here with the
            // per-instruction `Instructions` counter batched in `pending`.
            // None of these ops can fault, stop, open a transient window,
            // or observe the counters, so batching is architecturally
            // invisible; everything else (and every error path) falls back
            // to [`Machine::step`], flushing first. Skipped entirely when a
            // tracer is attached, which needs the per-step record.
            if self.tracer.is_none() {
                let mut pending: u64 = 0;
                'hot: while remaining != 0 {
                    let d = match self.code.fetch_decoded(self.pc, &mut self.seg_hint) {
                        Some(d) => d,
                        None => break 'hot, // step() raises BadFetch
                    };
                    match d.op {
                        Op::Nop | Op::Pause => {
                            self.charge(self.model.lat.alu);
                            self.pc += INST_SIZE;
                        }
                        Op::MovImm => self.alu_write(d.a, d.imm),
                        Op::Mov => self.alu_write(d.a, self.rv(d.b)),
                        Op::Add => self.alu_write(d.a, self.rv(d.a).wrapping_add(self.rv(d.b))),
                        Op::AddImm => self.alu_write(d.a, self.rv(d.a).wrapping_add(d.imm)),
                        Op::Sub => self.alu_write(d.a, self.rv(d.a).wrapping_sub(self.rv(d.b))),
                        Op::SubImm => self.alu_write(d.a, self.rv(d.a).wrapping_sub(d.imm)),
                        Op::Mul => {
                            self.charge(2);
                            let v = self.rv(d.a).wrapping_mul(self.rv(d.b));
                            self.set_rv(d.a, v);
                            self.pc += INST_SIZE;
                        }
                        Op::And => self.alu_write(d.a, self.rv(d.a) & self.rv(d.b)),
                        Op::AndImm => self.alu_write(d.a, self.rv(d.a) & d.imm),
                        Op::Or => self.alu_write(d.a, self.rv(d.a) | self.rv(d.b)),
                        Op::Xor => self.alu_write(d.a, self.rv(d.a) ^ self.rv(d.b)),
                        Op::XorImm => self.alu_write(d.a, self.rv(d.a) ^ d.imm),
                        Op::Shl => self.alu_write(d.a, self.rv(d.a) << (d.b & 63)),
                        Op::Shr => self.alu_write(d.a, self.rv(d.a) >> (d.b & 63)),
                        Op::Not => self.alu_write(d.a, !self.rv(d.a)),
                        Op::Cmp => {
                            self.flags = Flags::compare(self.rv(d.a), self.rv(d.b));
                            self.charge(self.model.lat.alu);
                            self.pc += INST_SIZE;
                        }
                        Op::CmpImm => {
                            self.flags = Flags::compare(self.rv(d.a), d.imm);
                            self.charge(self.model.lat.alu);
                            self.pc += INST_SIZE;
                        }
                        Op::Test => {
                            let v = self.rv(d.a) & self.rv(d.b);
                            self.flags = Flags {
                                zero: v == 0,
                                carry: false,
                                sign: (v as i64) < 0,
                                overflow: false,
                            };
                            self.charge(self.model.lat.alu);
                            self.pc += INST_SIZE;
                        }
                        Op::Jmp => {
                            let pc = self.pc;
                            self.charge(self.model.lat.alu);
                            self.bhb.record(pc, d.imm);
                            self.pc = d.imm;
                        }
                        Op::Jcc => {
                            let pc = self.pc;
                            self.charge(self.model.lat.alu);
                            let target = d.imm;
                            let taken = self.flags.eval(Cond::from_index(d.c as usize));
                            let predicted_taken = self.cond_pred.predict(pc, &self.bhb);
                            if predicted_taken != taken {
                                // The wrong-path window can observe the
                                // counters (`rdpmc`): flush the batch,
                                // current instruction included.
                                remaining -= 1;
                                self.insts += pending + 1;
                                self.pmc.add(Pmc::Instructions, pending + 1);
                                pending = 0;
                                self.lfence_shadow = false;
                                let wrong_path =
                                    if predicted_taken { target } else { pc + INST_SIZE };
                                self.mispredict_window(wrong_path);
                                self.cond_pred.update(pc, &self.bhb, taken);
                                if taken {
                                    self.bhb.record(pc, target);
                                    self.pc = target;
                                } else {
                                    self.pc += INST_SIZE;
                                }
                                continue 'hot;
                            }
                            self.cond_pred.update(pc, &self.bhb, taken);
                            if taken {
                                self.bhb.record(pc, target);
                                self.pc = target;
                            } else {
                                self.pc += INST_SIZE;
                            }
                        }
                        Op::Load => {
                            let pc = self.pc;
                            let width = Width::from_index((d.c & 3) as usize);
                            let vaddr = self.rv(d.b).wrapping_add(d.imm);
                            match self.read_virt(vaddr, width) {
                                Ok(v) => {
                                    self.set_rv(d.a, v);
                                    let dst = Reg::from_index((d.a & 15) as usize);
                                    if let Some(stale) = self.ssb_stale(vaddr, width, dst) {
                                        // SSB window: flush, then open.
                                        remaining -= 1;
                                        self.insts += pending + 1;
                                        self.pmc.add(Pmc::Instructions, pending + 1);
                                        pending = 0;
                                        self.lfence_shadow = false;
                                        transient::run_window(
                                            self,
                                            TransientStart::StoreBypass {
                                                stale,
                                                dst,
                                                next_pc: pc + INST_SIZE,
                                            },
                                        );
                                        self.pc = pc + INST_SIZE;
                                        continue 'hot;
                                    }
                                    self.pc += INST_SIZE;
                                }
                                Err(fault) => {
                                    // Faulting-load window + fault delivery:
                                    // flush first, error paths included.
                                    remaining -= 1;
                                    self.insts += pending + 1;
                                    self.pmc.add(Pmc::Instructions, pending + 1);
                                    pending = 0;
                                    self.lfence_shadow = false;
                                    self.load_fault(fault, pc, vaddr, width, d.a)?;
                                    continue 'hot;
                                }
                            }
                        }
                        Op::Store => {
                            let pc = self.pc;
                            let width = Width::from_index((d.c & 3) as usize);
                            let vaddr = self.rv(d.b).wrapping_add(d.imm);
                            let value = self.rv(d.a);
                            match self.write_virt(vaddr, value, width) {
                                Ok(()) => self.pc += INST_SIZE,
                                Err(fault) => {
                                    remaining -= 1;
                                    self.insts += pending + 1;
                                    self.pmc.add(Pmc::Instructions, pending + 1);
                                    pending = 0;
                                    self.lfence_shadow = false;
                                    self.deliver_fault(fault, pc)?;
                                    continue 'hot;
                                }
                            }
                        }
                        _ => break 'hot,
                    }
                    remaining -= 1;
                    pending += 1;
                    self.lfence_shadow = false;
                }
                self.insts += pending;
                self.pmc.add(Pmc::Instructions, pending);
            }
            if remaining == 0 {
                return Err(SimError::InstructionBudgetExhausted);
            }
            remaining -= 1;
            match self.step(env)? {
                Some(stop) => return Ok(stop),
                None => continue,
            }
        }
    }

    /// Runs at most `n` committed instructions. Returns `Ok(true)` when
    /// the machine stopped (halt or vmcall), `Ok(false)` when the slice
    /// was exhausted with the machine still runnable. Lets callers
    /// observe microarchitectural state at intermediate points.
    pub fn step_slice(&mut self, env: &mut dyn Env, n: u64) -> Result<bool, SimError> {
        let mut stopped = false;
        for _ in 0..n {
            match self.step(env) {
                Ok(Some(_)) => {
                    stopped = true;
                    break;
                }
                Ok(None) => {}
                Err(e) => {
                    self.flush_global_counters();
                    return Err(e);
                }
            }
        }
        self.flush_global_counters();
        Ok(stopped)
    }

    /// Publishes counter deltas to the process-wide totals in
    /// [`crate::pmc::global`]. Called when a run or slice ends (and on
    /// drop), so the per-step dispatch path stays free of atomics.
    fn flush_global_counters(&mut self) {
        crate::pmc::global::flush(
            self.insts - self.flushed_insts,
            self.transient_insts - self.flushed_transient,
            self.transient_windows - self.flushed_windows,
        );
        self.flushed_insts = self.insts;
        self.flushed_transient = self.transient_insts;
        self.flushed_windows = self.transient_windows;
    }

    /// Reads a register by decoded operand index. The mask proves the
    /// index in-range, so the array access compiles bounds-check-free.
    #[inline(always)]
    fn rv(&self, i: u8) -> u64 {
        self.regs[(i & 15) as usize]
    }

    /// Writes a register by decoded operand index.
    #[inline(always)]
    fn set_rv(&mut self, i: u8, v: u64) {
        self.regs[(i & 15) as usize] = v;
    }

    /// Common ALU epilogue: one latency charge, one register write, fall
    /// through to the next instruction.
    #[inline(always)]
    fn alu_write(&mut self, d: u8, v: u64) {
        self.charge(self.model.lat.alu);
        self.set_rv(d, v);
        self.pc += INST_SIZE;
    }

    /// Executes one committed instruction (handling any fault it raises).
    /// Returns `Some(stop)` when the machine should stop.
    ///
    /// This is the decoded-dispatch fast path: one indexed fetch from the
    /// pre-decoded stream, a jump-table `match` on the dense [`Op`] tag,
    /// with faults and the rare system instructions out-of-line behind
    /// `#[cold]` helpers. The original `Inst`-matching interpreter is
    /// preserved in [`crate::reference`] as the semantics oracle; property
    /// tests pin the two equal on every counter.
    pub fn step(&mut self, env: &mut dyn Env) -> Result<Option<Stop>, SimError> {
        let pc = self.pc;
        let d = match self.code.fetch_decoded(pc, &mut self.seg_hint) {
            Some(d) => d,
            None => return Err(SimError::BadFetch { addr: pc }),
        };
        self.insts += 1;
        self.pmc.incr(Pmc::Instructions);
        if let Some(t) = &mut self.tracer {
            t.record(TraceRecord {
                pc,
                cycles: self.cycles,
                mode: self.mode,
                mnemonic: d.op.mnemonic(),
            });
        }

        // Privilege check first: privileged instructions fault in user
        // mode. The bit was precomputed at decode time.
        if self.mode == PrivMode::User && d.is_privileged() {
            self.user_privilege_fault(pc)?;
            return Ok(None);
        }

        let lfence_shadow = std::mem::take(&mut self.lfence_shadow);

        match d.op {
            Op::Nop | Op::Pause => {
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Op::Halt => {
                self.charge(self.model.lat.alu);
                // Advance past the halt so callers can resume execution
                // at the following instruction (checkpoint pattern).
                self.pc += INST_SIZE;
                return Ok(Some(Stop::Halted));
            }
            Op::Vmcall => {
                // Guest-visible exit cost; host adds its handling time.
                self.charge(self.model.lat.vmexit);
                self.pc += INST_SIZE;
                return Ok(Some(Stop::Vmcall));
            }
            Op::Host => {
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
                env.host_call(self, d.imm as u16)?;
            }

            Op::MovImm => self.alu_write(d.a, d.imm),
            Op::Mov => self.alu_write(d.a, self.rv(d.b)),
            Op::Add => self.alu_write(d.a, self.rv(d.a).wrapping_add(self.rv(d.b))),
            Op::AddImm => self.alu_write(d.a, self.rv(d.a).wrapping_add(d.imm)),
            Op::Sub => self.alu_write(d.a, self.rv(d.a).wrapping_sub(self.rv(d.b))),
            Op::SubImm => self.alu_write(d.a, self.rv(d.a).wrapping_sub(d.imm)),
            Op::Mul => {
                self.charge(2); // multiply is slightly slower than simple ALU
                let v = self.rv(d.a).wrapping_mul(self.rv(d.b));
                self.set_rv(d.a, v);
                self.pc += INST_SIZE;
            }
            Op::Div => {
                let divisor = self.rv(d.b);
                if divisor == 0 {
                    self.deliver_fault(Fault::DivideError, pc)?;
                    return Ok(None);
                }
                let div_lat = self.model.lat.div;
                self.charge(div_lat);
                self.pmc.add(Pmc::DividerActive, div_lat);
                let v = self.rv(d.a) / divisor;
                self.set_rv(d.a, v);
                self.pc += INST_SIZE;
            }
            Op::And => self.alu_write(d.a, self.rv(d.a) & self.rv(d.b)),
            Op::AndImm => self.alu_write(d.a, self.rv(d.a) & d.imm),
            Op::Or => self.alu_write(d.a, self.rv(d.a) | self.rv(d.b)),
            Op::Xor => self.alu_write(d.a, self.rv(d.a) ^ self.rv(d.b)),
            Op::XorImm => self.alu_write(d.a, self.rv(d.a) ^ d.imm),
            Op::Shl => self.alu_write(d.a, self.rv(d.a) << (d.b & 63)),
            Op::Shr => self.alu_write(d.a, self.rv(d.a) >> (d.b & 63)),
            Op::Not => self.alu_write(d.a, !self.rv(d.a)),

            Op::Load => {
                let width = Width::from_index((d.c & 3) as usize);
                let vaddr = self.rv(d.b).wrapping_add(d.imm);
                match self.read_virt(vaddr, width) {
                    Ok(v) => {
                        self.set_rv(d.a, v);
                        // Speculative Store Bypass: if the load *forwarded*
                        // from an in-flight store, a vulnerable part may
                        // first have run ahead with the stale value.
                        self.maybe_ssb_window(
                            vaddr,
                            width,
                            Reg::from_index((d.a & 15) as usize),
                            pc + INST_SIZE,
                        );
                        self.pc += INST_SIZE;
                    }
                    Err(fault) => self.load_fault(fault, pc, vaddr, width, d.a)?,
                }
            }
            Op::Store => {
                let width = Width::from_index((d.c & 3) as usize);
                let vaddr = self.rv(d.b).wrapping_add(d.imm);
                let value = self.rv(d.a);
                match self.write_virt(vaddr, value, width) {
                    Ok(()) => self.pc += INST_SIZE,
                    Err(fault) => self.deliver_fault(fault, pc)?,
                }
            }

            Op::Cmp => {
                self.flags = Flags::compare(self.rv(d.a), self.rv(d.b));
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Op::CmpImm => {
                self.flags = Flags::compare(self.rv(d.a), d.imm);
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Op::Test => {
                let v = self.rv(d.a) & self.rv(d.b);
                self.flags = Flags { zero: v == 0, carry: false, sign: (v as i64) < 0, overflow: false };
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }

            Op::Jcc => {
                self.charge(self.model.lat.alu);
                let target = d.imm;
                let taken = self.flags.eval(Cond::from_index(d.c as usize));
                let predicted_taken = self.cond_pred.predict(pc, &self.bhb);
                if predicted_taken != taken {
                    let wrong_path = if predicted_taken { target } else { pc + INST_SIZE };
                    self.mispredict_window(wrong_path);
                }
                self.cond_pred.update(pc, &self.bhb, taken);
                if taken {
                    self.bhb.record(pc, target);
                    self.pc = target;
                } else {
                    self.pc += INST_SIZE;
                }
            }
            Op::Jmp => {
                self.charge(self.model.lat.alu);
                self.bhb.record(pc, d.imm);
                self.pc = d.imm;
            }
            Op::JmpInd => {
                let target = self.rv(d.a);
                self.indirect_branch(pc, target, lfence_shadow);
                self.pc = target;
            }
            Op::Call => {
                self.charge(self.model.lat.alu);
                self.push_stack(pc + INST_SIZE)?;
                self.rsb.push(pc + INST_SIZE);
                self.bhb.record(pc, d.imm);
                self.pc = d.imm;
            }
            Op::CallInd => {
                let target = self.rv(d.a);
                self.indirect_branch(pc, target, lfence_shadow);
                self.push_stack(pc + INST_SIZE)?;
                self.rsb.push(pc + INST_SIZE);
                self.pc = target;
            }
            Op::Ret => {
                self.charge(self.model.lat.alu);
                let actual = self.pop_stack()?;
                let predicted = self.rsb.pop();
                match predicted {
                    Some(p) if p == actual => {}
                    Some(p) => {
                        // RSB mispredict: speculation goes to the stale RSB
                        // entry. This is both the retpoline capture (by
                        // design) and the SpectreRSB vector.
                        self.charge(self.model.lat.ret_mispredict);
                        transient::run_window(self, TransientStart::WrongPath { pc: p });
                    }
                    None => {
                        // RSB underflow: newer parts fall back to the BTB.
                        self.charge(self.model.lat.ret_mispredict);
                        if let Some(p) = self.predict_indirect(pc) {
                            if p != actual {
                                transient::run_window(self, TransientStart::WrongPath { pc: p });
                            }
                        }
                    }
                }
                self.bhb.record(pc, actual);
                self.pc = actual;
            }

            Op::Cmov => {
                // Conditional moves are cheap to execute but sit on the
                // dependency chain of whatever consumes the result — for
                // index masking, the following load cannot begin until the
                // flags and both inputs resolve. The extra cycles model
                // that serialization (the real cost of the mitigation,
                // §5.4).
                let v = self.rv(d.b);
                let take = self.flags.eval(Cond::from_index(d.c as usize));
                self.charge(self.model.lat.alu + 3);
                if take {
                    self.set_rv(d.a, v);
                }
                self.pc += INST_SIZE;
            }
            Op::CmovImm => {
                let take = self.flags.eval(Cond::from_index(d.c as usize));
                self.charge(self.model.lat.alu + 3);
                if take {
                    self.set_rv(d.a, d.imm);
                }
                self.pc += INST_SIZE;
            }

            Op::Lfence => {
                // On Intel, `lfence` only waits for in-flight loads: with
                // nothing outstanding (e.g. right after `swapgs` on kernel
                // entry) it is nearly free — which is why the paper found
                // no measurable LEBench impact from the Spectre V1 kernel
                // mitigation (§4.6). On AMD it is dispatch-serializing (as
                // Linux configures it), so the full cost always applies.
                let loads_in_flight = self.cycles.saturating_sub(self.last_load_cycle) < 20;
                let cost = if self.model.vendor == Vendor::Amd || loads_in_flight {
                    self.model.lat.lfence
                } else {
                    2
                };
                self.charge(cost);
                if self.model.vendor == Vendor::Amd {
                    // The next indirect branch will not speculate.
                    self.lfence_shadow = true;
                }
                self.pc += INST_SIZE;
            }
            Op::Mfence | Op::Sfence => {
                self.charge(self.model.lat.lfence + 10);
                self.store_buffer.flush();
                self.pc += INST_SIZE;
            }
            Op::Clflush => {
                let vaddr = self.rv(d.a);
                self.charge(self.model.lat.l1_hit + 8);
                let user = self.mode == PrivMode::User;
                if let Ok(tr) = self.mmu.translate(vaddr, Access::Read, user) {
                    self.l1d.flush_line(tr.paddr);
                }
                self.pc += INST_SIZE;
            }

            Op::Rdtsc => {
                self.charge(15);
                let c = self.cycles;
                self.set_rv(d.a, c);
                self.pc += INST_SIZE;
            }
            Op::Rdpmc => {
                self.charge(20);
                let v = self.pmc.read(Pmc::from_index((d.b & 7) as usize));
                self.set_rv(d.a, v);
                self.pc += INST_SIZE;
            }
            Op::Wrmsr => self.exec_wrmsr(pc, d.imm as u32, d.a)?,
            Op::Rdmsr => self.exec_rdmsr(pc, d.imm as u32, d.a)?,

            Op::Syscall => {
                if self.mode == PrivMode::Kernel {
                    return Err(SimError::ModeViolation { what: "syscall from kernel mode" });
                }
                let entry = match self.syscall_entry {
                    Some(e) => e,
                    None => return Err(SimError::ModeViolation { what: "syscall with no entry" }),
                };
                self.charge(self.model.lat.syscall);
                // Return address convention: syscall leaves it in R11.
                self.set_reg(Reg::R11, pc + INST_SIZE);
                self.mode = PrivMode::Kernel;
                self.kernel_entry_side_effects();
                self.pc = entry;
            }
            Op::Sysret => {
                self.charge(self.model.lat.sysret);
                self.mode = PrivMode::User;
                self.pc = self.reg(Reg::R11);
            }
            Op::Swapgs => {
                self.charge(self.model.lat.alu + 2);
                self.swapgs_user = !self.swapgs_user;
                self.pc += INST_SIZE;
            }
            Op::Iret => {
                let frame = match self.fault_frame.take() {
                    Some(f) => f,
                    None => return Err(SimError::ModeViolation { what: "iret with no frame" }),
                };
                self.charge(self.model.lat.sysret + 20);
                self.mode = frame.prior_mode;
                self.pc = frame.resume_pc;
            }
            Op::MovCr3 => {
                let value = self.rv(d.a);
                self.charge(self.model.lat.swap_cr3);
                if !self.mmu.load_cr3(value) {
                    return Err(SimError::BadPageTable { cr3: value });
                }
                self.pc += INST_SIZE;
            }
            Op::Verw => {
                if self.model.spec.md_clear {
                    self.charge(self.model.lat.verw_clear);
                    self.fill_buffers.clear();
                } else {
                    self.charge(self.model.lat.verw_legacy);
                }
                self.pc += INST_SIZE;
            }
            Op::Invlpg => {
                let vaddr = self.rv(d.a);
                self.charge(120);
                self.mmu.flush_tlb_page(vaddr);
                self.pc += INST_SIZE;
            }

            Op::Fadd
            | Op::Fsub
            | Op::Fmul
            | Op::Fdiv
            | Op::FmovImm
            | Op::Fload
            | Op::Fstore
            | Op::FtoG => {
                if !self.fpu.enabled {
                    self.fp_disabled(d, pc)?;
                    return Ok(None);
                }
                if let Err(fault) = self.exec_fp_decoded(d) {
                    self.deliver_fault(fault, pc)?;
                    return Ok(None);
                }
                self.pc += INST_SIZE;
            }
            Op::Xsave => {
                let cost = if self.model.spec.xsaveopt {
                    self.model.lat.xsave
                } else {
                    self.model.lat.xsave * 2
                };
                self.charge(cost);
                self.pc += INST_SIZE;
            }
            Op::Xrstor => {
                self.charge(self.model.lat.xrstor);
                self.pc += INST_SIZE;
            }
        }
        Ok(None)
    }

    /// A privileged instruction fetched in user mode: `#GP`.
    #[cold]
    fn user_privilege_fault(&mut self, pc: u64) -> Result<(), SimError> {
        self.deliver_fault(Fault::GeneralProtection, pc)
    }

    /// A committed load faulted: its dependents execute transiently with
    /// whatever the vulnerability profile lets through (Meltdown / L1TF /
    /// MDS), then the fault is delivered.
    #[cold]
    fn load_fault(
        &mut self,
        fault: Fault,
        pc: u64,
        vaddr: u64,
        width: Width,
        dst: u8,
    ) -> Result<(), SimError> {
        transient::run_window(
            self,
            TransientStart::FaultingLoad {
                vaddr,
                width,
                dst: Reg::from_index((dst & 15) as usize),
                next_pc: pc + INST_SIZE,
            },
        );
        self.deliver_fault(fault, pc)
    }

    /// A conditional branch mispredicted: charge the penalty and run the
    /// wrong-path transient window.
    #[cold]
    fn mispredict_window(&mut self, wrong_path: u64) {
        self.charge(self.model.lat.mispredict_penalty);
        transient::run_window(self, TransientStart::WrongPath { pc: wrong_path });
    }

    #[cold]
    fn exec_wrmsr(&mut self, pc: u64, msr: u32, src: u8) -> Result<(), SimError> {
        let value = self.rv(src);
        let cost = if msr == crate::isa::msr_index::IA32_SPEC_CTRL {
            self.model.lat.wrmsr_spec_ctrl
        } else if msr == crate::isa::msr_index::IA32_PRED_CMD {
            self.model.lat.ibpb
        } else if msr == crate::isa::msr_index::IA32_FLUSH_CMD {
            self.model.lat.l1d_flush
        } else {
            100
        };
        match self.msrs.write(msr, value) {
            Ok(effect) => {
                self.charge(cost);
                match effect {
                    MsrEffect::None => {}
                    MsrEffect::Ibpb => self.btb.ibpb(),
                    MsrEffect::L1dFlush => self.l1d.flush_all(),
                }
                self.pc += INST_SIZE;
                Ok(())
            }
            Err(fault) => self.deliver_fault(fault, pc),
        }
    }

    #[cold]
    fn exec_rdmsr(&mut self, pc: u64, msr: u32, dst: u8) -> Result<(), SimError> {
        match self.msrs.read(msr) {
            Ok(v) => {
                self.charge(60);
                self.set_rv(dst, v);
                self.pc += INST_SIZE;
                Ok(())
            }
            Err(fault) => self.deliver_fault(fault, pc),
        }
    }

    /// An FP instruction trapped on a disabled FPU. LazyFP trap point:
    /// architecturally this faults, but on a vulnerable part the
    /// *transient* dependents still see the stale registers.
    #[cold]
    fn fp_disabled(&mut self, d: DecodedInst, pc: u64) -> Result<(), SimError> {
        if self.model.vuln.lazy_fp {
            transient::run_window(
                self,
                TransientStart::StaleFpu { inst: d, next_pc: pc + INST_SIZE },
            );
        }
        self.deliver_fault(Fault::DeviceNotAvailable, pc)
    }

    /// Executes an enabled-FPU floating point instruction (decoded form).
    fn exec_fp_decoded(&mut self, d: DecodedInst) -> Result<(), Fault> {
        let fa = (d.a & 7) as usize;
        let fb = (d.b & 7) as usize;
        match d.op {
            Op::Fadd => {
                self.charge(3);
                self.fpu.state.regs[fa] += self.fpu.state.regs[fb];
            }
            Op::Fsub => {
                self.charge(3);
                self.fpu.state.regs[fa] -= self.fpu.state.regs[fb];
            }
            Op::Fmul => {
                self.charge(4);
                self.fpu.state.regs[fa] *= self.fpu.state.regs[fb];
            }
            Op::Fdiv => {
                let lat = self.model.lat.div;
                self.charge(lat);
                self.pmc.add(Pmc::DividerActive, lat);
                self.fpu.state.regs[fa] /= self.fpu.state.regs[fb];
            }
            Op::FmovImm => {
                self.charge(self.model.lat.alu);
                self.fpu.state.regs[fa] = f64::from_bits(d.imm);
            }
            Op::Fload => {
                let vaddr = self.rv(d.b).wrapping_add(d.imm);
                let bits = self.read_virt(vaddr, Width::B8)?;
                self.fpu.state.regs[fa] = f64::from_bits(bits);
            }
            Op::Fstore => {
                let vaddr = self.rv(d.b).wrapping_add(d.imm);
                let bits = self.fpu.state.regs[fa].to_bits();
                self.write_virt(vaddr, bits, Width::B8)?;
            }
            Op::FtoG => {
                self.charge(self.model.lat.alu + 1);
                self.set_rv(d.a, self.fpu.state.regs[fb].to_bits());
            }
            // A non-FP opcode routed here is a dispatch bug in the caller;
            // surface it as an architectural #UD instead of aborting the
            // whole process.
            _ => return Err(Fault::InvalidOpcode),
        }
        Ok(())
    }

    /// Kernel-entry side effects shared by syscalls and faults: the
    /// eIBRS periodic flush (§6.2.2 bimodal latency).
    pub(crate) fn kernel_entry_side_effects(&mut self) {
        if self.model.spec.eibrs
            && self.ibrs_active()
            && self.model.spec.eibrs_flush_interval > 0
        {
            self.entry_counter += 1;
            if self.entry_counter.is_multiple_of(self.model.spec.eibrs_flush_interval) {
                self.charge(self.model.lat.eibrs_periodic_flush);
                self.btb.flush_mode(PrivMode::Kernel);
            }
        }
    }

    /// Committed indirect branch bookkeeping: prediction check, transient
    /// window on mispredict, BTB training, BHB update.
    pub(crate) fn indirect_branch(&mut self, pc: u64, actual: u64, lfence_shadow: bool) {
        if lfence_shadow {
            // AMD retpoline: the serializing lfence's wait overlaps the
            // branch's own target resolution, so the *net* extra cost of
            // the `lfence; jmp *r` pair over a bare indirect branch is
            // Table 5's "AMD" column, not the standalone lfence cost.
            let overlap =
                self.model.lat.lfence.saturating_sub(self.model.lat.amd_retpoline_extra);
            self.refund(overlap);
        }
        self.charge(self.model.lat.indirect_branch);
        let predicted = self.predict_indirect(pc);
        match predicted {
            Some(p) if p == actual => {}
            Some(p) => {
                self.charge(self.model.lat.indirect_mispredict);
                self.pmc.incr(Pmc::IndirectMispredict);
                if !lfence_shadow {
                    transient::run_window(self, TransientStart::WrongPath { pc: p });
                }
            }
            None => {
                // No usable prediction: static fall-through, always wrong
                // for a taken indirect branch.
                self.charge(self.model.lat.indirect_mispredict);
                self.pmc.incr(Pmc::IndirectMispredict);
            }
        }
        self.btb.train(pc, actual, self.mode, &self.bhb);
        self.bhb.record(pc, actual);
    }

    /// Opens the Speculative Store Bypass transient window when a committed
    /// load forwarded from an in-flight store on a vulnerable part: the
    /// load's dependents first ran ahead with the *stale* pre-store value.
    pub(crate) fn maybe_ssb_window(&mut self, vaddr: u64, width: Width, dst: Reg, next_pc: u64) {
        if let Some(stale) = self.ssb_stale(vaddr, width, dst) {
            transient::run_window(self, TransientStart::StoreBypass { stale, dst, next_pc });
        }
    }

    /// The gate of [`Machine::maybe_ssb_window`]: returns the stale
    /// bypassed value when the window should open, without opening it —
    /// so the batched run loop can flush its counters first.
    pub(crate) fn ssb_stale(&mut self, vaddr: u64, width: Width, dst: Reg) -> Option<u64> {
        if !self.model.vuln.ssb || self.ssbd_active() {
            return None;
        }
        let now = self.cycles;
        let stale = self.store_buffer.bypass_value(vaddr, width, now)?;
        if stale == self.reg(dst) {
            // Bypass world indistinguishable from the committed world.
            return None;
        }
        Some(stale)
    }

    /// Pushes a value on the simulated stack (SP convention register).
    pub(crate) fn push_stack(&mut self, value: u64) -> Result<(), SimError> {
        let sp = self.reg(Reg::SP).wrapping_sub(8);
        self.set_reg(Reg::SP, sp);
        match self.write_virt(sp, value, Width::B8) {
            Ok(()) => Ok(()),
            Err(_) => Err(SimError::ModeViolation { what: "stack push faulted" }),
        }
    }

    /// Pops a value from the simulated stack.
    pub(crate) fn pop_stack(&mut self) -> Result<u64, SimError> {
        let sp = self.reg(Reg::SP);
        let v = match self.read_virt(sp, Width::B8) {
            Ok(v) => v,
            Err(_) => return Err(SimError::ModeViolation { what: "stack pop faulted" }),
        };
        self.set_reg(Reg::SP, sp.wrapping_add(8));
        Ok(v)
    }

    /// Delivers a fault: saves a frame and vectors to the handler.
    #[cold]
    pub(crate) fn deliver_fault(&mut self, fault: Fault, faulting_pc: u64) -> Result<(), SimError> {
        let entry = match self.fault_vectors.entry_for(fault) {
            Some(e) => e,
            None => return Err(SimError::UnhandledFault { fault, at: faulting_pc }),
        };
        if self.fault_frame.is_some() {
            return Err(SimError::ModeViolation { what: "nested fault" });
        }
        // Exception entry is comparable to a syscall entry in cost.
        self.charge(self.model.lat.syscall + self.model.lat.kernel_entry_base);
        self.fault_frame = Some(FaultFrame {
            fault,
            faulting_pc,
            resume_pc: faulting_pc,
            prior_mode: self.mode,
        });
        self.mode = PrivMode::Kernel;
        self.kernel_entry_side_effects();
        self.pc = entry;
        Ok(())
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        // Publish any counter deltas a caller-driven `step` loop (or an
        // errored run) left unflushed.
        self.flush_global_counters();
    }
}
