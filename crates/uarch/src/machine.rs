//! The simulated machine: committed execution, faults, privilege
//! transitions, and cycle accounting.
//!
//! Transient (speculative) execution lives in [`crate::transient`]; the
//! machine decides *when* a transient window opens (mispredicted branch,
//! faulting load, store-bypass opportunity) and the window module decides
//! what leaks inside it.
//!
//! # Timing model
//!
//! Every committed instruction charges cycles from the CPU model's
//! [`crate::model::LatencyProfile`], plus dynamic costs: TLB walks, L1D
//! misses, branch misprediction penalties, SSBD forwarding stalls. The
//! cycle counter is the TSC that `rdtsc` reads — measurement code inside
//! the simulation sees exactly what a real `rdtsc`-based microbenchmark
//! sees.

use crate::cache::{CacheOutcome, L1Cache};
use crate::fault::{Fault, SimError};
use crate::fill_buffer::FillBuffers;
use crate::fpu::Fpu;
use crate::isa::{spec_ctrl, Flags, Inst, Pmc, Reg, Width};
use crate::mem::PhysMemory;
use crate::mmu::{Access, Mmu};
use crate::model::{CpuModel, Vendor};
use crate::msr::{MsrEffect, MsrFile};
use crate::pmc::PmcBank;
use crate::predictor::{Bhb, Btb, CondPredictor, PrivMode, Rsb};
use crate::program::{CodeMem, Program, INST_SIZE};
use crate::store_buffer::{ForwardOutcome, StoreBuffer};
use crate::trace::{TraceRecord, Tracer};
use crate::transient::{self, TransientStart};

/// Why `Machine::run` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A `Halt` instruction committed.
    Halted,
    /// A `Vmcall` committed: the guest wants the hypervisor.
    Vmcall,
}

/// The host environment a running machine calls back into.
///
/// `sim-kernel` implements this to give `Host` instructions their
/// semantics (syscall dispatch, scheduling decisions) without modelling
/// every kernel instruction — the *mitigation-relevant* instructions are
/// all real, emitted into the entry/exit/switch paths.
pub trait Env {
    /// Handles a `Host(id)` instruction.
    fn host_call(&mut self, m: &mut Machine, id: u16) -> Result<(), SimError>;
}

/// An environment that rejects all host calls; fine for raw programs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoEnv;

impl Env for NoEnv {
    fn host_call(&mut self, _m: &mut Machine, id: u16) -> Result<(), SimError> {
        Err(SimError::MissingHostHook { id })
    }
}

/// Saved state for fault delivery / `iret`.
#[derive(Debug, Clone, Copy)]
pub struct FaultFrame {
    /// The fault that was delivered.
    pub fault: Fault,
    /// Address of the faulting instruction.
    pub faulting_pc: u64,
    /// Where `iret` resumes; defaults to `faulting_pc` (retry). Handlers
    /// may advance it (e.g. to skip a probing load in attack code).
    pub resume_pc: u64,
    /// Privilege mode before the fault.
    pub prior_mode: PrivMode,
}

/// Registered fault handler entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultVectors {
    /// Page fault handler.
    pub page_fault: Option<u64>,
    /// General protection fault handler.
    pub general_protection: Option<u64>,
    /// Divide error handler.
    pub divide_error: Option<u64>,
    /// Device-not-available (FPU) handler — the LazyFP trap.
    pub device_not_available: Option<u64>,
    /// Invalid opcode handler.
    pub invalid_opcode: Option<u64>,
}

impl FaultVectors {
    fn entry_for(&self, fault: Fault) -> Option<u64> {
        match fault {
            Fault::Page { .. } => self.page_fault,
            Fault::GeneralProtection => self.general_protection,
            Fault::DivideError => self.divide_error,
            Fault::DeviceNotAvailable => self.device_not_available,
            Fault::InvalidOpcode => self.invalid_opcode,
        }
    }
}

/// The simulated CPU plus its memory system.
#[derive(Debug)]
pub struct Machine {
    /// The CPU model being simulated.
    pub model: CpuModel,
    /// General-purpose registers.
    pub regs: [u64; 16],
    /// Flags from the last compare.
    pub flags: Flags,
    /// Program counter.
    pub pc: u64,
    /// Current privilege mode.
    pub mode: PrivMode,
    /// Physical memory.
    pub mem: PhysMemory,
    /// Code memory.
    pub code: CodeMem,
    /// MMU: page tables + TLB.
    pub mmu: Mmu,
    /// L1 data cache.
    pub l1d: L1Cache,
    /// Unified L2 cache (presence only, like the L1 model). An L1D flush
    /// does not touch it, so post-flush refills pay L2 latency, not DRAM.
    pub l2: L1Cache,
    /// MDS leak source.
    pub fill_buffers: FillBuffers,
    /// Store buffer (store-to-load forwarding, SSB).
    pub store_buffer: StoreBuffer,
    /// Branch target buffer.
    pub btb: Btb,
    /// Return stack buffer.
    pub rsb: Rsb,
    /// Branch history buffer.
    pub bhb: Bhb,
    /// Conditional branch predictor.
    pub cond_pred: CondPredictor,
    /// Floating point unit.
    pub fpu: Fpu,
    /// Model-specific registers.
    pub msrs: MsrFile,
    /// Performance counters.
    pub pmc: PmcBank,
    /// Syscall entry point (kernel installs it).
    pub syscall_entry: Option<u64>,
    /// Fault handler entry points.
    pub fault_vectors: FaultVectors,
    /// Pending fault frame for `iret`.
    pub fault_frame: Option<FaultFrame>,
    /// Cycle counter (the TSC).
    cycles: u64,
    /// Committed instruction count.
    insts: u64,
    /// Kernel entries seen while eIBRS is active (drives the §6.2.2
    /// bimodal-latency behaviour).
    entry_counter: u64,
    /// An `lfence` just committed on an AMD part: the next indirect branch
    /// does not speculate (the "AMD retpoline" semantics).
    lfence_shadow: bool,
    /// Cycle at which the most recent committed load finished; `lfence`
    /// is only expensive while loads are in flight (paper §5.4's caveat).
    last_load_cycle: u64,
    /// Cycle of the last SSBD disambiguation stall: once a load has
    /// waited out the store queue, the addresses are resolved and
    /// immediately-following loads need not wait again.
    last_ssbd_stall: u64,
    /// GS-base selector (flips on `swapgs`; semantic payload is not
    /// modelled, only the mitigation cost around it).
    pub swapgs_user: bool,
    /// Optional execution trace (off by default; see
    /// [`Machine::enable_trace`]).
    pub tracer: Option<Tracer>,
}

impl Machine {
    /// Creates a machine for the given CPU model, with empty memory.
    pub fn new(model: CpuModel) -> Machine {
        let btb_entries = model.spec.btb_entries;
        let rsb_entries = model.spec.rsb_entries;
        let bhb_len = model.spec.bhb_len;
        let mut btb = Btb::new(btb_entries);
        btb.priv_tagged = model.spec.btb_priv_tagged;
        btb.history_tagged = model.spec.btb_history_tagged;
        let arch_caps = model.arch_capabilities();
        let mut mmu = Mmu::new(1536);
        mmu.pcid_enabled = model.spec.pcid;
        Machine {
            regs: [0; 16],
            flags: Flags::default(),
            pc: 0,
            mode: PrivMode::Kernel,
            mem: PhysMemory::new(),
            code: CodeMem::new(),
            mmu,
            l1d: L1Cache::standard(),
            l2: L1Cache::new(1024, 8),
            fill_buffers: FillBuffers::new(),
            store_buffer: StoreBuffer::new(),
            btb,
            rsb: Rsb::new(rsb_entries),
            bhb: Bhb::new(bhb_len),
            cond_pred: CondPredictor::new(4096),
            fpu: Fpu::new(),
            msrs: MsrFile::new(arch_caps),
            pmc: PmcBank::new(),
            syscall_entry: None,
            fault_vectors: FaultVectors::default(),
            fault_frame: None,
            cycles: 0,
            insts: 0,
            entry_counter: 0,
            lfence_shadow: false,
            last_load_cycle: 0,
            last_ssbd_stall: 0,
            swapgs_user: true,
            tracer: None,
            model,
        }
    }

    /// Enables execution tracing, keeping the last `capacity` committed
    /// instructions (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// Current cycle count (the TSC value).
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Committed instruction count.
    #[inline]
    pub fn inst_count(&self) -> u64 {
        self.insts
    }

    /// Adds cycles to the clock (used by host hooks to charge for work
    /// done in Rust on the machine's behalf, and by the hypervisor for
    /// host-side handling time).
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.pmc.add(Pmc::Cycles, cycles);
    }

    /// Refunds cycles that overlapped with other work (e.g. an `lfence`
    /// whose wait overlaps the following branch's target resolution).
    #[inline]
    fn refund(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_sub(cycles);
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Loads a program into code memory.
    pub fn load_program(&mut self, program: Program) {
        self.code.load(program);
    }

    /// Whether SSBD is currently in effect.
    #[inline]
    pub fn ssbd_active(&self) -> bool {
        self.model.spec.ssbd_supported && self.msrs.spec_ctrl() & spec_ctrl::SSBD != 0
    }

    /// Whether the live `IA32_SPEC_CTRL.IBRS` bit is set.
    #[inline]
    pub fn ibrs_active(&self) -> bool {
        self.msrs.spec_ctrl() & spec_ctrl::IBRS != 0
    }

    /// Looks up the BTB prediction for an indirect branch at `branch_pc`
    /// in the current mode, applying all model quirks (eIBRS privilege
    /// tagging, pre-Spectre IBRS blocking everything, the Ice Lake Client
    /// kernel-mode suppression, Zen 3 history tagging).
    pub fn predict_indirect(&self, branch_pc: u64) -> Option<u64> {
        if self.ibrs_active()
            && self.model.spec.ibrs_blocks_kernel_mode
            && self.mode == PrivMode::Kernel
        {
            return None;
        }
        self.btb.predict(
            branch_pc,
            self.mode,
            &self.bhb,
            self.msrs.spec_ctrl(),
            self.model.spec.ibrs_blocks_all_prediction,
        )
    }

    /// Translates and performs a committed load, charging TLB/cache/SSBD
    /// costs. Returns the loaded value.
    pub fn read_virt(&mut self, vaddr: u64, width: Width) -> Result<u64, Fault> {
        let user = self.mode == PrivMode::User;
        let tr = self.mmu.translate(vaddr, Access::Read, user)?;
        if !tr.tlb_hit {
            self.charge(self.model.lat.tlb_miss);
        }
        let now = self.cycles;
        // SSBD semantics: the load may not speculatively assume it does
        // not alias an older store whose address is still unresolved; it
        // stalls whenever a store issued within the resolution window,
        // aliasing or not. Store addresses resolve within a few cycles,
        // so the window is short — the cost comes from how *often* hot
        // loops load right after storing.
        if self.ssbd_active()
            && now.saturating_sub(self.last_ssbd_stall) > 12
            && self.store_buffer.has_unresolved_store(now, 6)
        {
            self.charge(self.model.lat.ssbd_forward_stall);
            self.last_ssbd_stall = self.cycles;
        }
        let value = match self.store_buffer.check_load(vaddr, width, now) {
            ForwardOutcome::Forwarded { value } => {
                self.charge(self.model.lat.l1_hit);
                // The line is (or becomes) resident either way.
                self.l1d.access(tr.paddr);
                value
            }
            ForwardOutcome::PartialOverlap => {
                // Must wait for the store buffer to drain: costly either way.
                self.charge(self.model.lat.l1_hit + 12);
                self.l1d.access(tr.paddr);
                self.mem.read(tr.paddr, width)
            }
            ForwardOutcome::NoConflict => {
                let cost = match self.l1d.access(tr.paddr) {
                    CacheOutcome::Hit => self.model.lat.l1_hit,
                    CacheOutcome::Miss => {
                        self.pmc.incr(Pmc::L1dMiss);
                        match self.l2.access(tr.paddr) {
                            CacheOutcome::Hit => self.model.lat.l2_hit,
                            CacheOutcome::Miss => self.model.lat.l1_miss,
                        }
                    }
                };
                self.charge(cost);
                self.mem.read(tr.paddr, width)
            }
        };
        self.fill_buffers.record(value);
        self.last_load_cycle = self.cycles;
        Ok(value)
    }

    /// Translates and performs a committed store.
    pub fn write_virt(&mut self, vaddr: u64, value: u64, width: Width) -> Result<(), Fault> {
        let user = self.mode == PrivMode::User;
        let tr = self.mmu.translate(vaddr, Access::Write, user)?;
        if !tr.tlb_hit {
            self.charge(self.model.lat.tlb_miss);
        }
        // Write-allocate; stores retire through the store buffer so the
        // visible latency is just the issue cost.
        self.l1d.access(tr.paddr);
        self.l2.access(tr.paddr);
        self.charge(self.model.lat.l1_hit);
        let now = self.cycles;
        // The overwritten value is what a bypassing load would see (SSB).
        let stale = self.mem.read(tr.paddr, width);
        self.store_buffer.push(vaddr, width, value, stale, now);
        self.mem.write(tr.paddr, value, width);
        self.fill_buffers.record(width.truncate(value));
        Ok(())
    }

    /// Runs until `Halt`, `Vmcall`, an error, or the instruction budget is
    /// exhausted.
    pub fn run(&mut self, env: &mut dyn Env, budget: u64) -> Result<Stop, SimError> {
        let mut remaining = budget;
        loop {
            if remaining == 0 {
                return Err(SimError::InstructionBudgetExhausted);
            }
            remaining -= 1;
            match self.step(env)? {
                Some(stop) => return Ok(stop),
                None => continue,
            }
        }
    }

    /// Runs at most `n` committed instructions. Returns `Ok(true)` when
    /// the machine stopped (halt or vmcall), `Ok(false)` when the slice
    /// was exhausted with the machine still runnable. Lets callers
    /// observe microarchitectural state at intermediate points.
    pub fn step_slice(&mut self, env: &mut dyn Env, n: u64) -> Result<bool, SimError> {
        for _ in 0..n {
            if self.step(env)?.is_some() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Executes one committed instruction (handling any fault it raises).
    /// Returns `Some(stop)` when the machine should stop.
    pub fn step(&mut self, env: &mut dyn Env) -> Result<Option<Stop>, SimError> {
        let pc = self.pc;
        let inst = match self.code.fetch(pc) {
            Some(i) => i.clone(),
            None => return Err(SimError::BadFetch { addr: pc }),
        };
        self.insts += 1;
        self.pmc.incr(Pmc::Instructions);
        if let Some(t) = &mut self.tracer {
            t.record(TraceRecord {
                pc,
                cycles: self.cycles,
                mode: self.mode,
                mnemonic: inst.mnemonic(),
            });
        }

        // Privilege check first: privileged instructions fault in user mode.
        if self.mode == PrivMode::User && inst.is_privileged() {
            self.deliver_fault(Fault::GeneralProtection, pc)?;
            return Ok(None);
        }

        let lfence_shadow = std::mem::take(&mut self.lfence_shadow);

        match inst {
            Inst::Nop | Inst::Pause => {
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Inst::Halt => {
                self.charge(self.model.lat.alu);
                // Advance past the halt so callers can resume execution
                // at the following instruction (checkpoint pattern).
                self.pc += INST_SIZE;
                return Ok(Some(Stop::Halted));
            }
            Inst::Vmcall => {
                // Guest-visible exit cost; host adds its handling time.
                self.charge(self.model.lat.vmexit);
                self.pc += INST_SIZE;
                return Ok(Some(Stop::Vmcall));
            }
            Inst::Host(id) => {
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
                env.host_call(self, id)?;
            }

            Inst::MovImm(d, v) => self.alu1(|_| v, d),
            Inst::Mov(d, s) => {
                let v = self.reg(s);
                self.alu1(|_| v, d)
            }
            Inst::Add(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x.wrapping_add(v), d)
            }
            Inst::AddImm(d, v) => self.alu1(|x| x.wrapping_add(v), d),
            Inst::Sub(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x.wrapping_sub(v), d)
            }
            Inst::SubImm(d, v) => self.alu1(|x| x.wrapping_sub(v), d),
            Inst::Mul(d, s) => {
                let v = self.reg(s);
                self.charge(2); // multiply is slightly slower than simple ALU
                self.alu1_free(|x| x.wrapping_mul(v), d)
            }
            Inst::Div(d, s) => {
                let divisor = self.reg(s);
                if divisor == 0 {
                    self.deliver_fault(Fault::DivideError, pc)?;
                    return Ok(None);
                }
                let div_lat = self.model.lat.div;
                self.charge(div_lat);
                self.pmc.add(Pmc::DividerActive, div_lat);
                let v = self.reg(d) / divisor;
                self.set_reg(d, v);
                self.pc += INST_SIZE;
            }
            Inst::And(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x & v, d)
            }
            Inst::AndImm(d, v) => self.alu1(|x| x & v, d),
            Inst::Or(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x | v, d)
            }
            Inst::Xor(d, s) => {
                let v = self.reg(s);
                self.alu1(|x| x ^ v, d)
            }
            Inst::XorImm(d, v) => self.alu1(|x| x ^ v, d),
            Inst::Shl(d, n) => self.alu1(|x| x << (n & 63), d),
            Inst::Shr(d, n) => self.alu1(|x| x >> (n & 63), d),
            Inst::Not(d) => self.alu1(|x| !x, d),

            Inst::Load { dst, base, offset, width } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                match self.read_virt(vaddr, width) {
                    Ok(v) => {
                        self.set_reg(dst, v);
                        // Speculative Store Bypass: if the load *forwarded*
                        // from an in-flight store, a vulnerable part may
                        // first have run ahead with the stale value.
                        self.maybe_ssb_window(vaddr, width, dst, pc + INST_SIZE);
                        self.pc += INST_SIZE;
                    }
                    Err(fault) => {
                        // The faulting load's dependents execute transiently
                        // with whatever the vulnerability lets through
                        // (Meltdown / L1TF / MDS).
                        transient::run_window(
                            self,
                            TransientStart::FaultingLoad { vaddr, width, dst, next_pc: pc + INST_SIZE },
                        );
                        self.deliver_fault(fault, pc)?;
                    }
                }
            }
            Inst::Store { src, base, offset, width } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                let value = self.reg(src);
                match self.write_virt(vaddr, value, width) {
                    Ok(()) => self.pc += INST_SIZE,
                    Err(fault) => self.deliver_fault(fault, pc)?,
                }
            }

            Inst::Cmp(a, b) => {
                self.flags = Flags::compare(self.reg(a), self.reg(b));
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Inst::CmpImm(a, imm) => {
                self.flags = Flags::compare(self.reg(a), imm);
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }
            Inst::Test(a, b) => {
                let v = self.reg(a) & self.reg(b);
                self.flags = Flags { zero: v == 0, carry: false, sign: (v as i64) < 0, overflow: false };
                self.charge(self.model.lat.alu);
                self.pc += INST_SIZE;
            }

            Inst::Jcc(cond, target) => {
                self.charge(self.model.lat.alu);
                let taken = self.flags.eval(cond);
                let predicted_taken = self.cond_pred.predict(pc, &self.bhb);
                if predicted_taken != taken {
                    self.charge(self.model.lat.mispredict_penalty);
                    let wrong_path = if predicted_taken { target } else { pc + INST_SIZE };
                    transient::run_window(self, TransientStart::WrongPath { pc: wrong_path });
                }
                self.cond_pred.update(pc, &self.bhb, taken);
                if taken {
                    self.bhb.record(pc, target);
                    self.pc = target;
                } else {
                    self.pc += INST_SIZE;
                }
            }
            Inst::Jmp(target) => {
                self.charge(self.model.lat.alu);
                self.bhb.record(pc, target);
                self.pc = target;
            }
            Inst::JmpInd(r) => {
                let target = self.reg(r);
                self.indirect_branch(pc, target, lfence_shadow);
                self.pc = target;
            }
            Inst::Call(target) => {
                self.charge(self.model.lat.alu);
                self.push_stack(pc + INST_SIZE)?;
                self.rsb.push(pc + INST_SIZE);
                self.bhb.record(pc, target);
                self.pc = target;
            }
            Inst::CallInd(r) => {
                let target = self.reg(r);
                self.indirect_branch(pc, target, lfence_shadow);
                self.push_stack(pc + INST_SIZE)?;
                self.rsb.push(pc + INST_SIZE);
                self.pc = target;
            }
            Inst::Ret => {
                self.charge(self.model.lat.alu);
                let actual = self.pop_stack()?;
                let predicted = self.rsb.pop();
                match predicted {
                    Some(p) if p == actual => {}
                    Some(p) => {
                        // RSB mispredict: speculation goes to the stale RSB
                        // entry. This is both the retpoline capture (by
                        // design) and the SpectreRSB vector.
                        self.charge(self.model.lat.ret_mispredict);
                        transient::run_window(self, TransientStart::WrongPath { pc: p });
                    }
                    None => {
                        // RSB underflow: newer parts fall back to the BTB.
                        self.charge(self.model.lat.ret_mispredict);
                        if let Some(p) = self.predict_indirect(pc) {
                            if p != actual {
                                transient::run_window(self, TransientStart::WrongPath { pc: p });
                            }
                        }
                    }
                }
                self.bhb.record(pc, actual);
                self.pc = actual;
            }

            Inst::Cmov(cond, d, s) => {
                // Conditional moves are cheap to execute but sit on the
                // dependency chain of whatever consumes the result — for
                // index masking, the following load cannot begin until the
                // flags and both inputs resolve. The extra cycles model
                // that serialization (the real cost of the mitigation,
                // §5.4).
                let v = self.reg(s);
                let take = self.flags.eval(cond);
                self.charge(self.model.lat.alu + 3);
                if take {
                    self.set_reg(d, v);
                }
                self.pc += INST_SIZE;
            }
            Inst::CmovImm(cond, d, imm) => {
                let take = self.flags.eval(cond);
                self.charge(self.model.lat.alu + 3);
                if take {
                    self.set_reg(d, imm);
                }
                self.pc += INST_SIZE;
            }

            Inst::Lfence => {
                // On Intel, `lfence` only waits for in-flight loads: with
                // nothing outstanding (e.g. right after `swapgs` on kernel
                // entry) it is nearly free — which is why the paper found
                // no measurable LEBench impact from the Spectre V1 kernel
                // mitigation (§4.6). On AMD it is dispatch-serializing (as
                // Linux configures it), so the full cost always applies.
                let loads_in_flight = self.cycles.saturating_sub(self.last_load_cycle) < 20;
                let cost = if self.model.vendor == Vendor::Amd || loads_in_flight {
                    self.model.lat.lfence
                } else {
                    2
                };
                self.charge(cost);
                if self.model.vendor == Vendor::Amd {
                    // The next indirect branch will not speculate.
                    self.lfence_shadow = true;
                }
                self.pc += INST_SIZE;
            }
            Inst::Mfence | Inst::Sfence => {
                self.charge(self.model.lat.lfence + 10);
                self.store_buffer.flush();
                self.pc += INST_SIZE;
            }
            Inst::Clflush(r) => {
                let vaddr = self.reg(r);
                self.charge(self.model.lat.l1_hit + 8);
                let user = self.mode == PrivMode::User;
                if let Ok(tr) = self.mmu.translate(vaddr, Access::Read, user) {
                    self.l1d.flush_line(tr.paddr);
                }
                self.pc += INST_SIZE;
            }

            Inst::Rdtsc(d) => {
                self.charge(15);
                let c = self.cycles;
                self.set_reg(d, c);
                self.pc += INST_SIZE;
            }
            Inst::Rdpmc { pmc, dst } => {
                self.charge(20);
                let v = self.pmc.read(pmc);
                self.set_reg(dst, v);
                self.pc += INST_SIZE;
            }
            Inst::Wrmsr { msr, src } => {
                let value = self.reg(src);
                let cost = if msr == crate::isa::msr_index::IA32_SPEC_CTRL {
                    self.model.lat.wrmsr_spec_ctrl
                } else if msr == crate::isa::msr_index::IA32_PRED_CMD {
                    self.model.lat.ibpb
                } else if msr == crate::isa::msr_index::IA32_FLUSH_CMD {
                    self.model.lat.l1d_flush
                } else {
                    100
                };
                match self.msrs.write(msr, value) {
                    Ok(effect) => {
                        self.charge(cost);
                        match effect {
                            MsrEffect::None => {}
                            MsrEffect::Ibpb => self.btb.ibpb(),
                            MsrEffect::L1dFlush => self.l1d.flush_all(),
                        }
                        self.pc += INST_SIZE;
                    }
                    Err(fault) => self.deliver_fault(fault, pc)?,
                }
            }
            Inst::Rdmsr { msr, dst } => match self.msrs.read(msr) {
                Ok(v) => {
                    self.charge(60);
                    self.set_reg(dst, v);
                    self.pc += INST_SIZE;
                }
                Err(fault) => self.deliver_fault(fault, pc)?,
            },

            Inst::Syscall => {
                if self.mode == PrivMode::Kernel {
                    return Err(SimError::ModeViolation { what: "syscall from kernel mode" });
                }
                let entry = match self.syscall_entry {
                    Some(e) => e,
                    None => return Err(SimError::ModeViolation { what: "syscall with no entry" }),
                };
                self.charge(self.model.lat.syscall);
                // Return address convention: syscall leaves it in R11.
                self.set_reg(Reg::R11, pc + INST_SIZE);
                self.mode = PrivMode::Kernel;
                self.kernel_entry_side_effects();
                self.pc = entry;
            }
            Inst::Sysret => {
                self.charge(self.model.lat.sysret);
                self.mode = PrivMode::User;
                self.pc = self.reg(Reg::R11);
            }
            Inst::Swapgs => {
                self.charge(self.model.lat.alu + 2);
                self.swapgs_user = !self.swapgs_user;
                self.pc += INST_SIZE;
            }
            Inst::Iret => {
                let frame = match self.fault_frame.take() {
                    Some(f) => f,
                    None => return Err(SimError::ModeViolation { what: "iret with no frame" }),
                };
                self.charge(self.model.lat.sysret + 20);
                self.mode = frame.prior_mode;
                self.pc = frame.resume_pc;
            }
            Inst::MovCr3(r) => {
                let value = self.reg(r);
                self.charge(self.model.lat.swap_cr3);
                if !self.mmu.load_cr3(value) {
                    return Err(SimError::BadPageTable { cr3: value });
                }
                self.pc += INST_SIZE;
            }
            Inst::Verw => {
                if self.model.spec.md_clear {
                    self.charge(self.model.lat.verw_clear);
                    self.fill_buffers.clear();
                } else {
                    self.charge(self.model.lat.verw_legacy);
                }
                self.pc += INST_SIZE;
            }
            Inst::Invlpg(r) => {
                let vaddr = self.reg(r);
                self.charge(120);
                self.mmu.flush_tlb_page(vaddr);
                self.pc += INST_SIZE;
            }

            Inst::Fadd(..)
            | Inst::Fsub(..)
            | Inst::Fmul(..)
            | Inst::Fdiv(..)
            | Inst::FmovImm(..)
            | Inst::Fload { .. }
            | Inst::Fstore { .. }
            | Inst::FtoG(..) => {
                if !self.fpu.enabled {
                    // LazyFP trap point: architecturally this faults. On a
                    // vulnerable part the *transient* dependents still see
                    // the stale registers.
                    if self.model.vuln.lazy_fp {
                        transient::run_window(
                            self,
                            TransientStart::StaleFpu { inst: inst.clone(), next_pc: pc + INST_SIZE },
                        );
                    }
                    self.deliver_fault(Fault::DeviceNotAvailable, pc)?;
                    return Ok(None);
                }
                if let Err(fault) = self.exec_fp(&inst) {
                    self.deliver_fault(fault, pc)?;
                    return Ok(None);
                }
                self.pc += INST_SIZE;
            }
            Inst::Xsave => {
                let cost = if self.model.spec.xsaveopt {
                    self.model.lat.xsave
                } else {
                    self.model.lat.xsave * 2
                };
                self.charge(cost);
                self.pc += INST_SIZE;
            }
            Inst::Xrstor => {
                self.charge(self.model.lat.xrstor);
                self.pc += INST_SIZE;
            }
        }
        Ok(None)
    }

    /// Kernel-entry side effects shared by syscalls and faults: the
    /// eIBRS periodic flush (§6.2.2 bimodal latency).
    fn kernel_entry_side_effects(&mut self) {
        if self.model.spec.eibrs
            && self.ibrs_active()
            && self.model.spec.eibrs_flush_interval > 0
        {
            self.entry_counter += 1;
            if self.entry_counter.is_multiple_of(self.model.spec.eibrs_flush_interval) {
                self.charge(self.model.lat.eibrs_periodic_flush);
                self.btb.flush_mode(PrivMode::Kernel);
            }
        }
    }

    /// Executes an enabled-FPU floating point instruction.
    fn exec_fp(&mut self, inst: &Inst) -> Result<(), Fault> {
        match *inst {
            Inst::Fadd(d, s) => {
                self.charge(3);
                self.fpu.state.regs[d.index()] += self.fpu.state.regs[s.index()];
            }
            Inst::Fsub(d, s) => {
                self.charge(3);
                self.fpu.state.regs[d.index()] -= self.fpu.state.regs[s.index()];
            }
            Inst::Fmul(d, s) => {
                self.charge(4);
                self.fpu.state.regs[d.index()] *= self.fpu.state.regs[s.index()];
            }
            Inst::Fdiv(d, s) => {
                let lat = self.model.lat.div;
                self.charge(lat);
                self.pmc.add(Pmc::DividerActive, lat);
                self.fpu.state.regs[d.index()] /= self.fpu.state.regs[s.index()];
            }
            Inst::FmovImm(d, v) => {
                self.charge(self.model.lat.alu);
                self.fpu.state.regs[d.index()] = v;
            }
            Inst::Fload { dst, base, offset } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                let bits = self.read_virt(vaddr, Width::B8)?;
                self.fpu.state.regs[dst.index()] = f64::from_bits(bits);
            }
            Inst::Fstore { src, base, offset } => {
                let vaddr = self.reg(base).wrapping_add(offset as u64);
                let bits = self.fpu.state.regs[src.index()].to_bits();
                self.write_virt(vaddr, bits, Width::B8)?;
            }
            Inst::FtoG(d, s) => {
                self.charge(self.model.lat.alu + 1);
                self.regs[d.index()] = self.fpu.state.regs[s.index()].to_bits();
            }
            // A non-FP instruction routed here is a decoder bug in the
            // caller; surface it as an architectural #UD instead of
            // aborting the whole process.
            _ => return Err(Fault::InvalidOpcode),
        }
        Ok(())
    }

    /// Committed indirect branch bookkeeping: prediction check, transient
    /// window on mispredict, BTB training, BHB update.
    fn indirect_branch(&mut self, pc: u64, actual: u64, lfence_shadow: bool) {
        if lfence_shadow {
            // AMD retpoline: the serializing lfence's wait overlaps the
            // branch's own target resolution, so the *net* extra cost of
            // the `lfence; jmp *r` pair over a bare indirect branch is
            // Table 5's "AMD" column, not the standalone lfence cost.
            let overlap =
                self.model.lat.lfence.saturating_sub(self.model.lat.amd_retpoline_extra);
            self.refund(overlap);
        }
        self.charge(self.model.lat.indirect_branch);
        let predicted = self.predict_indirect(pc);
        match predicted {
            Some(p) if p == actual => {}
            Some(p) => {
                self.charge(self.model.lat.indirect_mispredict);
                self.pmc.incr(Pmc::IndirectMispredict);
                if !lfence_shadow {
                    transient::run_window(self, TransientStart::WrongPath { pc: p });
                }
            }
            None => {
                // No usable prediction: static fall-through, always wrong
                // for a taken indirect branch.
                self.charge(self.model.lat.indirect_mispredict);
                self.pmc.incr(Pmc::IndirectMispredict);
            }
        }
        self.btb.train(pc, actual, self.mode, &self.bhb);
        self.bhb.record(pc, actual);
    }

    /// Opens the Speculative Store Bypass transient window when a committed
    /// load forwarded from an in-flight store on a vulnerable part: the
    /// load's dependents first ran ahead with the *stale* pre-store value.
    fn maybe_ssb_window(&mut self, vaddr: u64, width: Width, dst: Reg, next_pc: u64) {
        if !self.model.vuln.ssb || self.ssbd_active() {
            return;
        }
        let now = self.cycles;
        let stale = match self.store_buffer.bypass_value(vaddr, width, now) {
            Some(s) => s,
            None => return,
        };
        if stale == self.reg(dst) {
            // Bypass world indistinguishable from the committed world.
            return;
        }
        transient::run_window(self, TransientStart::StoreBypass { stale, dst, next_pc });
    }

    /// Pushes a value on the simulated stack (SP convention register).
    fn push_stack(&mut self, value: u64) -> Result<(), SimError> {
        let sp = self.reg(Reg::SP).wrapping_sub(8);
        self.set_reg(Reg::SP, sp);
        match self.write_virt(sp, value, Width::B8) {
            Ok(()) => Ok(()),
            Err(_) => Err(SimError::ModeViolation { what: "stack push faulted" }),
        }
    }

    /// Pops a value from the simulated stack.
    fn pop_stack(&mut self) -> Result<u64, SimError> {
        let sp = self.reg(Reg::SP);
        let v = match self.read_virt(sp, Width::B8) {
            Ok(v) => v,
            Err(_) => return Err(SimError::ModeViolation { what: "stack pop faulted" }),
        };
        self.set_reg(Reg::SP, sp.wrapping_add(8));
        Ok(v)
    }

    /// Delivers a fault: saves a frame and vectors to the handler.
    fn deliver_fault(&mut self, fault: Fault, faulting_pc: u64) -> Result<(), SimError> {
        let entry = match self.fault_vectors.entry_for(fault) {
            Some(e) => e,
            None => return Err(SimError::UnhandledFault { fault, at: faulting_pc }),
        };
        if self.fault_frame.is_some() {
            return Err(SimError::ModeViolation { what: "nested fault" });
        }
        // Exception entry is comparable to a syscall entry in cost.
        self.charge(self.model.lat.syscall + self.model.lat.kernel_entry_base);
        self.fault_frame = Some(FaultFrame {
            fault,
            faulting_pc,
            resume_pc: faulting_pc,
            prior_mode: self.mode,
        });
        self.mode = PrivMode::Kernel;
        self.kernel_entry_side_effects();
        self.pc = entry;
        Ok(())
    }

    fn alu1(&mut self, f: impl FnOnce(u64) -> u64, d: Reg) {
        self.charge(self.model.lat.alu);
        self.alu1_free(f, d);
    }

    fn alu1_free(&mut self, f: impl FnOnce(u64) -> u64, d: Reg) {
        let v = f(self.reg(d));
        self.set_reg(d, v);
        self.pc += INST_SIZE;
    }
}
