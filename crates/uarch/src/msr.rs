//! Model-specific register file.
//!
//! Only the MSRs the mitigations touch are modelled. `IA32_PRED_CMD` and
//! `IA32_FLUSH_CMD` are write-only command registers whose side effects
//! (IBPB, L1D flush) the machine performs; their stored value is always
//! zero, as on hardware.

use crate::fault::Fault;
use crate::isa::msr_index;

/// Side effect requested by an MSR write, to be performed by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrEffect {
    /// No side effect beyond storing the value.
    None,
    /// Flush the indirect branch predictors (IBPB).
    Ibpb,
    /// Flush the L1D cache.
    L1dFlush,
}

/// The MSR file.
#[derive(Debug, Clone)]
pub struct MsrFile {
    spec_ctrl: u64,
    arch_capabilities: u64,
}

impl MsrFile {
    /// Creates an MSR file advertising the given `IA32_ARCH_CAPABILITIES`.
    pub fn new(arch_capabilities: u64) -> MsrFile {
        MsrFile { spec_ctrl: 0, arch_capabilities }
    }

    /// Current `IA32_SPEC_CTRL` value (IBRS/STIBP/SSBD bits).
    #[inline]
    pub fn spec_ctrl(&self) -> u64 {
        self.spec_ctrl
    }

    /// Reads an MSR. Unknown MSRs fault (#GP), as on hardware.
    pub fn read(&self, msr: u32) -> Result<u64, Fault> {
        match msr {
            msr_index::IA32_SPEC_CTRL => Ok(self.spec_ctrl),
            msr_index::IA32_ARCH_CAPABILITIES => Ok(self.arch_capabilities),
            msr_index::IA32_PRED_CMD | msr_index::IA32_FLUSH_CMD => {
                // Write-only command registers.
                Err(Fault::GeneralProtection)
            }
            _ => Err(Fault::GeneralProtection),
        }
    }

    /// Writes an MSR, returning the side effect the machine must perform.
    pub fn write(&mut self, msr: u32, value: u64) -> Result<MsrEffect, Fault> {
        match msr {
            msr_index::IA32_SPEC_CTRL => {
                self.spec_ctrl = value & 0b111;
                Ok(MsrEffect::None)
            }
            msr_index::IA32_PRED_CMD => {
                if value & 1 != 0 {
                    Ok(MsrEffect::Ibpb)
                } else {
                    Ok(MsrEffect::None)
                }
            }
            msr_index::IA32_FLUSH_CMD => {
                if value & 1 != 0 {
                    Ok(MsrEffect::L1dFlush)
                } else {
                    Ok(MsrEffect::None)
                }
            }
            msr_index::IA32_ARCH_CAPABILITIES => Err(Fault::GeneralProtection),
            _ => Err(Fault::GeneralProtection),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::spec_ctrl;

    #[test]
    fn spec_ctrl_roundtrip() {
        let mut m = MsrFile::new(0);
        m.write(msr_index::IA32_SPEC_CTRL, spec_ctrl::IBRS | spec_ctrl::SSBD).unwrap();
        assert_eq!(
            m.read(msr_index::IA32_SPEC_CTRL).unwrap(),
            spec_ctrl::IBRS | spec_ctrl::SSBD
        );
        // Reserved bits are masked off.
        m.write(msr_index::IA32_SPEC_CTRL, 0xff).unwrap();
        assert_eq!(m.read(msr_index::IA32_SPEC_CTRL).unwrap(), 0b111);
    }

    #[test]
    fn pred_cmd_triggers_ibpb() {
        let mut m = MsrFile::new(0);
        assert_eq!(m.write(msr_index::IA32_PRED_CMD, 1).unwrap(), MsrEffect::Ibpb);
        assert_eq!(m.write(msr_index::IA32_PRED_CMD, 0).unwrap(), MsrEffect::None);
        assert!(m.read(msr_index::IA32_PRED_CMD).is_err());
    }

    #[test]
    fn flush_cmd_triggers_l1d_flush() {
        let mut m = MsrFile::new(0);
        assert_eq!(m.write(msr_index::IA32_FLUSH_CMD, 1).unwrap(), MsrEffect::L1dFlush);
    }

    #[test]
    fn arch_capabilities_is_read_only() {
        let mut m = MsrFile::new(0x2a);
        assert_eq!(m.read(msr_index::IA32_ARCH_CAPABILITIES).unwrap(), 0x2a);
        assert!(m.write(msr_index::IA32_ARCH_CAPABILITIES, 0).is_err());
    }

    #[test]
    fn unknown_msr_faults() {
        let mut m = MsrFile::new(0);
        assert!(m.read(0x1234).is_err());
        assert!(m.write(0x1234, 0).is_err());
    }
}
