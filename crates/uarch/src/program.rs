//! Program construction and code memory.
//!
//! Code lives at 64-bit addresses, four address units per instruction (a
//! fixed-width encoding), so branch targets, BTB indices, and RSB entries
//! are real addresses. [`ProgramBuilder`] is a tiny assembler with labels;
//! [`CodeMem`] holds linked segments for the machine to fetch from.

use std::collections::HashMap;

use crate::decode::{DecodedInst, DecodedProgram};
use crate::isa::{Cond, Inst, Reg};

/// Bytes of address space per instruction.
pub const INST_SIZE: u64 = 4;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Fixup {
    Jcc(Cond),
    Jmp,
    Call,
    /// Materialize the label address into a register (`MovImm`).
    Lea(Reg),
}

/// A small assembler that resolves labels at link time.
///
/// # Examples
///
/// ```
/// use uarch::program::ProgramBuilder;
/// use uarch::isa::{Inst, Reg, Cond};
///
/// let mut b = ProgramBuilder::new();
/// let done = b.new_label();
/// b.mov_imm(Reg::R0, 10);
/// let top = b.here();
/// b.sub_imm(Reg::R0, 1);
/// b.cmp_imm(Reg::R0, 0);
/// b.jcc(Cond::Eq, done);
/// b.jmp(top);
/// b.bind(done);
/// b.push(Inst::Halt);
/// let prog = b.link(0x1000);
/// assert_eq!(prog.base(), 0x1000);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    fixups: Vec<(usize, Label, Fixup)>,
    labels: Vec<Option<usize>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.insts.len());
    }

    /// Returns a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Appends many raw instructions.
    pub fn extend(&mut self, insts: impl IntoIterator<Item = Inst>) -> &mut Self {
        self.insts.extend(insts);
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Emits a conditional branch to `label`.
    pub fn jcc(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Jcc(cond)));
        self.insts.push(Inst::Jcc(cond, 0));
        self
    }

    /// Emits an unconditional branch to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Jmp));
        self.insts.push(Inst::Jmp(0));
        self
    }

    /// Emits a direct call to `label`.
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Call));
        self.insts.push(Inst::Call(0));
        self
    }

    /// Emits `MovImm(dst, addr_of(label))` — load a label's address.
    pub fn lea(&mut self, dst: Reg, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Lea(dst)));
        self.insts.push(Inst::MovImm(dst, 0));
        self
    }

    /// Convenience: `dst = imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Inst::MovImm(dst, imm))
    }

    /// Convenience: `dst = dst - imm`.
    pub fn sub_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Inst::SubImm(dst, imm))
    }

    /// Convenience: `dst = dst + imm`.
    pub fn add_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Inst::AddImm(dst, imm))
    }

    /// Convenience: compare register with immediate.
    pub fn cmp_imm(&mut self, r: Reg, imm: u64) -> &mut Self {
        self.push(Inst::CmpImm(r, imm))
    }

    /// Resolves labels against `base` and produces a [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn link(mut self, base: u64) -> Program {
        let resolve = |labels: &[Option<usize>], l: Label| -> u64 {
            let off = match labels[l.0] {
                Some(off) => off,
                None => panic!("unbound label referenced"),
            };
            base + off as u64 * INST_SIZE
        };
        for (idx, label, fixup) in std::mem::take(&mut self.fixups) {
            let addr = resolve(&self.labels, label);
            self.insts[idx] = match fixup {
                Fixup::Jcc(c) => Inst::Jcc(c, addr),
                Fixup::Jmp => Inst::Jmp(addr),
                Fixup::Call => Inst::Call(addr),
                Fixup::Lea(r) => Inst::MovImm(r, addr),
            };
        }
        let label_addrs = self
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, off)| off.map(|o| (Label(i), base + o as u64 * INST_SIZE)))
            .collect();
        // Decode-once: the machine dispatches over this stream and never
        // pattern-matches `Inst` again.
        let decoded = DecodedProgram::from_insts(base, &self.insts);
        Program { base, insts: self.insts, label_addrs, decoded }
    }
}

/// A linked program: instructions at consecutive addresses from `base`,
/// plus the pre-decoded stream built once at link time.
#[derive(Debug, Clone)]
pub struct Program {
    base: u64,
    insts: Vec<Inst>,
    label_addrs: HashMap<Label, u64>,
    decoded: DecodedProgram,
}

impl Program {
    /// The base code address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The address one past the last instruction.
    pub fn end(&self) -> u64 {
        self.base + self.insts.len() as u64 * INST_SIZE
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The resolved address of a bound label.
    ///
    /// # Panics
    ///
    /// Panics if the label was never bound.
    pub fn addr(&self, label: Label) -> u64 {
        match self.label_addrs.get(&label) {
            Some(addr) => *addr,
            None => panic!("label not bound in this program"),
        }
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The pre-decoded instruction stream.
    pub fn decoded(&self) -> &DecodedProgram {
        &self.decoded
    }
}

/// Code memory: a set of non-overlapping linked segments.
#[derive(Debug, Default)]
pub struct CodeMem {
    /// Segments sorted by base address.
    segments: Vec<Program>,
}

impl CodeMem {
    /// Creates empty code memory.
    pub fn new() -> CodeMem {
        CodeMem::default()
    }

    /// Loads a program.
    ///
    /// # Panics
    ///
    /// Panics if the segment overlaps an existing one.
    pub fn load(&mut self, program: Program) {
        let pos = self.segments.partition_point(|s| s.base() < program.base());
        if pos > 0 {
            assert!(self.segments[pos - 1].end() <= program.base(), "overlapping code segment");
        }
        if pos < self.segments.len() {
            assert!(program.end() <= self.segments[pos].base(), "overlapping code segment");
        }
        self.segments.insert(pos, program);
    }

    /// Fetches the instruction at `addr`, if any.
    #[inline]
    pub fn fetch(&self, addr: u64) -> Option<&Inst> {
        let pos = self.segments.partition_point(|s| s.base() <= addr);
        if pos == 0 {
            return None;
        }
        let seg = &self.segments[pos - 1];
        if addr >= seg.end() || !(addr - seg.base()).is_multiple_of(INST_SIZE) {
            return None;
        }
        seg.insts.get(((addr - seg.base()) / INST_SIZE) as usize)
    }

    /// Fetches the pre-decoded instruction at `addr`, if any.
    ///
    /// `hint` caches the index of the segment that satisfied the previous
    /// fetch: straight-line and loop execution stay inside one segment, so
    /// the common case is a single bounds check with no search. On a miss
    /// (cross-segment branch, syscall entry) the binary search runs and the
    /// hint is refreshed. A stale or garbage hint is never incorrect — only
    /// slow — so callers may carry it across `load` calls.
    #[inline]
    pub fn fetch_decoded(&self, addr: u64, hint: &mut usize) -> Option<DecodedInst> {
        if let Some(seg) = self.segments.get(*hint) {
            if let Some(d) = seg.decoded.fetch(addr) {
                return Some(d);
            }
        }
        self.fetch_decoded_slow(addr, hint)
    }

    /// The search path of [`CodeMem::fetch_decoded`], out of line so the
    /// hinted fast path stays small.
    #[cold]
    fn fetch_decoded_slow(&self, addr: u64, hint: &mut usize) -> Option<DecodedInst> {
        let pos = self.segments.partition_point(|s| s.base() <= addr);
        if pos == 0 {
            return None;
        }
        let d = self.segments[pos - 1].decoded.fetch(addr)?;
        *hint = pos - 1;
        Some(d)
    }

    /// Resolves the decoded segment whose stream contains `addr`, for
    /// callers that walk the stream by index ([`DecodedProgram::get`])
    /// instead of fetching one instruction per call. Same hint protocol
    /// as [`CodeMem::fetch_decoded`].
    pub fn decoded_segment(&self, addr: u64, hint: &mut usize) -> Option<&crate::decode::DecodedProgram> {
        if let Some(seg) = self.segments.get(*hint) {
            if seg.decoded.contains(addr) {
                return Some(&seg.decoded);
            }
        }
        let pos = self.segments.partition_point(|s| s.base() <= addr);
        if pos == 0 {
            return None;
        }
        let d = &self.segments[pos - 1].decoded;
        if d.contains(addr) {
            *hint = pos - 1;
            Some(d)
        } else {
            None
        }
    }

    /// Total instruction count across segments.
    pub fn total_insts(&self) -> usize {
        self.segments.iter().map(Program::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cond;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        let fwd = b.new_label();
        let back = b.here(); // offset 0
        b.push(Inst::Nop); // offset 1... wait, here() emits nothing
        b.jmp(fwd); // offset 1
        b.bind(fwd); // offset 2
        b.jmp(back); // offset 2
        let p = b.link(0x1000);
        assert_eq!(p.insts()[1], Inst::Jmp(0x1000 + 2 * INST_SIZE));
        assert_eq!(p.insts()[2], Inst::Jmp(0x1000));
        assert_eq!(p.addr(back), 0x1000);
    }

    #[test]
    fn lea_materializes_label_address() {
        let mut b = ProgramBuilder::new();
        let target = b.new_label();
        b.lea(Reg::R3, target);
        b.push(Inst::Nop);
        b.bind(target);
        b.push(Inst::Halt);
        let p = b.link(0x2000);
        assert_eq!(p.insts()[0], Inst::MovImm(Reg::R3, 0x2000 + 2 * INST_SIZE));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_link() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jmp(l);
        let _ = b.link(0);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn code_mem_fetch() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Nop).push(Inst::Halt);
        let p = b.link(0x1000);
        let mut cm = CodeMem::new();
        cm.load(p);
        assert_eq!(cm.fetch(0x1000), Some(&Inst::Nop));
        assert_eq!(cm.fetch(0x1004), Some(&Inst::Halt));
        assert_eq!(cm.fetch(0x1008), None);
        assert_eq!(cm.fetch(0x0fff), None);
        assert_eq!(cm.fetch(0x1002), None, "misaligned");
    }

    #[test]
    fn code_mem_multiple_segments() {
        let mut cm = CodeMem::new();
        let mut b = ProgramBuilder::new();
        b.push(Inst::Nop);
        cm.load(b.link(0x9000));
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        cm.load(b.link(0x1000));
        assert_eq!(cm.fetch(0x1000), Some(&Inst::Halt));
        assert_eq!(cm.fetch(0x9000), Some(&Inst::Nop));
        assert_eq!(cm.total_insts(), 2);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_segments_panic() {
        let mut cm = CodeMem::new();
        let mut b = ProgramBuilder::new();
        b.push(Inst::Nop).push(Inst::Nop);
        cm.load(b.link(0x1000));
        let mut b = ProgramBuilder::new();
        b.push(Inst::Nop);
        cm.load(b.link(0x1004));
    }

    #[test]
    fn builder_example_loop_links() {
        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        b.mov_imm(Reg::R0, 10);
        let top = b.here();
        b.sub_imm(Reg::R0, 1);
        b.cmp_imm(Reg::R0, 0);
        b.jcc(Cond::Eq, done);
        b.jmp(top);
        b.bind(done);
        b.push(Inst::Halt);
        let p = b.link(0);
        assert_eq!(p.len(), 6);
        assert_eq!(p.addr(top), INST_SIZE);
    }
}
