//! Store buffer with store-to-load forwarding.
//!
//! Committed stores sit in the store buffer until they "drain" (a fixed
//! cycle window in this model). A younger load from the same address
//! normally *forwards* from the buffered store — fast. Two consequences
//! matter here:
//!
//! * **Speculative Store Bypass** (§3.2, §5.5): while an older store's
//!   address is still unresolved, the memory-disambiguation predictor may
//!   let a younger load run ahead and read the *stale* value from memory.
//!   The transient path consults [`StoreBuffer::bypass_value`] for this.
//! * **SSBD**: disabling the bypass means every load that could alias an
//!   in-flight store must wait for it to resolve; the model charges
//!   `ssbd_forward_stall` cycles per forwarding opportunity, which is what
//!   makes store-heavy PARSEC kernels slow down (Figure 5).

use std::collections::VecDeque;

use crate::isa::Width;

/// How many cycles a store remains "in flight" (address unresolved /
/// undrained) after it executes.
pub const DRAIN_WINDOW: u64 = 60;

/// Maximum buffered stores (x86 store buffers are ~42-56 entries).
pub const CAPACITY: usize = 48;

/// A buffered store.
#[derive(Debug, Clone, Copy)]
pub struct BufferedStore {
    /// Virtual address of the store.
    pub vaddr: u64,
    /// Access width.
    pub width: Width,
    /// The value being stored.
    pub value: u64,
    /// The memory value this store overwrote — what a bypassing load
    /// transiently observes under Speculative Store Bypass.
    pub stale: u64,
    /// Cycle at which the store executed.
    pub cycle: u64,
}

impl BufferedStore {
    /// Whether this store's bytes overlap a load of `width` at `vaddr`.
    fn overlaps(&self, vaddr: u64, width: Width) -> bool {
        let a0 = self.vaddr;
        let a1 = self.vaddr + self.width.bytes();
        let b0 = vaddr;
        let b1 = vaddr + width.bytes();
        a0 < b1 && b0 < a1
    }
}

/// What the store buffer says about a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// No in-flight store overlaps the load.
    NoConflict,
    /// An in-flight store fully covers the load; forwarding supplies
    /// `value`.
    Forwarded {
        /// The forwarded value, already truncated to the load width.
        value: u64,
    },
    /// An in-flight store partially overlaps the load; the load must wait
    /// for the store to drain (no fast-forward possible).
    PartialOverlap,
}

/// The store buffer.
#[derive(Debug, Default)]
pub struct StoreBuffer {
    entries: VecDeque<BufferedStore>,
    /// Number of loads that used store-to-load forwarding (diagnostics and
    /// the SSBD cost model).
    pub forwards: u64,
    /// Conservative address-range superset of every buffered store:
    /// `[lo, hi)` contains all entries' bytes. It only grows while the
    /// buffer is non-empty (draining does not shrink it) and resets when
    /// the buffer empties. A load disjoint from the superset provably
    /// overlaps nothing, so the per-load reverse scan — the hot cost of
    /// every committed load — is skipped without changing any outcome.
    lo: u64,
    hi: u64,
}

impl StoreBuffer {
    /// Creates an empty store buffer.
    pub fn new() -> StoreBuffer {
        StoreBuffer::default()
    }

    /// Records a committed store at the given cycle. `stale` is the memory
    /// value being overwritten (the SSB leak payload).
    pub fn push(&mut self, vaddr: u64, width: Width, value: u64, stale: u64, cycle: u64) {
        if self.entries.is_empty() {
            self.lo = vaddr;
            self.hi = vaddr + width.bytes();
        } else {
            self.lo = self.lo.min(vaddr);
            self.hi = self.hi.max(vaddr + width.bytes());
        }
        if self.entries.len() >= CAPACITY {
            self.entries.pop_front();
        }
        self.entries.push_back(BufferedStore {
            vaddr,
            width,
            value: width.truncate(value),
            stale: width.truncate(stale),
            cycle,
        });
    }

    /// Drops stores older than the drain window relative to `now`.
    pub fn drain(&mut self, now: u64) {
        while let Some(front) = self.entries.front() {
            if now.saturating_sub(front.cycle) > DRAIN_WINDOW {
                self.entries.pop_front();
            } else {
                break;
            }
        }
        if self.entries.is_empty() {
            self.lo = 0;
            self.hi = 0;
        }
    }

    /// Empties the buffer (mfence/sfence, serializing events).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.lo = 0;
        self.hi = 0;
    }

    /// Whether a load of `width` at `vaddr` is disjoint from the range
    /// superset (and therefore from every buffered store).
    #[inline]
    fn disjoint(&self, vaddr: u64, width: Width) -> bool {
        self.entries.is_empty() || vaddr + width.bytes() <= self.lo || vaddr >= self.hi
    }

    /// Checks whether a load at `vaddr` of `width` at cycle `now` hits an
    /// in-flight store, and with what outcome.
    ///
    /// The youngest overlapping store wins, as on hardware.
    pub fn check_load(&mut self, vaddr: u64, width: Width, now: u64) -> ForwardOutcome {
        self.drain(now);
        if self.disjoint(vaddr, width) {
            return ForwardOutcome::NoConflict;
        }
        for st in self.entries.iter().rev() {
            if !st.overlaps(vaddr, width) {
                continue;
            }
            // Full containment: st covers [vaddr, vaddr+width).
            if st.vaddr <= vaddr && vaddr + width.bytes() <= st.vaddr + st.width.bytes() {
                let shift = (vaddr - st.vaddr) * 8;
                let value = width.truncate(st.value >> shift);
                self.forwards += 1;
                return ForwardOutcome::Forwarded { value };
            }
            return ForwardOutcome::PartialOverlap;
        }
        ForwardOutcome::NoConflict
    }

    /// The Speculative Store Bypass lever: for a *transient* load at
    /// `vaddr`, returns `true` if an in-flight store overlaps it — meaning
    /// a vulnerable CPU without SSBD may transiently read the **stale**
    /// memory value instead of the store's value.
    pub fn bypass_possible(&self, vaddr: u64, width: Width, now: u64) -> bool {
        if self.disjoint(vaddr, width) {
            return false;
        }
        self.entries.iter().any(|st| {
            now.saturating_sub(st.cycle) <= DRAIN_WINDOW && st.overlaps(vaddr, width)
        })
    }

    /// The stale value a bypassing load observes: the pre-store memory
    /// contents recorded by the youngest in-flight store fully covering
    /// the load. `None` if no bypass is possible.
    pub fn bypass_value(&self, vaddr: u64, width: Width, now: u64) -> Option<u64> {
        if self.disjoint(vaddr, width) {
            return None;
        }
        for st in self.entries.iter().rev() {
            if now.saturating_sub(st.cycle) > DRAIN_WINDOW || !st.overlaps(vaddr, width) {
                continue;
            }
            if st.vaddr <= vaddr && vaddr + width.bytes() <= st.vaddr + st.width.bytes() {
                let shift = (vaddr - st.vaddr) * 8;
                return Some(width.truncate(st.stale >> shift));
            }
            return None;
        }
        None
    }

    /// The seed's [`StoreBuffer::check_load`], kept verbatim (the
    /// reverse scan runs on every load, no range-superset filter) so the
    /// reference interpreter's timing reflects the pre-refactor
    /// implementation. Observable-identical to `check_load`.
    pub(crate) fn check_load_reference(&mut self, vaddr: u64, width: Width, now: u64) -> ForwardOutcome {
        self.drain(now);
        for st in self.entries.iter().rev() {
            if !st.overlaps(vaddr, width) {
                continue;
            }
            if st.vaddr <= vaddr && vaddr + width.bytes() <= st.vaddr + st.width.bytes() {
                let shift = (vaddr - st.vaddr) * 8;
                let value = width.truncate(st.value >> shift);
                self.forwards += 1;
                return ForwardOutcome::Forwarded { value };
            }
            return ForwardOutcome::PartialOverlap;
        }
        ForwardOutcome::NoConflict
    }

    /// The seed's [`StoreBuffer::bypass_value`], without the
    /// range-superset filter; see `check_load_reference`.
    pub(crate) fn bypass_value_reference(&self, vaddr: u64, width: Width, now: u64) -> Option<u64> {
        for st in self.entries.iter().rev() {
            if now.saturating_sub(st.cycle) > DRAIN_WINDOW || !st.overlaps(vaddr, width) {
                continue;
            }
            if st.vaddr <= vaddr && vaddr + width.bytes() <= st.vaddr + st.width.bytes() {
                let shift = (vaddr - st.vaddr) * 8;
                return Some(width.truncate(st.stale >> shift));
            }
            return None;
        }
        None
    }

    /// Whether any store issued within the last `window` cycles (its
    /// address may still be unresolved). With SSBD, a load executing in
    /// this window must wait instead of speculatively assuming no alias —
    /// that wait is the whole cost of the mitigation.
    pub fn has_unresolved_store(&self, now: u64, window: u64) -> bool {
        self.entries
            .iter()
            .rev()
            .take(4)
            .any(|st| now.saturating_sub(st.cycle) <= window)
    }

    /// Number of in-flight stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_supplies_latest_value() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, Width::B8, 1, 0xee, 0);
        sb.push(0x100, Width::B8, 2, 0xee, 5);
        match sb.check_load(0x100, Width::B8, 10) {
            ForwardOutcome::Forwarded { value } => assert_eq!(value, 2),
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(sb.forwards, 1);
    }

    #[test]
    fn no_conflict_when_disjoint() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, Width::B8, 1, 0xee, 0);
        assert_eq!(sb.check_load(0x200, Width::B8, 1), ForwardOutcome::NoConflict);
    }

    #[test]
    fn subword_forwarding_extracts_bytes() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, Width::B8, 0x1122_3344_5566_7788, 0, 0);
        match sb.check_load(0x101, Width::B1, 1) {
            ForwardOutcome::Forwarded { value } => assert_eq!(value, 0x77),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_overlap_detected() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, Width::B2, 0xaaaa, 0, 0);
        // 8-byte load over a 2-byte store: not fully covered.
        assert_eq!(sb.check_load(0x100, Width::B8, 1), ForwardOutcome::PartialOverlap);
    }

    #[test]
    fn stores_drain_after_window() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, Width::B8, 1, 0xee, 0);
        assert_eq!(sb.check_load(0x100, Width::B8, DRAIN_WINDOW + 100), ForwardOutcome::NoConflict);
        assert!(sb.is_empty());
    }

    #[test]
    fn bypass_window_tracks_in_flight_stores() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, Width::B8, 1, 0xee, 100);
        assert!(sb.bypass_possible(0x100, Width::B8, 110));
        assert!(!sb.bypass_possible(0x100, Width::B8, 100 + DRAIN_WINDOW + 1));
        assert!(!sb.bypass_possible(0x900, Width::B8, 110));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut sb = StoreBuffer::new();
        for i in 0..(CAPACITY as u64 + 20) {
            sb.push(i * 8, Width::B8, i, 0, i);
        }
        assert!(sb.len() <= CAPACITY);
    }

    #[test]
    fn flush_empties() {
        let mut sb = StoreBuffer::new();
        sb.push(0x100, Width::B8, 1, 0xee, 0);
        sb.flush();
        assert!(sb.is_empty());
    }
}
