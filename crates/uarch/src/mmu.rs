//! Virtual memory: page tables, CR3, and a PCID-tagged TLB.
//!
//! The model is a single-level map from virtual page number to
//! [`Pte`] — the paper's mitigations care about *which* mappings exist in
//! which address space (PTI) and about PTE bit patterns (L1TF's non-present
//! entries), not about the radix-tree walk itself. The walk cost is charged
//! as a flat `tlb_miss` latency on a TLB miss.
//!
//! CR3 layout follows x86: bits 11:0 carry the PCID, bit 63 is the
//! "no-flush" bit, and the remaining bits identify the page table. With
//! PCID support, reloading CR3 with the no-flush bit set preserves TLB
//! entries tagged with other PCIDs — which is why PTI's TLB impact is
//! marginal next to the direct `mov %cr3` cost (paper §5.1).

use std::collections::HashMap;

use crate::fault::{Fault, PageFaultKind};
use crate::mem::{page_number, page_offset, PAGE_SHIFT};

/// A page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical frame number.
    pub pfn: u64,
    /// Present bit. A clear present bit with a stale `pfn` is exactly the
    /// configuration L1TF exploits; PTE inversion avoids ever creating it.
    pub present: bool,
    /// User-accessible bit; clear means supervisor-only (Meltdown target).
    pub user: bool,
    /// Writable bit.
    pub writable: bool,
    /// No-execute bit.
    pub nx: bool,
}

impl Pte {
    /// A present, writable kernel (supervisor) mapping.
    pub fn kernel(pfn: u64) -> Pte {
        Pte { pfn, present: true, user: false, writable: true, nx: false }
    }

    /// A present, writable user mapping.
    pub fn user(pfn: u64) -> Pte {
        Pte { pfn, present: true, user: true, writable: true, nx: false }
    }

    /// A read-only variant of this PTE.
    pub fn read_only(mut self) -> Pte {
        self.writable = false;
        self
    }

    /// A non-present variant that *retains* its frame number — the unsafe
    /// pattern L1TF leaks through. [`Pte::inverted`] is the mitigation.
    pub fn non_present_stale(mut self) -> Pte {
        self.present = false;
        self
    }

    /// PTE inversion (the L1TF mitigation): non-present with the frame
    /// bits inverted so the stale address points outside cacheable memory.
    pub fn inverted(mut self) -> Pte {
        self.present = false;
        self.pfn = !self.pfn & 0x000f_ffff_ffff_ffff;
        self
    }
}

/// The access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// Identifier of a registered page table (the non-PCID bits of CR3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageTableId(pub u64);

/// CR3 no-flush bit.
pub const CR3_NOFLUSH: u64 = 1 << 63;
/// Mask of the PCID field in CR3.
pub const CR3_PCID_MASK: u64 = 0xfff;

/// Builds a CR3 value from a table id and PCID.
pub fn make_cr3(table: PageTableId, pcid: u16, noflush: bool) -> u64 {
    let mut v = (table.0 << PAGE_SHIFT) | (pcid as u64 & CR3_PCID_MASK);
    if noflush {
        v |= CR3_NOFLUSH;
    }
    v
}

/// Splits a CR3 value into (table id, pcid, noflush).
pub fn split_cr3(cr3: u64) -> (PageTableId, u16, bool) {
    let noflush = cr3 & CR3_NOFLUSH != 0;
    let pcid = (cr3 & CR3_PCID_MASK) as u16;
    let table = PageTableId((cr3 & !CR3_NOFLUSH) >> PAGE_SHIFT);
    (table, pcid, noflush)
}

/// A single page table: virtual page number → PTE.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<u64, Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps the page containing `vaddr` with the given PTE.
    pub fn map(&mut self, vaddr: u64, pte: Pte) {
        self.entries.insert(page_number(vaddr), pte);
    }

    /// Maps `pages` consecutive pages starting at `vaddr`, identity-offset
    /// into consecutive frames starting at `pfn`.
    pub fn map_range(&mut self, vaddr: u64, pfn: u64, pages: u64, template: Pte) {
        for i in 0..pages {
            let mut pte = template;
            pte.pfn = pfn + i;
            self.entries.insert(page_number(vaddr) + i, pte);
        }
    }

    /// Removes the mapping for the page containing `vaddr`.
    pub fn unmap(&mut self, vaddr: u64) -> Option<Pte> {
        self.entries.remove(&page_number(vaddr))
    }

    /// Looks up the PTE for `vaddr`, mapped or not.
    pub fn lookup(&self, vaddr: u64) -> Option<Pte> {
        self.entries.get(&page_number(vaddr)).copied()
    }

    /// Number of entries (for diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(vpn, pte)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Pte)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }
}

/// A TLB entry.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    pcid: u16,
    vpn: u64,
    pte: Pte,
    /// Insertion stamp for FIFO eviction.
    stamp: u64,
}

/// Result of a translation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical address.
    pub paddr: u64,
    /// Whether the TLB satisfied the lookup (no walk charged).
    pub tlb_hit: bool,
}

/// The outcome of a translation including the PTE, used by the transient
/// path which needs the stale frame number even on faults.
#[derive(Debug, Clone, Copy)]
pub struct WalkResult {
    /// The PTE found (if any mapping exists at all).
    pub pte: Option<Pte>,
    /// Whether the TLB satisfied the lookup.
    pub tlb_hit: bool,
}

/// The MMU: page-table registry, current CR3, and the TLB.
#[derive(Debug)]
pub struct Mmu {
    tables: HashMap<PageTableId, PageTable>,
    next_table: u64,
    /// Current CR3 (table id + PCID bits, no-flush bit excluded).
    cr3: u64,
    tlb: Vec<TlbEntry>,
    tlb_capacity: usize,
    stamp: u64,
    /// Last-translation micro-cache: `(pcid, vpn, pte)` of the most recent
    /// hit or fill. Hot loops touch the same page repeatedly, so this
    /// answers most walks without the linear TLB scan. Invariant: when
    /// `Some`, the entry is also live in `tlb` and is what
    /// [`Mmu::tlb_lookup`] would return — every TLB mutation clears or
    /// overwrites it — so hit/miss accounting is bit-identical.
    last: Option<(u16, u64, Pte)>,
    /// Whether PCID tagging is honoured (CPU + kernel enable it).
    pub pcid_enabled: bool,
    /// Count of full TLB flushes (diagnostics).
    pub flush_count: u64,
}

impl Mmu {
    /// Creates an MMU with the given TLB capacity.
    pub fn new(tlb_capacity: usize) -> Mmu {
        Mmu {
            tables: HashMap::new(),
            next_table: 1,
            cr3: 0,
            tlb: Vec::with_capacity(tlb_capacity),
            tlb_capacity,
            stamp: 0,
            last: None,
            pcid_enabled: false,
            flush_count: 0,
        }
    }

    /// Registers a new page table and returns its id.
    pub fn register_table(&mut self, table: PageTable) -> PageTableId {
        let id = PageTableId(self.next_table);
        self.next_table += 1;
        self.tables.insert(id, table);
        id
    }

    /// Mutable access to a registered table (e.g. for demand paging).
    pub fn table_mut(&mut self, id: PageTableId) -> Option<&mut PageTable> {
        self.tables.get_mut(&id)
    }

    /// Shared access to a registered table.
    pub fn table(&self, id: PageTableId) -> Option<&PageTable> {
        self.tables.get(&id)
    }

    /// The current CR3 value (without the transient no-flush bit).
    pub fn cr3(&self) -> u64 {
        self.cr3
    }

    /// The currently active page table id.
    pub fn current_table(&self) -> PageTableId {
        split_cr3(self.cr3).0
    }

    /// The current PCID.
    pub fn current_pcid(&self) -> u16 {
        split_cr3(self.cr3).1
    }

    /// Loads CR3. Returns `false` if the value names no registered table.
    ///
    /// Without PCID support (or without the no-flush bit) the whole TLB is
    /// flushed, which is the expensive part of PTI on pre-PCID parts.
    pub fn load_cr3(&mut self, value: u64) -> bool {
        let (table, _pcid, noflush) = split_cr3(value);
        if !self.tables.contains_key(&table) {
            return false;
        }
        self.cr3 = value & !CR3_NOFLUSH;
        if !(self.pcid_enabled && noflush) {
            self.flush_tlb_all();
        }
        true
    }

    /// Flushes the entire TLB.
    pub fn flush_tlb_all(&mut self) {
        self.tlb.clear();
        self.last = None;
        self.flush_count += 1;
    }

    /// Flushes the TLB entry for one virtual address in the current PCID.
    pub fn flush_tlb_page(&mut self, vaddr: u64) {
        let pcid = self.current_pcid();
        let vpn = page_number(vaddr);
        self.last = None;
        self.tlb.retain(|e| !(e.pcid == pcid && e.vpn == vpn));
    }

    fn tlb_lookup(&self, pcid: u16, vpn: u64) -> Option<Pte> {
        self.tlb
            .iter()
            .find(|e| e.vpn == vpn && (!self.pcid_enabled || e.pcid == pcid))
            .map(|e| e.pte)
    }

    fn tlb_insert(&mut self, pcid: u16, vpn: u64, pte: Pte) {
        self.stamp += 1;
        if self.tlb.len() >= self.tlb_capacity {
            // FIFO eviction: drop the oldest entry.
            if let Some((idx, _)) = self
                .tlb
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
            {
                self.tlb.swap_remove(idx);
            }
        }
        self.tlb.push(TlbEntry { pcid, vpn, pte, stamp: self.stamp });
        // The just-inserted entry is by construction live and youngest, so
        // it is always safe to cache (an eviction above cannot remove it).
        self.last = Some((pcid, vpn, pte));
    }

    /// Performs the page walk for `vaddr` in the current address space,
    /// consulting and filling the TLB, *without* permission checks.
    ///
    /// Used by both the committed path (which then checks permissions) and
    /// the transient path (which deliberately skips or defers them).
    pub fn walk(&mut self, vaddr: u64) -> WalkResult {
        let (table, pcid, _) = split_cr3(self.cr3);
        let vpn = page_number(vaddr);
        if let Some((lp, lv, pte)) = self.last {
            if lv == vpn && (!self.pcid_enabled || lp == pcid) {
                return WalkResult { pte: Some(pte), tlb_hit: true };
            }
        }
        if let Some(pte) = self.tlb_lookup(pcid, vpn) {
            self.last = Some((pcid, vpn, pte));
            return WalkResult { pte: Some(pte), tlb_hit: true };
        }
        let pte = self.tables.get(&table).and_then(|t| t.entries.get(&vpn)).copied();
        if let Some(pte) = pte {
            // Only present translations are cached, as on hardware.
            if pte.present {
                self.tlb_insert(pcid, vpn, pte);
            }
        }
        WalkResult { pte, tlb_hit: false }
    }

    /// Translates `vaddr` for a committed access, enforcing permissions.
    pub fn translate(
        &mut self,
        vaddr: u64,
        access: Access,
        user_mode: bool,
    ) -> Result<Translation, Fault> {
        let walk = self.walk(vaddr);
        let pte = match walk.pte {
            None => {
                return Err(Fault::Page {
                    vaddr,
                    kind: PageFaultKind::NotMapped,
                    write: access == Access::Write,
                })
            }
            Some(p) => p,
        };
        if !pte.present {
            return Err(Fault::Page {
                vaddr,
                kind: PageFaultKind::NotPresent,
                write: access == Access::Write,
            });
        }
        if user_mode && !pte.user {
            return Err(Fault::Page {
                vaddr,
                kind: PageFaultKind::Supervisor,
                write: access == Access::Write,
            });
        }
        if access == Access::Write && !pte.writable {
            return Err(Fault::Page { vaddr, kind: PageFaultKind::ReadOnly, write: true });
        }
        if access == Access::Fetch && pte.nx {
            return Err(Fault::Page { vaddr, kind: PageFaultKind::NoExecute, write: false });
        }
        Ok(Translation {
            paddr: (pte.pfn << PAGE_SHIFT) | page_offset(vaddr),
            tlb_hit: walk.tlb_hit,
        })
    }

    /// The seed's page walk, kept verbatim (no last-translation
    /// micro-cache, the TLB scan runs every time) so the reference
    /// interpreter's timing reflects the pre-refactor implementation.
    /// Observable-identical to [`Mmu::walk`]; the property tests in
    /// `tests/decode_roundtrip.rs` pin that equivalence.
    pub(crate) fn walk_reference(&mut self, vaddr: u64) -> WalkResult {
        let (table, pcid, _) = split_cr3(self.cr3);
        let vpn = page_number(vaddr);
        if let Some(pte) = self.tlb_lookup(pcid, vpn) {
            return WalkResult { pte: Some(pte), tlb_hit: true };
        }
        let pte = self.tables.get(&table).and_then(|t| t.entries.get(&vpn)).copied();
        if let Some(pte) = pte {
            if pte.present {
                self.tlb_insert(pcid, vpn, pte);
            }
        }
        WalkResult { pte, tlb_hit: false }
    }

    /// [`Mmu::translate`] on top of [`Mmu::walk_reference`]: the
    /// pre-refactor translation path, for the reference interpreter.
    pub(crate) fn translate_reference(
        &mut self,
        vaddr: u64,
        access: Access,
        user_mode: bool,
    ) -> Result<Translation, Fault> {
        let walk = self.walk_reference(vaddr);
        let pte = match walk.pte {
            None => {
                return Err(Fault::Page {
                    vaddr,
                    kind: PageFaultKind::NotMapped,
                    write: access == Access::Write,
                })
            }
            Some(p) => p,
        };
        if !pte.present {
            return Err(Fault::Page {
                vaddr,
                kind: PageFaultKind::NotPresent,
                write: access == Access::Write,
            });
        }
        if user_mode && !pte.user {
            return Err(Fault::Page {
                vaddr,
                kind: PageFaultKind::Supervisor,
                write: access == Access::Write,
            });
        }
        if access == Access::Write && !pte.writable {
            return Err(Fault::Page { vaddr, kind: PageFaultKind::ReadOnly, write: true });
        }
        if access == Access::Fetch && pte.nx {
            return Err(Fault::Page { vaddr, kind: PageFaultKind::NoExecute, write: false });
        }
        Ok(Translation {
            paddr: (pte.pfn << PAGE_SHIFT) | page_offset(vaddr),
            tlb_hit: walk.tlb_hit,
        })
    }

    /// Number of live TLB entries (diagnostics).
    pub fn tlb_len(&self) -> usize {
        self.tlb.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu_with_table() -> (Mmu, PageTableId) {
        let mut mmu = Mmu::new(64);
        let mut pt = PageTable::new();
        pt.map(0x1000, Pte::user(0x10));
        pt.map(0x2000, Pte::kernel(0x20));
        pt.map(0x3000, Pte::user(0x30).read_only());
        let id = mmu.register_table(pt);
        assert!(mmu.load_cr3(make_cr3(id, 0, false)));
        (mmu, id)
    }

    #[test]
    fn cr3_roundtrip() {
        let cr3 = make_cr3(PageTableId(42), 7, true);
        let (t, p, n) = split_cr3(cr3);
        assert_eq!(t, PageTableId(42));
        assert_eq!(p, 7);
        assert!(n);
    }

    #[test]
    fn user_translation_succeeds() {
        let (mut mmu, _) = mmu_with_table();
        let t = mmu.translate(0x1008, Access::Read, true).unwrap();
        assert_eq!(t.paddr, (0x10 << PAGE_SHIFT) | 8);
        assert!(!t.tlb_hit);
        // Second access hits the TLB.
        let t = mmu.translate(0x1010, Access::Read, true).unwrap();
        assert!(t.tlb_hit);
    }

    #[test]
    fn supervisor_page_faults_in_user_mode() {
        let (mut mmu, _) = mmu_with_table();
        let err = mmu.translate(0x2000, Access::Read, true).unwrap_err();
        assert!(matches!(err, Fault::Page { kind: PageFaultKind::Supervisor, .. }));
        // Kernel mode is fine.
        assert!(mmu.translate(0x2000, Access::Read, false).is_ok());
    }

    #[test]
    fn write_to_readonly_faults() {
        let (mut mmu, _) = mmu_with_table();
        assert!(mmu.translate(0x3000, Access::Read, true).is_ok());
        let err = mmu.translate(0x3000, Access::Write, true).unwrap_err();
        assert!(matches!(err, Fault::Page { kind: PageFaultKind::ReadOnly, .. }));
    }

    #[test]
    fn unmapped_faults() {
        let (mut mmu, _) = mmu_with_table();
        let err = mmu.translate(0x9000, Access::Read, false).unwrap_err();
        assert!(matches!(err, Fault::Page { kind: PageFaultKind::NotMapped, .. }));
    }

    #[test]
    fn non_present_faults_but_walk_sees_stale_pfn() {
        let (mut mmu, id) = mmu_with_table();
        mmu.table_mut(id).unwrap().map(0x4000, Pte::user(0x44).non_present_stale());
        let err = mmu.translate(0x4000, Access::Read, true).unwrap_err();
        assert!(matches!(err, Fault::Page { kind: PageFaultKind::NotPresent, .. }));
        // The transient path can still see the stale frame — L1TF's lever.
        let walk = mmu.walk(0x4000);
        assert_eq!(walk.pte.unwrap().pfn, 0x44);
    }

    #[test]
    fn pte_inversion_scrambles_frame() {
        let pte = Pte::user(0x44).inverted();
        assert!(!pte.present);
        assert_ne!(pte.pfn, 0x44);
    }

    #[test]
    fn cr3_reload_flushes_tlb_without_pcid() {
        let (mut mmu, id) = mmu_with_table();
        mmu.translate(0x1000, Access::Read, true).unwrap();
        assert_eq!(mmu.tlb_len(), 1);
        mmu.load_cr3(make_cr3(id, 0, false));
        assert_eq!(mmu.tlb_len(), 0);
    }

    #[test]
    fn pcid_noflush_preserves_tlb() {
        let (mut mmu, id) = mmu_with_table();
        mmu.pcid_enabled = true;
        mmu.load_cr3(make_cr3(id, 1, false));
        mmu.translate(0x1000, Access::Read, true).unwrap();
        assert_eq!(mmu.tlb_len(), 1);
        // Switch to PCID 2 with no-flush: entry for PCID 1 survives.
        mmu.load_cr3(make_cr3(id, 2, true));
        assert_eq!(mmu.tlb_len(), 1);
        // But it is not used for PCID 2 lookups.
        let t = mmu.translate(0x1000, Access::Read, true).unwrap();
        assert!(!t.tlb_hit);
    }

    #[test]
    fn tlb_eviction_is_bounded() {
        let mut mmu = Mmu::new(4);
        let mut pt = PageTable::new();
        for i in 0..16u64 {
            pt.map(i << PAGE_SHIFT, Pte::user(0x100 + i));
        }
        let id = mmu.register_table(pt);
        mmu.load_cr3(make_cr3(id, 0, false));
        for i in 0..16u64 {
            mmu.translate(i << PAGE_SHIFT, Access::Read, true).unwrap();
        }
        assert!(mmu.tlb_len() <= 4);
    }

    #[test]
    fn flush_single_page() {
        let (mut mmu, _) = mmu_with_table();
        mmu.translate(0x1000, Access::Read, true).unwrap();
        mmu.flush_tlb_page(0x1000);
        let t = mmu.translate(0x1000, Access::Read, true).unwrap();
        assert!(!t.tlb_hit);
    }

    #[test]
    fn bad_cr3_rejected() {
        let (mut mmu, _) = mmu_with_table();
        assert!(!mmu.load_cr3(make_cr3(PageTableId(999), 0, false)));
    }

    #[test]
    fn map_range_maps_consecutive_frames() {
        let mut pt = PageTable::new();
        pt.map_range(0x10000, 0x50, 4, Pte::user(0));
        assert_eq!(pt.lookup(0x10000).unwrap().pfn, 0x50);
        assert_eq!(pt.lookup(0x13000).unwrap().pfn, 0x53);
        assert_eq!(pt.len(), 4);
    }
}
