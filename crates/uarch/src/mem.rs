//! Sparse physical memory.
//!
//! Physical memory is a sparse map of 4 KiB frames, allocated on first
//! touch. All accesses are by *physical* address; virtual-to-physical
//! translation happens in [`crate::mmu`].

use std::cell::Cell;
use std::collections::HashMap;

use crate::isa::Width;

/// Size of a physical frame / virtual page in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// Log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a cache line in bytes.
pub const LINE_SIZE: u64 = 64;
/// Log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// Returns the frame (or page) number containing `addr`.
#[inline]
pub fn page_number(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Returns the byte offset of `addr` within its page.
#[inline]
pub fn page_offset(addr: u64) -> u64 {
    addr & (PAGE_SIZE - 1)
}

/// Returns the cache-line number containing `addr`.
#[inline]
pub fn line_number(addr: u64) -> u64 {
    addr >> LINE_SHIFT
}

/// Cache-slot sentinel: no frame number is ever `u64::MAX` in practice
/// (it would imply a physical address above 2^76).
const NO_FRAME: u64 = u64::MAX;

/// Sparse byte-addressable physical memory.
///
/// Reads of untouched memory return zero, mirroring zero-fill-on-demand.
/// Frames live in a stable slab (`slabs`) indexed by a `pfn -> slot` hash
/// map; a one-entry [`Cell`] cache keeps the simulator's hot loop off the
/// hash map entirely when consecutive accesses land in the same frame —
/// which is nearly always, since a cache line never spans frames.
#[derive(Debug, Default)]
pub struct PhysMemory {
    slabs: Vec<Box<[u8; PAGE_SIZE as usize]>>,
    index: HashMap<u64, u32>,
    /// `(pfn, slab slot)` of the most recently touched frame;
    /// `(NO_FRAME, _)` when empty. A `Cell` so the read path can refresh
    /// it through `&self`.
    last: Cell<(u64, u32)>,
}

impl PhysMemory {
    /// Creates empty physical memory.
    pub fn new() -> PhysMemory {
        PhysMemory { slabs: Vec::new(), index: HashMap::new(), last: Cell::new((NO_FRAME, 0)) }
    }

    /// Number of frames that have been touched.
    pub fn resident_frames(&self) -> usize {
        self.slabs.len()
    }

    /// Resolves a frame for reading, refreshing the one-entry cache.
    #[inline]
    fn frame(&self, pfn: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        let (cached_pfn, slot) = self.last.get();
        if cached_pfn == pfn {
            return Some(&self.slabs[slot as usize]);
        }
        let slot = *self.index.get(&pfn)?;
        self.last.set((pfn, slot));
        Some(&self.slabs[slot as usize])
    }

    /// Resolves a frame without the cache: one hash lookup per call, the
    /// seed's cost model. Used only by the `*_reference` entry points.
    #[inline]
    fn frame_uncached(&self, pfn: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        let slot = *self.index.get(&pfn)?;
        Some(&self.slabs[slot as usize])
    }

    fn frame_mut(&mut self, pfn: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let (cached_pfn, slot) = self.last.get();
        if cached_pfn == pfn {
            return &mut self.slabs[slot as usize];
        }
        let slot = match self.index.get(&pfn) {
            Some(&s) => s,
            None => {
                let s = self.slabs.len() as u32;
                self.slabs.push(Box::new([0u8; PAGE_SIZE as usize]));
                self.index.insert(pfn, s);
                s
            }
        };
        self.last.set((pfn, slot));
        &mut self.slabs[slot as usize]
    }

    /// Reads one byte at a physical address.
    #[inline]
    pub fn read_u8(&self, paddr: u64) -> u8 {
        match self.frame(page_number(paddr)) {
            Some(f) => f[page_offset(paddr) as usize],
            None => 0,
        }
    }

    /// Writes one byte at a physical address.
    #[inline]
    pub fn write_u8(&mut self, paddr: u64, v: u8) {
        let off = page_offset(paddr) as usize;
        self.frame_mut(page_number(paddr))[off] = v;
    }

    /// Reads `width` bytes (little-endian, zero-extended).
    ///
    /// An access that stays inside one frame — the overwhelmingly common
    /// case — costs at most a single frame lookup (usually none, via the
    /// one-entry cache); only accesses that straddle a page boundary fall
    /// back to the bytewise path.
    pub fn read(&self, paddr: u64, width: Width) -> u64 {
        let n = width.bytes();
        let off = page_offset(paddr) as usize;
        if off as u64 + n <= PAGE_SIZE {
            return match self.frame(page_number(paddr)) {
                Some(f) => {
                    let mut v = 0u64;
                    for (i, b) in f[off..off + n as usize].iter().enumerate() {
                        v |= (*b as u64) << (8 * i);
                    }
                    v
                }
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(paddr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `v` (little-endian).
    pub fn write(&mut self, paddr: u64, v: u64, width: Width) {
        let n = width.bytes();
        let off = page_offset(paddr) as usize;
        if off as u64 + n <= PAGE_SIZE {
            let f = self.frame_mut(page_number(paddr));
            for i in 0..n as usize {
                f[off + i] = (v >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..n {
            self.write_u8(paddr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// The seed's bytewise read, kept verbatim (one uncached frame lookup
    /// per byte) so the reference interpreter's timing reflects the
    /// pre-refactor implementation. Observable-identical to
    /// [`PhysMemory::read`].
    pub(crate) fn read_reference(&self, paddr: u64, width: Width) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            let a = paddr.wrapping_add(i);
            let byte = match self.frame_uncached(page_number(a)) {
                Some(f) => f[page_offset(a) as usize],
                None => 0,
            };
            v |= (byte as u64) << (8 * i);
        }
        v
    }

    /// The seed's bytewise write; see [`PhysMemory::read_reference`].
    /// Allocation still goes through [`PhysMemory::frame_mut`] (the seed
    /// allocated on first touch too); the per-byte hash lookup is the
    /// preserved cost.
    pub(crate) fn write_reference(&mut self, paddr: u64, v: u64, width: Width) {
        for i in 0..width.bytes() {
            let a = paddr.wrapping_add(i);
            let pfn = page_number(a);
            let off = page_offset(a) as usize;
            match self.index.get(&pfn) {
                Some(&slot) => self.slabs[slot as usize][off] = (v >> (8 * i)) as u8,
                None => self.frame_mut(pfn)[off] = (v >> (8 * i)) as u8,
            }
        }
    }

    /// Reads a u64.
    pub fn read_u64(&self, paddr: u64) -> u64 {
        self.read(paddr, Width::B8)
    }

    /// Writes a u64.
    pub fn write_u64(&mut self, paddr: u64, v: u64) {
        self.write(paddr, v, Width::B8)
    }

    /// Reads an f64 (bitcast of the u64 at `paddr`).
    pub fn read_f64(&self, paddr: u64) -> f64 {
        f64::from_bits(self.read_u64(paddr))
    }

    /// Writes an f64 (bitcast).
    pub fn write_f64(&mut self, paddr: u64, v: f64) {
        self.write_u64(paddr, v.to_bits())
    }

    /// Copies a byte slice into physical memory.
    pub fn write_bytes(&mut self, paddr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(paddr + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `paddr`.
    pub fn read_bytes(&self, paddr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(paddr + i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_on_demand() {
        let m = PhysMemory::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read(0xdead_beef, Width::B4), 0);
    }

    #[test]
    fn read_write_roundtrip_all_widths() {
        let mut m = PhysMemory::new();
        for (w, val) in [
            (Width::B1, 0xabu64),
            (Width::B2, 0xabcd),
            (Width::B4, 0xdead_beef),
            (Width::B8, 0x0123_4567_89ab_cdef),
        ] {
            m.write(0x4000, val, w);
            assert_eq!(m.read(0x4000, w), val);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut m = PhysMemory::new();
        let addr = PAGE_SIZE - 4; // straddles the first page boundary
        m.write(addr, 0x1122_3344_5566_7788, Width::B8);
        assert_eq!(m.read(addr, Width::B8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_frames(), 2);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMemory::new();
        m.write(0, 0x0102_0304, Width::B4);
        assert_eq!(m.read_u8(0), 0x04);
        assert_eq!(m.read_u8(3), 0x01);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = PhysMemory::new();
        m.write_f64(0x100, std::f64::consts::PI);
        assert_eq!(m.read_f64(0x100), std::f64::consts::PI);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = PhysMemory::new();
        m.write_bytes(0x55, b"hello world");
        assert_eq!(m.read_bytes(0x55, 11), b"hello world");
    }

    #[test]
    fn line_and_page_math() {
        assert_eq!(page_number(0x1fff), 1);
        assert_eq!(page_offset(0x1fff), 0xfff);
        assert_eq!(line_number(0x7f), 1);
        assert_eq!(line_number(0x3f), 0);
    }
}
