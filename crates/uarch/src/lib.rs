//! # uarch — an instruction-level microarchitectural simulator
//!
//! This crate is the hardware substrate for reproducing *"Performance
//! Evolution of Mitigating Transient Execution Attacks"* (EuroSys 2022).
//! It simulates a single x86-flavoured core at instruction granularity
//! with an explicit **transient-execution window**: mispredicted branches,
//! faulting loads, and store-bypass opportunities execute bounded shadow
//! code whose architectural effects are squashed but whose
//! *microarchitectural* effects — cache fills, fill-buffer contents,
//! divider occupancy — persist. Those persistent effects are exactly what
//! transient-execution attacks read and what mitigations pay to erase.
//!
//! The core abstractions:
//!
//! * [`model::CpuModel`] — parameter space for a CPU: vulnerability flags,
//!   per-primitive latencies (calibrated from the paper's Tables 3–8),
//!   and speculation-machinery quirks. The eight concrete CPUs live in
//!   the `cpu-models` crate.
//! * [`machine::Machine`] — the simulated core: registers, MMU with
//!   PCID-tagged TLB, L1D cache, store buffer, fill buffers, BTB/RSB/BHB
//!   predictors, MSRs, performance counters, and a cycle-accurate-enough
//!   clock that `rdtsc` reads.
//! * [`program::ProgramBuilder`] — a small assembler with labels used by
//!   every crate above this one (kernel paths, JIT output, attack
//!   gadgets, microbenchmarks).
//!
//! # Example
//!
//! ```
//! use uarch::machine::{Machine, NoEnv, Stop};
//! use uarch::model::CpuModel;
//! use uarch::program::ProgramBuilder;
//! use uarch::isa::{Inst, Reg};
//!
//! let mut m = Machine::new(CpuModel::test_model());
//! let mut b = ProgramBuilder::new();
//! b.mov_imm(Reg::R0, 6);
//! b.mov_imm(Reg::R1, 7);
//! b.push(Inst::Mul(Reg::R0, Reg::R1));
//! b.push(Inst::Halt);
//! m.load_program(b.link(0x1000));
//! m.pc = 0x1000;
//! assert_eq!(m.run(&mut NoEnv, 100).unwrap(), Stop::Halted);
//! assert_eq!(m.reg(Reg::R0), 42);
//! ```

// The interpreter is the compute kernel under every figure: a stray
// `unwrap` on its hot path is both a panic risk and an optimizer
// barrier. Tests are exempt (see `clippy.toml`).
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod decode;
pub mod fault;
pub mod fill_buffer;
pub mod fpu;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod mmu;
pub mod model;
pub mod msr;
pub mod pmc;
pub mod predictor;
pub mod program;
pub mod reference;
pub mod store_buffer;
pub mod trace;
pub mod transient;

pub use decode::{DecodedInst, DecodedProgram, Op};
pub use fault::{Fault, SimError};
pub use isa::{Cond, FReg, Inst, Pmc, Reg, Width};
pub use machine::{Env, Machine, NoEnv, Stop};
pub use model::{CpuModel, Vendor};
pub use predictor::PrivMode;
pub use program::{Label, Program, ProgramBuilder};
