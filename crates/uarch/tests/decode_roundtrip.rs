//! Decode-layer property tests.
//!
//! Two guarantees pin the pre-decoded dispatch refactor:
//!
//! 1. **Lossless decode**: every constructible `isa::Inst` round-trips
//!    through `decode` → `DecodedInst::to_inst` bit-exactly (including
//!    NaN and signed-zero `f64` immediates, compared by bit pattern).
//! 2. **Stepper equivalence**: random programs executed by the decoded
//!    dispatch loop (`Machine::step`) and by the preserved reference
//!    interpreter (`Machine::step_reference`) produce identical
//!    architectural state, cycle counts, and performance counters —
//!    including runs that end in faults or budget exhaustion, and on
//!    vulnerability profiles that open transient windows.

use uarch::decode::decode;
use uarch::isa::{Cond, FReg, Inst, Pmc, Reg, Width};
use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::{CpuModel, Vendor};
use uarch::program::ProgramBuilder;

/// Deterministic xorshift* PRNG (no external deps, stable across runs).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn insts_equal(a: &Inst, b: &Inst) -> bool {
    match (a, b) {
        // f64 PartialEq fails on NaN; immediates must match by bit pattern.
        (Inst::FmovImm(r1, v1), Inst::FmovImm(r2, v2)) => {
            r1 == r2 && v1.to_bits() == v2.to_bits()
        }
        _ => a == b,
    }
}

/// Every constructible instruction, with operand fields swept over all
/// registers / widths / conditions and a boundary-value immediate set.
fn all_insts() -> Vec<Inst> {
    let imms: [u64; 6] = [0, 1, 0xff, 0x8000_0000_0000_0000, u64::MAX, 0x1234_5678_9abc_def0];
    let offs: [i64; 5] = [0, 8, -8, i64::MAX, i64::MIN];
    let f64s: [f64; 6] = [0.0, -0.0, 2.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE];
    let mut v = Vec::new();

    v.extend([Inst::Nop, Inst::Pause, Inst::Halt, Inst::Vmcall, Inst::Lfence, Inst::Mfence]);
    v.extend([Inst::Sfence, Inst::Ret, Inst::Syscall, Inst::Sysret, Inst::Swapgs, Inst::Iret]);
    v.extend([Inst::Verw, Inst::Xsave, Inst::Xrstor]);
    for id in [0u16, 1, 0x7fff, u16::MAX] {
        v.push(Inst::Host(id));
    }
    for a in Reg::ALL {
        v.extend([
            Inst::Not(a),
            Inst::Clflush(a),
            Inst::Rdtsc(a),
            Inst::JmpInd(a),
            Inst::CallInd(a),
            Inst::MovCr3(a),
            Inst::Invlpg(a),
        ]);
        for n in [0u8, 1, 63, 255] {
            v.push(Inst::Shl(a, n));
            v.push(Inst::Shr(a, n));
        }
        for imm in imms {
            v.extend([
                Inst::MovImm(a, imm),
                Inst::AddImm(a, imm),
                Inst::SubImm(a, imm),
                Inst::AndImm(a, imm),
                Inst::XorImm(a, imm),
                Inst::CmpImm(a, imm),
            ]);
        }
        for b in Reg::ALL {
            v.extend([
                Inst::Mov(a, b),
                Inst::Add(a, b),
                Inst::Sub(a, b),
                Inst::Mul(a, b),
                Inst::Div(a, b),
                Inst::And(a, b),
                Inst::Or(a, b),
                Inst::Xor(a, b),
                Inst::Cmp(a, b),
                Inst::Test(a, b),
            ]);
            for w in Width::ALL {
                for off in offs {
                    v.push(Inst::Load { dst: a, base: b, offset: off, width: w });
                    v.push(Inst::Store { src: a, base: b, offset: off, width: w });
                }
            }
        }
        for c in Cond::ALL {
            for imm in imms {
                v.push(Inst::CmovImm(c, a, imm));
            }
            for b in Reg::ALL {
                v.push(Inst::Cmov(c, a, b));
            }
        }
        for p in Pmc::ALL {
            v.push(Inst::Rdpmc { pmc: p, dst: a });
        }
        for msr in [0u32, 0x48, 0x49, 0x10b, u32::MAX] {
            v.push(Inst::Wrmsr { msr, src: a });
            v.push(Inst::Rdmsr { msr, dst: a });
        }
    }
    for target in [0u64, 4, 0x1000, !3u64] {
        v.push(Inst::Jmp(target));
        v.push(Inst::Call(target));
        for c in Cond::ALL {
            v.push(Inst::Jcc(c, target));
        }
    }
    for a in FReg::ALL {
        for b in FReg::ALL {
            v.extend([Inst::Fadd(a, b), Inst::Fsub(a, b), Inst::Fmul(a, b), Inst::Fdiv(a, b)]);
        }
        v.push(Inst::FtoG(Reg::R3, a));
        for f in f64s {
            v.push(Inst::FmovImm(a, f));
        }
        for b in Reg::ALL {
            for off in offs {
                v.push(Inst::Fload { dst: a, base: b, offset: off });
                v.push(Inst::Fstore { src: a, base: b, offset: off });
            }
        }
    }
    v
}

#[test]
fn every_inst_roundtrips_through_decode() {
    let insts = all_insts();
    assert!(insts.len() > 10_000, "sweep should be broad, got {}", insts.len());
    for inst in &insts {
        let d = decode(inst);
        let back = d.to_inst();
        assert!(
            insts_equal(inst, &back),
            "round-trip mismatch: {inst:?} -> {d:?} -> {back:?}"
        );
        assert_eq!(d.is_privileged(), inst.is_privileged(), "privilege bit for {inst:?}");
        assert_eq!(d.op.mnemonic(), inst.mnemonic(), "mnemonic for {inst:?}");
    }
}

const CODE_BASE: u64 = 0x40_0000;
const DATA_BASE: u64 = 0x1_0000;
const DATA_PAGES: u64 = 16;

/// One random instruction, biased toward runnable programs: register
/// values frequently reseeded to mapped data addresses, branch targets
/// inside the program, the occasional wild operand to exercise fault and
/// serialization paths on both steppers.
fn gen_inst(rng: &mut Rng, prog_len: u64) -> Inst {
    let r = Reg::ALL[rng.below(16) as usize];
    let s = Reg::ALL[rng.below(16) as usize];
    let w = Width::ALL[rng.below(4) as usize];
    let c = Cond::ALL[rng.below(10) as usize];
    let f = FReg::ALL[rng.below(8) as usize];
    let g = FReg::ALL[rng.below(8) as usize];
    let target = CODE_BASE + 4 * rng.below(prog_len + 1);
    let data = DATA_BASE + rng.below(DATA_PAGES * 4096 - 8);
    match rng.below(100) {
        0..=19 => Inst::MovImm(r, data), // keep pointers mostly valid
        20..=22 => Inst::MovImm(r, rng.next()),
        23..=27 => Inst::AddImm(r, rng.below(64)),
        28..=30 => Inst::Sub(r, s),
        31..=33 => Inst::Mul(r, s),
        34 => Inst::Div(r, s),
        35..=37 => Inst::And(r, s),
        38..=39 => Inst::Or(r, s),
        40..=41 => Inst::Xor(r, s),
        42 => Inst::Shl(r, rng.below(70) as u8),
        43 => Inst::Shr(r, rng.below(70) as u8),
        44 => Inst::Not(r),
        45..=54 => Inst::Load { dst: r, base: s, offset: rng.below(64) as i64, width: w },
        55..=64 => Inst::Store { src: r, base: s, offset: rng.below(64) as i64, width: w },
        65..=68 => Inst::Cmp(r, s),
        69..=70 => Inst::CmpImm(r, rng.below(1 << 32)),
        71 => Inst::Test(r, s),
        72..=78 => Inst::Jcc(c, target),
        79..=80 => Inst::Jmp(target),
        81 => Inst::JmpInd(r),
        82 => Inst::Cmov(c, r, s),
        83 => Inst::CmovImm(c, r, rng.next()),
        84 => Inst::Lfence,
        85 => Inst::Mfence,
        86 => Inst::Clflush(r),
        87 => Inst::Rdtsc(r),
        88 => Inst::Rdpmc { pmc: Pmc::ALL[rng.below(6) as usize], dst: r },
        89 => Inst::Fadd(f, g),
        90 => Inst::Fmul(f, g),
        91 => Inst::FmovImm(f, rng.next() as f64),
        92 => Inst::Fload { dst: f, base: s, offset: rng.below(64) as i64 },
        93 => Inst::Fstore { src: f, base: s, offset: rng.below(64) as i64 },
        94 => Inst::FtoG(r, g),
        95 => Inst::Pause,
        // Rare wild cards: unmapped pointer, serializing, privileged-path.
        96 => Inst::MovImm(r, 0xdead_0000 + rng.below(0x1000)),
        97 => Inst::Verw,
        98 => Inst::Invlpg(r),
        _ => Inst::Nop,
    }
}

/// The vulnerability/vendor profiles the equivalence sweep runs under:
/// each opens different transient-window and mitigation code paths.
fn models() -> Vec<CpuModel> {
    let base = CpuModel::test_model();
    let mut ssb = CpuModel::test_model();
    ssb.vuln.ssb = true;
    let mut meltdown = CpuModel::test_model();
    meltdown.vuln.meltdown = true;
    meltdown.vuln.mds = true;
    let mut amd = CpuModel::test_model();
    amd.vendor = Vendor::Amd;
    amd.vuln.ssb = true;
    let mut lazy = CpuModel::test_model();
    lazy.vuln.lazy_fp = true;
    vec![base, ssb, meltdown, amd, lazy]
}

fn fresh_machine(model: CpuModel, program: &[Inst], fpu_enabled: bool) -> Machine {
    let mut m = Machine::new(model);
    let mut pt = PageTable::new();
    pt.map_range(DATA_BASE, 0x100, DATA_PAGES, Pte::user(0));
    let id = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(id, 0, false)));
    let mut b = ProgramBuilder::new();
    for inst in program {
        b.push(inst.clone());
    }
    b.push(Inst::Halt);
    m.load_program(b.link(CODE_BASE));
    m.pc = CODE_BASE;
    m.set_reg(Reg::SP, DATA_BASE + DATA_PAGES * 4096 - 0x100);
    m.fpu.enabled = fpu_enabled;
    m
}

/// Everything observable that both steppers must agree on.
fn fingerprint(m: &Machine) -> String {
    let pmcs: Vec<u64> = Pmc::ALL.iter().map(|p| m.pmc.read(*p)).collect();
    format!(
        "regs={:?} flags={:?} pc={:#x} mode={:?} cycles={} insts={} pmcs={:?} tlb={} sb={} fwd={} frames={}",
        m.regs,
        m.flags,
        m.pc,
        m.mode,
        m.cycles(),
        m.inst_count(),
        pmcs,
        m.mmu.tlb_len(),
        m.store_buffer.len(),
        m.store_buffer.forwards,
        m.mem.resident_frames(),
    )
}

#[test]
fn random_programs_match_reference_stepper() {
    const PROG_LEN: u64 = 200;
    const BUDGET: u64 = 20_000;
    let models = models();
    for seed in 1..=40u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let program: Vec<Inst> =
            (0..PROG_LEN).map(|_| gen_inst(&mut rng, PROG_LEN)).collect();
        let model = models[(seed as usize) % models.len()].clone();
        let fpu_enabled = seed % 3 != 0;

        let mut fast = fresh_machine(model.clone(), &program, fpu_enabled);
        let mut slow = fresh_machine(model, &program, fpu_enabled);
        let fast_result = fast.run(&mut NoEnv, BUDGET);
        let slow_result = slow.run_reference(&mut NoEnv, BUDGET);

        assert_eq!(
            format!("{fast_result:?}"),
            format!("{slow_result:?}"),
            "seed {seed}: stop/error diverged"
        );
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&slow),
            "seed {seed}: architectural state diverged"
        );
    }
}

#[test]
fn single_steps_match_reference_at_every_instruction() {
    // Lockstep comparison surfaces the *first* diverging instruction
    // rather than an end-state mismatch 10k instructions later.
    const PROG_LEN: u64 = 120;
    let mut rng = Rng::new(0xdec0de);
    let program: Vec<Inst> = (0..PROG_LEN).map(|_| gen_inst(&mut rng, PROG_LEN)).collect();
    let mut ssb = CpuModel::test_model();
    ssb.vuln.ssb = true;
    let mut fast = fresh_machine(ssb.clone(), &program, true);
    let mut slow = fresh_machine(ssb, &program, true);
    for step in 0..2_000u32 {
        let a = fast.step(&mut NoEnv);
        let b = slow.step_reference(&mut NoEnv);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "step {step}: outcome diverged");
        assert_eq!(fingerprint(&fast), fingerprint(&slow), "step {step}: state diverged");
        match a {
            Ok(None) => {}
            _ => break,
        }
    }
}
