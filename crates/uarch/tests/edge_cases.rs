//! Edge-case and failure-injection tests for the simulator: the error
//! paths well-formed programs never hit, boundary conditions of the
//! microarchitectural structures, and less-travelled instruction
//! behaviours.

use uarch::fault::SimError;
use uarch::isa::{msr_index, Cond, Inst, Pmc, Reg, Width};
use uarch::machine::{Machine, NoEnv, Stop};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::ProgramBuilder;

fn machine_with_pages() -> Machine {
    let mut m = Machine::new(CpuModel::test_model());
    let mut pt = PageTable::new();
    pt.map_range(0x10_0000, 0x100, 16, Pte::user(0));
    pt.map_range(0x20_0000 - 0x4000, 0x300, 4, Pte::user(0));
    let t = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(t, 0, false)));
    m.set_reg(Reg::SP, 0x20_0000 - 64);
    m
}

fn load(m: &mut Machine, base: u64, f: impl FnOnce(&mut ProgramBuilder)) {
    let mut b = ProgramBuilder::new();
    f(&mut b);
    m.load_program(b.link(base));
    m.pc = base;
}

#[test]
fn fetch_from_unmapped_code_is_a_sim_error() {
    let mut m = machine_with_pages();
    m.pc = 0xdead_0000;
    assert!(matches!(
        m.run(&mut NoEnv, 10),
        Err(SimError::BadFetch { addr: 0xdead_0000 })
    ));
}

#[test]
fn instruction_budget_exhaustion_is_reported() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        let top = b.here();
        b.jmp(top); // infinite loop
    });
    assert!(matches!(
        m.run(&mut NoEnv, 100),
        Err(SimError::InstructionBudgetExhausted)
    ));
    // The machine is still usable: redirect it to a halt.
    load(&mut m, 0x9000, |b| {
        b.push(Inst::Halt);
    });
    assert_eq!(m.run(&mut NoEnv, 10).unwrap(), Stop::Halted);
}

#[test]
fn host_instruction_without_env_errors() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.push(Inst::Host(3));
    });
    assert!(matches!(m.run(&mut NoEnv, 10), Err(SimError::MissingHostHook { id: 3 })));
}

#[test]
fn unhandled_fault_reports_location() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 0xbad_0000);
        b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B8 });
    });
    match m.run(&mut NoEnv, 10) {
        Err(SimError::UnhandledFault { at, .. }) => assert_eq!(at, 0x1004),
        other => panic!("expected unhandled fault, got {other:?}"),
    }
}

#[test]
fn divide_by_zero_faults() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 10);
        b.mov_imm(Reg::R1, 0);
        b.push(Inst::Div(Reg::R0, Reg::R1));
    });
    assert!(matches!(
        m.run(&mut NoEnv, 10),
        Err(SimError::UnhandledFault { fault: uarch::Fault::DivideError, .. })
    ));
}

#[test]
fn sysret_without_kernel_mode_faults() {
    let mut m = machine_with_pages();
    m.mode = PrivMode::User;
    load(&mut m, 0x1000, |b| {
        b.push(Inst::Sysret);
    });
    // Privileged instruction in user mode => GP fault; unhandled => error.
    assert!(matches!(
        m.run(&mut NoEnv, 10),
        Err(SimError::UnhandledFault { fault: uarch::Fault::GeneralProtection, .. })
    ));
}

#[test]
fn syscall_without_entry_point_is_a_mode_violation() {
    let mut m = machine_with_pages();
    m.mode = PrivMode::User;
    load(&mut m, 0x1000, |b| {
        b.push(Inst::Syscall);
    });
    assert!(matches!(m.run(&mut NoEnv, 10), Err(SimError::ModeViolation { .. })));
}

#[test]
fn iret_without_frame_is_a_mode_violation() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.push(Inst::Iret);
    });
    assert!(matches!(m.run(&mut NoEnv, 10), Err(SimError::ModeViolation { .. })));
}

#[test]
fn mov_cr3_with_unregistered_table_errors() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, make_cr3(uarch::mmu::PageTableId(999), 0, false));
        b.push(Inst::MovCr3(Reg::R0));
    });
    assert!(matches!(m.run(&mut NoEnv, 10), Err(SimError::BadPageTable { .. })));
}

#[test]
fn wrmsr_unknown_msr_faults() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 1);
        b.push(Inst::Wrmsr { msr: 0x1234, src: Reg::R0 });
    });
    assert!(matches!(
        m.run(&mut NoEnv, 10),
        Err(SimError::UnhandledFault { fault: uarch::Fault::GeneralProtection, .. })
    ));
}

#[test]
fn rdmsr_reads_arch_capabilities() {
    let mut m = machine_with_pages();
    let expect = m.model.arch_capabilities();
    load(&mut m, 0x1000, |b| {
        b.push(Inst::Rdmsr { msr: msr_index::IA32_ARCH_CAPABILITIES, dst: Reg::R3 });
        b.push(Inst::Halt);
    });
    m.run(&mut NoEnv, 10).unwrap();
    assert_eq!(m.reg(Reg::R3), expect);
}

#[test]
fn rsb_underflow_falls_back_to_btb_prediction() {
    // A `ret` with an empty RSB consults the BTB: a poisoned BTB entry at
    // the ret's address can then steer speculation (deep-call-chain
    // SpectreRSB variant).
    let mut m = machine_with_pages();
    // Victim gadget with a divide.
    load(&mut m, 0x5000, |b| {
        b.mov_imm(Reg::R6, 100);
        b.mov_imm(Reg::R7, 3);
        b.push(Inst::Div(Reg::R6, Reg::R7));
        b.push(Inst::Ret);
    });
    // The ret under test at a fixed address; its return address is pushed
    // manually so the RSB never saw a matching call.
    load(&mut m, 0x1000, |b| {
        let after = b.new_label();
        b.lea(Reg::R1, after);
        b.push(Inst::Store { src: Reg::R1, base: Reg::SP, offset: -8, width: Width::B8 });
        b.push(Inst::SubImm(Reg::SP, 8));
        b.push(Inst::Ret); // RSB empty -> BTB fallback
        b.bind(after);
        b.push(Inst::Halt);
    });
    // Poison the BTB at the ret's address (offset 3 insts = 0x100c).
    let ret_pc = 0x1000 + 3 * 4;
    m.rsb.clear();
    m.btb.train(ret_pc, 0x5000, PrivMode::Kernel, &m.bhb.clone());
    let before = m.pmc.read(Pmc::DividerActive);
    m.run(&mut NoEnv, 100).unwrap();
    assert!(
        m.pmc.read(Pmc::DividerActive) > before,
        "BTB fallback must speculate to the poisoned target"
    );
}

#[test]
fn transient_window_stops_at_code_edge() {
    // Mispredicted branch to the very last instruction: the window runs
    // off the end of loaded code and stops quietly.
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        let target = b.new_label();
        b.mov_imm(Reg::R0, 1);
        b.cmp_imm(Reg::R0, 1);
        b.jcc(Cond::Ne, target); // never taken; predictor may guess taken
        b.push(Inst::Halt);
        b.bind(target);
        b.push(Inst::Nop); // last instruction; window would fall off here
    });
    // Train the predictor toward "taken" to force the wrong-path window.
    for _ in 0..4 {
        m.cond_pred.update(0x1008, &m.bhb.clone(), true);
    }
    assert_eq!(m.run(&mut NoEnv, 100).unwrap(), Stop::Halted);
}

#[test]
fn verw_in_user_mode_is_allowed() {
    // `verw` is not privileged (it is a legacy segmentation instruction).
    let mut m = machine_with_pages();
    m.mode = PrivMode::User;
    load(&mut m, 0x1000, |b| {
        b.push(Inst::Verw);
        b.push(Inst::Halt);
    });
    assert_eq!(m.run(&mut NoEnv, 10).unwrap(), Stop::Halted);
}

#[test]
fn clflush_of_unmapped_address_is_harmless() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 0xdead_0000);
        b.push(Inst::Clflush(Reg::R0));
        b.push(Inst::Halt);
    });
    assert_eq!(m.run(&mut NoEnv, 10).unwrap(), Stop::Halted);
}

#[test]
fn byte_loads_are_zero_extended() {
    let mut m = machine_with_pages();
    m.mem.write_u64(0x100 << 12, 0xffff_ffff_ffff_ff80);
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 0x10_0000);
        b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B1 });
        b.push(Inst::Load { dst: Reg::R2, base: Reg::R0, offset: 0, width: Width::B4 });
        b.push(Inst::Halt);
    });
    m.run(&mut NoEnv, 10).unwrap();
    assert_eq!(m.reg(Reg::R1), 0x80);
    assert_eq!(m.reg(Reg::R2), 0xffff_ff80);
}

#[test]
fn negative_offsets_address_below_base() {
    let mut m = machine_with_pages();
    m.mem.write_u64((0x100 << 12) + 0x100 - 8, 0x1234);
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 0x10_0100);
        b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: -8, width: Width::B8 });
        b.push(Inst::Halt);
    });
    m.run(&mut NoEnv, 10).unwrap();
    assert_eq!(m.reg(Reg::R1), 0x1234);
}

#[test]
fn shifts_mask_their_amount() {
    let mut m = machine_with_pages();
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 1);
        b.push(Inst::Shl(Reg::R0, 65)); // 65 & 63 == 1
        b.push(Inst::Halt);
    });
    m.run(&mut NoEnv, 10).unwrap();
    assert_eq!(m.reg(Reg::R0), 2);
}

#[test]
fn cycle_counter_is_monotonic_across_faults() {
    let mut m = machine_with_pages();
    // Install a trivial handler that skips the faulting instruction.
    struct Skip;
    impl uarch::Env for Skip {
        fn host_call(&mut self, m: &mut Machine, _id: u16) -> Result<(), SimError> {
            if let Some(f) = &mut m.fault_frame {
                f.resume_pc = f.faulting_pc + 4;
            }
            Ok(())
        }
    }
    let mut b = ProgramBuilder::new();
    b.push(Inst::Host(1));
    b.push(Inst::Iret);
    m.load_program(b.link(0x9000));
    m.fault_vectors.page_fault = Some(0x9000);

    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 0xbad_0000);
        b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B8 });
        b.push(Inst::Halt);
    });
    m.mode = PrivMode::User;
    let mut last = m.cycles();
    loop {
        match m.step(&mut Skip).unwrap() {
            Some(_) => break,
            None => {
                assert!(m.cycles() >= last, "clock must never go backwards");
                last = m.cycles();
            }
        }
    }
}

#[test]
fn eibrs_flush_interval_respects_msr_state() {
    // The bimodal behaviour only manifests while IBRS is actually set.
    let mut model = CpuModel::test_model();
    model.spec.eibrs = true;
    model.spec.eibrs_flush_interval = 4;
    model.lat.eibrs_periodic_flush = 500;
    let mut m = Machine::new(model);
    let mut pt = PageTable::new();
    pt.map_range(0x20_0000 - 0x4000, 0x300, 4, Pte::user(0));
    let t = m.mmu.register_table(pt);
    m.mmu.load_cr3(make_cr3(t, 0, false)).then_some(()).unwrap();
    m.set_reg(Reg::SP, 0x20_0000 - 64);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Sysret);
    m.load_program(b.link(0x8000));
    m.syscall_entry = Some(0x8000);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Syscall);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));

    // IBRS clear: constant-time entries.
    let mut costs = Vec::new();
    for _ in 0..8 {
        m.mode = PrivMode::User;
        m.pc = 0x1000;
        let c0 = m.cycles();
        m.run(&mut NoEnv, 10).unwrap();
        costs.push(m.cycles() - c0);
    }
    assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");

    // IBRS set: every 4th entry is slow.
    m.msrs
        .write(msr_index::IA32_SPEC_CTRL, uarch::isa::spec_ctrl::IBRS)
        .unwrap();
    let mut costs = Vec::new();
    for _ in 0..8 {
        m.mode = PrivMode::User;
        m.pc = 0x1000;
        let c0 = m.cycles();
        m.run(&mut NoEnv, 10).unwrap();
        costs.push(m.cycles() - c0);
    }
    let slow = costs.iter().filter(|c| **c > costs[0]).count();
    assert_eq!(slow, 2, "{costs:?}");
}

#[test]
fn execution_trace_records_committed_instructions() {
    let mut m = machine_with_pages();
    m.enable_trace(8);
    load(&mut m, 0x1000, |b| {
        b.mov_imm(Reg::R0, 1);
        b.mov_imm(Reg::R1, 2);
        b.push(Inst::Add(Reg::R0, Reg::R1));
        b.push(Inst::Halt);
    });
    m.run(&mut NoEnv, 10).unwrap();
    let t = m.tracer.as_ref().unwrap();
    assert_eq!(t.len(), 4);
    let dump = t.dump();
    assert!(dump.contains("mov(imm)") && dump.contains("add") && dump.contains("hlt"));
    // Cycles are non-decreasing through the trace.
    let cycles: Vec<u64> = t.records().map(|r| r.cycles).collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
}
