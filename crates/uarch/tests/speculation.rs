//! End-to-end mechanism tests for the transient-execution engine.
//!
//! Each test builds a small program that mirrors a real attack gadget and
//! verifies that the microarchitectural side effects (cache footprint,
//! divider activity) appear exactly when the CPU model is vulnerable and
//! disappear when the mitigation or hardware fix is applied.

use uarch::isa::{Cond, Inst, Pmc, Reg, Width};
use uarch::machine::{Env, Machine, NoEnv, Stop};
use uarch::mem::PAGE_SHIFT;
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::program::ProgramBuilder;
use uarch::SimError;

/// Virtual base of the user data arena (identity-offset to frames 0x100+).
const DATA_BASE: u64 = 0x10_0000;
const DATA_FRAMES: u64 = 0x100;
/// A supervisor-only page holding the "kernel secret".
const KSECRET_VADDR: u64 = 0x20_0000;
const KSECRET_FRAME: u64 = 0x400;
/// Probe array base (user): 256 slots, one cache line each, 512B stride.
const PROBE_BASE: u64 = 0x30_0000;
const PROBE_FRAMES: u64 = 0x500;
const PROBE_STRIDE: u64 = 512;
/// Stack top.
const STACK_TOP: u64 = 0x40_0000;
const STACK_FRAME: u64 = 0x700;

/// Builds a machine with a user-visible arena, a kernel secret page, a
/// probe array, and a stack, all mapped in one address space.
fn machine(model: CpuModel) -> Machine {
    let mut m = Machine::new(model);
    let mut pt = PageTable::new();
    pt.map_range(DATA_BASE, DATA_FRAMES, 16, Pte::user(0));
    pt.map(KSECRET_VADDR, Pte::kernel(KSECRET_FRAME));
    pt.map_range(PROBE_BASE, PROBE_FRAMES, 64, Pte::user(0));
    pt.map_range(STACK_TOP - 0x4000, STACK_FRAME, 4, Pte::user(0));
    let id = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(id, 0, false)));
    m.set_reg(Reg::SP, STACK_TOP - 64);
    m.mode = PrivMode::User;
    m
}

/// Which probe slot (if any) is resident in L1 — the attacker's readout.
fn probe_hit(m: &Machine) -> Option<u64> {
    let mut hits = Vec::new();
    for i in 0..256u64 {
        let vaddr = PROBE_BASE + i * PROBE_STRIDE;
        // Probe addresses are identity-offset into PROBE_FRAMES.
        let paddr = (PROBE_FRAMES << PAGE_SHIFT) + (vaddr - PROBE_BASE);
        if m.l1d.probe(paddr) {
            hits.push(i);
        }
    }
    match hits.as_slice() {
        [one] => Some(*one),
        [] => None,
        _many => None, // ambiguous readout counts as failure
    }
}

/// Environment whose fault hook resumes at the recovery address the
/// attacker left in R13 — the moral equivalent of `siglongjmp` out of a
/// SIGSEGV handler, which is how real Meltdown/MDS PoCs survive the
/// architectural fault without re-running the probe sequence.
struct SkipFault;

impl Env for SkipFault {
    fn host_call(&mut self, m: &mut Machine, id: u16) -> Result<(), SimError> {
        assert_eq!(id, 1);
        let recovery = m.reg(Reg::R13);
        if let Some(f) = &mut m.fault_frame {
            f.resume_pc = if recovery != 0 { recovery } else { f.faulting_pc + 4 };
        }
        Ok(())
    }
}

/// Installs a fault handler (at `base`) that skips the faulting
/// instruction and returns.
fn install_skip_handler(m: &mut Machine, base: u64) {
    let mut b = ProgramBuilder::new();
    b.push(Inst::Host(1));
    b.push(Inst::Iret);
    m.load_program(b.link(base));
    m.fault_vectors.page_fault = Some(base);
    m.fault_vectors.general_protection = Some(base);
    m.fault_vectors.device_not_available = Some(base);
    m.fault_vectors.divide_error = Some(base);
}

#[test]
fn arithmetic_loop_and_cycle_accounting() {
    let mut m = machine(CpuModel::test_model());
    let mut b = ProgramBuilder::new();
    let done = b.new_label();
    b.mov_imm(Reg::R0, 0);
    b.mov_imm(Reg::R1, 100);
    let top = b.here();
    b.add_imm(Reg::R0, 3);
    b.sub_imm(Reg::R1, 1);
    b.cmp_imm(Reg::R1, 0);
    b.jcc(Cond::Ne, top);
    b.bind(done);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    assert_eq!(m.run(&mut NoEnv, 10_000).unwrap(), Stop::Halted);
    assert_eq!(m.reg(Reg::R0), 300);
    assert!(m.cycles() > 400, "loop must cost cycles, got {}", m.cycles());
}

#[test]
fn loads_and_stores_round_trip_through_translation() {
    let mut m = machine(CpuModel::test_model());
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, DATA_BASE);
    b.mov_imm(Reg::R1, 0xdead_beef);
    b.push(Inst::Store { src: Reg::R1, base: Reg::R0, offset: 8, width: Width::B8 });
    b.push(Inst::Load { dst: Reg::R2, base: Reg::R0, offset: 8, width: Width::B8 });
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    m.run(&mut NoEnv, 100).unwrap();
    assert_eq!(m.reg(Reg::R2), 0xdead_beef);
}

#[test]
fn cache_timing_is_visible_to_rdtsc() {
    // A load from a cold line must take visibly longer than a hot one —
    // the timing channel every attack reads.
    let mut m = machine(CpuModel::test_model());
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, DATA_BASE);
    // Cold timing.
    b.push(Inst::Rdtsc(Reg::R4));
    b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B8 });
    b.push(Inst::Rdtsc(Reg::R5));
    b.push(Inst::Sub(Reg::R5, Reg::R4)); // R5 = cold cycles
    // Hot timing.
    b.push(Inst::Rdtsc(Reg::R6));
    b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B8 });
    b.push(Inst::Rdtsc(Reg::R7));
    b.push(Inst::Sub(Reg::R7, Reg::R6)); // R7 = hot cycles
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    m.run(&mut NoEnv, 100).unwrap();
    let (cold, hot) = (m.reg(Reg::R5), m.reg(Reg::R7));
    assert!(cold > hot + 100, "cold {cold} must exceed hot {hot} by the miss latency");
}

#[test]
fn supervisor_access_faults_and_iret_resumes() {
    let mut m = machine(CpuModel::test_model());
    install_skip_handler(&mut m, 0x9000);
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, KSECRET_VADDR);
    b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B8 });
    b.mov_imm(Reg::R2, 7); // proves we resumed past the fault
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    m.run(&mut SkipFault, 100).unwrap();
    assert_eq!(m.reg(Reg::R2), 7);
    assert_eq!(m.mode, PrivMode::User, "iret must restore user mode");
}

#[test]
fn syscall_round_trip() {
    let mut m = machine(CpuModel::test_model());
    // Kernel entry: set R0 = 99, sysret back.
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, 99);
    b.push(Inst::Sysret);
    m.load_program(b.link(0x8000));
    m.syscall_entry = Some(0x8000);

    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, 1);
    b.push(Inst::Syscall);
    b.mov_imm(Reg::R1, 42); // runs after sysret
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    let before = m.cycles();
    m.run(&mut NoEnv, 100).unwrap();
    assert_eq!(m.reg(Reg::R0), 99);
    assert_eq!(m.reg(Reg::R1), 42);
    assert_eq!(m.mode, PrivMode::User);
    let lat = &m.model.lat;
    assert!(m.cycles() - before >= lat.syscall + lat.sysret);
}

/// Builds the canonical Spectre V1 gadget:
/// `if (index < len) { x = array[index]; probe[x * 512]; }`.
///
/// Registers: R0 = index, R1 = array base, R2 = len, R3 = probe base.
/// When `masked`, the SpiderMonkey-style index mask (`cmov` to zero on
/// out-of-bounds) is inserted; when `fenced`, an `lfence` follows the
/// bounds check.
fn spectre_v1_gadget(masked: bool, fenced: bool) -> uarch::Program {
    let mut b = ProgramBuilder::new();
    let skip = b.new_label();
    b.push(Inst::Cmp(Reg::R0, Reg::R2));
    b.jcc(Cond::AboveEq, skip);
    if fenced {
        b.push(Inst::Lfence);
    }
    if masked {
        // cmov: if index >= len, replace it with 0. Flags still hold the
        // comparison result.
        b.push(Inst::CmovImm(Cond::AboveEq, Reg::R0, 0));
    }
    b.push(Inst::Add(Reg::R0, Reg::R1)); // R0 = &array[index]
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9)); // *512
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(skip);
    b.push(Inst::Halt);
    b.link(0x1000)
}

/// Runs the V1 gadget once with the given index/len. The secret lives just
/// past the end of the 8-byte "array".
fn run_v1_once(m: &mut Machine, index: u64, len: u64) {
    m.bhb.clear();
    m.set_reg(Reg::R0, index);
    m.set_reg(Reg::R1, DATA_BASE);
    m.set_reg(Reg::R2, len);
    m.set_reg(Reg::R3, PROBE_BASE);
    m.pc = 0x1000;
    m.run(&mut NoEnv, 1000).unwrap();
}

fn v1_attack(model: CpuModel, masked: bool, fenced: bool) -> Option<u64> {
    let mut m = machine(model);
    m.load_program(spectre_v1_gadget(masked, fenced));
    // Plant a "secret" byte 64 bytes past the array end.
    let secret: u8 = 0xA7;
    let secret_off = 64u64;
    m.mem.write_u8((DATA_FRAMES << PAGE_SHIFT) + secret_off, secret);
    // Train the branch predictor with in-bounds accesses.
    for i in 0..8 {
        run_v1_once(&mut m, i % 8, 8);
    }
    // Flush the probe array and attack with the out-of-bounds index.
    m.l1d.flush_all();
    run_v1_once(&mut m, secret_off, 8);
    probe_hit(&m)
}

#[test]
fn spectre_v1_leaks_out_of_bounds_byte() {
    assert_eq!(v1_attack(CpuModel::test_model(), false, false), Some(0xA7));
}

#[test]
fn index_masking_blocks_spectre_v1() {
    // With the cmov mask, the transient access reads array[0], not the
    // secret, so the probe sees the wrong (in-bounds) line.
    let hit = v1_attack(CpuModel::test_model(), true, false);
    assert_ne!(hit, Some(0xA7));
}

#[test]
fn lfence_blocks_spectre_v1() {
    let hit = v1_attack(CpuModel::test_model(), false, true);
    assert_ne!(hit, Some(0xA7), "lfence must stop the transient window");
}

/// Sets up the Spectre V2 probe scene: a dispatcher with an indirect call,
/// a victim target containing a divide, and a harmless nop target.
/// Returns (machine, dispatcher_pc, victim_addr, nop_addr).
fn v2_scene(model: CpuModel) -> (Machine, u64, u64, u64) {
    let mut m = machine(model);
    // Victim: a divide (the probe observable), then return.
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R8, 12345);
    b.mov_imm(Reg::R9, 6789);
    b.push(Inst::Div(Reg::R8, Reg::R9));
    b.push(Inst::Ret);
    m.load_program(b.link(0x5000));
    // Nop target: return immediately.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    m.load_program(b.link(0x6000));
    // Dispatcher: call through R10, then halt.
    let mut b = ProgramBuilder::new();
    b.push(Inst::CallInd(Reg::R10));
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    (m, 0x1000, 0x5000, 0x6000)
}

fn dispatch(m: &mut Machine, dispatcher: u64, target: u64) {
    m.bhb.clear();
    m.set_reg(Reg::R10, target);
    m.pc = dispatcher;
    m.run(&mut NoEnv, 1000).unwrap();
}

#[test]
fn spectre_v2_btb_poisoning_observed_via_divider() {
    let (mut m, dispatcher, victim, nop) = v2_scene(CpuModel::test_model());
    // Train: the indirect call goes to the victim (divides commit).
    for _ in 0..4 {
        dispatch(&mut m, dispatcher, victim);
    }
    // Attack readout: switch the pointer to the nop target and watch the
    // divider counter across the dispatch.
    let before = m.pmc.read(Pmc::DividerActive);
    dispatch(&mut m, dispatcher, nop);
    let after = m.pmc.read(Pmc::DividerActive);
    assert!(
        after > before,
        "victim_target must have run speculatively (divider {before} -> {after})"
    );
}

#[test]
fn ibpb_between_training_and_victim_blocks_v2() {
    let (mut m, dispatcher, victim, nop) = v2_scene(CpuModel::test_model());
    for _ in 0..4 {
        dispatch(&mut m, dispatcher, victim);
    }
    m.btb.ibpb();
    let before = m.pmc.read(Pmc::DividerActive);
    dispatch(&mut m, dispatcher, nop);
    let after = m.pmc.read(Pmc::DividerActive);
    assert_eq!(after, before, "IBPB must prevent speculative dispatch to the victim");
}

#[test]
fn generic_retpoline_captures_speculation() {
    // Same scene, but dispatch goes through a generic retpoline thunk
    // (Figure 4): call; [pause; lfence; jmp]; overwrite return; ret.
    let mut m = machine(CpuModel::test_model());
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R8, 12345);
    b.mov_imm(Reg::R9, 6789);
    b.push(Inst::Div(Reg::R8, Reg::R9));
    b.push(Inst::Ret);
    m.load_program(b.link(0x5000));
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    m.load_program(b.link(0x6000));

    // Dispatcher calls the thunk; thunk performs the retpoline dance on
    // the target in R10.
    let mut b = ProgramBuilder::new();
    let thunk = b.new_label();
    let capture = b.new_label();
    let set_target = b.new_label();
    b.call(thunk); // offset 0: dispatcher body
    b.push(Inst::Halt);
    b.bind(thunk);
    b.call(set_target);
    b.bind(capture);
    b.push(Inst::Pause);
    b.push(Inst::Lfence);
    b.jmp(capture);
    b.bind(set_target);
    b.push(Inst::Store { src: Reg::R10, base: Reg::SP, offset: 0, width: Width::B8 });
    b.push(Inst::Ret);
    let prog = b.link(0x1000);
    m.load_program(prog);

    let run = |m: &mut Machine, target: u64| {
        m.bhb.clear();
        m.set_reg(Reg::R10, target);
        m.pc = 0x1000;
        m.run(&mut NoEnv, 1000).unwrap();
    };
    for _ in 0..4 {
        run(&mut m, 0x5000);
    }
    let before = m.pmc.read(Pmc::DividerActive);
    run(&mut m, 0x6000);
    let after = m.pmc.read(Pmc::DividerActive);
    assert_eq!(after, before, "retpoline must route speculation to the capture loop");
}

#[test]
fn meltdown_leaks_kernel_byte_on_vulnerable_cpu() {
    let mut m = machine(CpuModel::test_model());
    install_skip_handler(&mut m, 0x9000);
    // Kernel secret byte.
    m.mem.write_u8(KSECRET_FRAME << PAGE_SHIFT, 0x5C);
    // Meltdown gadget: load kernel byte (faults), probe with it. The
    // fault handler resumes at `done`, so the probe sequence only ever
    // runs transiently.
    let mut b = ProgramBuilder::new();
    let done = b.new_label();
    b.lea(Reg::R13, done);
    b.mov_imm(Reg::R0, KSECRET_VADDR);
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(done);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.l1d.flush_all();
    m.pc = 0x1000;
    m.run(&mut SkipFault, 100).unwrap();
    assert_eq!(probe_hit(&m), Some(0x5C));
}

#[test]
fn meltdown_fixed_hardware_leaks_zero() {
    let mut model = CpuModel::test_model();
    model.vuln.meltdown = false;
    let mut m = machine(model);
    install_skip_handler(&mut m, 0x9000);
    m.mem.write_u8(KSECRET_FRAME << PAGE_SHIFT, 0x5C);
    let mut b = ProgramBuilder::new();
    let done = b.new_label();
    b.lea(Reg::R13, done);
    b.mov_imm(Reg::R0, KSECRET_VADDR);
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(done);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.l1d.flush_all();
    m.pc = 0x1000;
    m.run(&mut SkipFault, 100).unwrap();
    // RDCL_NO hardware forwards zero: slot 0, not the secret.
    assert_ne!(probe_hit(&m), Some(0x5C));
}

#[test]
fn speculative_store_bypass_leaks_stale_value() {
    // Store a new value, immediately reload it, and use the loaded value
    // as a probe index. On a vulnerable part without SSBD the dependents
    // transiently see the *old* value.
    let mut m = machine(CpuModel::test_model());
    // Pre-set the stale value at the target location.
    m.mem.write_u8((DATA_FRAMES << PAGE_SHIFT) + 8, 0x33);
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, DATA_BASE);
    b.mov_imm(Reg::R1, 0x11); // the new value
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::Store { src: Reg::R1, base: Reg::R0, offset: 8, width: Width::B1 });
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 8, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.l1d.flush_all();
    m.pc = 0x1000;
    m.run(&mut NoEnv, 100).unwrap();
    // Committed value must be the new one: R4 = probe_base + (0x11 << 9).
    assert_eq!(m.reg(Reg::R4), PROBE_BASE + ((0x11u64) << 9));
    // But the stale value's probe line was touched transiently.
    let stale_paddr = (PROBE_FRAMES << PAGE_SHIFT) + 0x33 * PROBE_STRIDE;
    assert!(m.l1d.probe(stale_paddr), "stale-value line must be cached");
}

#[test]
fn ssbd_blocks_store_bypass() {
    use uarch::isa::{msr_index, spec_ctrl};
    let mut m = machine(CpuModel::test_model());
    m.mem.write_u8((DATA_FRAMES << PAGE_SHIFT) + 8, 0x33);
    m.msrs.write(msr_index::IA32_SPEC_CTRL, spec_ctrl::SSBD).unwrap();
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, DATA_BASE);
    b.mov_imm(Reg::R1, 0x11);
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::Store { src: Reg::R1, base: Reg::R0, offset: 8, width: Width::B1 });
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 8, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.l1d.flush_all();
    m.pc = 0x1000;
    m.run(&mut NoEnv, 100).unwrap();
    let stale_paddr = (PROBE_FRAMES << PAGE_SHIFT) + 0x33 * PROBE_STRIDE;
    assert!(!m.l1d.probe(stale_paddr), "SSBD must suppress the bypass window");
}

#[test]
fn mds_samples_fill_buffers_and_verw_clears_them() {
    // A faulting load from an unmapped address on an MDS part returns
    // stale fill-buffer data; verw (with MD_CLEAR) erases it first.
    let mut m = machine(CpuModel::test_model());
    install_skip_handler(&mut m, 0x9000);
    // Seed the fill buffers with a "victim" value via a committed load.
    m.mem.write_u8(DATA_FRAMES << PAGE_SHIFT, 0x77);
    let build = |verw: bool| {
        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        b.lea(Reg::R13, done);
        b.mov_imm(Reg::R0, DATA_BASE);
        b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B1 });
        if verw {
            b.push(Inst::Verw);
        }
        b.mov_imm(Reg::R2, 0xdead_0000); // unmapped
        b.mov_imm(Reg::R3, PROBE_BASE);
        b.push(Inst::Load { dst: Reg::R4, base: Reg::R2, offset: 0, width: Width::B1 });
        b.push(Inst::Shl(Reg::R4, 9));
        b.push(Inst::Add(Reg::R4, Reg::R3));
        b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
        b.bind(done);
        b.push(Inst::Halt);
        b.link(0x1000)
    };

    m.load_program(build(false));
    m.l1d.flush_all();
    m.pc = 0x1000;
    m.run(&mut SkipFault, 100).unwrap();
    assert_eq!(probe_hit(&m), Some(0x77), "MDS must sample the stale buffer");

    // Fresh machine with verw before the faulting load.
    let mut m2 = machine(CpuModel::test_model());
    install_skip_handler(&mut m2, 0x9000);
    m2.mem.write_u8(DATA_FRAMES << PAGE_SHIFT, 0x77);
    m2.load_program(build(true));
    m2.l1d.flush_all();
    m2.pc = 0x1000;
    m2.run(&mut SkipFault, 100).unwrap();
    assert_ne!(probe_hit(&m2), Some(0x77), "verw must clear the buffers");
}

#[test]
fn lazyfp_leaks_stale_fpu_register() {
    let mut m = machine(CpuModel::test_model());
    install_skip_handler(&mut m, 0x9000);
    // "Previous process" left a secret in F0; FPU got lazily disabled.
    m.fpu.state.regs[0] = f64::from_bits(0x42 << 9);
    m.fpu.owner = Some(1);
    m.fpu.disable();
    // Attacker: move F0 to a GPR (traps; transiently succeeds), probe.
    let mut b = ProgramBuilder::new();
    let done = b.new_label();
    b.lea(Reg::R13, done);
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::FtoG(Reg::R4, uarch::FReg::F0));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(done);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.l1d.flush_all();
    m.pc = 0x1000;
    m.run(&mut SkipFault, 100).unwrap();
    assert_eq!(probe_hit(&m), Some(0x42));
}

#[test]
fn l1tf_leaks_only_l1_resident_data() {
    let mut m = machine(CpuModel::test_model());
    install_skip_handler(&mut m, 0x9000);
    // A non-present PTE with a stale frame number pointing at a "host"
    // frame whose data is hot in L1.
    let host_frame = 0x800u64;
    let host_paddr = host_frame << PAGE_SHIFT;
    m.mem.write_u8(host_paddr, 0x2F);
    m.l1d.access(host_paddr); // the victim recently touched it
    let evil_vaddr = 0x50_0000u64;
    let table = m.mmu.current_table();
    m.mmu
        .table_mut(table)
        .unwrap()
        .map(evil_vaddr, Pte::user(host_frame).non_present_stale());

    let mut b = ProgramBuilder::new();
    let done = b.new_label();
    b.lea(Reg::R13, done);
    b.mov_imm(Reg::R0, evil_vaddr);
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(done);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    // Flush the probe array lines only (keep the host line hot).
    for i in 0..256u64 {
        m.l1d.flush_line((PROBE_FRAMES << PAGE_SHIFT) + i * PROBE_STRIDE);
    }
    m.run(&mut SkipFault, 100).unwrap();
    assert_eq!(probe_hit(&m), Some(0x2F));

    // Same attack with the L1 flushed (the hypervisor mitigation): no leak.
    let mut m2 = machine(CpuModel::test_model());
    install_skip_handler(&mut m2, 0x9000);
    m2.mem.write_u8(host_paddr, 0x2F);
    let table = m2.mmu.current_table();
    m2.mmu
        .table_mut(table)
        .unwrap()
        .map(evil_vaddr, Pte::user(host_frame).non_present_stale());
    let mut b = ProgramBuilder::new();
    let done = b.new_label();
    b.lea(Reg::R13, done);
    b.mov_imm(Reg::R0, evil_vaddr);
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(done);
    b.push(Inst::Halt);
    m2.load_program(b.link(0x1000));
    m2.l1d.flush_all(); // the mitigation
    m2.pc = 0x1000;
    m2.run(&mut SkipFault, 100).unwrap();
    assert_ne!(probe_hit(&m2), Some(0x2F), "flushed L1 must not leak");
}

#[test]
fn verw_cost_depends_on_md_clear() {
    let mut vulnerable = CpuModel::test_model();
    vulnerable.spec.md_clear = true;
    let mut m = machine(vulnerable);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Verw);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    let c0 = m.cycles();
    m.run(&mut NoEnv, 10).unwrap();
    let with_clear = m.cycles() - c0;

    let mut fixed = CpuModel::test_model();
    fixed.spec.md_clear = false;
    let mut m = machine(fixed);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Verw);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    let c0 = m.cycles();
    m.run(&mut NoEnv, 10).unwrap();
    let legacy = m.cycles() - c0;
    assert!(with_clear > legacy * 5, "MD_CLEAR verw ({with_clear}) >> legacy ({legacy})");
}

#[test]
fn amd_lfence_suppresses_indirect_speculation() {
    // AMD retpoline: lfence immediately before the indirect branch stops
    // the poisoned BTB entry from being followed.
    let mut model = CpuModel::test_model();
    model.vendor = uarch::Vendor::Amd;
    let mut m = machine(model);
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R8, 12345);
    b.mov_imm(Reg::R9, 6789);
    b.push(Inst::Div(Reg::R8, Reg::R9));
    b.push(Inst::Ret);
    m.load_program(b.link(0x5000));
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    m.load_program(b.link(0x6000));
    // AMD thunk: lfence; call *R10.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lfence);
    b.push(Inst::CallInd(Reg::R10));
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));

    let run = |m: &mut Machine, target: u64| {
        m.bhb.clear();
        m.set_reg(Reg::R10, target);
        m.pc = 0x1000;
        m.run(&mut NoEnv, 1000).unwrap();
    };
    for _ in 0..4 {
        run(&mut m, 0x5000);
    }
    let before = m.pmc.read(Pmc::DividerActive);
    run(&mut m, 0x6000);
    let after = m.pmc.read(Pmc::DividerActive);
    assert_eq!(after, before, "AMD lfence retpoline must suppress speculation");
}

#[test]
fn eibrs_tagging_blocks_cross_mode_probe() {
    let mut model = CpuModel::test_model();
    model.spec.btb_priv_tagged = true;
    let (mut m, dispatcher, victim, nop) = v2_scene(model);
    // Train in user mode.
    for _ in 0..4 {
        dispatch(&mut m, dispatcher, victim);
    }
    // Victim dispatch in kernel mode (probe harness controls the mode).
    m.mode = PrivMode::Kernel;
    let before = m.pmc.read(Pmc::DividerActive);
    dispatch(&mut m, dispatcher, nop);
    let after = m.pmc.read(Pmc::DividerActive);
    assert_eq!(after, before, "privilege-tagged BTB must not cross modes");
}

#[test]
fn pre_spectre_ibrs_blocks_even_same_mode_prediction() {
    use uarch::isa::{msr_index, spec_ctrl};
    let mut model = CpuModel::test_model();
    model.spec.ibrs_blocks_all_prediction = true;
    let (mut m, dispatcher, victim, nop) = v2_scene(model);
    for _ in 0..4 {
        dispatch(&mut m, dispatcher, victim);
    }
    m.msrs.write(msr_index::IA32_SPEC_CTRL, spec_ctrl::IBRS).unwrap();
    let before = m.pmc.read(Pmc::DividerActive);
    dispatch(&mut m, dispatcher, nop);
    let after = m.pmc.read(Pmc::DividerActive);
    assert_eq!(after, before);
}

#[test]
fn transient_window_is_bounded() {
    // A mispredicted branch into a long straight-line divide sled must not
    // execute more transient instructions than the window allows.
    let mut model = CpuModel::test_model();
    model.spec.window = 8;
    let (mut m, dispatcher, _victim, nop) = v2_scene(model);
    // Train toward a sled of 32 divides.
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R8, 1000);
    b.mov_imm(Reg::R9, 3);
    for _ in 0..32 {
        b.push(Inst::Div(Reg::R8, Reg::R9));
    }
    b.push(Inst::Ret);
    m.load_program(b.link(0x7000));
    for _ in 0..4 {
        dispatch(&mut m, dispatcher, 0x7000);
    }
    let before = m.pmc.read(Pmc::TransientInstructions);
    dispatch(&mut m, dispatcher, nop);
    let after = m.pmc.read(Pmc::TransientInstructions);
    assert!(after - before <= 8, "window must be bounded: {}", after - before);
}

#[test]
fn transient_stores_forward_within_the_window() {
    // A multi-instruction gadget that passes the stolen value through
    // memory (store then reload) still leaks: speculative stores forward
    // to younger loads inside the window, as on an out-of-order core.
    let mut m = machine(CpuModel::test_model());
    let scratch = DATA_BASE + 0x200;
    let mut b = ProgramBuilder::new();
    let skip = b.new_label();
    // if (R0 < R2) { tmp = A[R0]; [scratch] = tmp; v = [scratch]; probe[v*512]; }
    b.push(Inst::Cmp(Reg::R0, Reg::R2));
    b.jcc(Cond::AboveEq, skip);
    b.push(Inst::Add(Reg::R0, Reg::R1));
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.mov_imm(Reg::R6, scratch);
    b.push(Inst::Store { src: Reg::R4, base: Reg::R6, offset: 0, width: Width::B8 });
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R6, offset: 0, width: Width::B8 });
    b.push(Inst::Shl(Reg::R5, 9));
    b.push(Inst::Add(Reg::R5, Reg::R3));
    b.push(Inst::Load { dst: Reg::R7, base: Reg::R5, offset: 0, width: Width::B1 });
    b.bind(skip);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));

    let secret: u8 = 0x6D;
    m.mem.write_u8((DATA_FRAMES << PAGE_SHIFT) + 64, secret);
    let invoke = |m: &mut Machine, index: u64| {
        m.bhb.clear();
        m.set_reg(Reg::R0, index);
        m.set_reg(Reg::R1, DATA_BASE);
        m.set_reg(Reg::R2, 8);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.pc = 0x1000;
        m.run(&mut NoEnv, 1000).unwrap();
    };
    for i in 0..8 {
        invoke(&mut m, i % 8);
    }
    m.l1d.flush_all();
    invoke(&mut m, 64);
    assert_eq!(probe_hit(&m), Some(secret as u64));
}
