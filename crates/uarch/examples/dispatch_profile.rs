//! Scratch profiling harness: where does a simulated instruction's time
//! go? Times decoded vs reference dispatch on a pure-ALU loop (no
//! memory, no mispredicts) and on a load/store loop.

use std::time::Instant;

use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::program::ProgramBuilder;
use uarch::{Cond, CpuModel, Inst, Reg, Width};

const N: u64 = 400_000;

fn machine(alu_only: bool) -> Machine {
    let mut m = Machine::new(CpuModel::test_model());
    let mut pt = PageTable::new();
    pt.map_range(0x1_0000, 0x100, 16, Pte::user(0));
    let id = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(id, 0, false)));
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R0, N);
    b.mov_imm(Reg::R8, 0x1_0000);
    let top = b.here();
    if alu_only {
        for _ in 0..4 {
            b.push(Inst::Add(Reg::R1, Reg::R2));
            b.push(Inst::Xor(Reg::R3, Reg::R1));
            b.push(Inst::Mov(Reg::R4, Reg::R3));
            b.push(Inst::Shl(Reg::R4, 3));
        }
    } else {
        for _ in 0..4 {
            b.push(Inst::Store { src: Reg::R1, base: Reg::R8, offset: 0, width: Width::B8 });
            b.push(Inst::Load { dst: Reg::R2, base: Reg::R8, offset: 0, width: Width::B8 });
            b.push(Inst::Load { dst: Reg::R3, base: Reg::R8, offset: 64, width: Width::B8 });
            b.push(Inst::Add(Reg::R1, Reg::R2));
        }
    }
    b.sub_imm(Reg::R0, 1);
    b.cmp_imm(Reg::R0, 0);
    b.jcc(Cond::Ne, top);
    b.push(Inst::Halt);
    m.load_program(b.link(0x40_0000));
    m.pc = 0x40_0000;
    m
}

fn time(alu_only: bool, reference: bool) -> f64 {
    let mut best = f64::INFINITY;
    let mut retired = 0;
    for _ in 0..3 {
        let mut m = machine(alu_only);
        let t = Instant::now();
        let r = if reference {
            m.run_reference(&mut NoEnv, u64::MAX)
        } else {
            m.run(&mut NoEnv, u64::MAX)
        };
        let secs = t.elapsed().as_secs_f64();
        r.unwrap();
        retired = m.inst_count();
        best = best.min(secs);
    }
    retired as f64 / best
}

fn main() {
    for (label, alu) in [("alu", true), ("mem", false)] {
        let d = time(alu, false);
        let r = time(alu, true);
        println!("{label}: decoded {d:.0} i/s, reference {r:.0} i/s, speedup {:.2}x", d / r);
    }
}
