//! LazyFP proof of concept against the simulated kernel's FPU switching
//! policy.
//!
//! Process A loads a secret into an FP register and yields. Under *lazy*
//! switching the kernel leaves A's registers live and merely disables the
//! FPU; process B's first FP instruction traps — but on a vulnerable CPU
//! its transient dependents still see A's stale register (§3.1). Eager
//! switching (`Always save FPU`, the Table 1 default everywhere) restores
//! B's own state instead.

use sim_kernel::abi::nr;
use sim_kernel::{userlib, BootParams, Kernel};
use uarch::isa::{Cond, FReg, Inst, Reg, Width};
use uarch::model::CpuModel;

use crate::channel::{AttackOutcome, ProbeArray};

/// Runs the attack. `cmdline` controls the kernel (`"eagerfpu=off"`
/// selects the lazy policy the mitigation replaced).
pub fn run(model: CpuModel, cmdline: &str) -> AttackOutcome {
    let secret: u8 = 0x42;
    let mut k = Kernel::boot(model, &BootParams::parse(cmdline));
    let data = userlib::data_base();
    let probe_base = data + 0x8000;

    // Victim (runs first): plant secret bits in F0, yield forever.
    let victim = k.spawn(move |b| {
        b.push(Inst::Fload { dst: FReg::F0, base: Reg::R4, offset: 0 });
        let top = userlib::begin_loop(b, Reg::R7, 6);
        userlib::emit_syscall(b, nr::YIELD);
        userlib::end_loop(b, Reg::R7, top);
        userlib::emit_exit(b);
    });
    // F0 := bits (secret << 9), via memory.
    let bits = (secret as u64) << 9;
    k.poke_user_data(victim, 0, &bits.to_le_bytes());

    // Attacker: read F0 into a GPR. The committed value is its own
    // (zero); the transient value on a lazy+vulnerable system is the
    // victim's. Skip the probe on the committed (zero) path so the
    // readout stays unambiguous.
    let attacker = k.spawn(move |b| {
        let skip = b.new_label();
        b.mov_imm(Reg::R3, probe_base);
        b.push(Inst::FtoG(Reg::R4, FReg::F0));
        b.cmp_imm(Reg::R4, 0);
        b.jcc(Cond::Eq, skip);
        b.push(Inst::Add(Reg::R4, Reg::R3));
        b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
        b.bind(skip);
        userlib::emit_exit(b);
    });

    // Victim must point R4 at its planted bits before Fload.
    // (Registers start at zero; R4 = data base.)
    // Re-spawned programs cannot easily pre-set registers, so the victim
    // loads from offset 0 with R4 = 0 + data: patch via saved regs.
    // Simplest: set R4 via the program itself — rebuild is awkward, so we
    // poke the saved register directly.
    // (The victim has not run yet; its saved_regs are the initial frame.)
    // NOTE: done through the public test hook below.
    k.set_initial_reg(victim, Reg::R4, data);

    k.start();
    k.machine.l1d.flush_all();
    k.run(10_000_000).expect("attack halts");

    // The probe lives in the *attacker's* address space.
    let table = k.process(attacker).expect("attacker").full_table;
    let probe = ProbeArray { base: probe_base, table };
    let hot = probe.hot_slots(&k.machine);
    let recovered = if hot.contains(&secret) { Some(secret) } else { None };
    AttackOutcome { secret, recovered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn lazy_fpu_leaks_on_vulnerable_parts() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient] {
            let out = run(id.model(), "eagerfpu=off");
            assert!(out.leaked(), "{id}");
        }
    }

    #[test]
    fn eager_fpu_blocks_the_leak() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient] {
            let out = run(id.model(), "");
            assert!(!out.leaked(), "{id}");
        }
    }

    #[test]
    fn fixed_hardware_does_not_leak_even_lazily() {
        for id in [CpuId::CascadeLake, CpuId::IceLakeServer] {
            let out = run(id.model(), "eagerfpu=off");
            assert!(!out.leaked(), "{id}");
        }
    }
}
