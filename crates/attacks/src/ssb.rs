//! Speculative Store Bypass (Spectre V4) proof of concept.
//!
//! A store to a location is immediately followed by a load from it; the
//! memory-disambiguation machinery may let the load's dependents run
//! ahead with the *stale* value. The only mitigation is SSBD (§3.2),
//! which Linux applies per process via `prctl`/`seccomp`.

use sim_kernel::abi::nr;
use sim_kernel::{userlib, BootParams, Kernel};
use uarch::isa::{Inst, Reg, Width};
use uarch::model::CpuModel;
use uarch::ProgramBuilder;

use crate::channel::{AttackOutcome, ProbeArray};
use crate::scene::{Scene, CODE_BASE, DATA_BASE, PROBE_BASE};

/// Emits the SSB gadget: plant `new` over the stale byte, reload, probe.
/// Expects R1 = target address, R3 = probe base.
fn emit_ssb_gadget(b: &mut ProgramBuilder, new_value: u64) {
    b.mov_imm(Reg::R2, new_value);
    b.push(Inst::Store { src: Reg::R2, base: Reg::R1, offset: 0, width: Width::B1 });
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R1, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
}

/// Raw-machine variant; `ssbd` sets the SPEC_CTRL bit first.
pub fn run_raw(model: CpuModel, ssbd: bool) -> AttackOutcome {
    let secret: u8 = 0x33; // the stale value being recovered
    let mut s = Scene::new(model);
    s.plant_user_byte(8, secret);
    if ssbd {
        use uarch::isa::{msr_index, spec_ctrl};
        s.machine
            .msrs
            .write(msr_index::IA32_SPEC_CTRL, spec_ctrl::SSBD)
            .expect("ssbd bit accepted");
    }
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R1, DATA_BASE + 8);
    b.mov_imm(Reg::R3, PROBE_BASE);
    emit_ssb_gadget(&mut b, 0x11);
    b.push(Inst::Halt);
    s.machine.load_program(b.link(CODE_BASE));
    s.machine.l1d.flush_all();
    s.run_at(CODE_BASE);
    // The committed path legitimately probes slot 0x11; the *stale* slot
    // being hot too is the leak.
    let hot = s.probe.hot_slots(&s.machine);
    let recovered = if hot.contains(&secret) { Some(secret) } else { None };
    AttackOutcome { secret, recovered }
}

/// Kernel-hosted variant: the process opts into SSBD via `prctl` (or
/// not), demonstrating the Linux policy path the paper discusses (§4.3).
pub fn run_under_kernel(model: CpuModel, use_prctl: bool) -> AttackOutcome {
    let secret: u8 = 0x33;
    let mut k = Kernel::boot(model, &BootParams::default());
    let target = userlib::data_base() + 8;
    let probe_base = userlib::data_base() + 0x8000;
    let pid = k.spawn(move |b| {
        if use_prctl {
            userlib::emit_syscall(b, nr::PRCTL_SSBD);
        }
        b.mov_imm(Reg::R1, target);
        b.mov_imm(Reg::R3, probe_base);
        emit_ssb_gadget(b, 0x11);
        userlib::emit_exit(b);
    });
    k.poke_user_data(pid, 8, &[secret]);
    k.start();
    k.machine.l1d.flush_all();
    k.run(10_000_000).expect("runs to halt");
    let table = k.process(pid).expect("attacker exists").full_table;
    let probe = ProbeArray { base: probe_base, table };
    let hot = probe.hot_slots(&k.machine);
    let recovered = if hot.contains(&secret) { Some(secret) } else { None };
    AttackOutcome { secret, recovered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn every_cpu_is_vulnerable_without_ssbd() {
        // §4.3: no CPU from either vendor sets SSB_NO, even years later.
        for id in CpuId::ALL {
            let out = run_raw(id.model(), false);
            assert!(out.leaked(), "{id}");
        }
    }

    #[test]
    fn ssbd_blocks_everywhere() {
        for id in CpuId::ALL {
            let out = run_raw(id.model(), true);
            assert!(!out.leaked(), "{id}");
        }
    }

    #[test]
    fn prctl_opt_in_controls_the_kernel_policy() {
        for id in [CpuId::SkylakeClient, CpuId::Zen3] {
            let unprotected = run_under_kernel(id.model(), false);
            assert!(unprotected.leaked(), "{id} without prctl");
            let protected_ = run_under_kernel(id.model(), true);
            assert!(!protected_.leaked(), "{id} with prctl");
        }
    }
}
