//! Meltdown (rogue data cache load) proof of concept.
//!
//! Two variants:
//!
//! * [`run_raw`] exercises the hardware lever directly: a user-mode load
//!   of a mapped supervisor page forwards real data to its transient
//!   dependents on vulnerable parts and zero on fixed parts.
//! * [`run_against_kernel`] attacks the simulated kernel: it shows that
//!   page-table isolation defeats the attack *regardless* of the
//!   hardware, by removing the kernel mapping altogether.

use sim_kernel::{userlib, BootParams, Kernel};
use uarch::isa::{Inst, Reg, Width};
use uarch::model::CpuModel;
use uarch::ProgramBuilder;

use crate::channel::{AttackOutcome, ProbeArray};
use crate::scene::{Scene, CODE_BASE, KSECRET_VADDR, PROBE_BASE};

/// Emits the canonical Meltdown sequence: transiently load `[R1]`, probe
/// `probe[byte * 512]`, recover at `done`.
fn emit_meltdown_gadget(b: &mut ProgramBuilder, secret_vaddr: u64, probe_base: u64) {
    let done = b.new_label();
    b.lea(Reg::R13, done);
    b.mov_imm(Reg::R1, secret_vaddr);
    b.mov_imm(Reg::R3, probe_base);
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R1, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(done);
}

/// Raw-machine Meltdown against a mapped supervisor page.
pub fn run_raw(model: CpuModel) -> AttackOutcome {
    let secret = 0x5C;
    let mut s = Scene::new(model);
    s.plant_kernel_secret(secret);
    let mut b = ProgramBuilder::new();
    emit_meltdown_gadget(&mut b, KSECRET_VADDR, PROBE_BASE);
    b.push(Inst::Halt);
    s.machine.load_program(b.link(CODE_BASE));
    s.machine.l1d.flush_all();
    s.run_at(CODE_BASE);
    AttackOutcome { secret, recovered: s.probe.readout(&s.machine) }
}

/// Meltdown against the simulated kernel's data, under the given boot
/// parameters (pass `"nopti"` to drop the software mitigation).
pub fn run_against_kernel(model: CpuModel, cmdline: &str) -> AttackOutcome {
    let secret = 0xA5;
    let mut k = Kernel::boot(model, &BootParams::parse(cmdline));
    k.machine.mem.write_u8(k.kernel_data_paddr(), secret);
    let kdata = sim_kernel::layout::KERNEL_DATA_VADDR;
    let probe_base = userlib::data_base() + 0x8000;
    let pid = k.spawn(move |b| {
        emit_meltdown_gadget(b, kdata, probe_base);
        userlib::emit_exit(b);
    });
    k.start();
    k.machine.l1d.flush_all();
    k.run(10_000_000).expect("attack runs to halt");
    let table = k.process(pid).expect("attacker exists").full_table;
    let probe = ProbeArray { base: probe_base, table };
    AttackOutcome { secret, recovered: probe.readout(&k.machine) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn raw_meltdown_tracks_hardware_vulnerability() {
        for id in CpuId::ALL {
            let out = run_raw(id.model());
            let vulnerable = matches!(id, CpuId::Broadwell | CpuId::SkylakeClient);
            assert_eq!(out.leaked(), vulnerable, "{id}: {:?}", out.recovered);
        }
    }

    #[test]
    fn pti_blocks_kernel_meltdown_on_vulnerable_parts() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient] {
            let unmitigated = run_against_kernel(id.model(), "nopti");
            assert!(unmitigated.leaked(), "{id} without PTI");
            let mitigated = run_against_kernel(id.model(), "");
            assert!(!mitigated.leaked(), "{id} with PTI");
        }
    }

    #[test]
    fn fixed_hardware_needs_no_pti() {
        for id in [CpuId::CascadeLake, CpuId::IceLakeServer, CpuId::Zen3] {
            let out = run_against_kernel(id.model(), "");
            assert!(!out.leaked(), "{id}");
            // And the kernel indeed did not deploy PTI (Table 1).
            let k = Kernel::boot(id.model(), &BootParams::default());
            assert!(!k.state.config.pti, "{id}");
        }
    }
}
