//! Microarchitectural Data Sampling (RIDL/ZombieLoad-style) proof of
//! concept against the simulated kernel.
//!
//! The victim is the kernel itself: every syscall's kernel body loads
//! kernel data, leaving values in the fill buffers. After `sysret`, the
//! attacker issues a faulting load whose transient dependents receive a
//! *sampled* stale buffer entry (untargeted, §3.3). Repeating the attack
//! and histogramming the probe results recovers kernel bytes — unless
//! the exit path's `verw` cleared the buffers first.

use sim_kernel::{userlib, BootParams, Kernel};
use uarch::isa::{Inst, Reg, Width};
use uarch::model::CpuModel;

use crate::channel::ProbeArray;

/// Number of sampling rounds (MDS is probabilistic; real PoCs hammer).
const ROUNDS: usize = 24;

/// Outcome of the sampling campaign.
#[derive(Debug, Clone)]
pub struct MdsOutcome {
    /// The distinctive kernel byte planted as the secret.
    pub secret: u8,
    /// Histogram of recovered bytes across rounds.
    pub observed: Vec<u8>,
}

impl MdsOutcome {
    /// Whether any round sampled the planted kernel byte.
    pub fn leaked(&self) -> bool {
        self.observed.contains(&self.secret)
    }
}

/// Runs the campaign. `cmdline` controls the kernel (pass `"mds=off"` to
/// drop the verw mitigation).
pub fn run(model: CpuModel, cmdline: &str) -> MdsOutcome {
    let secret: u8 = 0xC9;
    let mut k = Kernel::boot(model, &BootParams::parse(cmdline));
    // Plant the secret where the kernel body's second load reads it
    // (`kernel_fn` loads [kdata + 64]).
    k.machine.mem.write_u8(k.kernel_data_paddr() + 64, secret);

    let probe_base = userlib::data_base() + 0x8000;
    let unmapped = 0x6fff_0000u64;
    let pid = k.spawn(move |b| {
        let top = userlib::begin_loop(b, Reg::R7, ROUNDS as u64);
        // Provoke kernel loads: any syscall runs the kernel body.
        userlib::emit_getpid(b);
        // Sample: faulting load from an unmapped address; dependents use
        // whatever the fill buffers hand over.
        let recover = b.new_label();
        b.lea(Reg::R13, recover);
        b.mov_imm(Reg::R1, unmapped);
        b.mov_imm(Reg::R3, probe_base);
        b.push(Inst::Load { dst: Reg::R4, base: Reg::R1, offset: 0, width: Width::B1 });
        b.push(Inst::Shl(Reg::R4, 9));
        b.push(Inst::Add(Reg::R4, Reg::R3));
        b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
        b.bind(recover);
        userlib::end_loop(b, Reg::R7, top);
        userlib::emit_exit(b);
    });
    k.start();

    // Run round by round, reading the probe between rounds. Driving from
    // outside lets us flush between samples like a real attacker would.
    let table = k.process(pid).expect("attacker").full_table;
    let probe = ProbeArray { base: probe_base, table };
    let mut observed = Vec::new();
    let mut last_hot: Vec<u8> = Vec::new();
    let _ = &mut last_hot;
    // Simply run to completion, checking hot slots as rounds accumulate:
    // step in slices so intermediate probe states are visible.
    loop {
        probe.flush(&mut k.machine);
        match k.machine.step_slice(&mut k.state, 400) {
            Ok(done) => {
                observed.extend(probe.hot_slots(&k.machine));
                if done {
                    break;
                }
            }
            Err(e) => panic!("attack failed: {e}"),
        }
    }
    observed.sort_unstable();
    observed.dedup();
    MdsOutcome { secret, observed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn mds_samples_kernel_data_without_verw() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient, CpuId::CascadeLake] {
            let out = run(id.model(), "mds=off");
            assert!(out.leaked(), "{id}: observed {:?}", out.observed);
        }
    }

    #[test]
    fn verw_blocks_the_sampling() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient, CpuId::CascadeLake] {
            let out = run(id.model(), "");
            assert!(!out.leaked(), "{id}: observed {:?}", out.observed);
        }
    }

    #[test]
    fn fixed_hardware_does_not_sample() {
        for id in [CpuId::IceLakeClient, CpuId::IceLakeServer, CpuId::Zen, CpuId::Zen3] {
            let out = run(id.model(), "mds=off");
            assert!(!out.leaked(), "{id}: observed {:?}", out.observed);
        }
    }
}
