//! A complete in-sandbox browser attack: Spectre V1 written in the
//! engine's own bytecode, with the cache readout *also inside the
//! sandbox* via the coarse-able timer.
//!
//! This is the attack that motivates every JS-level mitigation the paper
//! measures (§2, §4.3): untrusted script speculatively reads past an
//! array, encodes the byte into a probe array's cache state, and recovers
//! it with `performance.now()` timing. Three defenses are exercised:
//!
//! * **index masking** stops the speculative out-of-bounds read;
//! * **timer-precision reduction** (part of "other JS") leaves the leak
//!   in the cache but makes the in-sandbox readout blind;
//! * running the engine under the kernel's default policy also gives the
//!   process SSBD via seccomp — irrelevant to this V1 variant but part
//!   of the same defense-in-depth story.

use js_engine::{Engine, FunctionBuilder, JsMitigations, Op};
use sim_kernel::BootParams;
use uarch::model::CpuModel;

/// The secret byte planted past the victim array (kept < 16 so the
/// in-sandbox probe loop stays small).
pub const SECRET: i64 = 13;

/// Builds the attack program.
///
/// Heap layout after the two allocations: `A = [len=8, e0..e7]` directly
/// followed by `B = [len=4, b0..]`, so `A[9]` aliases `B[0]` — the
/// "secret" another part of the page holds.
fn build_attack() -> Engine {
    let mut e = Engine::new();
    // Locals: 0=A, 1=B(probe target holder), 2=C(probe), 3=i, 4=t0,
    // 5=best_i, 6=best_t, 7=tmp.
    let mut f = FunctionBuilder::new("main", 0, 8);

    // A = new Array(8); B = new Array(4); B[0] = SECRET.
    f.op(Op::NewArray(8));
    f.op(Op::SetLocal(0));
    f.op(Op::NewArray(4));
    f.op(Op::SetLocal(1));
    f.op(Op::GetLocal(1));
    f.op(Op::Const(0));
    f.op(Op::Const(SECRET));
    f.op(Op::ArraySet);
    // C = new Array(16 * 64) — 16 probe slots, 64 elements (512 B) apart.
    f.op(Op::NewArray(16 * 64));
    f.op(Op::SetLocal(2));

    // Train the bounds check in-bounds: x = A[i & 7]; touch C[x * 64].
    f.counted_loop(3, 16, |f| {
        f.op(Op::GetLocal(2));
        // A[i & 7] — in-bounds; A's elements are 0, so this touches slot 0.
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(3));
        f.op(Op::Const(7));
        f.op(Op::And);
        f.op(Op::ArrayGet);
        f.op(Op::Shl(6)); // * 64 elements
        f.op(Op::ArrayGet);
        f.op(Op::Drop);
    });

    // The strike: A[9] is architecturally out of bounds (returns 0), but
    // the trained bounds check lets the transient path read B[0] and
    // touch C[SECRET * 64].
    f.op(Op::GetLocal(2));
    f.op(Op::GetLocal(0));
    f.op(Op::Const(9));
    f.op(Op::ArrayGet);
    f.op(Op::Shl(6));
    f.op(Op::ArrayGet);
    f.op(Op::Drop);

    // In-sandbox readout: time C[i * 64] for i in 1..16 (slot 0 is hot
    // from training); the fastest slot is the recovered byte.
    f.op(Op::Const(0));
    f.op(Op::SetLocal(5)); // best_i = 0 (report 0 on failure)
    f.op(Op::Const(1_000_000));
    f.op(Op::SetLocal(6)); // best_t = huge
    f.op(Op::Const(1));
    f.op(Op::SetLocal(3));
    {
        let top = f.new_label();
        let done = f.new_label();
        let not_better = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(3));
        f.op(Op::Const(16));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        // t0 = now(); x = C[i * 64]; dt = now() - t0.
        f.op(Op::ReadTimer);
        f.op(Op::SetLocal(4));
        f.op(Op::GetLocal(2));
        f.op(Op::GetLocal(3));
        f.op(Op::Shl(6));
        f.op(Op::ArrayGet);
        f.op(Op::Drop);
        f.op(Op::ReadTimer);
        f.op(Op::GetLocal(4));
        f.op(Op::Sub);
        f.op(Op::SetLocal(7)); // dt
        // if dt < best_t { best_t = dt; best_i = i }
        f.op(Op::GetLocal(7));
        f.op(Op::GetLocal(6));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(not_better));
        f.op(Op::GetLocal(7));
        f.op(Op::SetLocal(6));
        f.op(Op::GetLocal(3));
        f.op(Op::SetLocal(5));
        f.bind(not_better);
        f.op(Op::GetLocal(3));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(3));
        f.op(Op::Jump(top));
        f.bind(done);
    }
    f.op(Op::GetLocal(5));
    f.op(Op::Return);
    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Runs the in-sandbox attack; returns the byte the sandboxed script
/// recovered (0 when the readout found nothing distinctive).
pub fn run(model: CpuModel, mits: JsMitigations) -> u64 {
    let engine = build_attack();
    let out = engine.run_jit(&model, &BootParams::default(), mits);
    out.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn unmitigated_sandbox_leaks_from_inside() {
        for id in [CpuId::SkylakeClient, CpuId::IceLakeServer, CpuId::Zen2] {
            let got = run(id.model(), JsMitigations::none());
            assert_eq!(got, SECRET as u64, "{id}");
        }
    }

    #[test]
    fn index_masking_blocks_the_in_sandbox_leak() {
        for id in [CpuId::SkylakeClient, CpuId::Zen2] {
            let got = run(
                id.model(),
                JsMitigations { index_masking: true, object_guards: false, other_js: false },
            );
            assert_ne!(got, SECRET as u64, "{id}");
        }
    }

    #[test]
    fn coarse_timer_blinds_the_readout() {
        // The leak still lands in the cache (masking off), but the
        // sandboxed script cannot time it any more.
        for id in [CpuId::SkylakeClient, CpuId::Zen2] {
            let got = run(
                id.model(),
                JsMitigations { index_masking: false, object_guards: false, other_js: true },
            );
            assert_ne!(got, SECRET as u64, "{id}");
        }
    }
}
