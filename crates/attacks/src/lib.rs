//! # attacks — transient-execution attack proof-of-concepts
//!
//! Executable implementations of every attack the paper's mitigations
//! address, run against the `uarch` simulator (and, where the mitigation
//! is kernel policy, against the `sim-kernel` OS). Each module couples an
//! attack to its mitigations so the test suite can assert the two sides
//! of Table 1: on a vulnerable CPU the unmitigated attack **recovers the
//! secret** through the cache timing channel, and the deployed mitigation
//! (or hardware fix) stops it.
//!
//! | module | attack | mitigations exercised |
//! |---|---|---|
//! | [`meltdown`] | Meltdown | PTI, RDCL_NO hardware |
//! | [`spectre_v1`] | Spectre V1 | index masking, lfence |
//! | [`spectre_v2`] | Spectre V2 | retpolines (both kinds), IBPB, eIBRS tagging |
//! | [`spectre_rsb`] | SpectreRSB | RSB stuffing |
//! | [`ssb`] | Speculative Store Bypass | SSBD (MSR + prctl/seccomp policy) |
//! | [`mds`] | MDS (RIDL/ZombieLoad class) | verw buffer clearing, MDS_NO hardware |
//! | [`l1tf`] | L1 Terminal Fault | PTE inversion, L1D flush |
//! | [`lazyfp`] | LazyFP | eager FPU switching |
//! | [`js_sandbox`] | in-sandbox Spectre V1 with in-sandbox timing readout | index masking, timer-precision reduction |
//! | [`ebpf`] | Spectre V1 through the eBPF/kernel boundary (beyond the paper) | verifier index masking |
//!
//! The [`channel`] module implements the shared Flush+Reload readout; the
//! [`scene`] module provides the bare-machine address-space harness.

pub mod channel;
pub mod ebpf;
pub mod js_sandbox;
pub mod l1tf;
pub mod lazyfp;
pub mod mds;
pub mod meltdown;
pub mod scene;
pub mod spectre_rsb;
pub mod spectre_v1;
pub mod spectre_v2;
pub mod ssb;

pub use channel::{AttackOutcome, ProbeArray};
