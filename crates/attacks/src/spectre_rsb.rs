//! SpectreRSB proof of concept.
//!
//! A function overwrites its own return address on the stack; the `ret`
//! architecturally transfers to the overwritten target, but the return
//! stack buffer still predicts the original call site — where the
//! attacker placed a leak gadget. RSB stuffing on context switch (whose
//! cost Table 7 reports) overwrites the stale prediction with harmless
//! entries.

use uarch::isa::{Inst, Reg, Width};
use uarch::machine::NoEnv;
use uarch::model::CpuModel;
use uarch::ProgramBuilder;

use crate::channel::AttackOutcome;
use crate::scene::{Scene, CODE_BASE, PROBE_BASE};

/// Harmless address used as the stuffing target.
const HARMLESS: u64 = 0xe000;

/// Runs the attack; `stuffed` interposes an RSB stuff (as the kernel does
/// on a context switch) between the poisoned call and the `ret`.
pub fn run(model: CpuModel, stuffed: bool) -> AttackOutcome {
    let secret: u8 = 0x5A;
    let mut s = Scene::new(model);

    // Harmless pad for stuffing.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    s.machine.load_program(b.link(HARMLESS));

    // Layout:
    //   main: call evil            <- RSB entry points at `gadget`
    //   gadget: probe[R4 * 512]    <- architecturally never reached
    //   safe: halt
    //   evil: overwrite [SP] with &safe; HALT-marker; ret
    //
    // The embedded Halt lets the driver interpose (or not) an RSB stuff
    // exactly where a context switch could occur, then resume.
    let mut b = ProgramBuilder::new();
    let evil = b.new_label();
    let safe = b.new_label();
    b.call(evil);
    // gadget (fall-through of the call site):
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(safe);
    b.push(Inst::Halt);
    b.bind(evil);
    b.lea(Reg::R6, safe);
    b.push(Inst::Store { src: Reg::R6, base: Reg::SP, offset: 0, width: Width::B8 });
    b.push(Inst::Halt); // driver checkpoint
    b.push(Inst::Ret);
    s.machine.load_program(b.link(CODE_BASE));

    s.machine.set_reg(Reg::R3, PROBE_BASE);
    s.machine.set_reg(Reg::R4, secret as u64);
    s.probe.flush(&mut s.machine);

    // Run to the checkpoint inside `evil`.
    s.machine.pc = CODE_BASE;
    s.machine.run(&mut NoEnv, 1_000).expect("reaches checkpoint");
    if stuffed {
        let cost = s.machine.model.lat.rsb_fill;
        s.machine.charge(cost);
        s.machine.rsb.stuff(HARMLESS);
    }
    // Resume: the ret executes, predicting from the RSB.
    s.machine.run(&mut NoEnv, 1_000).expect("halts at safe");

    AttackOutcome { secret, recovered: s.probe.readout(&s.machine) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn rsb_misprediction_leaks_everywhere() {
        // The RSB is not privilege-tagged on any part.
        for id in CpuId::ALL {
            let out = run(id.model(), false);
            assert!(out.leaked(), "{id}: {:?}", out.recovered);
        }
    }

    #[test]
    fn rsb_stuffing_blocks_everywhere() {
        for id in CpuId::ALL {
            let out = run(id.model(), true);
            assert!(!out.leaked(), "{id}");
        }
    }
}
