//! L1 Terminal Fault proof of concept (raw machine).
//!
//! A non-present PTE whose frame bits still point at a victim frame lets
//! a transient load observe that frame's data — but only while it is
//! resident in L1 (§5.6). The two mitigations are PTE inversion (never
//! create such PTEs) and, at the hypervisor boundary, flushing L1 before
//! VM entry; the hypervisor-level variant lives in the `hypervisor`
//! crate's tests.

use uarch::isa::{Inst, Reg, Width};
use uarch::mem::PAGE_SHIFT;
use uarch::mmu::Pte;
use uarch::model::CpuModel;
use uarch::ProgramBuilder;

use crate::channel::AttackOutcome;
use crate::scene::{Scene, CODE_BASE, PROBE_BASE};

/// How the victim side is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1tfSetup {
    /// Naive non-present PTE with a stale frame, victim line hot in L1.
    StalePteHotL1,
    /// Same PTE, but the L1 was flushed (the VM-entry mitigation).
    StalePteFlushedL1,
    /// PTE inversion applied (the OS-level mitigation).
    InvertedPte,
}

/// Runs the attack against a "victim frame" that the stale PTE names.
pub fn run(model: CpuModel, setup: L1tfSetup) -> AttackOutcome {
    let secret: u8 = 0x2F;
    let victim_frame = 0x800u64;
    let victim_paddr = victim_frame << PAGE_SHIFT;
    let evil_vaddr = 0x50_0000u64;

    let mut s = Scene::new(model);
    s.machine.mem.write_u8(victim_paddr, secret);

    // Craft the PTE.
    let pte = match setup {
        L1tfSetup::StalePteHotL1 | L1tfSetup::StalePteFlushedL1 => {
            Pte::user(victim_frame).non_present_stale()
        }
        L1tfSetup::InvertedPte => Pte::user(victim_frame).inverted(),
    };
    let table = s.table();
    s.machine.mmu.table_mut(table).expect("scene table").map(evil_vaddr, pte);

    let mut b = ProgramBuilder::new();
    let done = b.new_label();
    b.lea(Reg::R13, done);
    b.mov_imm(Reg::R1, evil_vaddr);
    b.mov_imm(Reg::R3, PROBE_BASE);
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R1, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(done);
    b.push(Inst::Halt);
    s.machine.load_program(b.link(CODE_BASE));

    // Victim residency.
    s.machine.l1d.flush_all();
    if setup == L1tfSetup::StalePteHotL1 || setup == L1tfSetup::InvertedPte {
        // The victim "recently touched" its secret.
        s.machine.l1d.access(victim_paddr);
    }
    s.probe.flush(&mut s.machine);

    s.run_at(CODE_BASE);
    AttackOutcome { secret, recovered: s.probe.readout(&s.machine) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn l1tf_leaks_hot_lines_on_vulnerable_parts() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient] {
            let out = run(id.model(), L1tfSetup::StalePteHotL1);
            assert!(out.leaked(), "{id}");
        }
    }

    #[test]
    fn l1_flush_blocks_the_leak() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient] {
            let out = run(id.model(), L1tfSetup::StalePteFlushedL1);
            assert!(!out.leaked(), "{id}");
        }
    }

    #[test]
    fn pte_inversion_blocks_the_leak() {
        for id in [CpuId::Broadwell, CpuId::SkylakeClient] {
            let out = run(id.model(), L1tfSetup::InvertedPte);
            assert!(!out.leaked(), "{id}");
        }
    }

    #[test]
    fn fixed_hardware_does_not_leak() {
        for id in [CpuId::CascadeLake, CpuId::IceLakeServer, CpuId::Zen, CpuId::Zen3] {
            let out = run(id.model(), L1tfSetup::StalePteHotL1);
            assert!(!out.leaked(), "{id}");
        }
    }
}
