//! Spectre V1 (bounds check bypass) proof of concept.
//!
//! The gadget is the paper's Figure 1: `x = array[index]; y = probe[x *
//! stride]` guarded by a bounds check. Training the conditional predictor
//! in-bounds and then supplying an out-of-bounds index makes the loads
//! run transiently past the check. The two software mitigations the paper
//! measures — index masking (§5.4, the SpiderMonkey strategy) and
//! `lfence` after the check — are toggleable.

use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::model::CpuModel;
use uarch::ProgramBuilder;

use crate::channel::AttackOutcome;
use crate::scene::{Scene, CODE_BASE, DATA_BASE, PROBE_BASE};

/// Which Spectre V1 mitigation the victim gadget applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V1Mitigation {
    /// Unmitigated gadget.
    None,
    /// Conditional-move index masking (zero the index when out of bounds).
    IndexMask,
    /// `lfence` after the bounds check.
    Lfence,
}

/// Runs the attack against `model` with the given mitigation. The secret
/// lives 64 bytes past the end of an 8-byte array.
pub fn run(model: CpuModel, mitigation: V1Mitigation) -> AttackOutcome {
    let secret: u8 = 0xA7;
    let secret_offset = 64u64;
    let mut s = Scene::new(model);
    s.plant_user_byte(secret_offset, secret);

    // The gadget: R0 = index, R1 = array, R2 = len, R3 = probe.
    let mut b = ProgramBuilder::new();
    let skip = b.new_label();
    b.push(Inst::Cmp(Reg::R0, Reg::R2));
    b.jcc(Cond::AboveEq, skip);
    if mitigation == V1Mitigation::Lfence {
        b.push(Inst::Lfence);
    }
    if mitigation == V1Mitigation::IndexMask {
        b.push(Inst::CmovImm(Cond::AboveEq, Reg::R0, 0));
    }
    b.push(Inst::Add(Reg::R0, Reg::R1));
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(skip);
    b.push(Inst::Halt);
    s.machine.load_program(b.link(CODE_BASE));

    let invoke = |s: &mut Scene, index: u64| {
        s.machine.bhb.clear();
        s.machine.set_reg(Reg::R0, index);
        s.machine.set_reg(Reg::R1, DATA_BASE);
        s.machine.set_reg(Reg::R2, 8);
        s.machine.set_reg(Reg::R3, PROBE_BASE);
        s.run_at(CODE_BASE);
    };

    // Train in-bounds, then strike out of bounds.
    for i in 0..8 {
        invoke(&mut s, i % 8);
    }
    s.probe.flush(&mut s.machine);
    invoke(&mut s, secret_offset);
    AttackOutcome { secret, recovered: s.probe.readout(&s.machine) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn leaks_on_every_cpu_without_mitigation() {
        // §4.6: Spectre V1 is unfixed everywhere, including Zen 3 and Ice
        // Lake Server.
        for id in CpuId::ALL {
            let out = run(id.model(), V1Mitigation::None);
            assert!(out.leaked(), "{id}: expected leak, got {:?}", out.recovered);
        }
    }

    #[test]
    fn index_masking_blocks_on_every_cpu() {
        for id in CpuId::ALL {
            let out = run(id.model(), V1Mitigation::IndexMask);
            assert!(!out.leaked(), "{id}");
        }
    }

    #[test]
    fn lfence_blocks_on_every_cpu() {
        for id in CpuId::ALL {
            let out = run(id.model(), V1Mitigation::Lfence);
            assert!(!out.leaked(), "{id}");
        }
    }
}
