//! Spectre V1 (bounds check bypass) proof of concept.
//!
//! The gadget is the paper's Figure 1: `x = array[index]; y = probe[x *
//! stride]` guarded by a bounds check. Training the conditional predictor
//! in-bounds and then supplying an out-of-bounds index makes the loads
//! run transiently past the check. Every [`V1Policy`] is executable
//! against it: the two blanket software mitigations the paper measures —
//! index masking (§5.4, the SpiderMonkey strategy) and `lfence` after
//! the check — plus the beyond-the-paper `targeted` policy, which runs
//! the `spec-taint` branch-attackability analysis over the gadget and
//! hardens only flagged branches.
//!
//! Soundness of `targeted` is adversarial, not assumed:
//! [`run_targeted_forced`] lets tests force the analysis verdict both
//! ways and demonstrates that the PoC still leaks when its branch is
//! (wrongly) left unflagged and is blocked when flagged.

use spec_taint::{analyze, harden_lfence};
use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::model::CpuModel;
use uarch::ProgramBuilder;

use crate::channel::AttackOutcome;
use crate::scene::{Scene, CODE_BASE, DATA_BASE, PROBE_BASE};

/// The Spectre-V1 policy the victim is built under — the same enum the
/// kernel's `spectre_v1=` boot parameter parses, so attack tests and
/// boot configuration can never name different worlds. The old
/// `V1Mitigation` name remains as an alias (`None` → [`V1Policy::Off`],
/// `IndexMask` → [`V1Policy::Mask`]).
pub use spec_taint::V1Policy;

/// Backwards-compatible alias for the unified policy enum.
pub type V1Mitigation = V1Policy;

/// The victim gadget under a blanket policy. `Off` is the unmitigated
/// Figure-1 sequence; `Lfence`/`Mask` insert the paper's two blanket
/// mitigations after the bounds check.
fn gadget(policy: V1Policy) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let skip = b.new_label();
    b.push(Inst::Cmp(Reg::R0, Reg::R2));
    b.jcc(Cond::AboveEq, skip);
    if policy == V1Policy::Lfence {
        b.push(Inst::Lfence);
    }
    if policy == V1Policy::Mask {
        b.push(Inst::CmovImm(Cond::AboveEq, Reg::R0, 0));
    }
    b.push(Inst::Add(Reg::R0, Reg::R1));
    b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 0, width: Width::B1 });
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.bind(skip);
    b.push(Inst::Halt);
    b
}

/// Trains, strikes, and reads the probe for an already-loaded victim.
fn execute(mut s: Scene, secret: u8, secret_offset: u64) -> AttackOutcome {
    let invoke = |s: &mut Scene, index: u64| {
        s.machine.bhb.clear();
        s.machine.set_reg(Reg::R0, index);
        s.machine.set_reg(Reg::R1, DATA_BASE);
        s.machine.set_reg(Reg::R2, 8);
        s.machine.set_reg(Reg::R3, PROBE_BASE);
        s.run_at(CODE_BASE);
    };

    // Train in-bounds, then strike out of bounds.
    for i in 0..8 {
        invoke(&mut s, i % 8);
    }
    s.probe.flush(&mut s.machine);
    invoke(&mut s, secret_offset);
    AttackOutcome { secret, recovered: s.probe.readout(&s.machine) }
}

/// Runs the attack against `model` under `policy`. The secret lives 64
/// bytes past the end of an 8-byte array.
pub fn run(model: CpuModel, policy: V1Policy) -> AttackOutcome {
    let secret: u8 = 0xA7;
    let secret_offset = 64u64;
    let mut s = Scene::new(model);
    s.plant_user_byte(secret_offset, secret);

    let prog = match policy {
        // Blanket worlds: the mitigation (or its absence) is baked in.
        V1Policy::Off | V1Policy::Lfence | V1Policy::Mask => gadget(policy).link(CODE_BASE),
        // Targeted: build the *unmitigated* gadget, let the analysis
        // find the attackable branch, and harden exactly what it flags.
        V1Policy::Targeted => {
            let bare = gadget(V1Policy::Off).link(CODE_BASE);
            let report = analyze(bare.base(), bare.insts());
            let hardened = harden_lfence(bare.base(), bare.insts(), &report.flagged_indices());
            let mut nb = ProgramBuilder::new();
            nb.extend(hardened.insts.iter().cloned());
            nb.link(CODE_BASE)
        }
    };
    s.machine.load_program(prog);
    execute(s, secret, secret_offset)
}

/// The adversarial-soundness harness: runs the *targeted* pipeline with
/// the analysis verdict forced. `flagged = false` simulates a broken
/// analysis that misses the gadget's branch (nothing is hardened — the
/// PoC must still leak, proving the attack corpus keeps the analysis
/// honest); `flagged = true` hardens the branch the analysis actually
/// flags (the PoC must be blocked).
pub fn run_targeted_forced(model: CpuModel, flagged: bool) -> AttackOutcome {
    let secret: u8 = 0xA7;
    let secret_offset = 64u64;
    let mut s = Scene::new(model);
    s.plant_user_byte(secret_offset, secret);

    let bare = gadget(V1Policy::Off).link(CODE_BASE);
    let indices = if flagged {
        let report = analyze(bare.base(), bare.insts());
        report.flagged_indices()
    } else {
        Vec::new()
    };
    let hardened = harden_lfence(bare.base(), bare.insts(), &indices);
    let mut nb = ProgramBuilder::new();
    nb.extend(hardened.insts.iter().cloned());
    s.machine.load_program(nb.link(CODE_BASE));
    execute(s, secret, secret_offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::{CpuId, RiscvId};

    /// Every model the matrix runs over: the paper's eight plus the
    /// extended RISC-V catalog.
    fn all_cpus() -> Vec<(String, CpuModel)> {
        let mut v: Vec<(String, CpuModel)> =
            CpuId::ALL.iter().map(|id| (id.to_string(), id.model())).collect();
        v.extend(RiscvId::ALL.iter().map(|id| (id.to_string(), id.model())));
        v
    }

    #[test]
    fn leaks_on_every_cpu_without_mitigation() {
        // §4.6: Spectre V1 is unfixed everywhere, including Zen 3, Ice
        // Lake Server, and the RISC-V parts.
        for (name, model) in all_cpus() {
            let out = run(model, V1Policy::Off);
            assert!(out.leaked(), "{name}: expected leak, got {:?}", out.recovered);
        }
    }

    #[test]
    fn index_masking_blocks_on_every_cpu() {
        for (name, model) in all_cpus() {
            let out = run(model, V1Policy::Mask);
            assert!(!out.leaked(), "{name}");
        }
    }

    #[test]
    fn lfence_blocks_on_every_cpu() {
        for (name, model) in all_cpus() {
            let out = run(model, V1Policy::Lfence);
            assert!(!out.leaked(), "{name}");
        }
    }

    /// The lockstep attack matrix: {off, lfence, mask, targeted} × every
    /// CPU (paper + RISC-V). Leakage iff the policy is `off`.
    #[test]
    fn attack_matrix_leaks_iff_off() {
        for policy in V1Policy::ALL {
            for (name, model) in all_cpus() {
                let out = run(model, policy);
                assert_eq!(
                    out.leaked(),
                    policy == V1Policy::Off,
                    "{name} under spectre_v1={policy}: recovered {:?}",
                    out.recovered
                );
            }
        }
    }

    /// Adversarial soundness, direction one: if the analysis wrongly
    /// leaves the gadget's branch unflagged, the targeted pipeline
    /// hardens nothing and the PoC still leaks — so a regression that
    /// makes the analysis miss this shape cannot pass the test suite
    /// silently.
    #[test]
    fn targeted_with_branch_unflagged_still_leaks() {
        for (name, model) in all_cpus() {
            let out = run_targeted_forced(model, false);
            assert!(out.leaked(), "{name}: unflagged gadget must keep leaking");
        }
    }

    /// Adversarial soundness, direction two: hardening exactly the
    /// flagged branch blocks the leak on every CPU.
    #[test]
    fn targeted_with_branch_flagged_blocks() {
        for (name, model) in all_cpus() {
            let out = run_targeted_forced(model, true);
            assert!(!out.leaked(), "{name}: flagged gadget must be blocked");
        }
    }

    /// The analysis flags exactly one branch in the PoC gadget — the
    /// bounds check — so `targeted` inserts exactly one fence.
    #[test]
    fn analysis_flags_exactly_the_bounds_check() {
        let bare = gadget(V1Policy::Off).link(CODE_BASE);
        let report = analyze(bare.base(), bare.insts());
        assert_eq!(report.scanned(), 1);
        assert_eq!(report.flagged_indices().len(), 1);
        assert!(matches!(bare.insts()[report.flagged_indices()[0]], Inst::Jcc(..)));
    }
}
