//! Spectre V1 through the eBPF/kernel boundary — the boundary the paper
//! explicitly leaves unstudied (§1's limitations).
//!
//! An unprivileged process loads a BPF program whose bounds check it then
//! trains in-bounds; a final run with an out-of-bounds map index makes
//! the *kernel-mode* transient path read a kernel-private word adjacent
//! to the map and encode it into a second map's cache state. The
//! verifier's index masking (Linux's array-index sanitation, gated here
//! on the kernel's Spectre V1 setting) closes the window.

use sim_kernel::abi::nr;
use sim_kernel::bpf::BpfInsn;
use sim_kernel::{userlib, BootParams, Kernel};
use uarch::isa::Reg;
use uarch::model::CpuModel;

use crate::channel::AttackOutcome;

/// Probe slots (secret is masked to 4 bits to keep the readout small).
const PROBE_SLOTS: u64 = 16;
/// Probe stride in map words (64 words = 512 bytes).
const STRIDE_WORDS: u64 = 64;

/// Runs the attack. `cmdline` configures the kernel (`"nospectre_v1"`
/// disables the verifier's masking, as on a `mitigations=off` box).
pub fn run(model: CpuModel, cmdline: &str) -> AttackOutcome {
    let secret: u8 = 0x0B; // 4-bit payload
    let mut k = Kernel::boot(model, &BootParams::parse(cmdline));

    // Kernel-side setup: victim map, adjacent secret, probe map, and the
    // attacker-controlled index map.
    let victim = k.bpf_create_map(8);
    let _secret_vaddr = k.bpf_reserve_secret(secret as u64);
    let probe = k.bpf_create_map(PROBE_SLOTS * STRIDE_WORDS);
    let index = k.bpf_create_map(1);

    // The program: r1 = index[0]; r2 = victim[r1]; r2 &= 0xf;
    // r2 <<= 6 (slot -> word offset); r3 = probe[r2]; return r3.
    let prog = k
        .bpf_load(&[
            BpfInsn::MovImm(1, 0),
            BpfInsn::MapLookup { dst: 1, map: index, idx: 1 },
            BpfInsn::MapLookup { dst: 2, map: victim, idx: 1 },
            BpfInsn::AndImm(2, 0xf),
            BpfInsn::Shl(2, 6),
            BpfInsn::MapLookup { dst: 3, map: probe, idx: 2 },
            BpfInsn::Mov(0, 3),
            BpfInsn::Exit,
        ])
        .expect("program verifies");

    // Phase 1 — training: eight in-bounds runs teach the in-kernel
    // bounds check to fall through.
    k.bpf_map_write(index, 0, 0);
    k.spawn(move |b| {
        let top = userlib::begin_loop(b, Reg::R7, 8);
        b.mov_imm(Reg::R1, prog as u64);
        userlib::emit_syscall(b, nr::BPF_PROG_RUN);
        userlib::end_loop(b, Reg::R7, top);
        userlib::emit_exit(b);
    });
    k.start();
    k.run(50_000_000).expect("training completes");

    // Phase 2 — the strike: flush the probe map, point the index past the
    // victim map (slot 8 is the adjacent kernel-private word), run once.
    for i in 0..PROBE_SLOTS {
        let paddr = k.bpf_map_paddr(probe, i * STRIDE_WORDS);
        k.machine.l1d.flush_line(paddr);
    }
    k.bpf_map_write(index, 0, 8);
    k.spawn(move |b| {
        b.mov_imm(Reg::R1, prog as u64);
        userlib::emit_syscall(b, nr::BPF_PROG_RUN);
        userlib::emit_exit(b);
    });
    k.start();
    k.run(50_000_000).expect("strike completes");

    // Readout: which probe slot's line is hot?
    let mut hits = Vec::new();
    for i in 0..PROBE_SLOTS {
        let paddr = k.bpf_map_paddr(probe, i * STRIDE_WORDS);
        if k.machine.l1d.probe(paddr) {
            hits.push(i as u8);
        }
    }
    // Training touched slot 0 (victim slots are zero); the strike's
    // signal is any *other* hot slot.
    let recovered = hits.iter().copied().find(|h| *h != 0);
    AttackOutcome { secret, recovered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    #[test]
    fn ebpf_spectre_v1_leaks_without_verifier_masking() {
        for id in [CpuId::SkylakeClient, CpuId::IceLakeServer, CpuId::Zen2] {
            let out = run(id.model(), "nospectre_v1 mds=off");
            assert!(out.leaked(), "{id}: got {:?}", out.recovered);
        }
    }

    #[test]
    fn verifier_masking_blocks_the_leak() {
        for id in [CpuId::SkylakeClient, CpuId::IceLakeServer, CpuId::Zen2] {
            let out = run(id.model(), "mds=off");
            assert!(!out.leaked(), "{id}: got {:?}", out.recovered);
        }
    }
}
