//! A shared "attack scene" for raw-machine proof-of-concepts.
//!
//! Attacks whose mitigations are *application-level* (index masking,
//! lfence hardening, retpolines, IBPB placement) don't need a full
//! kernel; they run on a bare [`Machine`] with a standard address space:
//! a user data arena, a supervisor secret page, a probe array, and a
//! stack, plus a fault handler that resumes at the recovery address in
//! `R13` (an attacker's signal handler).

use uarch::isa::{Inst, Reg};
use uarch::machine::{Env, Machine};
use uarch::mem::PAGE_SHIFT;
use uarch::mmu::{make_cr3, PageTable, PageTableId, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::{ProgramBuilder, SimError};

use crate::channel::ProbeArray;

/// Virtual base of the user data arena.
pub const DATA_BASE: u64 = 0x10_0000;
/// First physical frame of the data arena.
pub const DATA_FRAME: u64 = 0x100;
/// Supervisor page holding the kernel secret.
pub const KSECRET_VADDR: u64 = 0x20_0000;
/// Physical frame of the kernel secret.
pub const KSECRET_FRAME: u64 = 0x400;
/// Virtual base of the probe array.
pub const PROBE_BASE: u64 = 0x30_0000;
/// First physical frame of the probe array.
pub const PROBE_FRAME: u64 = 0x500;
/// Stack top.
pub const STACK_TOP: u64 = 0x40_0000;
/// First physical frame of the stack.
pub const STACK_FRAME: u64 = 0x700;
/// Base address where attack programs are linked.
pub const CODE_BASE: u64 = 0x1000;
/// Address of the fault-handler stub.
pub const HANDLER_BASE: u64 = 0xf000;

/// A ready-to-attack machine and its probe array.
#[derive(Debug)]
pub struct Scene {
    /// The machine, in user mode with the scene address space loaded.
    pub machine: Machine,
    /// The probe array.
    pub probe: ProbeArray,
    table: PageTableId,
}

/// The fault environment: resumes at the recovery address in `R13`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoverEnv;

impl Env for RecoverEnv {
    fn host_call(&mut self, m: &mut Machine, id: u16) -> Result<(), SimError> {
        debug_assert_eq!(id, 1);
        let recovery = m.reg(Reg::R13);
        if let Some(f) = &mut m.fault_frame {
            f.resume_pc = if recovery != 0 { recovery } else { f.faulting_pc + 4 };
        }
        Ok(())
    }
}

impl Scene {
    /// Builds a scene for the given CPU model.
    pub fn new(model: CpuModel) -> Scene {
        let mut m = Machine::new(model);
        let mut pt = PageTable::new();
        pt.map_range(DATA_BASE, DATA_FRAME, 16, Pte::user(0));
        pt.map(KSECRET_VADDR, Pte::kernel(KSECRET_FRAME));
        pt.map_range(PROBE_BASE, PROBE_FRAME, 64, Pte::user(0));
        pt.map_range(STACK_TOP - 0x4000, STACK_FRAME, 4, Pte::user(0));
        let table = m.mmu.register_table(pt);
        assert!(m.mmu.load_cr3(make_cr3(table, 0, false)));
        m.set_reg(Reg::SP, STACK_TOP - 64);
        m.mode = PrivMode::User;

        // Fault handler: host recovery hook + iret.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Host(1));
        b.push(Inst::Iret);
        m.load_program(b.link(HANDLER_BASE));
        m.fault_vectors.page_fault = Some(HANDLER_BASE);
        m.fault_vectors.general_protection = Some(HANDLER_BASE);
        m.fault_vectors.device_not_available = Some(HANDLER_BASE);
        m.fault_vectors.divide_error = Some(HANDLER_BASE);

        let probe = ProbeArray { base: PROBE_BASE, table };
        Scene { machine: m, probe, table }
    }

    /// The scene's page table id.
    pub fn table(&self) -> PageTableId {
        self.table
    }

    /// Plants the supervisor secret byte.
    pub fn plant_kernel_secret(&mut self, secret: u8) {
        self.machine.mem.write_u8(KSECRET_FRAME << PAGE_SHIFT, secret);
    }

    /// Plants a byte in the user data arena at `offset`.
    pub fn plant_user_byte(&mut self, offset: u64, value: u8) {
        self.machine.mem.write_u8((DATA_FRAME << PAGE_SHIFT) + offset, value);
    }

    /// Runs a program already loaded at `pc` until halt.
    pub fn run_at(&mut self, pc: u64) {
        self.machine.pc = pc;
        self.machine
            .run(&mut RecoverEnv, 1_000_000)
            .expect("attack program must halt");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::isa::Width;

    #[test]
    fn scene_runs_programs_and_recovers_faults() {
        let mut s = Scene::new(CpuModel::test_model());
        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        b.lea(Reg::R13, done);
        b.mov_imm(Reg::R0, KSECRET_VADDR);
        // Faults; handler resumes at `done`.
        b.push(Inst::Load { dst: Reg::R1, base: Reg::R0, offset: 0, width: Width::B8 });
        b.mov_imm(Reg::R2, 0xbad);
        b.bind(done);
        b.mov_imm(Reg::R3, 0x600d);
        b.push(Inst::Halt);
        s.machine.load_program(b.link(CODE_BASE));
        s.run_at(CODE_BASE);
        assert_eq!(s.machine.reg(Reg::R3), 0x600d);
        assert_ne!(s.machine.reg(Reg::R2), 0xbad, "recovery must skip the dead code");
    }
}
