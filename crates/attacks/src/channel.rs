//! The Flush+Reload cache side channel shared by every attack.
//!
//! Attacks encode a leaked byte by touching `probe[byte * STRIDE]`
//! transiently; the attacker recovers it by checking which probe line is
//! resident. The readout here inspects the simulated L1 directly, which
//! is equivalent to (and faster than) timing each slot with `rdtsc` — the
//! `uarch` test suite verifies the timing channel itself exists.

use uarch::machine::Machine;
use uarch::mem::PAGE_SHIFT;
use uarch::mmu::PageTableId;

/// Distance between probe slots, in bytes. Two cache lines plus spacing
/// keeps neighbouring slots in distinct sets.
pub const PROBE_STRIDE: u64 = 512;

/// Number of slots (one per byte value).
pub const PROBE_SLOTS: u64 = 256;

/// A probe array living at a virtual address in some address space.
#[derive(Debug, Clone, Copy)]
pub struct ProbeArray {
    /// Virtual base address.
    pub base: u64,
    /// The page table used to resolve slot addresses at readout.
    pub table: PageTableId,
}

impl ProbeArray {
    /// Virtual address of a slot.
    pub fn slot(&self, byte: u8) -> u64 {
        self.base + byte as u64 * PROBE_STRIDE
    }

    /// Flushes every probe line from the cache (the "Flush" phase).
    pub fn flush(&self, m: &mut Machine) {
        for i in 0..PROBE_SLOTS {
            if let Some(paddr) = self.slot_paddr(m, i) {
                m.l1d.flush_line(paddr);
            }
        }
    }

    /// The "Reload" phase: returns the single hot slot, or `None` when
    /// zero or multiple slots are hot (failed / ambiguous leak).
    pub fn readout(&self, m: &Machine) -> Option<u8> {
        let mut hit = None;
        for i in 0..PROBE_SLOTS {
            if let Some(paddr) = self.slot_paddr_ref(m, i) {
                if m.l1d.probe(paddr) {
                    if hit.is_some() {
                        return None;
                    }
                    hit = Some(i as u8);
                }
            }
        }
        hit
    }

    /// All hot slots (diagnostics).
    pub fn hot_slots(&self, m: &Machine) -> Vec<u8> {
        (0..PROBE_SLOTS)
            .filter(|i| {
                self.slot_paddr_ref(m, *i).map(|p| m.l1d.probe(p)).unwrap_or(false)
            })
            .map(|i| i as u8)
            .collect()
    }

    fn slot_paddr(&self, m: &mut Machine, i: u64) -> Option<u64> {
        self.slot_paddr_ref(m, i)
    }

    fn slot_paddr_ref(&self, m: &Machine, i: u64) -> Option<u64> {
        let vaddr = self.base + i * PROBE_STRIDE;
        let pte = m.mmu.table(self.table)?.lookup(vaddr)?;
        Some((pte.pfn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1)))
    }
}

/// Outcome of one attack attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The byte the attack planted as the secret.
    pub secret: u8,
    /// The byte the side channel recovered, if any.
    pub recovered: Option<u8>,
}

impl AttackOutcome {
    /// Whether the secret was exfiltrated.
    pub fn leaked(&self) -> bool {
        self.recovered == Some(self.secret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::mmu::{make_cr3, PageTable, Pte};
    use uarch::CpuModel;

    #[test]
    fn probe_flush_and_readout() {
        let mut m = Machine::new(CpuModel::test_model());
        let mut pt = PageTable::new();
        pt.map_range(0x10_0000, 0x100, 64, Pte::user(0));
        let table = m.mmu.register_table(pt);
        m.mmu.load_cr3(make_cr3(table, 0, false));
        let probe = ProbeArray { base: 0x10_0000, table };

        assert_eq!(probe.readout(&m), None);
        // Touch slot 0x42's line directly.
        let paddr = (0x100u64 << 12) + 0x42 * PROBE_STRIDE;
        m.l1d.access(paddr);
        assert_eq!(probe.readout(&m), Some(0x42));
        // A second hot slot makes the readout ambiguous.
        m.l1d.access((0x100u64 << 12) + 0x43 * PROBE_STRIDE);
        assert_eq!(probe.readout(&m), None);
        assert_eq!(probe.hot_slots(&m), vec![0x42, 0x43]);
        probe.flush(&mut m);
        assert_eq!(probe.readout(&m), None);
    }

    #[test]
    fn outcome_semantics() {
        assert!(AttackOutcome { secret: 7, recovered: Some(7) }.leaked());
        assert!(!AttackOutcome { secret: 7, recovered: Some(8) }.leaked());
        assert!(!AttackOutcome { secret: 7, recovered: None }.leaked());
    }
}
