//! Spectre V2 (branch target injection) proof of concept.
//!
//! The attacker trains the BTB so a victim's indirect branch transiently
//! dispatches to a leak gadget. Unlike the paper's §6 probe (which uses
//! the divider performance counter and lives in `spectrebench`), this
//! variant closes the full loop: the transiently executed gadget reads a
//! secret register and leaves a probe-array footprint.

use uarch::isa::{Inst, Reg, Width};
use uarch::model::CpuModel;
use uarch::ProgramBuilder;

use crate::channel::AttackOutcome;
use crate::scene::{Scene, CODE_BASE, PROBE_BASE};

/// Victim-side dispatch mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V2Dispatch {
    /// Plain indirect call (vulnerable).
    Indirect,
    /// Generic retpoline (Figure 4).
    RetpolineGeneric,
    /// AMD lfence retpoline (only a mitigation on AMD parts).
    RetpolineAmd,
}

/// Whether an IBPB is issued between training and the victim dispatch
/// (the kernel's context-switch mitigation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V2Barrier {
    /// No barrier.
    None,
    /// IBPB between attacker and victim.
    Ibpb,
}

/// Code layout: gadget at a fixed address; benign target elsewhere.
const GADGET: u64 = 0x5000;
const BENIGN: u64 = 0x6000;

/// Runs the attack. The "secret" sits in `R4` at the victim's dispatch
/// site (as if loaded by preceding victim code); the gadget encodes it
/// into the probe array.
pub fn run(model: CpuModel, dispatch: V2Dispatch, barrier: V2Barrier) -> AttackOutcome {
    let secret: u8 = 0x3C;
    let mut s = Scene::new(model);

    // Leak gadget: probe[R4 * 512].
    let mut b = ProgramBuilder::new();
    b.push(Inst::Shl(Reg::R4, 9));
    b.push(Inst::Add(Reg::R4, Reg::R3));
    b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
    b.push(Inst::Ret);
    s.machine.load_program(b.link(GADGET));

    // Benign target: returns immediately.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    s.machine.load_program(b.link(BENIGN));

    // Victim/attacker shared dispatch site (the paper shares the page so
    // all 64 address bits match, §6.1): calls through R10.
    let mut b = ProgramBuilder::new();
    match dispatch {
        V2Dispatch::Indirect => {
            b.push(Inst::CallInd(Reg::R10));
        }
        V2Dispatch::RetpolineAmd => {
            b.push(Inst::Lfence);
            b.push(Inst::CallInd(Reg::R10));
        }
        V2Dispatch::RetpolineGeneric => {
            let thunk = b.new_label();
            let capture = b.new_label();
            let set_target = b.new_label();
            let out = b.new_label();
            b.call(thunk);
            b.jmp(out);
            b.bind(thunk);
            b.call(set_target);
            b.bind(capture);
            b.push(Inst::Pause);
            b.push(Inst::Lfence);
            b.jmp(capture);
            b.bind(set_target);
            b.push(Inst::Store { src: Reg::R10, base: Reg::SP, offset: 0, width: Width::B8 });
            b.push(Inst::Ret);
            b.bind(out);
        }
    }
    b.push(Inst::Halt);
    s.machine.load_program(b.link(CODE_BASE));

    let invoke = |s: &mut Scene, target: u64, r4: u64| {
        s.machine.bhb.clear();
        s.machine.set_reg(Reg::R10, target);
        s.machine.set_reg(Reg::R3, PROBE_BASE);
        s.machine.set_reg(Reg::R4, r4);
        s.run_at(CODE_BASE);
    };

    // Attacker: train the dispatch toward the gadget (with an innocuous
    // R4 so the training runs don't pollute the readout after the flush).
    for _ in 0..6 {
        invoke(&mut s, GADGET, 0);
    }

    if barrier == V2Barrier::Ibpb {
        // The context-switch mitigation, at its modelled cost.
        let cost = s.machine.model.lat.ibpb;
        s.machine.charge(cost);
        s.machine.btb.ibpb();
    }

    // Victim: dispatches to the benign target with the secret live in R4.
    s.probe.flush(&mut s.machine);
    invoke(&mut s, BENIGN, secret as u64);
    AttackOutcome { secret, recovered: s.probe.readout(&s.machine) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;
    use uarch::Vendor;

    #[test]
    fn plain_indirect_leaks_on_every_cpu() {
        // Same-mode (user→user) poisoning with *exactly* matching branch
        // history works everywhere — including Zen 3: the paper suspects
        // Zen 3 "isn't immune to the attack" (§6.2), only that their
        // probe's branch-history state didn't match. This PoC controls
        // history precisely; the `spectrebench` probe reproduces the
        // paper's empty Table 9 row with the paper's own (history-
        // perturbing) harness shape.
        for id in CpuId::ALL {
            let out = run(id.model(), V2Dispatch::Indirect, V2Barrier::None);
            assert!(out.leaked(), "{id}: got {:?}", out.recovered);
        }
    }

    #[test]
    fn generic_retpoline_blocks_everywhere() {
        for id in CpuId::ALL {
            let out = run(id.model(), V2Dispatch::RetpolineGeneric, V2Barrier::None);
            assert!(!out.leaked(), "{id}");
        }
    }

    #[test]
    fn ibpb_blocks_everywhere() {
        for id in CpuId::ALL {
            let out = run(id.model(), V2Dispatch::Indirect, V2Barrier::Ibpb);
            assert!(!out.leaked(), "{id}");
        }
    }

    #[test]
    fn amd_retpoline_only_protects_amd() {
        // §3.2: "this variant is not intended to work on Intel".
        for id in CpuId::ALL {
            let out = run(id.model(), V2Dispatch::RetpolineAmd, V2Barrier::None);
            match id.vendor() {
                Vendor::Amd => assert!(!out.leaked(), "{id}"),
                Vendor::Intel | Vendor::RiscV => {
                    assert!(out.leaked(), "{id}: lfence retpoline is no defence here")
                }
            }
        }
    }
}
