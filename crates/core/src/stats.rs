//! Statistical machinery for the paper's measurement methodology (§4.1).
//!
//! The paper found run-to-run variability "frequently on the same scale
//! as the overheads we were trying to measure" and responded by running
//! each configuration repeatedly, tracking the mean and 95% confidence
//! interval, and stopping once the error was small enough. This module
//! implements exactly that: an online accumulator, Student-t confidence
//! intervals, and geometric means.

use std::fmt;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Never emits NaN: a non-finite sample poisons the accumulator (see
/// [`Accumulator::is_degenerate`]), after which every statistic reports
/// `INFINITY` — infinitely wide error bars, which no stopping rule will
/// ever accept — instead of silently propagating NaN into a table.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    degenerate: bool,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Adds a sample. A NaN or infinite sample marks the accumulator
    /// degenerate rather than corrupting the running moments.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        if !x.is_finite() {
            self.degenerate = true;
            return;
        }
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// True once any non-finite sample has been seen.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`INFINITY` when degenerate).
    pub fn mean(&self) -> f64 {
        if self.degenerate {
            f64::INFINITY
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two samples,
    /// `INFINITY` when degenerate).
    pub fn variance(&self) -> f64 {
        if self.degenerate {
            f64::INFINITY
        } else if self.n < 2 {
            0.0
        } else {
            // Floating-point cancellation can push m2 fractionally below
            // zero for near-constant samples; clamp so stddev is never NaN.
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            f64::INFINITY
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval around the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        t_critical_95(self.n - 1) * self.stderr()
    }
}

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom.
///
/// Exact table values through dof 30; beyond that, linear interpolation
/// *in 1/dof* between standard table anchors, reaching the normal value
/// 1.96 at dof 1200 and staying there. (The critical value is close to
/// affine in 1/dof, so this tracks the true quantile to ~1e-3.) The old
/// implementation returned step constants — 2.00 for all of dof 31–60,
/// 1.98 for 61–120 — which made `ci95_half_width` jump discontinuously
/// as a measurement crossed n = 31, 61, or 121 samples.
pub fn t_critical_95(dof: u64) -> f64 {
    // Table for small dof; interpolated anchors beyond.
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    // (dof, critical value) anchors from the standard t table.
    const ANCHORS: [(u64, f64); 8] = [
        (30, 2.042),
        (40, 2.021),
        (50, 2.009),
        (60, 2.000),
        (80, 1.990),
        (100, 1.984),
        (120, 1.980),
        (1200, 1.960),
    ];
    match dof {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[(d - 1) as usize],
        d if d >= 1200 => 1.96,
        d => {
            let i = ANCHORS.iter().rposition(|&(a, _)| a <= d).unwrap_or(0);
            let (d0, t0) = ANCHORS[i];
            let (d1, t1) = ANCHORS[i + 1];
            // Interpolate in 1/dof: t is nearly affine in 1/dof, and the
            // reciprocal spacing keeps the wide 120..1200 span accurate.
            let (x0, x1, x) = (1.0 / d0 as f64, 1.0 / d1 as f64, 1.0 / d as f64);
            t0 + (t1 - t0) * (x - x0) / (x1 - x0)
        }
    }
}

/// A finished measurement: mean with its 95% CI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Samples taken.
    pub n: u64,
    /// Extra attempts the harness needed before this cell succeeded
    /// (0 = clean first run).
    pub retries: u32,
}

impl Measurement {
    /// Relative CI (half-width / mean).
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci95 / self.mean.abs()
        }
    }

    /// Whether this measurement's CI overlaps another's.
    pub fn overlaps(&self, other: &Measurement) -> bool {
        (self.mean - other.mean).abs() <= self.ci95 + other.ci95
    }
}

/// Stopping policy for adaptive measurement.
#[derive(Debug, Clone, Copy)]
pub struct StopPolicy {
    /// Minimum repetitions before the CI is trusted.
    pub min_runs: u64,
    /// Maximum repetitions (cap).
    pub max_runs: u64,
    /// Stop when `ci95 / mean` falls below this.
    pub target_relative_ci: f64,
}

impl Default for StopPolicy {
    fn default() -> StopPolicy {
        StopPolicy { min_runs: 5, max_runs: 40, target_relative_ci: 0.01 }
    }
}

/// Why adaptive measurement rejected its samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// A sample came back NaN or infinite (corrupt run).
    NonFiniteSample {
        /// 1-based index of the offending sample.
        index: u64,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NonFiniteSample { index, value } => {
                write!(f, "sample #{index} is not finite ({value})")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Repeatedly samples `f` until the 95% CI is tight enough (paper §4.1's
/// "stopping once the error was small enough").
///
/// A non-finite sample aborts immediately with
/// [`StatsError::NonFiniteSample`] — corrupt data must never be averaged
/// into a result. The cap is honoured even for a degenerate policy
/// (`max_runs` below `min_runs`, or zero), so this cannot loop forever.
pub fn measure_until(
    policy: StopPolicy,
    mut f: impl FnMut() -> f64,
) -> Result<Measurement, StatsError> {
    let min_runs = policy.min_runs.max(1);
    let max_runs = policy.max_runs.max(min_runs);
    let mut acc = Accumulator::new();
    loop {
        let sample = f();
        if !sample.is_finite() {
            return Err(StatsError::NonFiniteSample { index: acc.count() + 1, value: sample });
        }
        acc.add(sample);
        let n = acc.count();
        if n >= min_runs {
            let ci = acc.ci95_half_width();
            if ci / acc.mean().abs() <= policy.target_relative_ci || n >= max_runs {
                return Ok(Measurement { mean: acc.mean(), ci95: ci, n, retries: 0 });
            }
        }
    }
}

/// Geometric mean, total over all inputs (never panics, never NaN):
/// an empty slice yields 1.0 (the empty product's mean); any NaN, zero,
/// or negative value yields 0.0 (the value has no well-defined positive
/// geometric contribution, and 0.0 is conspicuous in a ratio table);
/// otherwise an infinite value yields `INFINITY`.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    if values.iter().any(|v| v.is_nan() || *v <= 0.0) {
        return 0.0;
    }
    if values.iter().any(|v| v.is_infinite()) {
        return f64::INFINITY;
    }
    let s: f64 = values.iter().map(|v| v.ln()).sum();
    (s / values.len() as f64).exp()
}

/// Seeded multiplicative log-normal noise, modelling the run-to-run
/// variability of real machines ("benchmark scores for individual runs
/// ... would vary by a couple percent each time", §4.1).
#[derive(Debug, Clone)]
pub struct NoiseModel {
    sigma: f64,
    state: u64,
}

impl NoiseModel {
    /// Creates a noise source with the given log-sigma and seed.
    pub fn new(sigma: f64, seed: u64) -> NoiseModel {
        NoiseModel { sigma, state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1 }
    }

    /// Paper-like defaults: ~1% run-to-run sigma.
    pub fn paper_default(seed: u64) -> NoiseModel {
        NoiseModel::new(0.01, seed)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller.
    fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_unit().max(1e-12);
        let u2 = self.next_unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A multiplicative noise factor, log-normal around 1.0.
    pub fn factor(&mut self) -> f64 {
        (self.sigma * self.next_gaussian()).exp()
    }

    /// Applies noise to a value.
    pub fn apply(&mut self, value: f64) -> f64 {
        value * self.factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_mean_and_variance() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((a.variance() - 32.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut a = Accumulator::new();
        a.add(10.0);
        a.add(10.5);
        let wide = a.ci95_half_width();
        for _ in 0..100 {
            a.add(10.0);
            a.add(10.5);
        }
        assert!(a.ci95_half_width() < wide / 3.0);
    }

    #[test]
    fn t_table_monotone_towards_normal() {
        assert!(t_critical_95(1) > t_critical_95(5));
        assert!(t_critical_95(5) > t_critical_95(30));
        assert!((t_critical_95(10_000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn t_table_has_no_step_discontinuities() {
        // The old implementation jumped at the 30/31, 60/61, and 120/121
        // boundaries (2.042→2.00, 2.00→1.98, 1.98→1.96). Interpolation
        // must make each crossing a small, strictly decreasing step.
        for boundary in [30u64, 60, 120] {
            let before = t_critical_95(boundary);
            let after = t_critical_95(boundary + 1);
            assert!(after < before, "t must still decrease across {boundary}");
            assert!(
                before - after < 0.005,
                "crossing dof {boundary}: {before} -> {after} is a step, not a glide"
            );
        }
        // Strict monotone decrease everywhere up to the normal limit.
        for dof in 1..1200 {
            assert!(
                t_critical_95(dof + 1) < t_critical_95(dof),
                "not strictly decreasing at dof {dof}"
            );
        }
        assert_eq!(t_critical_95(1200), 1.96, "continuous at the normal limit");
        // The anchors themselves are hit exactly.
        assert_eq!(t_critical_95(40), 2.021);
        assert_eq!(t_critical_95(60), 2.000);
        assert_eq!(t_critical_95(120), 1.980);
    }

    #[test]
    fn measure_until_stops_on_tight_ci() {
        let mut i = 0u64;
        let m = measure_until(StopPolicy::default(), || {
            i += 1;
            100.0 + (i % 2) as f64 * 0.1 // tiny alternation
        })
        .unwrap();
        assert!(m.n >= 5);
        assert!(m.relative_ci() <= 0.01 || m.n == StopPolicy::default().max_runs);
        assert!((m.mean - 100.05).abs() < 0.1);
        assert_eq!(m.retries, 0);
    }

    #[test]
    fn measure_until_respects_cap() {
        let mut alt = false;
        let m = measure_until(
            StopPolicy { min_runs: 3, max_runs: 7, target_relative_ci: 1e-9 },
            || {
                alt = !alt;
                if alt {
                    50.0
                } else {
                    150.0
                }
            },
        )
        .unwrap();
        assert_eq!(m.n, 7);
    }

    #[test]
    fn measure_until_rejects_nonfinite_samples() {
        let mut i = 0u64;
        let err = measure_until(StopPolicy::default(), || {
            i += 1;
            if i == 3 {
                f64::NAN
            } else {
                100.0
            }
        })
        .unwrap_err();
        assert!(matches!(err, StatsError::NonFiniteSample { index: 3, .. }));
    }

    #[test]
    fn measure_until_tolerates_degenerate_policy() {
        // max_runs below min_runs (and even zero) must still terminate.
        let m = measure_until(
            StopPolicy { min_runs: 4, max_runs: 0, target_relative_ci: 1e-12 },
            || 10.0,
        )
        .unwrap();
        assert_eq!(m.n, 4);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_is_total() {
        assert_eq!(geomean(&[]), 1.0);
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
        assert_eq!(geomean(&[1.0, -3.0]), 0.0);
        assert_eq!(geomean(&[1.0, f64::NAN]), 0.0);
        assert_eq!(geomean(&[1.0, f64::INFINITY]), f64::INFINITY);
    }

    #[test]
    fn accumulator_poisons_on_nonfinite() {
        let mut a = Accumulator::new();
        a.add(1.0);
        a.add(f64::NAN);
        a.add(2.0);
        assert!(a.is_degenerate());
        assert_eq!(a.mean(), f64::INFINITY);
        assert_eq!(a.variance(), f64::INFINITY);
        assert!(!a.mean().is_nan() && !a.ci95_half_width().is_nan());
    }

    #[test]
    fn noise_is_seeded_and_centred() {
        let mut n1 = NoiseModel::paper_default(7);
        let mut n2 = NoiseModel::paper_default(7);
        assert_eq!(n1.factor(), n2.factor(), "same seed, same stream");
        let mut acc = Accumulator::new();
        let mut n = NoiseModel::paper_default(42);
        for _ in 0..2000 {
            acc.add(n.factor());
        }
        assert!((acc.mean() - 1.0).abs() < 0.01, "mean {}", acc.mean());
        assert!(acc.stddev() < 0.05);
    }

    #[test]
    fn measurement_overlap() {
        let a = Measurement { mean: 100.0, ci95: 2.0, n: 10, retries: 0 };
        let b = Measurement { mean: 103.0, ci95: 1.5, n: 10, retries: 0 };
        assert!(a.overlaps(&b));
        let c = Measurement { mean: 110.0, ci95: 1.0, n: 10, retries: 0 };
        assert!(!a.overlaps(&c));
    }
}
