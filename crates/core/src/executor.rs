//! The plan executor: scheduling, memoization, and journaling.
//!
//! An [`Executor`] consumes [`ExperimentPlan`]s. For every cell it
//! first consults a content-addressed in-memory cache (key = content
//! key + seed, shared across all plans run through the same executor),
//! then the resume [`Journal`] if one is attached, and only then
//! schedules a fresh simulation. Fresh cells run under the full
//! [`Harness`] machinery — fault injection, watchdog, retry with
//! backoff — across a `std::thread::scope` worker pool of
//! [`Executor::with_jobs`] threads.
//!
//! **Determinism under parallelism.** Outcomes are returned in plan
//! order no matter which worker finished first; every cell's value is a
//! pure function of its (content key, seed); and the fault plan keys
//! its injection counters by cell, not by global call order. So the
//! same seed yields byte-identical renderings for any `--jobs` value —
//! a property the `parallel_determinism` integration test pins down.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::harness::{lock, ExperimentError, Harness, HarnessStats, Journal, RunContext};
use crate::obs::{set_current_worker, EventBus, EventKind};
use crate::persist::WriteDamage;
use crate::plan::{CellOutcome, CellSource, CellValue, ExperimentPlan};

/// Default consecutive-panic threshold for the per-experiment circuit
/// breaker: after this many cells in one experiment fail by panicking,
/// the experiment's remaining fresh cells are degraded immediately
/// (bridged with `†` by the drivers) instead of burning retry budgets
/// on a closure that is evidently broken.
pub const DEFAULT_PANIC_BREAKER: u32 = 3;

/// Strictly validates the `REGEN_JOBS` environment variable: `Ok(None)`
/// when unset or empty, `Ok(Some(n))` for a positive integer, and a
/// one-line error message for anything else (`0`, non-numeric, noise).
///
/// The binaries (`regen`, `regend`) call this at startup and exit 2 on
/// `Err`, so a typo'd environment fails loudly instead of silently
/// falling back to the machine default and skewing a sweep's worker
/// count.
pub fn jobs_from_env() -> Result<Option<usize>, String> {
    let v = match std::env::var("REGEN_JOBS") {
        Ok(v) => v,
        Err(_) => return Ok(None),
    };
    let v = v.trim();
    if v.is_empty() {
        return Ok(None);
    }
    match v.parse::<usize>() {
        Ok(0) => Err("REGEN_JOBS must be at least 1".to_string()),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!("REGEN_JOBS must be a positive integer, got {v:?}")),
    }
}

/// Resolves the default worker count: a valid `REGEN_JOBS` environment
/// variable, else the machine's available parallelism, else 1. Invalid
/// `REGEN_JOBS` values are ignored here (library construction must not
/// fail); binaries reject them up front via [`jobs_from_env`].
pub fn default_jobs() -> usize {
    if let Ok(Some(n)) = jobs_from_env() {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Executes experiment plans over a shared harness, cache, and journal.
/// One executor per sweep; share by reference between drivers so the
/// cross-experiment cache can do its job.
#[derive(Debug)]
pub struct Executor {
    harness: Harness,
    jobs: usize,
    journal: Option<Journal>,
    cache: Mutex<HashMap<(String, u64), CellValue>>,
    obs: Option<Arc<EventBus>>,
    /// Consecutive panic-failed cells per experiment; the breaker is
    /// open once a streak reaches `panic_breaker`.
    panic_streaks: Mutex<HashMap<String, u32>>,
    panic_breaker: u32,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::new(Harness::new())
    }
}

impl Executor {
    /// An executor over `harness` with [`default_jobs`] workers and no
    /// journal.
    pub fn new(harness: Harness) -> Executor {
        let obs = harness.obs().cloned();
        Executor {
            harness,
            jobs: default_jobs(),
            journal: None,
            cache: Mutex::new(HashMap::new()),
            obs,
            panic_streaks: Mutex::new(HashMap::new()),
            panic_breaker: DEFAULT_PANIC_BREAKER,
        }
    }

    /// Builder: set the worker-pool size (clamped to at least 1).
    pub fn with_jobs(mut self, jobs: usize) -> Executor {
        self.jobs = jobs.max(1);
        self
    }

    /// Builder: set the per-experiment consecutive-panic threshold
    /// (clamped to at least 1) after which remaining cells degrade
    /// without being attempted.
    pub fn with_panic_breaker(mut self, threshold: u32) -> Executor {
        self.panic_breaker = threshold.max(1);
        self
    }

    /// Builder: journal completed cells to (and replay them from)
    /// `journal`. The journal's open-time line classification is folded
    /// into the sweep counters so skipped damage is never silent.
    pub fn with_journal(mut self, journal: Journal) -> Executor {
        self.harness.note_journal_scan(journal.scan());
        self.journal = Some(journal);
        self
    }

    /// Builder: attach an observability event bus, shared with the
    /// harness so scheduler-level events (queued / started / finished /
    /// cache hits) and attempt-level events (retries, faults) land in
    /// one ordered stream.
    pub fn with_obs(mut self, bus: Arc<EventBus>) -> Executor {
        self.harness.set_obs(Arc::clone(&bus));
        self.obs = Some(bus);
        self
    }

    /// The attached event bus, if any.
    pub fn obs(&self) -> Option<&Arc<EventBus>> {
        self.obs.as_ref()
    }

    /// Emits a cell-scoped event (no-op without a bus).
    fn emit_cell(&self, ctx: &RunContext, kind: EventKind) {
        if let Some(bus) = &self.obs {
            bus.emit(&ctx.experiment, &ctx.cell_key(), &ctx.content_key(), 0, kind);
        }
    }

    /// Emits a plan-scoped event (no cell context; no-op without a bus).
    fn emit_plan(&self, experiment: &str, kind: EventKind) {
        if let Some(bus) = &self.obs {
            bus.emit(experiment, "", "", 0, kind);
        }
    }

    /// The underlying harness (watchdog budgets, fault plan, retry).
    pub fn harness(&self) -> &Harness {
        &self.harness
    }

    /// The attached journal, if any — fault campaigns read the cell
    /// census out of it after the reference sweep.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// True once `experiment` has accumulated `panic_breaker`
    /// consecutive panic-failed cells.
    fn breaker_is_open(&self, experiment: &str) -> bool {
        lock(&self.panic_streaks).get(experiment).is_some_and(|&s| s >= self.panic_breaker)
    }

    /// Updates the per-experiment consecutive-panic streak after a
    /// fresh cell ran: panics extend the streak (emitting
    /// [`EventKind::BreakerTripped`] the moment it crosses the
    /// threshold), anything else resets it.
    fn update_breaker(&self, ctx: &RunContext, value: &Result<CellValue, ExperimentError>) {
        let panicked = matches!(value, Err(e) if e.is_panic());
        let tripped = {
            let mut streaks = lock(&self.panic_streaks);
            let streak = streaks.entry(ctx.experiment.clone()).or_insert(0);
            if panicked {
                *streak += 1;
                *streak == self.panic_breaker
            } else {
                *streak = 0;
                false
            }
        };
        if tripped {
            self.emit_cell(ctx, EventKind::BreakerTripped);
        }
    }

    /// Worker-pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Cell-level counters so far (cumulative across plans).
    pub fn stats(&self) -> HarnessStats {
        self.harness.stats()
    }

    /// Looks up one completed cell in the content-addressed cache
    /// without scheduling anything. This is how the serving layer
    /// answers point queries (`GET /cell/...`) after the owning
    /// artifact has been computed: the cache is shared across every
    /// plan executed through this executor, so any cell a sweep has
    /// touched is addressable by `(content key, seed)`.
    pub fn cache_lookup(&self, content_key: &str, seed: u64) -> Option<CellValue> {
        lock(&self.cache).get(&(content_key.to_string(), seed)).cloned()
    }

    /// Number of distinct `(content key, seed)` entries currently in
    /// the cross-experiment cache (exposed by `regend /healthz`).
    pub fn cache_len(&self) -> usize {
        lock(&self.cache).len()
    }

    /// Executes a plan and returns one outcome per cell, in plan order.
    ///
    /// Cell failures are reported per-outcome, never panicked or
    /// short-circuited: a dead middle cell must not take down the cells
    /// scheduled after it (the driver's reduce step decides whether to
    /// bridge, degrade, or abort).
    pub fn execute(&self, plan: &ExperimentPlan) -> Vec<CellOutcome> {
        let plan_started = Instant::now();
        let n = plan.cells.len();
        self.emit_plan(&plan.experiment, EventKind::PlanStarted { cells: n });
        let slots: Vec<Mutex<Option<CellOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let mut pending: Vec<usize> = Vec::new();
        let mut dup_of: Vec<Option<usize>> = vec![None; n];

        // Serial pre-pass: resolve cache and journal hits, and collapse
        // duplicate keys within the plan onto their first occurrence.
        {
            let mut cache = lock(&self.cache);
            let mut first: HashMap<(String, u64), usize> = HashMap::new();
            for (i, cell) in plan.cells.iter().enumerate() {
                let key = cell.cache_key();
                if let Some(v) = cache.get(&key) {
                    self.harness.note_cache_hit();
                    self.emit_cell(&cell.ctx, EventKind::CacheHit);
                    *lock(&slots[i]) = Some(CellOutcome {
                        ctx: cell.ctx.clone(),
                        value: Ok(v.clone()),
                        retries: 0,
                        source: CellSource::Cache,
                    });
                } else if let Some(v) = self.journal.as_ref().and_then(|j| j.lookup(&key.0, key.1))
                {
                    self.harness.note_journal_hit();
                    self.emit_cell(&cell.ctx, EventKind::JournalReplay);
                    cache.insert(key, v.clone());
                    *lock(&slots[i]) = Some(CellOutcome {
                        ctx: cell.ctx.clone(),
                        value: Ok(v),
                        retries: 0,
                        source: CellSource::Journal,
                    });
                } else if let Some(&p) = first.get(&key) {
                    dup_of[i] = Some(p);
                } else {
                    first.insert(key, i);
                    pending.push(i);
                }
            }
        }
        // Queue admission, announced in plan order (outside the cache
        // lock).
        for &i in &pending {
            self.emit_cell(&plan.cells[i].ctx, EventKind::CellQueued);
        }

        // Schedule the fresh cells. Each pending index is a unique key;
        // its value depends only on the cell itself, so any assignment
        // of cells to workers produces the same outcomes.
        let workers = self.jobs.min(pending.len());
        let queue: Mutex<VecDeque<usize>> = Mutex::new(pending.into_iter().collect());
        let work = |wid: usize| {
            set_current_worker(wid);
            loop {
                let i = match lock(&queue).pop_front() {
                    Some(i) => i,
                    None => break,
                };
                let cell = &plan.cells[i];
                self.emit_cell(&cell.ctx, EventKind::CellStarted);
                let (value, retries) = if !cell.critical
                    && self.breaker_is_open(&cell.ctx.experiment)
                {
                    // Panic circuit breaker: this experiment's closures
                    // are evidently broken; degrade the cell (drivers
                    // bridge it with `†`) instead of burning retries on
                    // another panic. Critical cells (lattice anchors) are
                    // exempt: skipping one aborts the artifact outright,
                    // which the breaker exists to avoid.
                    self.harness.note_breaker_skipped();
                    self.emit_cell(&cell.ctx, EventKind::BreakerSkipped);
                    (
                        Err(ExperimentError::Panicked {
                            ctx: cell.ctx.clone(),
                            message: format!(
                                "circuit breaker open after {} consecutive panics in {}",
                                self.panic_breaker, cell.ctx.experiment
                            ),
                        }),
                        0,
                    )
                } else {
                    let (value, retries) =
                        self.harness.run_value(&cell.ctx, |a| cell.compute(a));
                    self.update_breaker(&cell.ctx, &value);
                    (value, retries)
                };
                if let Ok(v) = &value {
                    let key = cell.cache_key();
                    if let Some(j) = &self.journal {
                        let damage = match self.harness.plan.inject_io(&cell.ctx.cell_key()) {
                            Some(fault) => {
                                self.harness.note_fault_injected();
                                self.emit_cell(&cell.ctx, EventKind::FaultInjected { fault });
                                match fault {
                                    crate::faultplan::FaultKind::TornWrite => {
                                        Some(WriteDamage::Torn)
                                    }
                                    _ => Some(WriteDamage::BitFlip),
                                }
                            }
                            None => None,
                        };
                        if let Err(e) = j.record_damaged(&key.0, key.1, v, damage) {
                            self.harness.note_journal_write_error();
                            self.emit_cell(&cell.ctx, EventKind::JournalWriteError);
                            eprintln!(
                                "warning: journal write failed ({e}); cell {} will re-run on resume",
                                cell.ctx.cell_key()
                            );
                        }
                    }
                    lock(&self.cache).insert(key, v.clone());
                }
                self.emit_cell(
                    &cell.ctx,
                    EventKind::CellFinished { ok: value.is_ok(), retries },
                );
                *lock(&slots[i]) = Some(CellOutcome {
                    ctx: cell.ctx.clone(),
                    value,
                    retries,
                    source: CellSource::Fresh,
                });
            }
        };
        if workers <= 1 {
            // Serial: the calling thread is worker lane 1 for the
            // duration of the drain, then reverts to the scheduler lane.
            work(1);
            set_current_worker(0);
        } else {
            std::thread::scope(|s| {
                let work = &work;
                for wid in 1..=workers {
                    s.spawn(move || work(wid));
                }
            });
        }

        // Fill duplicates from their primaries (successes count as
        // cache hits; failures are shared, not re-attempted).
        for i in 0..n {
            if let Some(p) = dup_of[i] {
                let primary = lock(&slots[p]).clone();
                if let Some(o) = primary {
                    if o.value.is_ok() {
                        self.harness.note_cache_hit();
                        self.emit_cell(&plan.cells[i].ctx, EventKind::CacheHit);
                    }
                    *lock(&slots[i]) = Some(CellOutcome {
                        ctx: plan.cells[i].ctx.clone(),
                        value: o.value,
                        retries: 0,
                        source: CellSource::Cache,
                    });
                }
            }
        }

        // Plan-boundary durability point: everything this plan appended
        // to the journal reaches the disk before the outcomes are handed
        // to the reduce step, so a crash between plans never loses a
        // completed experiment.
        if let Some(j) = &self.journal {
            if let Err(e) = j.sync() {
                self.harness.note_journal_write_error();
                self.emit_plan(&plan.experiment, EventKind::JournalWriteError);
                eprintln!("warning: journal fsync failed at plan boundary ({e})");
            }
        }

        let outcomes: Vec<CellOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .unwrap_or_else(|| missing_outcome(&plan.cells[i].ctx))
            })
            .collect();
        self.harness.note_plan_time(plan_started.elapsed());
        self.emit_plan(&plan.experiment, EventKind::PlanFinished);
        outcomes
    }
}

/// Unreachable in practice (every index lands in exactly one of the
/// pre-pass buckets), but the executor must not panic on its own
/// bookkeeping either.
fn missing_outcome(ctx: &RunContext) -> CellOutcome {
    CellOutcome {
        ctx: ctx.clone(),
        value: Err(crate::harness::ExperimentError::DegenerateStatistics {
            ctx: ctx.clone(),
            detail: "executor produced no outcome for this cell".to_string(),
        }),
        retries: 0,
        source: CellSource::Fresh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};
    use crate::harness::RetryPolicy;
    use crate::plan::CellSpec;

    fn num_cell(experiment: &str, config: &str, value: f64) -> CellSpec {
        CellSpec::new(
            RunContext::new(experiment, "TestCpu", "synthetic", config),
            0,
            move |_| Ok(CellValue::Num(value)),
        )
    }

    #[test]
    fn outcomes_come_back_in_plan_order_for_any_job_count() {
        for jobs in [1, 2, 8] {
            let exec = Executor::new(Harness::new()).with_jobs(jobs);
            let mut plan = ExperimentPlan::new("order");
            for k in 0..17 {
                plan.push(num_cell("order", &format!("cfg{k}"), k as f64));
            }
            let out = exec.execute(&plan);
            let values: Vec<f64> = out.iter().map(|o| o.num().unwrap_or(f64::NAN)).collect();
            assert_eq!(values, (0..17).map(|k| k as f64).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn duplicate_cells_within_a_plan_are_simulated_once() {
        let exec = Executor::new(Harness::new()).with_jobs(4);
        let mut plan = ExperimentPlan::new("dup");
        plan.push(num_cell("dup", "same", 3.0));
        plan.push(num_cell("dup", "same", 3.0));
        plan.push(num_cell("dup", "other", 4.0));
        let out = exec.execute(&plan);
        assert_eq!(out[0].source, CellSource::Fresh);
        assert_eq!(out[1].source, CellSource::Cache);
        assert_eq!(out[1].num().map_err(|_| ()), Ok(3.0));
        let s = exec.stats();
        assert_eq!((s.cells_run, s.cells_from_cache), (2, 1));
    }

    #[test]
    fn cache_is_shared_across_experiments() {
        let exec = Executor::new(Harness::new());
        let mut p1 = ExperimentPlan::new("exp-a");
        p1.push(num_cell("exp-a", "anchor", 9.0));
        let mut p2 = ExperimentPlan::new("exp-b");
        p2.push(num_cell("exp-b", "anchor", 9.0));
        exec.execute(&p1);
        let out = exec.execute(&p2);
        assert_eq!(out[0].source, CellSource::Cache, "second experiment reuses the cell");
        assert_eq!(exec.stats().cells_from_cache, 1);
        assert_eq!(exec.stats().cells_run, 1);
    }

    #[test]
    fn failed_cells_do_not_poison_the_cache() {
        let plan_fault =
            FaultPlan::new().fail_cell("[dies]", FaultKind::SimFault, None);
        let exec = Executor::new(
            Harness::new().with_retry(RetryPolicy::immediate(2)).with_plan(plan_fault),
        );
        let mut p = ExperimentPlan::new("f");
        p.push(num_cell("f", "dies", 1.0));
        p.push(num_cell("f", "lives", 2.0));
        let out = exec.execute(&p);
        assert!(out[0].value.is_err());
        assert_eq!(out[1].num().map_err(|_| ()), Ok(2.0));
        // A second request for the dead cell re-attempts it (nothing
        // cached), still under the permanent fault.
        let out2 = exec.execute(&p);
        assert!(out2[0].value.is_err());
        assert_eq!(out2[1].source, CellSource::Cache);
    }

    #[test]
    fn breaker_degrades_after_consecutive_panics() {
        // Every cell in the experiment panics permanently; with a
        // breaker of 2 and serial execution, cells 0 and 1 burn their
        // retry budgets panicking, and cells 2..5 are degraded unrun.
        let plan_fault = FaultPlan::new().fail_cell("exp-p/", FaultKind::PanicFault, None);
        let exec = Executor::new(
            Harness::new().with_retry(RetryPolicy::immediate(2)).with_plan(plan_fault),
        )
        .with_jobs(1)
        .with_panic_breaker(2);
        let mut p = ExperimentPlan::new("exp-p");
        for k in 0..5 {
            p.push(num_cell("exp-p", &format!("c{k}"), k as f64));
        }
        let out = exec.execute(&p);
        assert!(out.iter().all(|o| o.value.is_err()), "every cell fails, none aborts");
        assert!(
            out.iter().all(|o| matches!(&o.value, Err(e) if e.is_panic())),
            "all failures are typed panics"
        );
        let s = exec.stats();
        assert_eq!(s.breaker_skipped, 3, "cells after the trip are degraded unrun");
        assert_eq!(s.panics_caught, 4, "2 cells x 2 attempts each");
        assert_eq!(s.cells_failed, 5, "skipped cells still count as failed");
    }

    #[test]
    fn breaker_streak_resets_on_success() {
        // One panicking cell between successes never trips a breaker of
        // 2: the streak resets.
        let plan_fault = FaultPlan::new().fail_cell("[c1]", FaultKind::PanicFault, None);
        let exec = Executor::new(
            Harness::new().with_retry(RetryPolicy::immediate(1)).with_plan(plan_fault),
        )
        .with_jobs(1)
        .with_panic_breaker(2);
        let mut p = ExperimentPlan::new("exp-r");
        for k in 0..4 {
            p.push(num_cell("exp-r", &format!("c{k}"), k as f64));
        }
        let out = exec.execute(&p);
        assert!(out[1].value.is_err());
        assert!(out[0].value.is_ok() && out[2].value.is_ok() && out[3].value.is_ok());
        assert_eq!(exec.stats().breaker_skipped, 0, "breaker never opened");
    }

    #[test]
    fn critical_cells_run_even_when_the_breaker_is_open() {
        // Two permanently panicking cells trip a breaker of 2. The
        // clean bulk cell scheduled after the trip is degraded unrun,
        // but the critical cell (a lattice anchor) must still be
        // attempted — and succeeds.
        let plan_fault = FaultPlan::new().fail_cell("/[p", FaultKind::PanicFault, None);
        let exec = Executor::new(
            Harness::new().with_retry(RetryPolicy::immediate(1)).with_plan(plan_fault),
        )
        .with_jobs(1)
        .with_panic_breaker(2);
        let mut p = ExperimentPlan::new("exp-k");
        p.push(num_cell("exp-k", "p0", 0.0));
        p.push(num_cell("exp-k", "p1", 1.0));
        p.push(num_cell("exp-k", "bulk", 2.0));
        p.push(num_cell("exp-k", "anchor", 3.0).critical());
        let out = exec.execute(&p);
        assert!(out[0].value.is_err() && out[1].value.is_err(), "injected panics fail");
        assert!(
            matches!(&out[2].value, Err(e) if e.is_panic()),
            "bulk cell degraded unrun by the open breaker"
        );
        assert_eq!(
            out[3].value.as_ref().ok(),
            Some(&CellValue::Num(3.0)),
            "critical cell ran to completion despite the open breaker"
        );
        assert_eq!(exec.stats().breaker_skipped, 1, "only the bulk cell was skipped");
    }

    #[test]
    fn io_faults_damage_the_journal_not_the_sweep() {
        let dir = std::env::temp_dir().join(format!("sb-exec-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("io.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let plan_fault =
                FaultPlan::new().fail_cell("[flip]", FaultKind::JournalCorrupt, Some(1));
            let exec = Executor::new(Harness::new().with_plan(plan_fault))
                .with_jobs(1)
                .with_journal(Journal::open(&path).unwrap());
            let mut p = ExperimentPlan::new("io");
            p.push(num_cell("io", "flip", 1.0));
            p.push(num_cell("io", "fine", 2.0));
            let out = exec.execute(&p);
            assert!(out.iter().all(|o| o.value.is_ok()), "io faults never fail the cell");
            assert_eq!(exec.stats().faults_injected, 1);
        }
        // Resume: the damaged line is counted corrupt and skipped; the
        // clean line replays.
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.scan().corrupt, 1, "bit-flipped line detected by checksum");
        assert!(j.lookup("TestCpu/synthetic/[flip]", 0).is_none());
        assert!(j.lookup("TestCpu/synthetic/[fine]", 0).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retries_are_surfaced_per_outcome() {
        let plan_fault = FaultPlan::new().fail_cell("[flaky]", FaultKind::Timeout, Some(2));
        let exec = Executor::new(
            Harness::new().with_retry(RetryPolicy::immediate(4)).with_plan(plan_fault),
        )
        .with_jobs(3);
        let mut p = ExperimentPlan::new("r");
        p.push(num_cell("r", "flaky", 5.0));
        p.push(num_cell("r", "calm", 6.0));
        let out = exec.execute(&p);
        assert_eq!(out[0].retries, 2, "succeeded on the third attempt");
        assert_eq!(out[1].retries, 0);
        assert_eq!(exec.stats().faults_injected, 2);
    }
}
