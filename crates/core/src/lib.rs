//! # spectrebench — the paper's measurement and analysis harness
//!
//! This crate is the reproduction's primary contribution, mirroring the
//! paper's own `spectrebench` artifact: it measures the performance cost
//! of transient-execution mitigations on the simulated systems and
//! attributes the total slowdown to individual mitigations.
//!
//! * [`stats`] — the §4.1 methodology: adaptive repetition until the 95%
//!   confidence interval is tight, geometric means, seeded noise.
//! * [`attribution`] — successive-disable attribution (the stacked bars
//!   of Figures 2 and 3).
//! * [`micro`] — per-mitigation instruction microbenchmarks (Tables 3–8).
//! * [`probe`] — the §6 speculation probe built on the divider
//!   performance counter (Figure 6 → Tables 9 and 10).
//! * [`experiments`] — one driver per paper table/figure, each returning
//!   a structured result and a text rendering.
//! * [`report`] — plain-text table rendering and paper-vs-measured
//!   comparisons.

pub mod attribution;
pub mod experiments;
pub mod micro;
pub mod probe;
pub mod report;
pub mod stats;

pub use attribution::{attribute, Attribution, Slice, Toggle, OS_TOGGLES};
pub use probe::{ProbeConfig, ProbeResult};
pub use stats::{geomean, measure_until, Measurement, NoiseModel, StopPolicy};
