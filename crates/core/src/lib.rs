//! # spectrebench — the paper's measurement and analysis harness
//!
//! This crate is the reproduction's primary contribution, mirroring the
//! paper's own `spectrebench` artifact: it measures the performance cost
//! of transient-execution mitigations on the simulated systems and
//! attributes the total slowdown to individual mitigations.
//!
//! * [`stats`] — the §4.1 methodology: adaptive repetition until the 95%
//!   confidence interval is tight, geometric means, seeded noise.
//! * [`harness`] — fault-tolerant cell execution: typed errors, watchdog,
//!   retry with backoff, and the resumable run journal.
//! * [`plan`] — declarative experiment plans: each driver enumerates its
//!   lattice as [`plan::CellSpec`] data plus a pure reduce step.
//! * [`executor`] — consumes plans: schedules cells across a scoped
//!   worker pool, memoizes them in a content-addressed cross-experiment
//!   cache, and journals completions deterministically.
//! * [`cells`] — canonical cell constructors for the workloads several
//!   experiments share (so their cache keys agree).
//! * [`faultplan`] — deterministic fault injection for testing recovery.
//! * [`attribution`] — successive-disable attribution (the stacked bars
//!   of Figures 2 and 3).
//! * [`micro`] — per-mitigation instruction microbenchmarks (Tables 3–8).
//! * [`probe`] — the §6 speculation probe built on the divider
//!   performance counter (Figure 6 → Tables 9 and 10).
//! * [`experiments`] — one driver per paper table/figure, each returning
//!   a structured result and a text rendering.
//! * [`report`] — plain-text table rendering and paper-vs-measured
//!   comparisons.
//! * [`obs`] — executor observability: a structured event bus with a
//!   swappable clock, a Chrome trace-event exporter, and a
//!   Prometheus-style metrics exposition.
//! * [`persist`] — crash-safe persistence primitives: CRC32, atomic
//!   (tmp + fsync + rename) artifact writes, and the torn/bit-flip
//!   damage shapes the fault plan injects on the journal write path.
//! * [`singleflight`] — in-flight request coalescing for the serving
//!   layer: concurrent identical queries share one computation.

// A failed cell must surface as a typed ExperimentError, never a panic:
// regeneration sweeps have to survive any single cell dying.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod attribution;
pub mod campaign;
pub mod cells;
pub mod executor;
pub mod experiments;
pub mod faultplan;
pub mod harness;
pub mod micro;
pub mod obs;
pub mod persist;
pub mod plan;
pub mod probe;
pub mod report;
pub mod singleflight;
pub mod stats;

pub use attribution::{attribute, Attribution, Slice, Toggle, OS_TOGGLES};
pub use campaign::{
    classify, classify_cluster, enumerate_cluster_coordinates, enumerate_coordinates,
    scan_journal_text, stratified_sample, CampaignJournal, CampaignReport, ClusterCampaignReport,
    ClusterCoordinate, ClusterObservation, ClusterOutcome, Coordinate, CoordinateOutcome,
    FaultTiming, SurvivalClass, SweepObservation, CAMPAIGN_JOURNAL_HEADER,
};
pub use executor::{default_jobs, jobs_from_env, Executor, DEFAULT_PANIC_BREAKER};
pub use faultplan::{FaultKind, FaultPlan, FaultRule, NetFaultKind, NetFaultPlan, NetFaultRule};
pub use harness::{
    cell_value_json, classify_line, escape_json, fsck_journal, ExperimentError, FsckReport,
    Harness, HarnessStats, Journal, JournalScan, LineClass, RetryPolicy, RunContext, Watchdog,
    JOURNAL_HEADER_V2,
};
pub use singleflight::{FlightOutcome, SingleFlight};
pub use obs::{Clock, Event, EventBus, EventKind, ShardState, SystemClock, VirtualClock};
pub use persist::{atomic_write, crc32, WriteDamage};
pub use plan::{CellOutcome, CellSource, CellSpec, CellValue, ExperimentPlan};
pub use probe::{ProbeConfig, ProbeResult};
pub use stats::{geomean, measure_until, Measurement, NoiseModel, StatsError, StopPolicy};
