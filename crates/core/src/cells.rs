//! Canonical cell constructors for workloads shared across experiments.
//!
//! The cross-experiment cache keys cells by *content*
//! ([`crate::harness::RunContext::content_key`] + seed), so two drivers
//! only share a simulation when they build the cell the same way: same
//! CPU string, same workload name, same config label, same seed. This
//! module is the single place those conventions live. Figure 2, the SMT
//! trade-off, and the ablations all fetch their LEBench points through
//! [`lebench_cell`]; Figure 3 and the §7 what-ifs fetch their Octane
//! points through [`octane_suite_cell`] — which is exactly what makes
//! the mitigations-off anchor a cache hit the second time any experiment
//! asks for it.
//!
//! All canonical cells use seed 0: the simulations are deterministic, so
//! the seed only matters for cells whose compute closure folds one in.

use cpu_models::CpuId;
use js_engine::{octane, JsMitigations};
use sim_kernel::BootParams;
use workloads::lebench;

use crate::harness::RunContext;
use crate::plan::{CellSpec, CellValue};

/// Canonical config label for a kernel cmdline: the cmdline itself, or
/// `"default"` when it is empty (an empty config would mean "no config
/// segment" in the cell key).
pub fn config_label(cmdline: &str) -> String {
    if cmdline.is_empty() {
        "default".to_string()
    } else {
        cmdline.to_string()
    }
}

/// Canonical tag for a JS mitigation set, folded into Octane cell
/// configs so different mitigation sets never alias in the cache.
pub fn js_tag(mits: JsMitigations) -> &'static str {
    match (mits.index_masking, mits.object_guards, mits.other_js) {
        (false, false, false) => "none",
        (true, false, false) => "im",
        (true, true, false) => "im+og",
        (true, true, true) => "full",
        _ => "other",
    }
}

/// The full-LEBench geomean under `cmdline` (workload `"lebench"`).
pub fn lebench_suite_cell(experiment: &str, cpu: CpuId, cmdline: &str) -> CellSpec {
    let model = cpu.model();
    let cmd = cmdline.to_string();
    CellSpec::new(
        RunContext::new(experiment, cpu.microarch(), "lebench", &config_label(cmdline)),
        0,
        move |_| {
            Ok(CellValue::Num(lebench::geomean(&lebench::run_suite(
                &model,
                &BootParams::parse(&cmd),
            ))))
        },
    )
}

/// The quick-mode LEBench point: getpid cycles/op under `cmdline`
/// (workload `"getpid"`).
pub fn lebench_getpid_cell(experiment: &str, cpu: CpuId, cmdline: &str) -> CellSpec {
    let model = cpu.model();
    let cmd = cmdline.to_string();
    CellSpec::new(
        RunContext::new(experiment, cpu.microarch(), "getpid", &config_label(cmdline)),
        0,
        move |_| {
            Ok(CellValue::Num(
                lebench::run_op(&model, &BootParams::parse(&cmd), lebench::LeBenchOp::GetPid)
                    .cycles_per_op,
            ))
        },
    )
}

/// Dispatches between [`lebench_suite_cell`] and [`lebench_getpid_cell`]
/// on `quick`.
pub fn lebench_cell(experiment: &str, cpu: CpuId, cmdline: &str, quick: bool) -> CellSpec {
    if quick {
        lebench_getpid_cell(experiment, cpu, cmdline)
    } else {
        lebench_suite_cell(experiment, cpu, cmdline)
    }
}

/// The Octane-like suite score under `cmdline` and `mits` (workload
/// `"octane"`; the JS mitigation set is part of the config).
pub fn octane_suite_cell(
    experiment: &str,
    cpu: CpuId,
    cmdline: &str,
    mits: JsMitigations,
) -> CellSpec {
    let model = cpu.model();
    let cmd = cmdline.to_string();
    let config = format!("{} js={}", config_label(cmdline), js_tag(mits));
    CellSpec::new(
        RunContext::new(experiment, cpu.microarch(), "octane", &config),
        0,
        move |_| {
            Ok(CellValue::Num(octane::run_suite(&model, &BootParams::parse(&cmd), mits).1))
        },
    )
}

/// The quick-mode Octane point: the Crypto benchmark's score (1e9 /
/// cycles) under `cmdline` and `mits` (workload `"crypto"`).
pub fn octane_crypto_cell(
    experiment: &str,
    cpu: CpuId,
    cmdline: &str,
    mits: JsMitigations,
) -> CellSpec {
    let model = cpu.model();
    let cmd = cmdline.to_string();
    let config = format!("{} js={}", config_label(cmdline), js_tag(mits));
    CellSpec::new(
        RunContext::new(experiment, cpu.microarch(), "crypto", &config),
        0,
        move |_| {
            let out = octane::run_bench(
                octane::OctaneBench::Crypto,
                &model,
                &BootParams::parse(&cmd),
                mits,
            );
            Ok(CellValue::Num(1e9 / out.cycles as f64))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_cells_from_different_experiments_share_cache_keys() {
        let a = lebench_cell("figure2", CpuId::Broadwell, "mitigations=off", false);
        let b = lebench_cell("ablations", CpuId::Broadwell, "mitigations=off", false);
        assert_eq!(a.cache_key(), b.cache_key());
        // Different cmdline, different key.
        let c = lebench_cell("figure2", CpuId::Broadwell, "", false);
        assert_ne!(a.cache_key(), c.cache_key());
        assert!(c.ctx.config == "default", "empty cmdline gets an explicit label");
    }

    #[test]
    fn js_mitigation_sets_never_alias() {
        let full = octane_suite_cell("figure3", CpuId::Broadwell, "", JsMitigations::full());
        let none = octane_suite_cell("figure3", CpuId::Broadwell, "", JsMitigations::none());
        assert_ne!(full.cache_key(), none.cache_key());
        assert_eq!(js_tag(JsMitigations::full()), "full");
        assert_eq!(
            js_tag(JsMitigations { index_masking: true, object_guards: false, other_js: false }),
            "im"
        );
    }
}
