//! Crash-safe file persistence primitives.
//!
//! Everything the sweep writes to disk that must survive a crash goes
//! through this module:
//!
//! * [`atomic_write`] — the classic tmp-file + fsync + rename dance, so
//!   a reader (or a resumed run) never observes a half-written
//!   `results_regenerated.txt`, trace export, metrics exposition, or
//!   compacted journal. The rename is atomic on POSIX; the directory is
//!   fsynced afterwards so the new name itself is durable.
//! * [`crc32`] — the IEEE CRC-32 used by journal format v2 to checksum
//!   each line's payload. CRC-32 detects *every* single-byte corruption
//!   (and all burst errors up to 32 bits), which is exactly the property
//!   the journal property test pins down.
//! * [`WriteDamage`] — the I/O-layer fault model: how an injected
//!   `torn-write` or `journal-corrupt` fault mangles the bytes the
//!   journal was about to append, so recovery from real-world disk
//!   failures is testable from `--inject` like simulator faults already
//!   are.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// The IEEE CRC-32 lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for b in bytes {
        c = CRC32_TABLE[((c ^ *b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The temporary sibling `atomic_write` stages into before renaming.
fn staging_path(path: &Path) -> PathBuf {
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("out");
    path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()))
}

/// Durably replaces the file at `path` with `bytes`: write to a
/// temporary sibling, fsync it, rename it over `path`, then fsync the
/// containing directory. A crash at any point leaves either the old
/// file or the new one — never a torn mixture — and after a clean
/// return the data and the rename both survive power loss.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path);
    let result = (|| {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Directory fsync makes the rename itself durable. Some
            // filesystems refuse to open directories for writing; a
            // failure here downgrades durability, not atomicity.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// How an injected I/O fault mangles a journal append. Applied to the
/// encoded line *after* the in-memory copy is stored, so only the
/// on-disk durability is damaged — exactly what a torn disk write does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteDamage {
    /// Write only a prefix of the line and no trailing newline (a torn
    /// write from a crash mid-append).
    Torn,
    /// Write the full line but with one payload byte flipped (silent
    /// media corruption); the checksum no longer matches.
    BitFlip,
}

impl WriteDamage {
    /// Applies the damage to an encoded journal line (which includes its
    /// trailing newline), returning the bytes that actually reach disk.
    pub fn apply(self, line: &str) -> Vec<u8> {
        let bytes = line.as_bytes();
        match self {
            WriteDamage::Torn => bytes[..bytes.len() * 2 / 3].to_vec(),
            WriteDamage::BitFlip => {
                let mut out = bytes.to_vec();
                // Flip a bit in the middle of the payload, away from the
                // newline, so the line still reads as one line.
                let i = out.len() / 2;
                out[i] ^= 0x01;
                if out[i] == b'\n' {
                    out[i] ^= 0x03;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_every_single_byte_change() {
        let payload = b"{\"cell\":\"a/b/c\",\"seed\":3,\"kind\":\"num\",\"v\":[1.5]}";
        let clean = crc32(payload);
        let mut mutated = payload.to_vec();
        for i in 0..mutated.len() {
            let original = mutated[i];
            mutated[i] = original.wrapping_add(1);
            assert_ne!(crc32(&mutated), clean, "byte {i}");
            mutated[i] = original;
        }
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("spectrebench-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No staging litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_shapes_are_distinct() {
        let line = "v2 deadbeef {\"cell\":\"x\",\"seed\":0,\"kind\":\"num\",\"v\":[2]}\n";
        let torn = WriteDamage::Torn.apply(line);
        assert!(torn.len() < line.len());
        assert!(!torn.ends_with(b"\n"));
        let flipped = WriteDamage::BitFlip.apply(line);
        assert_eq!(flipped.len(), line.len());
        assert_ne!(flipped, line.as_bytes());
        assert_eq!(flipped.iter().filter(|b| **b == b'\n').count(), 1);
    }
}
