//! Beyond the paper: targeted Spectre-V1 hardening from the
//! `spec-taint` branch-attackability analysis.
//!
//! The paper's two software answers to Spectre V1 are blanket: `lfence`
//! after every bounds check, or masking every attacker-reachable index
//! (§5.4). The analysis makes a third point on the curve measurable —
//! fence only the branches whose not-taken shadow actually contains the
//! Figure-1 gadget. The workload is the `spec-taint` gadget corpus
//! (attackable gadgets, benign look-alikes, and the named accepted
//! false positives) run in-bounds on the bare-machine [`Scene`], so the
//! architectural path pays exactly the hardening each policy inserts:
//!
//! * `off` — corpus as written, no hardening (the baseline);
//! * `lfence` — a blanket fence after **every** conditional branch;
//! * `mask` — a blanket canonical `cmov` mask at every branch;
//! * `targeted` — fences only where the analysis flags.
//!
//! Targeted must come out measurably cheaper than blanket `lfence` on
//! every CPU (the benign majority of the corpus is left untouched)
//! while the attack matrix in `attacks::spectre_v1` pins that it blocks
//! the PoC exactly as well — the two halves of the policy's claim.

use attacks::scene::{Scene, CODE_BASE, DATA_BASE, PROBE_BASE};
use cpu_models::{CpuId, RiscvId};
use spec_taint::corpus::{corpus, ARRAY_LEN};
use spec_taint::{
    analyze, harden_all_lfence, harden_all_mask, harden_lfence, V1Policy,
};
use uarch::isa::Reg;
use uarch::model::CpuModel;
use uarch::{Program, ProgramBuilder};

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::obs::EventKind;
use crate::plan::{CellSpec, CellValue, ExperimentPlan};
use crate::report::{pct, TextTable};

/// Invocations of each corpus program per measurement.
const RUNS: u64 = 64;

/// One CPU's corpus-execution costs across the four policies.
#[derive(Debug, Clone)]
pub struct TargetedRow {
    /// Microarchitecture label (paper CPUs and the RISC-V catalog).
    pub cpu: &'static str,
    /// Cycles per corpus pass with no hardening.
    pub cycles_off: f64,
    /// Overhead of a blanket lfence at every conditional branch.
    pub lfence_overhead: f64,
    /// Overhead of a blanket index mask at every conditional branch.
    pub mask_overhead: f64,
    /// Overhead of fencing only the analysis-flagged branches.
    pub targeted_overhead: f64,
}

/// Corpus-wide static counts, identical for every CPU.
#[derive(Debug, Clone, Copy)]
pub struct TargetedStatic {
    /// Conditional branches the analysis classified across the corpus.
    pub scanned: usize,
    /// Branches flagged attackable.
    pub flagged: usize,
    /// Fences a blanket lfence policy inserts.
    pub fences_blanket: usize,
    /// Fences the targeted policy inserts.
    pub fences_targeted: usize,
}

/// The whole artifact: per-CPU rows plus the static analysis summary.
#[derive(Debug, Clone)]
pub struct TargetedReport {
    /// One row per CPU in plan order.
    pub rows: Vec<TargetedRow>,
    /// Corpus-wide analysis counts.
    pub statics: TargetedStatic,
}

/// The CPUs the experiment sweeps: the paper's eight plus the extended
/// RISC-V catalog (`quick` keeps one of each vendor plus one RISC-V
/// part).
fn models(quick: bool) -> Vec<(&'static str, CpuModel)> {
    let mut v: Vec<(&'static str, CpuModel)> = if quick {
        vec![
            (CpuId::Broadwell.microarch(), CpuId::Broadwell.model()),
            (CpuId::IceLakeServer.microarch(), CpuId::IceLakeServer.model()),
            (CpuId::Zen3.microarch(), CpuId::Zen3.model()),
        ]
    } else {
        CpuId::ALL.iter().map(|id| (id.microarch(), id.model())).collect()
    };
    let riscv: &[RiscvId] = if quick { &[RiscvId::U74] } else { &RiscvId::ALL };
    v.extend(riscv.iter().map(|id| (id.microarch(), id.model())));
    v
}

/// Applies one policy's hardening to a corpus program.
fn instrument(prog: &Program, policy: V1Policy) -> Program {
    let base = prog.base();
    let insts = prog.insts();
    let hardened = match policy {
        V1Policy::Off => return prog.clone(),
        V1Policy::Lfence => harden_all_lfence(base, insts),
        V1Policy::Mask => {
            let report = analyze(base, insts);
            harden_all_mask(base, insts, &report)
        }
        V1Policy::Targeted => {
            let report = analyze(base, insts);
            harden_lfence(base, insts, &report.flagged_indices())
        }
    };
    let mut b = ProgramBuilder::new();
    b.extend(hardened.insts.iter().cloned());
    b.link(base)
}

/// Runs the whole corpus `RUNS` times under one policy and returns the
/// mean cycles per corpus pass. Every invocation is in-bounds, so this
/// measures the architectural cost of the hardening, not the attack.
/// Each program gets its own [`Scene`] (every corpus entry links at
/// [`CODE_BASE`], and code segments may not overlap); cycle deltas are
/// summed across scenes.
fn run_corpus(model: &CpuModel, policy: V1Policy) -> f64 {
    let programs: Vec<Program> =
        corpus().iter().map(|e| instrument(&e.program, policy)).collect();
    let mut total = 0u64;
    for prog in &programs {
        let mut s = Scene::new(model.clone());
        s.machine.load_program(prog.clone());
        let c0 = s.machine.cycles();
        for i in 0..RUNS {
            s.machine.set_reg(Reg::R0, i % ARRAY_LEN);
            s.machine.set_reg(Reg::R1, DATA_BASE);
            s.machine.set_reg(Reg::R2, ARRAY_LEN);
            s.machine.set_reg(Reg::R3, PROBE_BASE);
            s.run_at(CODE_BASE);
        }
        total += s.machine.cycles() - c0;
    }
    total as f64 / RUNS as f64
}

/// The static half of the artifact: analysis and instrumentation counts
/// over the corpus, independent of CPU.
fn statics() -> TargetedStatic {
    let mut out =
        TargetedStatic { scanned: 0, flagged: 0, fences_blanket: 0, fences_targeted: 0 };
    for e in corpus() {
        let report = analyze(e.program.base(), e.program.insts());
        out.scanned += report.scanned();
        out.flagged += report.flagged();
        out.fences_blanket +=
            harden_all_lfence(e.program.base(), e.program.insts()).inserted();
        out.fences_targeted +=
            harden_lfence(e.program.base(), e.program.insts(), &report.flagged_indices())
                .inserted();
    }
    out
}

/// Measures the corpus under all four policies on each CPU: one cell
/// per (CPU, policy), overheads formed in the reduce.
pub fn run(exec: &Executor, quick: bool) -> Result<TargetedReport, ExperimentError> {
    let cpus = models(quick);
    let mut plan = ExperimentPlan::new("targeted");
    for (label, model) in &cpus {
        for policy in V1Policy::ALL {
            let model = model.clone();
            plan.push(CellSpec::new(
                RunContext::new("targeted", label, "gadget-corpus", policy.name()),
                0,
                move |_| Ok(CellValue::Num(run_corpus(&model, policy))),
            ));
        }
    }
    let outcomes = exec.execute(&plan);
    let statics = statics();
    if let Some(bus) = exec.obs() {
        bus.emit(
            "targeted",
            "",
            "",
            0,
            EventKind::SpecTaintAnalyzed { scanned: statics.scanned, flagged: statics.flagged },
        );
    }
    let rows = cpus
        .iter()
        .enumerate()
        .map(|(i, (label, _))| {
            // Policy order within a CPU is V1Policy::ALL: off, lfence,
            // mask, targeted.
            let off = outcomes[i * 4].num()?;
            let lfence = outcomes[i * 4 + 1].num()?;
            let mask = outcomes[i * 4 + 2].num()?;
            let targeted = outcomes[i * 4 + 3].num()?;
            Ok(TargetedRow {
                cpu: label,
                cycles_off: off,
                lfence_overhead: lfence / off - 1.0,
                mask_overhead: mask / off - 1.0,
                targeted_overhead: targeted / off - 1.0,
            })
        })
        .collect::<Result<Vec<_>, ExperimentError>>()?;
    Ok(TargetedReport { rows, statics })
}

/// Renders the artifact.
pub fn render(r: &TargetedReport) -> String {
    let mut s = format!(
        "corpus: {} branches scanned, {} flagged attackable; \
         fences inserted: {} blanket lfence vs {} targeted\n",
        r.statics.scanned, r.statics.flagged, r.statics.fences_blanket, r.statics.fences_targeted
    );
    let mut t = TextTable::new(&[
        "CPU",
        "cycles/pass (off)",
        "blanket lfence",
        "blanket mask",
        "targeted",
    ]);
    for row in &r.rows {
        t.row(&[
            row.cpu.to_string(),
            format!("{:.0}", row.cycles_off),
            pct(row.lfence_overhead),
            pct(row.mask_overhead),
            pct(row.targeted_overhead),
        ]);
    }
    s.push_str(&t.render());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_is_cheaper_than_blanket_lfence_everywhere() {
        let r = run(&Executor::default(), true).unwrap();
        assert!(r.statics.flagged < r.statics.scanned, "corpus has benign branches");
        assert!(r.statics.fences_targeted < r.statics.fences_blanket);
        for row in &r.rows {
            assert!(
                row.targeted_overhead < row.lfence_overhead,
                "{}: targeted {:.2}% !< blanket lfence {:.2}%",
                row.cpu,
                row.targeted_overhead * 100.0,
                row.lfence_overhead * 100.0
            );
            assert!(row.targeted_overhead >= 0.0, "{}", row.cpu);
            assert!(row.lfence_overhead > 0.0, "{}", row.cpu);
        }
        let s = render(&r);
        assert!(s.contains("targeted") && s.contains("blanket lfence"));
    }

    #[test]
    fn riscv_parts_are_in_the_full_sweep() {
        let labels: Vec<&str> = models(false).iter().map(|(l, _)| *l).collect();
        for id in RiscvId::ALL {
            assert!(labels.contains(&id.microarch()), "{id}");
        }
        assert_eq!(labels.len(), CpuId::ALL.len() + RiscvId::ALL.len());
    }
}
