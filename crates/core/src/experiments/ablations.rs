//! Ablations and §7 "what-if" experiments.
//!
//! Beyond reproducing the paper's artifacts, these isolate the design
//! choices the paper discusses:
//!
//! * [`spectre_v2_strategies`] — retpolines vs legacy IBRS vs eIBRS on
//!   the OS workload (§5.3's "unacceptably high" IBRS verdict, and why
//!   eIBRS parts abandoned retpolines);
//! * [`pcid_ablation`] — PTI with and without PCID (§5.1: PCID makes the
//!   TLB impact "marginal compared to the direct cost");
//! * [`linux_516_ssbd`] — the Linux 5.16 seccomp/SSBD default change
//!   (§7): how much browser performance returns when seccomp processes
//!   stop getting SSBD;
//! * [`v1_hardware_assist`] — the paper's concluding proposal: hardware
//!   that recognizes the JIT's cmov+load masking pattern and makes it
//!   free (§7, §9), projected on the Octane-like suite.
//!
//! Wherever an ablation point coincides with a cell another experiment
//! already measured (Figure 2's `default`/`nopti` LEBench anchors,
//! Figure 3's fully-mitigated Octane configurations), it is built
//! through the canonical [`crate::cells`] constructors so the executor's
//! cross-experiment cache serves it without re-simulating.

use cpu_models::CpuId;
use js_engine::JsMitigations;
use sim_kernel::BootParams;
use workloads::lebench;

use crate::cells::{lebench_suite_cell, octane_suite_cell};
use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellSpec, CellValue, ExperimentPlan};
use crate::report::{pct, TextTable};

/// One Spectre V2 strategy measurement.
#[derive(Debug, Clone)]
pub struct V2Strategy {
    /// Strategy name.
    pub name: &'static str,
    /// LEBench geomean overhead vs no V2 mitigation at all.
    pub overhead: f64,
}

/// Compares the kernel's Spectre V2 strategies on one CPU.
///
/// The "auto" entry is whatever Linux would pick for the part (Table 1);
/// "ibrs" forces the legacy MSR-write-per-entry mitigation where the
/// hardware supports it.
pub fn spectre_v2_strategies(
    exec: &Executor,
    cpu: CpuId,
) -> Result<Vec<V2Strategy>, ExperimentError> {
    let model = cpu.model();
    // Isolate V2: disable the other big-ticket mitigations throughout.
    let base = "nopti mds=off nospectre_v1 l1tf=off";
    let mut plan = ExperimentPlan::new("ablations");
    plan.push(lebench_suite_cell("ablations", cpu, &format!("{base} nospectre_v2")));
    plan.push(lebench_suite_cell("ablations", cpu, base));
    if model.spec.ibrs_supported {
        plan.push(lebench_suite_cell("ablations", cpu, &format!("{base} spectre_v2=ibrs")));
    }
    let outcomes = exec.execute(&plan);
    let off = outcomes[0].num()?;
    let auto = outcomes[1].num()?;
    let mut out = vec![V2Strategy {
        name: "auto (Table 1 choice)",
        overhead: auto / off - 1.0,
    }];
    if let Some(ibrs) = outcomes.get(2) {
        out.push(V2Strategy {
            name: "legacy IBRS (forced)",
            overhead: ibrs.num()? / off - 1.0,
        });
    }
    Ok(out)
}

/// Renders the V2 strategy comparison for a CPU set.
pub fn render_v2_strategies(exec: &Executor, cpus: &[CpuId]) -> Result<String, ExperimentError> {
    let mut t = TextTable::new(&["CPU", "auto", "legacy IBRS"]);
    for cpu in cpus {
        let rows = spectre_v2_strategies(exec, *cpu)?;
        let auto = rows[0].overhead;
        let ibrs = rows.get(1).map(|r| pct(r.overhead)).unwrap_or_else(|| "N/A".into());
        t.row(&[cpu.microarch().to_string(), pct(auto), ibrs]);
    }
    Ok(t.render())
}

/// PTI cost with and without PCID on a Meltdown-vulnerable part (§5.1).
#[derive(Debug, Clone, Copy)]
pub struct PcidAblation {
    /// PTI overhead with PCID (the shipped configuration).
    pub with_pcid: f64,
    /// PTI overhead with PCID disabled (every CR3 load flushes the TLB).
    pub without_pcid: f64,
}

/// Runs the PCID ablation on the given (Meltdown-vulnerable) CPU.
///
/// The with-PCID pair is the canonical `default`/`nopti` LEBench pair —
/// content-identical to Figure 2's lattice anchors, so in a full
/// regeneration both points come from the cross-experiment cache. The
/// no-PCID pair runs a locally modified model and gets its own
/// `pcid=off` cell keys.
pub fn pcid_ablation(exec: &Executor, cpu: CpuId) -> Result<PcidAblation, ExperimentError> {
    let model = cpu.model();
    assert!(model.needs_pti(), "the ablation needs a PTI part");
    let mut nopcid = model.clone();
    nopcid.spec.pcid = false;

    let mut plan = ExperimentPlan::new("ablations");
    plan.push(lebench_suite_cell("ablations", cpu, ""));
    plan.push(lebench_suite_cell("ablations", cpu, "nopti"));
    for (config, cmdline) in [("pti pcid=off", ""), ("nopti pcid=off", "nopti")] {
        let m = nopcid.clone();
        plan.push(CellSpec::new(
            RunContext::new("ablations", model.microarch, "lebench", config),
            0,
            move |_| {
                Ok(CellValue::Num(lebench::geomean(&lebench::run_suite(
                    &m,
                    &BootParams::parse(cmdline),
                ))))
            },
        ));
    }
    let outcomes = exec.execute(&plan);
    Ok(PcidAblation {
        with_pcid: outcomes[0].num()? / outcomes[1].num()? - 1.0,
        without_pcid: outcomes[2].num()? / outcomes[3].num()? - 1.0,
    })
}

/// The Linux 5.16 change (§7): browser score recovered when seccomp no
/// longer opts processes into SSBD.
#[derive(Debug, Clone, Copy)]
pub struct Linux516 {
    /// Octane suite score under the pre-5.16 default (seccomp => SSBD).
    pub pre_516_score: f64,
    /// Score under the 5.16 default (prctl only).
    pub post_516_score: f64,
}

impl Linux516 {
    /// Fractional score improvement from the policy change.
    pub fn improvement(&self) -> f64 {
        self.post_516_score / self.pre_516_score - 1.0
    }
}

/// Measures the 5.16 policy change on one CPU. Both points are canonical
/// Octane cells shared with Figure 3's fully-mitigated configurations.
pub fn linux_516_ssbd(exec: &Executor, cpu: CpuId) -> Result<Linux516, ExperimentError> {
    let mut plan = ExperimentPlan::new("ablations");
    plan.push(octane_suite_cell("ablations", cpu, "", JsMitigations::full()));
    plan.push(octane_suite_cell(
        "ablations",
        cpu,
        "spec_store_bypass_disable=prctl",
        JsMitigations::full(),
    ));
    let outcomes = exec.execute(&plan);
    Ok(Linux516 { pre_516_score: outcomes[0].num()?, post_516_score: outcomes[1].num()? })
}

/// §7's hardware proposal, projected: if hardware recognized the JIT's
/// masking pattern (cmov feeding a load) and handled it for free, how
/// much of the JS mitigation cost disappears?
///
/// Modelled as the difference between full JS mitigations and JS
/// mitigations without the masking/guard cmovs — i.e. the ceiling for
/// the proposed `cmov+load` acceleration.
#[derive(Debug, Clone, Copy)]
pub struct V1HwAssist {
    /// Score with today's software masking.
    pub software: f64,
    /// Score with masking made architecturally free (the hardware-assist
    /// ceiling; pointer poisoning and the rest stay).
    pub hardware_ceiling: f64,
}

impl V1HwAssist {
    /// Fractional score gain available to the proposed hardware.
    pub fn potential_gain(&self) -> f64 {
        self.hardware_ceiling / self.software - 1.0
    }
}

/// Projects the hardware-assist ceiling on one CPU.
pub fn v1_hardware_assist(exec: &Executor, cpu: CpuId) -> Result<V1HwAssist, ExperimentError> {
    let mut plan = ExperimentPlan::new("ablations");
    plan.push(octane_suite_cell("ablations", cpu, "", JsMitigations::full()));
    plan.push(octane_suite_cell(
        "ablations",
        cpu,
        "",
        JsMitigations { index_masking: false, object_guards: false, other_js: true },
    ));
    let outcomes = exec.execute(&plan);
    Ok(V1HwAssist { software: outcomes[0].num()?, hardware_ceiling: outcomes[1].num()? })
}

/// Renders the §7 what-ifs for a CPU set.
pub fn render_discussion(exec: &Executor, cpus: &[CpuId]) -> Result<String, ExperimentError> {
    let mut t = TextTable::new(&["CPU", "5.16 SSBD change", "V1 hw-assist ceiling"]);
    for cpu in cpus {
        let l = linux_516_ssbd(exec, *cpu)?;
        let v = v1_hardware_assist(exec, *cpu)?;
        t.row(&[
            cpu.microarch().to_string(),
            format!("+{}", pct(l.improvement())),
            format!("+{}", pct(v.potential_gain())),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_ibrs_is_worse_than_auto_on_pre_eibrs_parts() {
        // §5.3: the per-entry MSR write made IBRS "unacceptably high";
        // retpolines won. On eIBRS parts the auto choice is already the
        // hardware one.
        let rows = spectre_v2_strategies(&Executor::default(), CpuId::SkylakeClient).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].overhead > rows[0].overhead + 0.01,
            "IBRS ({:.1}%) must cost more than retpolines ({:.1}%)",
            rows[1].overhead * 100.0,
            rows[0].overhead * 100.0
        );
    }

    #[test]
    fn pcid_keeps_pti_cheap() {
        // §5.1: without PCID, every PTI CR3 load flushes the TLB and the
        // cost grows; with PCID the TLB impact is marginal.
        let a = pcid_ablation(&Executor::default(), CpuId::Broadwell).unwrap();
        assert!(
            a.without_pcid > a.with_pcid * 1.1,
            "no-PCID PTI ({:.1}%) must exceed PCID PTI ({:.1}%)",
            a.without_pcid * 100.0,
            a.with_pcid * 100.0
        );
    }

    #[test]
    fn linux_516_recovers_browser_performance() {
        let l = linux_516_ssbd(&Executor::default(), CpuId::IceLakeServer).unwrap();
        assert!(
            l.improvement() > 0.05,
            "dropping seccomp-SSBD must help: {:.1}%",
            l.improvement() * 100.0
        );
    }

    #[test]
    fn v1_hardware_assist_has_measurable_headroom() {
        let v = v1_hardware_assist(&Executor::default(), CpuId::SkylakeClient).unwrap();
        assert!(
            v.potential_gain() > 0.01,
            "the cmov+load pattern must have headroom: {:.2}%",
            v.potential_gain() * 100.0
        );
    }

    #[test]
    fn shared_anchors_are_served_from_the_cache() {
        // The cross-experiment cache guarantee (satellite of the plan
        // refactor): after Figure 2 has run in full mode, the PCID
        // ablation's unmodified-model pair is content-identical to the
        // lattice's `default`/`nopti` anchors and must not re-simulate.
        let exec = Executor::default();
        crate::experiments::figure2::run(&exec, &[CpuId::Broadwell], false).unwrap();
        let before = exec.stats();
        pcid_ablation(&exec, CpuId::Broadwell).unwrap();
        let delta = exec.stats().since(&before);
        assert_eq!(delta.cells_run, 2, "only the no-PCID pair simulates: {delta:?}");
        assert!(delta.cells_from_cache >= 2, "default+nopti served from cache: {delta:?}");
    }
}
