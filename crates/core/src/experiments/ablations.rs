//! Ablations and §7 "what-if" experiments.
//!
//! Beyond reproducing the paper's artifacts, these isolate the design
//! choices the paper discusses:
//!
//! * [`spectre_v2_strategies`] — retpolines vs legacy IBRS vs eIBRS on
//!   the OS workload (§5.3's "unacceptably high" IBRS verdict, and why
//!   eIBRS parts abandoned retpolines);
//! * [`pcid_ablation`] — PTI with and without PCID (§5.1: PCID makes the
//!   TLB impact "marginal compared to the direct cost");
//! * [`linux_516_ssbd`] — the Linux 5.16 seccomp/SSBD default change
//!   (§7): how much browser performance returns when seccomp processes
//!   stop getting SSBD;
//! * [`v1_hardware_assist`] — the paper's concluding proposal: hardware
//!   that recognizes the JIT's cmov+load masking pattern and makes it
//!   free (§7, §9), projected on the Octane-like suite.

use cpu_models::CpuId;
use js_engine::octane;
use js_engine::JsMitigations;
use sim_kernel::BootParams;
use uarch::model::CpuModel;
use workloads::lebench;

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::report::{pct, TextTable};

/// One LEBench geomean score as a retryable harness cell.
fn lebench_cell(
    harness: &Harness,
    model: &CpuModel,
    config: &str,
    cmdline: &str,
) -> Result<f64, ExperimentError> {
    let ctx = RunContext::new("ablations", model.microarch, "lebench", config);
    harness.run_attempts(&ctx, |_| {
        Ok(lebench::geomean(&lebench::run_suite(model, &BootParams::parse(cmdline))))
    })
}

/// One Octane suite score as a retryable harness cell.
fn octane_cell(
    harness: &Harness,
    model: &CpuModel,
    config: &str,
    params: &BootParams,
    mits: JsMitigations,
) -> Result<f64, ExperimentError> {
    let ctx = RunContext::new("ablations", model.microarch, "octane", config);
    harness.run_attempts(&ctx, |_| Ok(octane::run_suite(model, params, mits).1))
}

/// One Spectre V2 strategy measurement.
#[derive(Debug, Clone)]
pub struct V2Strategy {
    /// Strategy name.
    pub name: &'static str,
    /// LEBench geomean overhead vs no V2 mitigation at all.
    pub overhead: f64,
}

/// Compares the kernel's Spectre V2 strategies on one CPU.
///
/// The "auto" entry is whatever Linux would pick for the part (Table 1);
/// "ibrs" forces the legacy MSR-write-per-entry mitigation where the
/// hardware supports it.
pub fn spectre_v2_strategies(
    harness: &Harness,
    cpu: CpuId,
) -> Result<Vec<V2Strategy>, ExperimentError> {
    let model = cpu.model();
    // Isolate V2: disable the other big-ticket mitigations throughout.
    let base = "nopti mds=off nospectre_v1 l1tf=off";
    let off = lebench_cell(harness, &model, "v2=off", &format!("{base} nospectre_v2"))?;
    let auto = lebench_cell(harness, &model, "v2=auto", base)?;
    let mut out = vec![V2Strategy {
        name: "auto (Table 1 choice)",
        overhead: auto / off - 1.0,
    }];
    if model.spec.ibrs_supported {
        let ibrs =
            lebench_cell(harness, &model, "v2=ibrs", &format!("{base} spectre_v2=ibrs"))?;
        out.push(V2Strategy {
            name: "legacy IBRS (forced)",
            overhead: ibrs / off - 1.0,
        });
    }
    Ok(out)
}

/// Renders the V2 strategy comparison for a CPU set.
pub fn render_v2_strategies(
    harness: &Harness,
    cpus: &[CpuId],
) -> Result<String, ExperimentError> {
    let mut t = TextTable::new(&["CPU", "auto", "legacy IBRS"]);
    for cpu in cpus {
        let rows = spectre_v2_strategies(harness, *cpu)?;
        let auto = rows[0].overhead;
        let ibrs = rows.get(1).map(|r| pct(r.overhead)).unwrap_or_else(|| "N/A".into());
        t.row(&[cpu.microarch().to_string(), pct(auto), ibrs]);
    }
    Ok(t.render())
}

/// PTI cost with and without PCID on a Meltdown-vulnerable part (§5.1).
#[derive(Debug, Clone, Copy)]
pub struct PcidAblation {
    /// PTI overhead with PCID (the shipped configuration).
    pub with_pcid: f64,
    /// PTI overhead with PCID disabled (every CR3 load flushes the TLB).
    pub without_pcid: f64,
}

/// Runs the PCID ablation on the given (Meltdown-vulnerable) model.
pub fn pcid_ablation(
    harness: &Harness,
    model: &CpuModel,
) -> Result<PcidAblation, ExperimentError> {
    assert!(model.needs_pti(), "the ablation needs a PTI part");
    let overhead = |m: &CpuModel, tag: &str| -> Result<f64, ExperimentError> {
        let on = lebench_cell(harness, m, &format!("pti {tag}"), "")?;
        let off = lebench_cell(harness, m, &format!("nopti {tag}"), "nopti")?;
        Ok(on / off - 1.0)
    };
    let with_pcid = overhead(model, "pcid=on")?;
    let mut nopcid = model.clone();
    nopcid.spec.pcid = false;
    let without_pcid = overhead(&nopcid, "pcid=off")?;
    Ok(PcidAblation { with_pcid, without_pcid })
}

/// The Linux 5.16 change (§7): browser score recovered when seccomp no
/// longer opts processes into SSBD.
#[derive(Debug, Clone, Copy)]
pub struct Linux516 {
    /// Octane suite score under the pre-5.16 default (seccomp => SSBD).
    pub pre_516_score: f64,
    /// Score under the 5.16 default (prctl only).
    pub post_516_score: f64,
}

impl Linux516 {
    /// Fractional score improvement from the policy change.
    pub fn improvement(&self) -> f64 {
        self.post_516_score / self.pre_516_score - 1.0
    }
}

/// Measures the 5.16 policy change on one CPU.
pub fn linux_516_ssbd(harness: &Harness, cpu: CpuId) -> Result<Linux516, ExperimentError> {
    let model = cpu.model();
    let pre = octane_cell(
        harness,
        &model,
        "ssbd=seccomp",
        &BootParams::default(),
        JsMitigations::full(),
    )?;
    let post = octane_cell(
        harness,
        &model,
        "ssbd=prctl",
        &BootParams::parse("spec_store_bypass_disable=prctl"),
        JsMitigations::full(),
    )?;
    Ok(Linux516 { pre_516_score: pre, post_516_score: post })
}

/// §7's hardware proposal, projected: if hardware recognized the JIT's
/// masking pattern (cmov feeding a load) and handled it for free, how
/// much of the JS mitigation cost disappears?
///
/// Modelled as the difference between full JS mitigations and JS
/// mitigations without the masking/guard cmovs — i.e. the ceiling for
/// the proposed `cmov+load` acceleration.
#[derive(Debug, Clone, Copy)]
pub struct V1HwAssist {
    /// Score with today's software masking.
    pub software: f64,
    /// Score with masking made architecturally free (the hardware-assist
    /// ceiling; pointer poisoning and the rest stay).
    pub hardware_ceiling: f64,
}

impl V1HwAssist {
    /// Fractional score gain available to the proposed hardware.
    pub fn potential_gain(&self) -> f64 {
        self.hardware_ceiling / self.software - 1.0
    }
}

/// Projects the hardware-assist ceiling on one CPU.
pub fn v1_hardware_assist(harness: &Harness, cpu: CpuId) -> Result<V1HwAssist, ExperimentError> {
    let model = cpu.model();
    let params = BootParams::default();
    let software =
        octane_cell(harness, &model, "js=full", &params, JsMitigations::full())?;
    let ceiling = octane_cell(
        harness,
        &model,
        "js=no-masking",
        &params,
        JsMitigations { index_masking: false, object_guards: false, other_js: true },
    )?;
    Ok(V1HwAssist { software, hardware_ceiling: ceiling })
}

/// Renders the §7 what-ifs for a CPU set.
pub fn render_discussion(harness: &Harness, cpus: &[CpuId]) -> Result<String, ExperimentError> {
    let mut t = TextTable::new(&["CPU", "5.16 SSBD change", "V1 hw-assist ceiling"]);
    for cpu in cpus {
        let l = linux_516_ssbd(harness, *cpu)?;
        let v = v1_hardware_assist(harness, *cpu)?;
        t.row(&[
            cpu.microarch().to_string(),
            format!("+{}", pct(l.improvement())),
            format!("+{}", pct(v.potential_gain())),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_ibrs_is_worse_than_auto_on_pre_eibrs_parts() {
        // §5.3: the per-entry MSR write made IBRS "unacceptably high";
        // retpolines won. On eIBRS parts the auto choice is already the
        // hardware one.
        let rows = spectre_v2_strategies(&Harness::new(), CpuId::SkylakeClient).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].overhead > rows[0].overhead + 0.01,
            "IBRS ({:.1}%) must cost more than retpolines ({:.1}%)",
            rows[1].overhead * 100.0,
            rows[0].overhead * 100.0
        );
    }

    #[test]
    fn pcid_keeps_pti_cheap() {
        // §5.1: without PCID, every PTI CR3 load flushes the TLB and the
        // cost grows; with PCID the TLB impact is marginal.
        let a = pcid_ablation(&Harness::new(), &CpuId::Broadwell.model()).unwrap();
        assert!(
            a.without_pcid > a.with_pcid * 1.1,
            "no-PCID PTI ({:.1}%) must exceed PCID PTI ({:.1}%)",
            a.without_pcid * 100.0,
            a.with_pcid * 100.0
        );
    }

    #[test]
    fn linux_516_recovers_browser_performance() {
        let l = linux_516_ssbd(&Harness::new(), CpuId::IceLakeServer).unwrap();
        assert!(
            l.improvement() > 0.05,
            "dropping seccomp-SSBD must help: {:.1}%",
            l.improvement() * 100.0
        );
    }

    #[test]
    fn v1_hardware_assist_has_measurable_headroom() {
        let v = v1_hardware_assist(&Harness::new(), CpuId::SkylakeClient).unwrap();
        assert!(
            v.potential_gain() > 0.01,
            "the cmov+load pattern must have headroom: {:.2}%",
            v.potential_gain() * 100.0
        );
    }
}
