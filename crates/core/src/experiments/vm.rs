//! §4.4: virtual machine workloads.
//!
//! Two experiments: LEBench running inside a guest with host mitigations
//! toggled (the paper measured ±3% — i.e. indistinguishable from noise),
//! and the LFS smallfile/largefile benchmarks against an emulated disk
//! (median overhead under 2%), plus the exit-rate bookkeeping that
//! explains both.

use cpu_models::CpuId;
use hypervisor::Hypervisor;
use sim_kernel::BootParams;
use uarch::isa::Reg;
use workloads::lfs::{self, LfsBench};

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellSpec, CellValue, ExperimentPlan};
use crate::report::{pct, TextTable};
use crate::stats::{measure_until, NoiseModel, StopPolicy};

/// Instruction budget per guest run (capped further by the harness
/// watchdog).
const BUDGET: u64 = 4_000_000_000;

/// One VM-workload measurement.
#[derive(Debug, Clone)]
pub struct VmRow {
    /// The CPU.
    pub cpu: CpuId,
    /// Guest-visible overhead of host mitigations (fraction).
    pub lebench_overhead: f64,
    /// LFS smallfile overhead.
    pub smallfile_overhead: f64,
    /// LFS largefile overhead.
    pub largefile_overhead: f64,
    /// VM exits observed during the LFS smallfile run (mitigated host).
    pub smallfile_exits: u64,
    /// Guest syscalls during the same run.
    pub smallfile_syscalls: u64,
}

fn guest_lebench_cycles(cpu: CpuId, host: &str, budget: u64) -> Result<u64, uarch::SimError> {
    let mut hv = Hypervisor::new(cpu.model(), &BootParams::parse(host), &BootParams::default());
    hv.guest.spawn(|b| {
        use sim_kernel::userlib::{begin_loop, emit_exit, emit_getpid, end_loop};
        let top = begin_loop(b, Reg::R7, 300);
        emit_getpid(b);
        end_loop(b, Reg::R7, top);
        emit_exit(b);
    });
    hv.guest.start();
    hv.run(budget)?;
    Ok(hv.guest.cycles())
}

fn guest_lfs(
    cpu: CpuId,
    host: &str,
    bench: LfsBench,
    budget: u64,
) -> Result<(u64, u64, u64), uarch::SimError> {
    let mut hv = Hypervisor::new(cpu.model(), &BootParams::parse(host), &BootParams::default());
    lfs::build(&mut hv.guest, bench);
    hv.guest.start();
    hv.run(budget)?;
    Ok((hv.guest.cycles(), hv.stats.exits, hv.guest.state.stats.syscalls))
}

/// The six raw guest cells per CPU, in plan order. Each is a retryable
/// cell the executor can cache/journal: the guest runs are deterministic
/// but can die or hang. Noise is applied in the reduce step, not here.
const CELLS_PER_CPU: usize = 6;

fn guest_cells(cpu: CpuId, budget: u64) -> [CellSpec; CELLS_PER_CPU] {
    let cell = |workload: &str,
                config: &str,
                raw: Box<dyn Fn() -> Result<Vec<u64>, uarch::SimError> + Send + Sync>| {
        let ctx = RunContext::new("vm", cpu.microarch(), workload, config);
        let err_ctx = ctx.clone();
        CellSpec::new(ctx, 0, move |_| {
            raw().map(CellValue::Ints).map_err(|e| ExperimentError::sim(&err_ctx, e))
        })
    };
    [
        cell("lebench-guest", "default", Box::new(move || {
            guest_lebench_cycles(cpu, "", budget).map(|c| vec![c])
        })),
        cell("lebench-guest", "mitigations=off", Box::new(move || {
            guest_lebench_cycles(cpu, "mitigations=off", budget).map(|c| vec![c])
        })),
        cell("smallfile-guest", "default", Box::new(move || {
            guest_lfs(cpu, "", LfsBench::Smallfile, budget)
                .map(|(c, exits, syscalls)| vec![c, exits, syscalls])
        })),
        cell("smallfile-guest", "mitigations=off", Box::new(move || {
            guest_lfs(cpu, "mitigations=off", LfsBench::Smallfile, budget)
                .map(|(c, _, _)| vec![c])
        })),
        cell("largefile-guest", "default", Box::new(move || {
            guest_lfs(cpu, "", LfsBench::Largefile, budget).map(|(c, _, _)| vec![c])
        })),
        cell("largefile-guest", "mitigations=off", Box::new(move || {
            guest_lfs(cpu, "mitigations=off", LfsBench::Largefile, budget)
                .map(|(c, _, _)| vec![c])
        })),
    ]
}

/// Runs the §4.4 experiments for the given CPUs: one plan of six raw
/// guest cells per CPU; the reduce step applies the paper's
/// adaptive-CI noise model per cell (seeded by the CPU/cell index, never
/// the schedule) and forms the overhead ratios.
pub fn run(exec: &Executor, cpus: &[CpuId]) -> Result<Vec<VmRow>, ExperimentError> {
    let policy = StopPolicy { min_runs: 5, max_runs: 10, target_relative_ci: 0.015 };
    let budget = exec.harness().watchdog.instruction_budget(BUDGET);
    let mut plan = ExperimentPlan::new("vm");
    for cpu in cpus {
        for c in guest_cells(*cpu, budget) {
            plan.push(c);
        }
    }
    let outcomes = exec.execute(&plan);

    let mut rows = Vec::new();
    for (i, cpu) in cpus.iter().enumerate() {
        let seed = 0x0444 + i as u64 * 977;
        let base = i * CELLS_PER_CPU;
        // Noise seeds in historical order: lebench on/off, smallfile
        // on/off, largefile on/off.
        let measure = |cell: usize, s: u64| -> Result<f64, ExperimentError> {
            let out = &outcomes[base + cell];
            let raw = out.ints()?[0] as f64;
            let mut noise = NoiseModel::paper_default(s);
            measure_until(policy, || noise.apply(raw))
                .map(|m| m.mean)
                .map_err(|e| ExperimentError::DegenerateStatistics {
                    ctx: out.ctx.clone(),
                    detail: e.to_string(),
                })
        };
        let le_on = measure(0, seed)?;
        let le_off = measure(1, seed + 1)?;
        let sf_stats = outcomes[base + 2].ints()?;
        let (exits, syscalls) = (sf_stats[1], sf_stats[2]);

        rows.push(VmRow {
            cpu: *cpu,
            lebench_overhead: le_on / le_off - 1.0,
            smallfile_overhead: measure(2, seed + 2)? / measure(3, seed + 3)? - 1.0,
            largefile_overhead: measure(4, seed + 4)? / measure(5, seed + 5)? - 1.0,
            smallfile_exits: exits,
            smallfile_syscalls: syscalls,
        });
    }
    Ok(rows)
}

/// Renders the rows.
pub fn render(rows: &[VmRow]) -> String {
    let mut t = TextTable::new(&[
        "CPU",
        "LEBench-in-VM",
        "smallfile",
        "largefile",
        "exits",
        "guest syscalls",
    ]);
    for r in rows {
        t.row(&[
            r.cpu.microarch().to_string(),
            pct(r.lebench_overhead),
            pct(r.smallfile_overhead),
            pct(r.largefile_overhead),
            r.smallfile_exits.to_string(),
            r.smallfile_syscalls.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_mitigations_invisible_from_the_guest() {
        // Paper §4.4: LEBench-in-VM within ±3%; LFS median under 2%.
        let rows =
            run(&Executor::default(), &[CpuId::SkylakeClient, CpuId::CascadeLake]).unwrap();
        for r in &rows {
            assert!(
                r.lebench_overhead.abs() < 0.04,
                "{}: LEBench-in-VM {:.2}%",
                r.cpu.microarch(),
                r.lebench_overhead * 100.0
            );
            // Paper: median under 2%. Our simulated fsync path is leaner
            // than a real journaling FS + virtio stack, so the per-exit
            // L1D-flush cost is less diluted; single digits is the
            // faithful bound here (EXPERIMENTS.md discusses the delta).
            assert!(
                r.smallfile_overhead.abs() < 0.09,
                "{}: smallfile {:.2}%",
                r.cpu.microarch(),
                r.smallfile_overhead * 100.0
            );
            assert!(r.smallfile_exits > 0, "the disk must cause exits");
        }
        let s = render(&rows);
        assert!(s.contains("smallfile"));
    }
}
