//! §4.4: virtual machine workloads.
//!
//! Two experiments: LEBench running inside a guest with host mitigations
//! toggled (the paper measured ±3% — i.e. indistinguishable from noise),
//! and the LFS smallfile/largefile benchmarks against an emulated disk
//! (median overhead under 2%), plus the exit-rate bookkeeping that
//! explains both.

use cpu_models::CpuId;
use hypervisor::Hypervisor;
use sim_kernel::BootParams;
use uarch::isa::Reg;
use workloads::lfs::{self, LfsBench};

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::report::{pct, TextTable};
use crate::stats::{measure_until, NoiseModel, StopPolicy};

/// Instruction budget per guest run (capped further by the harness
/// watchdog).
const BUDGET: u64 = 4_000_000_000;

/// One VM-workload measurement.
#[derive(Debug, Clone)]
pub struct VmRow {
    /// The CPU.
    pub cpu: CpuId,
    /// Guest-visible overhead of host mitigations (fraction).
    pub lebench_overhead: f64,
    /// LFS smallfile overhead.
    pub smallfile_overhead: f64,
    /// LFS largefile overhead.
    pub largefile_overhead: f64,
    /// VM exits observed during the LFS smallfile run (mitigated host).
    pub smallfile_exits: u64,
    /// Guest syscalls during the same run.
    pub smallfile_syscalls: u64,
}

fn guest_lebench_cycles(cpu: CpuId, host: &str, budget: u64) -> Result<u64, uarch::SimError> {
    let mut hv = Hypervisor::new(cpu.model(), &BootParams::parse(host), &BootParams::default());
    hv.guest.spawn(|b| {
        use sim_kernel::userlib::{begin_loop, emit_exit, emit_getpid, end_loop};
        let top = begin_loop(b, Reg::R7, 300);
        emit_getpid(b);
        end_loop(b, Reg::R7, top);
        emit_exit(b);
    });
    hv.guest.start();
    hv.run(budget)?;
    Ok(hv.guest.cycles())
}

fn guest_lfs(
    cpu: CpuId,
    host: &str,
    bench: LfsBench,
    budget: u64,
) -> Result<(u64, u64, u64), uarch::SimError> {
    let mut hv = Hypervisor::new(cpu.model(), &BootParams::parse(host), &BootParams::default());
    lfs::build(&mut hv.guest, bench);
    hv.guest.start();
    hv.run(budget)?;
    Ok((hv.guest.cycles(), hv.stats.exits, hv.guest.state.stats.syscalls))
}

/// Runs the §4.4 experiments for the given CPUs.
pub fn run(harness: &Harness, cpus: &[CpuId]) -> Result<Vec<VmRow>, ExperimentError> {
    let policy = StopPolicy { min_runs: 5, max_runs: 10, target_relative_ci: 0.015 };
    let budget = harness.watchdog.instruction_budget(BUDGET);
    let mut rows = Vec::new();
    for (i, cpu) in cpus.iter().enumerate() {
        let seed = 0x0444 + i as u64 * 977;
        // The raw guest runs are deterministic but can die or hang, so
        // each is a retryable (non-journaled) harness cell of its own;
        // the noise-wrapped statistics below are the journaled cells.
        let guest_run = |workload: &str, config: &str, raw: &dyn Fn() -> Result<u64, uarch::SimError>| {
            let ctx = RunContext::new("vm", cpu.microarch(), workload, config);
            harness.run_attempts(&ctx, |_| raw().map_err(|e| ExperimentError::sim(&ctx, e)))
        };
        let measure = |workload: &str, config: &str, base: u64, s: u64| {
            let ctx = RunContext::new("vm", cpu.microarch(), workload, config);
            harness
                .run_cell(&ctx, |attempt| {
                    let mut noise = NoiseModel::paper_default(
                        s.wrapping_add(attempt as u64 * 104_729),
                    );
                    measure_until(policy, || noise.apply(base as f64)).map_err(|e| {
                        ExperimentError::DegenerateStatistics {
                            ctx: ctx.clone(),
                            detail: e.to_string(),
                        }
                    })
                })
                .map(|m| m.mean)
        };

        let le_on_raw = guest_run("lebench-guest", "default", &|| {
            guest_lebench_cycles(*cpu, "", budget)
        })?;
        let le_off_raw = guest_run("lebench-guest", "mitigations=off", &|| {
            guest_lebench_cycles(*cpu, "mitigations=off", budget)
        })?;
        let le_on = measure("lebench", "default", le_on_raw, seed)?;
        let le_off = measure("lebench", "mitigations=off", le_off_raw, seed + 1)?;

        let ctx_sf = RunContext::new("vm", cpu.microarch(), "smallfile-guest", "default");
        let (sf_on, exits, syscalls) = harness.run_attempts(&ctx_sf, |_| {
            guest_lfs(*cpu, "", LfsBench::Smallfile, budget)
                .map_err(|e| ExperimentError::sim(&ctx_sf, e))
        })?;
        let ctx_sf_off =
            RunContext::new("vm", cpu.microarch(), "smallfile-guest", "mitigations=off");
        let (sf_off, _, _) = harness.run_attempts(&ctx_sf_off, |_| {
            guest_lfs(*cpu, "mitigations=off", LfsBench::Smallfile, budget)
                .map_err(|e| ExperimentError::sim(&ctx_sf_off, e))
        })?;
        let lf_on = guest_run("largefile-guest", "default", &|| {
            guest_lfs(*cpu, "", LfsBench::Largefile, budget).map(|(c, _, _)| c)
        })?;
        let lf_off = guest_run("largefile-guest", "mitigations=off", &|| {
            guest_lfs(*cpu, "mitigations=off", LfsBench::Largefile, budget).map(|(c, _, _)| c)
        })?;

        rows.push(VmRow {
            cpu: *cpu,
            lebench_overhead: le_on / le_off - 1.0,
            smallfile_overhead: measure("smallfile", "default", sf_on, seed + 2)?
                / measure("smallfile", "mitigations=off", sf_off, seed + 3)?
                - 1.0,
            largefile_overhead: measure("largefile", "default", lf_on, seed + 4)?
                / measure("largefile", "mitigations=off", lf_off, seed + 5)?
                - 1.0,
            smallfile_exits: exits,
            smallfile_syscalls: syscalls,
        });
    }
    Ok(rows)
}

/// Renders the rows.
pub fn render(rows: &[VmRow]) -> String {
    let mut t = TextTable::new(&[
        "CPU",
        "LEBench-in-VM",
        "smallfile",
        "largefile",
        "exits",
        "guest syscalls",
    ]);
    for r in rows {
        t.row(&[
            r.cpu.microarch().to_string(),
            pct(r.lebench_overhead),
            pct(r.smallfile_overhead),
            pct(r.largefile_overhead),
            r.smallfile_exits.to_string(),
            r.smallfile_syscalls.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_mitigations_invisible_from_the_guest() {
        // Paper §4.4: LEBench-in-VM within ±3%; LFS median under 2%.
        let rows = run(&Harness::new(), &[CpuId::SkylakeClient, CpuId::CascadeLake]).unwrap();
        for r in &rows {
            assert!(
                r.lebench_overhead.abs() < 0.04,
                "{}: LEBench-in-VM {:.2}%",
                r.cpu.microarch(),
                r.lebench_overhead * 100.0
            );
            // Paper: median under 2%. Our simulated fsync path is leaner
            // than a real journaling FS + virtio stack, so the per-exit
            // L1D-flush cost is less diluted; single digits is the
            // faithful bound here (EXPERIMENTS.md discusses the delta).
            assert!(
                r.smallfile_overhead.abs() < 0.09,
                "{}: smallfile {:.2}%",
                r.cpu.microarch(),
                r.smallfile_overhead * 100.0
            );
            assert!(r.smallfile_exits > 0, "the disk must cause exits");
        }
        let s = render(&rows);
        assert!(s.contains("smallfile"));
    }
}
