//! §4.4: virtual machine workloads.
//!
//! Two experiments: LEBench running inside a guest with host mitigations
//! toggled (the paper measured ±3% — i.e. indistinguishable from noise),
//! and the LFS smallfile/largefile benchmarks against an emulated disk
//! (median overhead under 2%), plus the exit-rate bookkeeping that
//! explains both.

use cpu_models::CpuId;
use hypervisor::Hypervisor;
use sim_kernel::BootParams;
use uarch::isa::Reg;
use workloads::lfs::{self, LfsBench};

use crate::report::{pct, TextTable};
use crate::stats::{measure_until, NoiseModel, StopPolicy};

/// Instruction budget per guest run.
const BUDGET: u64 = 4_000_000_000;

/// One VM-workload measurement.
#[derive(Debug, Clone)]
pub struct VmRow {
    /// The CPU.
    pub cpu: CpuId,
    /// Guest-visible overhead of host mitigations (fraction).
    pub lebench_overhead: f64,
    /// LFS smallfile overhead.
    pub smallfile_overhead: f64,
    /// LFS largefile overhead.
    pub largefile_overhead: f64,
    /// VM exits observed during the LFS smallfile run (mitigated host).
    pub smallfile_exits: u64,
    /// Guest syscalls during the same run.
    pub smallfile_syscalls: u64,
}

fn guest_lebench_cycles(cpu: CpuId, host: &str) -> u64 {
    let mut hv = Hypervisor::new(cpu.model(), &BootParams::parse(host), &BootParams::default());
    hv.guest.spawn(|b| {
        use sim_kernel::userlib::{begin_loop, emit_exit, emit_getpid, end_loop};
        let top = begin_loop(b, Reg::R7, 300);
        emit_getpid(b);
        end_loop(b, Reg::R7, top);
        emit_exit(b);
    });
    hv.guest.start();
    hv.run(BUDGET).expect("guest completes");
    hv.guest.cycles()
}

fn guest_lfs(cpu: CpuId, host: &str, bench: LfsBench) -> (u64, u64, u64) {
    let mut hv = Hypervisor::new(cpu.model(), &BootParams::parse(host), &BootParams::default());
    lfs::build(&mut hv.guest, bench);
    hv.guest.start();
    hv.run(BUDGET).expect("guest completes");
    (hv.guest.cycles(), hv.stats.exits, hv.guest.state.stats.syscalls)
}

/// Runs the §4.4 experiments for the given CPUs.
pub fn run(cpus: &[CpuId]) -> Vec<VmRow> {
    let policy = StopPolicy { min_runs: 5, max_runs: 10, target_relative_ci: 0.015 };
    let mut rows = Vec::new();
    for (i, cpu) in cpus.iter().enumerate() {
        let seed = 0x44_4 + i as u64 * 977;
        let measure = |base: f64, s: u64| {
            let mut noise = NoiseModel::paper_default(s);
            measure_until(policy, || noise.apply(base)).mean
        };
        let le_on = measure(guest_lebench_cycles(*cpu, "") as f64, seed);
        let le_off = measure(guest_lebench_cycles(*cpu, "mitigations=off") as f64, seed + 1);
        let (sf_on, exits, syscalls) = guest_lfs(*cpu, "", LfsBench::Smallfile);
        let (sf_off, _, _) = guest_lfs(*cpu, "mitigations=off", LfsBench::Smallfile);
        let (lf_on, _, _) = guest_lfs(*cpu, "", LfsBench::Largefile);
        let (lf_off, _, _) = guest_lfs(*cpu, "mitigations=off", LfsBench::Largefile);
        rows.push(VmRow {
            cpu: *cpu,
            lebench_overhead: le_on / le_off - 1.0,
            smallfile_overhead: measure(sf_on as f64, seed + 2)
                / measure(sf_off as f64, seed + 3)
                - 1.0,
            largefile_overhead: measure(lf_on as f64, seed + 4)
                / measure(lf_off as f64, seed + 5)
                - 1.0,
            smallfile_exits: exits,
            smallfile_syscalls: syscalls,
        });
    }
    rows
}

/// Renders the rows.
pub fn render(rows: &[VmRow]) -> String {
    let mut t = TextTable::new(&[
        "CPU",
        "LEBench-in-VM",
        "smallfile",
        "largefile",
        "exits",
        "guest syscalls",
    ]);
    for r in rows {
        t.row(&[
            r.cpu.microarch().to_string(),
            pct(r.lebench_overhead),
            pct(r.smallfile_overhead),
            pct(r.largefile_overhead),
            r.smallfile_exits.to_string(),
            r.smallfile_syscalls.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_mitigations_invisible_from_the_guest() {
        // Paper §4.4: LEBench-in-VM within ±3%; LFS median under 2%.
        let rows = run(&[CpuId::SkylakeClient, CpuId::CascadeLake]);
        for r in &rows {
            assert!(
                r.lebench_overhead.abs() < 0.04,
                "{}: LEBench-in-VM {:.2}%",
                r.cpu.microarch(),
                r.lebench_overhead * 100.0
            );
            // Paper: median under 2%. Our simulated fsync path is leaner
            // than a real journaling FS + virtio stack, so the per-exit
            // L1D-flush cost is less diluted; single digits is the
            // faithful bound here (EXPERIMENTS.md discusses the delta).
            assert!(
                r.smallfile_overhead.abs() < 0.09,
                "{}: smallfile {:.2}%",
                r.cpu.microarch(),
                r.smallfile_overhead * 100.0
            );
            assert!(r.smallfile_exits > 0, "the disk must cause exits");
        }
        let s = render(&rows);
        assert!(s.contains("smallfile"));
    }
}
