//! Figure 5: the slowdown caused by force-enabling Speculative Store
//! Bypass Disable on the PARSEC benchmarks, per CPU.

use cpu_models::CpuId;
use sim_kernel::BootParams;
use workloads::parsec::{run_bench, ParsecBench};

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::report::{pct, TextTable};
use crate::stats::{measure_until, NoiseModel, StopPolicy};

/// Figure 5's data: `slowdowns[cpu][bench]` as fractions.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// Rows in CPU order; columns in [`ParsecBench::ALL`] order.
    pub rows: Vec<(CpuId, [f64; 3])>,
}

/// Runs the experiment.
pub fn run(harness: &Harness, cpus: &[CpuId]) -> Result<Figure5, ExperimentError> {
    let policy = StopPolicy { min_runs: 5, max_runs: 10, target_relative_ci: 0.01 };
    let mut rows = Vec::new();
    for (i, id) in cpus.iter().enumerate() {
        let model = id.model();
        let mut cols = [0.0; 3];
        for (j, bench) in ParsecBench::ALL.iter().enumerate() {
            let seed = 0xF165 + (i * 3 + j) as u64;
            let cell = |config: &str, params: &str, salt: u64| {
                let ctx = RunContext::new("figure5", id.microarch(), bench.name(), config);
                harness.run_cell(&ctx, |attempt| {
                    let base =
                        run_bench(&model, &BootParams::parse(params), *bench).cycles as f64;
                    let mut noise = NoiseModel::paper_default(
                        seed.wrapping_add(salt).wrapping_add(attempt as u64 * 104_729),
                    );
                    measure_until(policy, || noise.apply(base)).map_err(|e| {
                        ExperimentError::DegenerateStatistics {
                            ctx: ctx.clone(),
                            detail: e.to_string(),
                        }
                    })
                })
            };
            let m_on = cell("ssbd=on", "spec_store_bypass_disable=on", 0x10_000)?;
            let m_off = cell("default", "", 0)?;
            cols[j] = m_on.mean / m_off.mean - 1.0;
        }
        rows.push((*id, cols));
    }
    Ok(Figure5 { rows })
}

/// Renders the figure.
pub fn render(f: &Figure5) -> String {
    let mut t = TextTable::new(&["CPU", "swaptions", "facesim", "bodytrack"]);
    for (id, cols) in &f.rows {
        t.row(&[
            id.microarch().to_string(),
            pct(cols[0]),
            pct(cols[1]),
            pct(cols[2]),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssbd_slowdown_trends_worse_over_time() {
        let f = run(
            &Harness::new(),
            &[CpuId::Broadwell, CpuId::IceLakeServer, CpuId::Zen, CpuId::Zen3],
        )
        .unwrap();
        let get = |id: CpuId| f.rows.iter().find(|(c, _)| *c == id).unwrap().1;
        // Newer parts pay more (Figure 5's headline).
        assert!(get(CpuId::IceLakeServer)[2] > get(CpuId::Broadwell)[2]);
        assert!(get(CpuId::Zen3)[2] > get(CpuId::Zen)[2]);
        // The worst case is tens of percent.
        assert!(get(CpuId::Zen3)[2] > 0.15);
        let s = render(&f);
        assert!(s.contains("bodytrack"));
    }
}
