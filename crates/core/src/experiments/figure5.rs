//! Figure 5: the slowdown caused by force-enabling Speculative Store
//! Bypass Disable on the PARSEC benchmarks, per CPU.

use cpu_models::CpuId;
use sim_kernel::BootParams;
use workloads::parsec::{run_bench, ParsecBench};

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellSpec, CellValue, ExperimentPlan};
use crate::report::{pct, TextTable};
use crate::stats::{measure_until, NoiseModel, StopPolicy};

/// Figure 5's data: `slowdowns[cpu][bench]` as fractions.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// Rows in CPU order; columns in [`ParsecBench::ALL`] order.
    pub rows: Vec<(CpuId, [f64; 3])>,
}

/// One raw PARSEC cell: cycles for `bench` on `id` under `params`.
fn parsec_cell(id: CpuId, bench: ParsecBench, config: &str, params: &'static str) -> CellSpec {
    let model = id.model();
    CellSpec::new(
        RunContext::new("figure5", id.microarch(), bench.name(), config),
        0,
        move |_| {
            Ok(CellValue::Num(run_bench(&model, &BootParams::parse(params), bench).cycles as f64))
        },
    )
}

/// Runs the experiment: all (CPU × benchmark × {ssbd on, off}) cells in
/// one plan, noise applied in the reduce from the (CPU, bench) index.
pub fn run(exec: &Executor, cpus: &[CpuId]) -> Result<Figure5, ExperimentError> {
    let mut plan = ExperimentPlan::new("figure5");
    for id in cpus {
        for bench in ParsecBench::ALL {
            plan.push(parsec_cell(*id, bench, "ssbd=on", "spec_store_bypass_disable=on"));
            plan.push(parsec_cell(*id, bench, "default", ""));
        }
    }
    let outcomes = exec.execute(&plan);

    let policy = StopPolicy { min_runs: 5, max_runs: 10, target_relative_ci: 0.01 };
    let mut rows = Vec::new();
    for (i, id) in cpus.iter().enumerate() {
        let mut cols = [0.0; 3];
        for (j, col) in cols.iter_mut().enumerate() {
            let seed = 0xF165 + (i * 3 + j) as u64;
            // Plan order per (cpu, bench): ssbd=on (salt 0x10_000), then
            // default (salt 0).
            let mut means = [0.0; 2];
            for (k, salt) in [0x10_000u64, 0].into_iter().enumerate() {
                let out = &outcomes[(i * 3 + j) * 2 + k];
                let base = out.num()?;
                let mut noise = NoiseModel::paper_default(seed.wrapping_add(salt));
                let m = measure_until(policy, || noise.apply(base)).map_err(|e| {
                    ExperimentError::DegenerateStatistics {
                        ctx: out.ctx.clone(),
                        detail: e.to_string(),
                    }
                })?;
                means[k] = m.mean;
            }
            *col = means[0] / means[1] - 1.0;
        }
        rows.push((*id, cols));
    }
    Ok(Figure5 { rows })
}

/// Renders the figure.
pub fn render(f: &Figure5) -> String {
    let mut t = TextTable::new(&["CPU", "swaptions", "facesim", "bodytrack"]);
    for (id, cols) in &f.rows {
        t.row(&[
            id.microarch().to_string(),
            pct(cols[0]),
            pct(cols[1]),
            pct(cols[2]),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssbd_slowdown_trends_worse_over_time() {
        let f = run(
            &Executor::default(),
            &[CpuId::Broadwell, CpuId::IceLakeServer, CpuId::Zen, CpuId::Zen3],
        )
        .unwrap();
        let get = |id: CpuId| f.rows.iter().find(|(c, _)| *c == id).unwrap().1;
        // Newer parts pay more (Figure 5's headline).
        assert!(get(CpuId::IceLakeServer)[2] > get(CpuId::Broadwell)[2]);
        assert!(get(CpuId::Zen3)[2] > get(CpuId::Zen)[2]);
        // The worst case is tens of percent.
        assert!(get(CpuId::Zen3)[2] > 0.15);
        let s = render(&f);
        assert!(s.contains("bodytrack"));
    }
}
