//! Figure 3: slowdown on the Octane-like suite caused by JavaScript- and
//! OS-level mitigations, per CPU.
//!
//! JavaScript mitigations (blue in the paper) are toggled in the JIT;
//! the OS mitigations relevant to a browser (green) are dominated by
//! SSBD, which pre-5.16 kernels apply because the sandboxed engine uses
//! seccomp (§4.3).

use cpu_models::CpuId;
use js_engine::octane;
use js_engine::JsMitigations;
use sim_kernel::BootParams;

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::report::{pct, TextTable};
use crate::stats::{measure_until, NoiseModel, StopPolicy};

/// One stacked bar: percent decrease in suite score per mitigation group.
#[derive(Debug, Clone)]
pub struct Bar {
    /// The CPU.
    pub cpu: CpuId,
    /// (group name, score decrease fraction) in stacking order:
    /// index masking, object mitigations, other JavaScript, SSBD,
    /// other OS.
    pub groups: Vec<(&'static str, f64)>,
    /// Total score decrease with everything on.
    pub total: f64,
}

/// Figure 3's data.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// One bar per CPU.
    pub bars: Vec<Bar>,
}

/// Suite score under a configuration: one harness cell, wrapped in the
/// adaptive-CI methodology over seeded noise (reseeded per retry).
fn score(
    harness: &Harness,
    cpu: CpuId,
    config_label: &str,
    params: &BootParams,
    mits: JsMitigations,
    quick: bool,
    seed: u64,
) -> Result<f64, ExperimentError> {
    let model = cpu.model();
    let workload = if quick { "crypto" } else { "octane" };
    let ctx = RunContext::new("figure3", cpu.microarch(), workload, config_label);
    let m = harness.run_cell(&ctx, |attempt| {
        let base = if quick {
            let out = octane::run_bench(octane::OctaneBench::Crypto, &model, params, mits);
            1e9 / out.cycles as f64
        } else {
            octane::run_suite(&model, params, mits).1
        };
        let mut noise =
            NoiseModel::paper_default(seed.wrapping_add(attempt as u64 * 104_729));
        let policy = StopPolicy { min_runs: 5, max_runs: 12, target_relative_ci: 0.01 };
        measure_until(policy, || noise.apply(base))
            .map_err(|e| ExperimentError::DegenerateStatistics {
                ctx: ctx.clone(),
                detail: e.to_string(),
            })
    })?;
    Ok(m.mean)
}

/// Runs the experiment. `quick` restricts the suite to one benchmark.
pub fn run(harness: &Harness, cpus: &[CpuId], quick: bool) -> Result<Figure3, ExperimentError> {
    let mut bars = Vec::new();
    for (i, cpu) in cpus.iter().enumerate() {
        let seed = 0xF163 + i as u64 * 131;
        // Successive enabling, mirroring the paper's stacking. The
        // "no SSBD" OS baseline is the 5.16 policy (seccomp no longer
        // opts in); "other OS" is everything below that.
        let os_none = BootParams::parse("mitigations=off");
        let os_no_ssbd = BootParams::parse("spec_store_bypass_disable=prctl");
        let os_full = BootParams::default();

        let s_bare =
            score(harness, *cpu, "bare", &os_none, JsMitigations::none(), quick, seed)?;
        let s_im = score(
            harness,
            *cpu,
            "index-masking",
            &os_none,
            JsMitigations { index_masking: true, object_guards: false, other_js: false },
            quick,
            seed + 1,
        )?;
        let s_obj = score(
            harness,
            *cpu,
            "object-guards",
            &os_none,
            JsMitigations { index_masking: true, object_guards: true, other_js: false },
            quick,
            seed + 2,
        )?;
        let s_js =
            score(harness, *cpu, "full-js", &os_none, JsMitigations::full(), quick, seed + 3)?;
        let s_other_os = score(
            harness,
            *cpu,
            "full-js ssbd=prctl",
            &os_no_ssbd,
            JsMitigations::full(),
            quick,
            seed + 4,
        )?;
        let s_full =
            score(harness, *cpu, "full", &os_full, JsMitigations::full(), quick, seed + 5)?;

        let dec = |hi: f64, lo: f64| (1.0 - lo / hi).max(-1.0);
        let groups = vec![
            ("index masking", dec(s_bare, s_im)),
            ("object mitigations", dec(s_im, s_obj)),
            ("other JavaScript", dec(s_obj, s_js)),
            ("other OS", dec(s_js, s_other_os)),
            ("SSBD", dec(s_other_os, s_full)),
        ];
        bars.push(Bar { cpu: *cpu, groups, total: dec(s_bare, s_full) });
    }
    Ok(Figure3 { bars })
}

/// Renders the figure as a table.
pub fn render(f: &Figure3) -> String {
    let mut header = vec!["CPU".to_string(), "total".to_string()];
    if let Some(first) = f.bars.first() {
        for (name, _) in &first.groups {
            header.push(name.to_string());
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&hdr);
    for bar in &f.bars {
        let mut row = vec![bar.cpu.microarch().to_string(), pct(bar.total)];
        for (_, v) in &bar.groups {
            row.push(pct(*v));
        }
        t.row(&row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browser_overhead_persists_on_modern_parts() {
        // §4.6: Octane overhead "has remained in the range of 15% to 25%"
        // because neither Spectre V1 nor SSB got hardware fixes. (Suite
        // composition shifts the exact numbers; the invariant is that the
        // newest CPU still pays double digits.)
        let f = run(&Harness::new(), &[CpuId::Broadwell, CpuId::IceLakeServer], false).unwrap();
        for bar in &f.bars {
            assert!(
                bar.total > 0.08 && bar.total < 0.40,
                "{}: total {:.1}%",
                bar.cpu.microarch(),
                bar.total * 100.0
            );
        }
    }

    #[test]
    fn js_mitigations_and_ssbd_both_contribute() {
        let f = run(&Harness::new(), &[CpuId::SkylakeClient], false).unwrap();
        let bar = &f.bars[0];
        let get = |n: &str| {
            bar.groups.iter().find(|(g, _)| g.contains(n)).map(|(_, v)| *v).unwrap()
        };
        assert!(get("index masking") > 0.005, "index masking visible");
        assert!(get("object") > 0.01, "object mitigations visible");
        assert!(get("SSBD") > 0.03, "SSBD visible");
        let s = render(&f);
        assert!(s.contains("Skylake"));
    }
}
