//! Figure 3: slowdown on the Octane-like suite caused by JavaScript- and
//! OS-level mitigations, per CPU.
//!
//! JavaScript mitigations (blue in the paper) are toggled in the JIT;
//! the OS mitigations relevant to a browser (green) are dominated by
//! SSBD, which pre-5.16 kernels apply because the sandboxed engine uses
//! seccomp (§4.3).

use cpu_models::CpuId;
use js_engine::JsMitigations;

use crate::cells::{octane_crypto_cell, octane_suite_cell};
use crate::executor::Executor;
use crate::harness::ExperimentError;
use crate::plan::ExperimentPlan;
use crate::report::{pct, TextTable};
use crate::stats::{measure_until, NoiseModel, StopPolicy};

/// One stacked bar: percent decrease in suite score per mitigation group.
#[derive(Debug, Clone)]
pub struct Bar {
    /// The CPU.
    pub cpu: CpuId,
    /// (group name, score decrease fraction) in stacking order:
    /// index masking, object mitigations, other JavaScript, SSBD,
    /// other OS.
    pub groups: Vec<(&'static str, f64)>,
    /// Total score decrease with everything on.
    pub total: f64,
}

/// Figure 3's data.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// One bar per CPU.
    pub bars: Vec<Bar>,
}

/// The six measured configurations per CPU, in successive-enabling
/// order: (cmdline, JS mitigation set).
const CONFIGS: usize = 6;

fn configs() -> [(&'static str, JsMitigations); CONFIGS] {
    [
        ("mitigations=off", JsMitigations::none()),
        (
            "mitigations=off",
            JsMitigations { index_masking: true, object_guards: false, other_js: false },
        ),
        (
            "mitigations=off",
            JsMitigations { index_masking: true, object_guards: true, other_js: false },
        ),
        ("mitigations=off", JsMitigations::full()),
        ("spec_store_bypass_disable=prctl", JsMitigations::full()),
        ("", JsMitigations::full()),
    ]
}

/// Runs the experiment. `quick` restricts the suite to one benchmark.
///
/// All (CPU × configuration) cells go into one plan, so the executor
/// can spread them across its worker pool; the fully-mitigated cells
/// use the canonical [`crate::cells`] constructors' keys and are shared
/// with the §7 what-if experiments through the cache. The reduce step
/// applies the paper's adaptive-CI methodology over noise seeded from
/// the (CPU, configuration) index — never the schedule — and then
/// differences adjacent configurations into the stacked groups.
pub fn run(exec: &Executor, cpus: &[CpuId], quick: bool) -> Result<Figure3, ExperimentError> {
    let mut plan = ExperimentPlan::new("figure3");
    for cpu in cpus {
        for (cmdline, mits) in configs() {
            plan.push(if quick {
                octane_crypto_cell("figure3", *cpu, cmdline, mits)
            } else {
                octane_suite_cell("figure3", *cpu, cmdline, mits)
            });
        }
    }
    let outcomes = exec.execute(&plan);

    let policy = StopPolicy { min_runs: 5, max_runs: 12, target_relative_ci: 0.01 };
    let mut bars = Vec::new();
    for (i, cpu) in cpus.iter().enumerate() {
        let seed = 0xF163 + i as u64 * 131;
        let mut scores = [0.0; CONFIGS];
        for (k, score) in scores.iter_mut().enumerate() {
            let out = &outcomes[i * CONFIGS + k];
            let base = out.num()?;
            let mut noise = NoiseModel::paper_default(seed.wrapping_add(k as u64));
            let m = measure_until(policy, || noise.apply(base)).map_err(|e| {
                ExperimentError::DegenerateStatistics {
                    ctx: out.ctx.clone(),
                    detail: e.to_string(),
                }
            })?;
            *score = m.mean;
        }
        let [s_bare, s_im, s_obj, s_js, s_other_os, s_full] = scores;
        let dec = |hi: f64, lo: f64| (1.0 - lo / hi).max(-1.0);
        let groups = vec![
            ("index masking", dec(s_bare, s_im)),
            ("object mitigations", dec(s_im, s_obj)),
            ("other JavaScript", dec(s_obj, s_js)),
            ("other OS", dec(s_js, s_other_os)),
            ("SSBD", dec(s_other_os, s_full)),
        ];
        bars.push(Bar { cpu: *cpu, groups, total: dec(s_bare, s_full) });
    }
    Ok(Figure3 { bars })
}

/// Renders the figure as a table.
pub fn render(f: &Figure3) -> String {
    let mut header = vec!["CPU".to_string(), "total".to_string()];
    if let Some(first) = f.bars.first() {
        for (name, _) in &first.groups {
            header.push(name.to_string());
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&hdr);
    for bar in &f.bars {
        let mut row = vec![bar.cpu.microarch().to_string(), pct(bar.total)];
        for (_, v) in &bar.groups {
            row.push(pct(*v));
        }
        t.row(&row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browser_overhead_persists_on_modern_parts() {
        // §4.6: Octane overhead "has remained in the range of 15% to 25%"
        // because neither Spectre V1 nor SSB got hardware fixes. (Suite
        // composition shifts the exact numbers; the invariant is that the
        // newest CPU still pays double digits.)
        let f = run(&Executor::default(), &[CpuId::Broadwell, CpuId::IceLakeServer], false)
            .unwrap();
        for bar in &f.bars {
            assert!(
                bar.total > 0.08 && bar.total < 0.40,
                "{}: total {:.1}%",
                bar.cpu.microarch(),
                bar.total * 100.0
            );
        }
    }

    #[test]
    fn js_mitigations_and_ssbd_both_contribute() {
        let f = run(&Executor::default(), &[CpuId::SkylakeClient], false).unwrap();
        let bar = &f.bars[0];
        let get = |n: &str| {
            bar.groups.iter().find(|(g, _)| g.contains(n)).map(|(_, v)| *v).unwrap()
        };
        assert!(get("index masking") > 0.005, "index masking visible");
        assert!(get("object") > 0.01, "object mitigations visible");
        assert!(get("SSBD") > 0.03, "SSBD visible");
        let s = render(&f);
        assert!(s.contains("Skylake"));
    }
}
