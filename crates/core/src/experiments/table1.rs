//! Table 1: default mitigations used by Linux on each processor.

use cpu_models::CpuId;
use sim_kernel::Mitigation;

use crate::report::TextTable;

/// One cell: ✓ (used), ! (needed but not default), or empty.
pub type Cell = Option<bool>;

/// The full matrix in paper order: `rows[mitigation][cpu]`.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in [`Mitigation::TABLE1_ORDER`] order.
    pub rows: Vec<(Mitigation, [Cell; 8])>,
}

/// Computes the matrix from the kernel's mitigation-selection logic.
pub fn run() -> Table1 {
    let rows = Mitigation::TABLE1_ORDER
        .iter()
        .map(|mit| {
            let mut cells = [None; 8];
            for (i, id) in CpuId::ALL.iter().enumerate() {
                cells[i] = mit.table1_cell(&id.model());
            }
            (*mit, cells)
        })
        .collect();
    Table1 { rows }
}

/// Renders the matrix as text (✓ / ! / blank, like the paper).
pub fn render(t: &Table1) -> String {
    let mut header = vec!["Attack", "Mitigation"];
    for id in &CpuId::ALL {
        header.push(id.microarch());
    }
    let mut table = TextTable::new(&header);
    for (mit, cells) in &t.rows {
        let mut row = vec![mit.attack().to_string(), mit.name().to_string()];
        for c in cells {
            row.push(
                match c {
                    Some(true) => "Y",
                    Some(false) => "!",
                    None => "",
                }
                .to_string(),
            );
        }
        table.row(&row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_rows_and_render() {
        let t = run();
        assert_eq!(t.rows.len(), 15);
        let s = render(&t);
        assert!(s.contains("Page Table Isolation"));
        assert!(s.contains("Broadwell"));
        // SSBD row is all '!'.
        let ssbd = t.rows.iter().find(|(m, _)| m.name() == "SSBD").unwrap();
        assert!(ssbd.1.iter().all(|c| *c == Some(false)));
    }
}
