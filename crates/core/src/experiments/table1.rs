//! Table 1: default mitigations used by Linux on each processor.

use cpu_models::CpuId;
use sim_kernel::Mitigation;

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellSpec, CellValue, ExperimentPlan};
use crate::report::TextTable;

/// One cell: ✓ (used), ! (needed but not default), or empty.
pub type Cell = Option<bool>;

/// The full matrix in paper order: `rows[mitigation][cpu]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// Rows in [`Mitigation::TABLE1_ORDER`] order.
    pub rows: Vec<(Mitigation, [Cell; 8])>,
}

/// Computes the matrix from the kernel's mitigation-selection logic.
/// Each CPU's column is one retryable cell (a [`CellValue::Flags`]
/// vector in row order), so fault injection can prove the matrix is
/// reproduced identically under retry; the reduce step transposes the
/// columns into the paper's row-major layout.
pub fn run(exec: &Executor) -> Result<Table1, ExperimentError> {
    let mut plan = ExperimentPlan::new("table1");
    for id in CpuId::ALL {
        plan.push(CellSpec::new(
            RunContext::new("table1", id.microarch(), "mitigations", ""),
            0,
            move |_| {
                let model = id.model();
                Ok(CellValue::Flags(
                    Mitigation::TABLE1_ORDER.iter().map(|mit| mit.table1_cell(&model)).collect(),
                ))
            },
        ));
    }
    let outcomes = exec.execute(&plan);
    let columns = outcomes
        .iter()
        .map(|out| out.flags().map(|f| f.to_vec()))
        .collect::<Result<Vec<Vec<Cell>>, ExperimentError>>()?;
    let rows = Mitigation::TABLE1_ORDER
        .iter()
        .enumerate()
        .map(|(r, mit)| {
            let mut cells = [None; 8];
            for (i, column) in columns.iter().enumerate() {
                cells[i] = column[r];
            }
            (*mit, cells)
        })
        .collect();
    Ok(Table1 { rows })
}

/// Renders the matrix as text (✓ / ! / blank, like the paper).
pub fn render(t: &Table1) -> String {
    let mut header = vec!["Attack", "Mitigation"];
    for id in &CpuId::ALL {
        header.push(id.microarch());
    }
    let mut table = TextTable::new(&header);
    for (mit, cells) in &t.rows {
        let mut row = vec![mit.attack().to_string(), mit.name().to_string()];
        for c in cells {
            row.push(
                match c {
                    Some(true) => "Y",
                    Some(false) => "!",
                    None => "",
                }
                .to_string(),
            );
        }
        table.row(&row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};
    use crate::harness::Harness;

    #[test]
    fn fifteen_rows_and_render() {
        let t = run(&Executor::default()).unwrap();
        assert_eq!(t.rows.len(), 15);
        let s = render(&t);
        assert!(s.contains("Page Table Isolation"));
        assert!(s.contains("Broadwell"));
        // SSBD row is all '!'.
        let ssbd = t.rows.iter().find(|(m, _)| m.name() == "SSBD").unwrap();
        assert!(ssbd.1.iter().all(|c| *c == Some(false)));
    }

    #[test]
    fn matrix_is_identical_under_injected_faults() {
        let clean = run(&Executor::default()).unwrap();
        let plan = FaultPlan::new()
            .fail_cell("table1/Broadwell", FaultKind::SimFault, Some(2))
            .fail_cell("table1/Zen 2", FaultKind::Timeout, Some(2));
        let exec = Executor::new(Harness::new().with_plan(plan));
        let faulty = run(&exec).unwrap();
        assert_eq!(clean, faulty);
        assert_eq!(exec.stats().faults_injected, 4);
    }
}
