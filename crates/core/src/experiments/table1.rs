//! Table 1: default mitigations used by Linux on each processor.

use cpu_models::CpuId;
use sim_kernel::Mitigation;

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::report::TextTable;

/// One cell: ✓ (used), ! (needed but not default), or empty.
pub type Cell = Option<bool>;

/// The full matrix in paper order: `rows[mitigation][cpu]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// Rows in [`Mitigation::TABLE1_ORDER`] order.
    pub rows: Vec<(Mitigation, [Cell; 8])>,
}

/// Computes the matrix from the kernel's mitigation-selection logic.
/// Each CPU's column is one retryable harness cell, so fault injection
/// can prove the matrix is reproduced identically under retry.
pub fn run(harness: &Harness) -> Result<Table1, ExperimentError> {
    let mut columns = Vec::with_capacity(CpuId::ALL.len());
    for id in &CpuId::ALL {
        let ctx = RunContext::new("table1", id.microarch(), "mitigations", "");
        let column = harness.run_attempts(&ctx, |_| {
            let model = id.model();
            Ok(Mitigation::TABLE1_ORDER
                .iter()
                .map(|mit| mit.table1_cell(&model))
                .collect::<Vec<Cell>>())
        })?;
        columns.push(column);
    }
    let rows = Mitigation::TABLE1_ORDER
        .iter()
        .enumerate()
        .map(|(r, mit)| {
            let mut cells = [None; 8];
            for (i, column) in columns.iter().enumerate() {
                cells[i] = column[r];
            }
            (*mit, cells)
        })
        .collect();
    Ok(Table1 { rows })
}

/// Renders the matrix as text (✓ / ! / blank, like the paper).
pub fn render(t: &Table1) -> String {
    let mut header = vec!["Attack", "Mitigation"];
    for id in &CpuId::ALL {
        header.push(id.microarch());
    }
    let mut table = TextTable::new(&header);
    for (mit, cells) in &t.rows {
        let mut row = vec![mit.attack().to_string(), mit.name().to_string()];
        for c in cells {
            row.push(
                match c {
                    Some(true) => "Y",
                    Some(false) => "!",
                    None => "",
                }
                .to_string(),
            );
        }
        table.row(&row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};

    #[test]
    fn fifteen_rows_and_render() {
        let t = run(&Harness::new()).unwrap();
        assert_eq!(t.rows.len(), 15);
        let s = render(&t);
        assert!(s.contains("Page Table Isolation"));
        assert!(s.contains("Broadwell"));
        // SSBD row is all '!'.
        let ssbd = t.rows.iter().find(|(m, _)| m.name() == "SSBD").unwrap();
        assert!(ssbd.1.iter().all(|c| *c == Some(false)));
    }

    #[test]
    fn matrix_is_identical_under_injected_faults() {
        let clean = run(&Harness::new()).unwrap();
        let plan = FaultPlan::new()
            .fail_cell("table1/Broadwell", FaultKind::SimFault, Some(2))
            .fail_cell("table1/Zen 2", FaultKind::Timeout, Some(2));
        let h = Harness::new().with_plan(plan);
        let faulty = run(&h).unwrap();
        assert_eq!(clean, faulty);
        assert_eq!(h.stats().faults_injected, 4);
    }
}
