//! The SMT trade-off behind Table 1's "Disable SMT" row.
//!
//! MDS can only be *fully* mitigated by also disabling hyperthreading,
//! but "by default hyperthreading is enabled even for vulnerable CPUs
//! because the risk was viewed acceptable given the performance
//! difference" (§3.3). This experiment quantifies that decision: it
//! compares the measured cost of the deployed mitigation (`verw` buffer
//! clearing) against the throughput lost by turning SMT off.
//!
//! The simulator is single-core, so the SMT side is an explicit
//! throughput model rather than an emergent measurement: two sibling
//! hyperthreads running independent work achieve `SMT_SPEEDUP` times the
//! throughput of one thread (the well-established ~1.2–1.3× range for
//! mixed workloads). Disabling SMT therefore costs
//! `1 − 1/SMT_SPEEDUP` of multiprogrammed throughput. Everything else in
//! the comparison is measured.

use cpu_models::CpuId;

use crate::cells::lebench_suite_cell;
use crate::executor::Executor;
use crate::harness::ExperimentError;
use crate::plan::ExperimentPlan;
use crate::report::{pct, TextTable};

/// Throughput gain from SMT on multiprogrammed workloads (documented
/// model parameter; see the module docs).
pub const SMT_SPEEDUP: f64 = 1.25;

/// One CPU's MDS-mitigation trade-off.
#[derive(Debug, Clone, Copy)]
pub struct SmtRow {
    /// The CPU.
    pub cpu: CpuId,
    /// Measured cost of `verw` clearing on the OS workload.
    pub verw_cost: f64,
    /// Modelled cost of disabling SMT instead (0 where the part has no
    /// SMT or no MDS problem).
    pub smt_off_cost: f64,
    /// Whether the kernel's default (verw + SMT on) is the cheaper
    /// complete-enough option the paper describes.
    pub default_is_cheaper: bool,
}

/// Runs the trade-off for the given CPUs. Each MDS-vulnerable CPU
/// contributes two canonical LEBench suite cells (default and
/// `mds=off`); the default one is content-identical to Figure 2's
/// full-mode anchor, so a full regeneration serves it from the
/// cross-experiment cache.
pub fn run(exec: &Executor, cpus: &[CpuId]) -> Result<Vec<SmtRow>, ExperimentError> {
    let measured: Vec<CpuId> =
        cpus.iter().copied().filter(|cpu| cpu.model().vuln.mds).collect();
    let mut plan = ExperimentPlan::new("smt");
    for cpu in &measured {
        plan.push(lebench_suite_cell("smt", *cpu, ""));
        plan.push(lebench_suite_cell("smt", *cpu, "mds=off"));
    }
    let outcomes = exec.execute(&plan);

    cpus.iter()
        .map(|cpu| {
            let model = cpu.model();
            let verw_cost = match measured.iter().position(|m| m == cpu) {
                Some(i) => {
                    let on = outcomes[i * 2].num()?;
                    let off = outcomes[i * 2 + 1].num()?;
                    on / off - 1.0
                }
                None => 0.0,
            };
            let smt_off_cost = if model.vuln.mds && model.spec.smt {
                1.0 - 1.0 / SMT_SPEEDUP
            } else {
                0.0
            };
            Ok(SmtRow {
                cpu: *cpu,
                verw_cost,
                smt_off_cost,
                default_is_cheaper: verw_cost <= smt_off_cost || !model.vuln.mds,
            })
        })
        .collect()
}

/// Renders the trade-off.
pub fn render(rows: &[SmtRow]) -> String {
    let mut t = TextTable::new(&["CPU", "verw cost (measured)", "SMT-off cost (modelled)"]);
    for r in rows {
        t.row(&[
            r.cpu.microarch().to_string(),
            if r.verw_cost > 0.0 { pct(r.verw_cost) } else { "n/a".into() },
            if r.smt_off_cost > 0.0 { pct(r.smt_off_cost) } else { "n/a".into() },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verw_beats_smt_off_on_every_mds_part() {
        // §3.3's judgement call, reproduced: for the OS workload, buffer
        // clearing costs less than the multiprogrammed throughput SMT
        // recovers.
        let rows = run(
            &Executor::default(),
            &[CpuId::Broadwell, CpuId::SkylakeClient, CpuId::CascadeLake],
        )
        .unwrap();
        for r in &rows {
            assert!(r.verw_cost > 0.05, "{}: verw is a real cost", r.cpu.microarch());
            assert!(
                r.verw_cost < 0.30,
                "{}: verw cost {:.1}%",
                r.cpu.microarch(),
                r.verw_cost * 100.0
            );
            assert!(r.smt_off_cost > 0.15);
        }
        // On compute workloads (PARSEC) verw costs ~0 while SMT-off still
        // costs 20%: the default wins even more clearly there.
        let fixed = run(&Executor::default(), &[CpuId::IceLakeServer]).unwrap();
        assert_eq!(fixed[0].verw_cost, 0.0);
        assert_eq!(fixed[0].smt_off_cost, 0.0);
        assert!(fixed[0].default_is_cheaper);
    }
}
