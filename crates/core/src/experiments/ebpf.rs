//! The eBPF/kernel boundary: the measurement the paper lists as missing
//! ("we don't study the eBPF/kernel boundary", §1).
//!
//! Workload: a map-reduce-style BPF program (64 unrolled map lookups and
//! updates — classic eBPF has no loops) invoked via syscall in a tight
//! loop, the shape of a packet-filter hot path. The boundary's mitigation
//! costs come from two places: the verifier's Spectre V1 index masking
//! *inside* the program, and the ordinary kernel entry/exit mitigations
//! around every invocation.

use cpu_models::CpuId;
use sim_kernel::abi::nr;
use sim_kernel::bpf::BpfInsn;
use sim_kernel::{userlib, BootParams, Kernel};
use uarch::isa::Reg;

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellSpec, CellValue, ExperimentPlan};
use crate::report::{pct, TextTable};

/// Lookups per program run.
const LOOKUPS: u8 = 64;
/// Program invocations per measurement.
const RUNS: u64 = 150;

/// One CPU's eBPF boundary costs.
#[derive(Debug, Clone, Copy)]
pub struct EbpfRow {
    /// The CPU.
    pub cpu: CpuId,
    /// Cycles per program invocation, fully mitigated.
    pub cycles_mitigated: f64,
    /// Overhead of the verifier's index masking alone.
    pub masking_overhead: f64,
    /// Overhead of all mitigations (masking + entry/exit work) vs bare.
    pub total_overhead: f64,
}

fn run_workload(cpu: CpuId, cmdline: &str, budget: u64) -> Result<f64, ExperimentError> {
    let config = if cmdline.is_empty() { "default" } else { cmdline };
    let ctx = RunContext::new("ebpf", cpu.model().microarch, "map-reduce", config);
    let mut k = Kernel::boot(cpu.model(), &BootParams::parse(cmdline));
    let map = k.bpf_create_map(64);
    for i in 0..64 {
        k.bpf_map_write(map, i, i * 3 + 1);
    }
    // r0 = sum over 64 lookups; every 4th slot is also updated.
    let mut insns = vec![BpfInsn::MovImm(0, 0)];
    for i in 0..LOOKUPS {
        insns.push(BpfInsn::MovImm(1, i as i64));
        insns.push(BpfInsn::MapLookup { dst: 2, map, idx: 1 });
        insns.push(BpfInsn::Add(0, 2));
        if i % 4 == 0 {
            insns.push(BpfInsn::MapUpdate { map, idx: 1, src: 0 });
        }
    }
    insns.push(BpfInsn::Exit);
    let prog = k.bpf_load(&insns).map_err(|e| ExperimentError::VerifierRejected {
        ctx: ctx.clone(),
        reason: e.to_string(),
    })?;

    k.spawn(move |b| {
        let top = userlib::begin_loop(b, Reg::R7, RUNS);
        b.mov_imm(Reg::R1, prog as u64);
        userlib::emit_syscall(b, nr::BPF_PROG_RUN);
        userlib::end_loop(b, Reg::R7, top);
        userlib::emit_exit(b);
    });
    k.start();
    let c0 = k.cycles();
    k.run(budget).map_err(|e| ExperimentError::sim(&ctx, e))?;
    Ok((k.cycles() - c0) as f64 / RUNS as f64)
}

/// Configs in plan order per CPU: (config label, cmdline).
const CONFIGS: [(&str, &str); 3] = [
    ("default", ""),
    ("nospectre_v1", "nospectre_v1"),
    ("mitigations=off", "mitigations=off"),
];

/// Measures the boundary for the given CPUs: one plan of three cells per
/// CPU (mitigated, no index masking, bare), ratios formed in the reduce.
pub fn run(exec: &Executor, cpus: &[CpuId]) -> Result<Vec<EbpfRow>, ExperimentError> {
    let budget = exec.harness().watchdog.instruction_budget(400_000_000);
    let mut plan = ExperimentPlan::new("ebpf");
    for cpu in cpus {
        for (config, cmdline) in CONFIGS {
            let cpu = *cpu;
            plan.push(CellSpec::new(
                RunContext::new("ebpf", cpu.model().microarch, "map-reduce", config),
                0,
                move |_| run_workload(cpu, cmdline, budget).map(CellValue::Num),
            ));
        }
    }
    let outcomes = exec.execute(&plan);
    cpus.iter()
        .enumerate()
        .map(|(i, cpu)| {
            let mitigated = outcomes[i * 3].num()?;
            let no_mask = outcomes[i * 3 + 1].num()?;
            let bare = outcomes[i * 3 + 2].num()?;
            Ok(EbpfRow {
                cpu: *cpu,
                cycles_mitigated: mitigated,
                masking_overhead: mitigated / no_mask - 1.0,
                total_overhead: mitigated / bare - 1.0,
            })
        })
        .collect()
}

/// Renders the measurement.
pub fn render(rows: &[EbpfRow]) -> String {
    let mut t = TextTable::new(&[
        "CPU",
        "cycles/invocation",
        "verifier masking",
        "all mitigations",
    ]);
    for r in rows {
        t.row(&[
            r.cpu.microarch().to_string(),
            format!("{:.0}", r.cycles_mitigated),
            pct(r.masking_overhead),
            pct(r.total_overhead),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_costs_a_few_percent_and_entries_dominate_old_parts() {
        let rows = run(&Executor::default(), &[CpuId::Broadwell, CpuId::IceLakeServer]).unwrap();
        for r in &rows {
            assert!(
                r.masking_overhead > 0.005 && r.masking_overhead < 0.25,
                "{}: masking {:.2}%",
                r.cpu.microarch(),
                r.masking_overhead * 100.0
            );
        }
        // On Broadwell the per-invocation entry/exit mitigations (PTI,
        // verw) dwarf the masking; on Ice Lake Server masking is most of
        // what's left — mirroring the paper's OS-boundary story.
        let bdw = rows.iter().find(|r| r.cpu == CpuId::Broadwell).unwrap();
        let icx = rows.iter().find(|r| r.cpu == CpuId::IceLakeServer).unwrap();
        assert!(bdw.total_overhead > bdw.masking_overhead * 2.0);
        assert!(icx.total_overhead < bdw.total_overhead);
        let s = render(&rows);
        assert!(s.contains("verifier masking"));
    }
}
