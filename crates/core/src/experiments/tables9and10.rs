//! Tables 9 and 10: whether each processor speculatively executes a
//! poisoned indirect branch, per privilege-mode configuration, with IBRS
//! disabled (Table 9) and enabled (Table 10).

use cpu_models::CpuId;

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellSpec, CellValue, ExperimentPlan};
use crate::probe::{columns, table_row, ProbeResult};
use crate::report::TextTable;

/// One speculation matrix (either table).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecMatrix {
    /// Whether this is the IBRS-enabled variant (Table 10).
    pub ibrs: bool,
    /// Per-CPU rows of (column name, result).
    pub rows: Vec<(CpuId, Vec<(&'static str, ProbeResult)>)>,
}

fn encode(r: ProbeResult) -> u64 {
    match r {
        ProbeResult::Blocked => 0,
        ProbeResult::Speculated => 1,
        ProbeResult::NotApplicable => 2,
    }
}

fn decode(ctx: &RunContext, v: u64) -> Result<ProbeResult, ExperimentError> {
    match v {
        0 => Ok(ProbeResult::Blocked),
        1 => Ok(ProbeResult::Speculated),
        2 => Ok(ProbeResult::NotApplicable),
        other => Err(ExperimentError::DegenerateStatistics {
            ctx: ctx.clone(),
            detail: format!("unknown probe encoding {other}"),
        }),
    }
}

/// Runs the probe matrix for all CPUs. Each CPU row is one retryable
/// cell in the table's plan; the probes are noise-free, so a retried (or
/// cached, or journaled) row reproduces the exact same cells as a
/// fault-free run. The two tables use distinct `ibrs=` configs because
/// the cache keys cells by content and drops the experiment name.
pub fn run(exec: &Executor, ibrs: bool) -> Result<SpecMatrix, ExperimentError> {
    let experiment = if ibrs { "table10" } else { "table9" };
    let config = if ibrs { "ibrs=on" } else { "ibrs=off" };
    let mut plan = ExperimentPlan::new(experiment);
    for id in CpuId::ALL {
        plan.push(CellSpec::new(
            RunContext::new(experiment, id.microarch(), "probe", config),
            0,
            move |_| {
                let row = table_row(&id.model(), ibrs)?;
                Ok(CellValue::Ints(row.iter().map(|(_, r)| encode(*r)).collect()))
            },
        ));
    }
    let outcomes = exec.execute(&plan);

    let cols = columns();
    let rows = CpuId::ALL
        .iter()
        .zip(&outcomes)
        .map(|(id, out)| {
            let ints = out.ints()?;
            if ints.len() != cols.len() {
                return Err(ExperimentError::DegenerateStatistics {
                    ctx: out.ctx.clone(),
                    detail: format!("expected {} probe columns, got {}", cols.len(), ints.len()),
                });
            }
            let row = cols
                .iter()
                .zip(ints)
                .map(|((name, _), v)| Ok((*name, decode(&out.ctx, *v)?)))
                .collect::<Result<Vec<_>, ExperimentError>>()?;
            Ok((*id, row))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SpecMatrix { ibrs, rows })
}

/// Renders the matrix with the paper's cell conventions (✓ / blank / N/A).
pub fn render(m: &SpecMatrix) -> String {
    let mut header = vec!["CPU"];
    let cols = columns();
    for (name, _) in &cols {
        header.push(name);
    }
    let mut t = TextTable::new(&header);
    for (id, row) in &m.rows {
        let mut cells = vec![id.microarch().to_string()];
        for (_, r) in row {
            cells.push(
                match r {
                    ProbeResult::Speculated => "Y",
                    ProbeResult::Blocked => "",
                    ProbeResult::NotApplicable => "N/A",
                }
                .to_string(),
            );
        }
        t.row(&cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};
    use crate::harness::Harness;

    #[test]
    fn table9_full_matrix_shape() {
        let m = run(&Executor::default(), false).unwrap();
        assert_eq!(m.rows.len(), 8);
        let s = render(&m);
        // Zen 3's row is empty in Table 9.
        let zen3_line = s.lines().find(|l| l.starts_with("Zen 3")).unwrap();
        assert!(!zen3_line.contains('Y'), "{zen3_line}");
        // Broadwell's row is all ✓.
        let bdw = &m.rows.iter().find(|(c, _)| *c == CpuId::Broadwell).unwrap().1;
        assert!(bdw.iter().all(|(_, r)| *r == ProbeResult::Speculated));
    }

    #[test]
    fn table10_zen_row_is_na() {
        let m = run(&Executor::default(), true).unwrap();
        let zen = &m.rows.iter().find(|(c, _)| *c == CpuId::Zen).unwrap().1;
        assert!(zen.iter().all(|(_, r)| *r == ProbeResult::NotApplicable));
        let s = render(&m);
        assert!(s.contains("N/A"));
    }

    #[test]
    fn probe_cells_are_identical_under_injected_faults() {
        // The determinism guarantee: a FaultPlan that kills k < retry-limit
        // attempts of several rows still reproduces the exact Tables 9/10
        // a fault-free run produces.
        let clean9 = run(&Executor::default(), false).unwrap();
        let clean10 = run(&Executor::default(), true).unwrap();
        let plan = FaultPlan::new()
            .fail_cell("table9/Broadwell", FaultKind::SimFault, Some(2))
            .fail_cell("table9/Zen 3", FaultKind::Timeout, Some(1))
            .fail_cell("table10/Cascade Lake", FaultKind::SimFault, Some(2));
        let exec = Executor::new(Harness::new().with_plan(plan));
        let faulty9 = run(&exec, false).unwrap();
        let faulty10 = run(&exec, true).unwrap();
        assert_eq!(clean9, faulty9);
        assert_eq!(clean10, faulty10);
        assert!(exec.stats().faults_injected >= 5, "{:?}", exec.stats());
        assert!(exec.stats().retries >= 5);
    }
}
