//! Tables 9 and 10: whether each processor speculatively executes a
//! poisoned indirect branch, per privilege-mode configuration, with IBRS
//! disabled (Table 9) and enabled (Table 10).

use cpu_models::CpuId;

use crate::probe::{columns, table_row, ProbeResult};
use crate::report::TextTable;

/// One speculation matrix (either table).
#[derive(Debug, Clone)]
pub struct SpecMatrix {
    /// Whether this is the IBRS-enabled variant (Table 10).
    pub ibrs: bool,
    /// Per-CPU rows of (column name, result).
    pub rows: Vec<(CpuId, Vec<(&'static str, ProbeResult)>)>,
}

/// Runs the probe matrix for all CPUs.
pub fn run(ibrs: bool) -> SpecMatrix {
    let rows = CpuId::ALL
        .iter()
        .map(|id| (*id, table_row(&id.model(), ibrs)))
        .collect();
    SpecMatrix { ibrs, rows }
}

/// Renders the matrix with the paper's cell conventions (✓ / blank / N/A).
pub fn render(m: &SpecMatrix) -> String {
    let mut header = vec!["CPU"];
    let cols = columns();
    for (name, _) in &cols {
        header.push(name);
    }
    let mut t = TextTable::new(&header);
    for (id, row) in &m.rows {
        let mut cells = vec![id.microarch().to_string()];
        for (_, r) in row {
            cells.push(
                match r {
                    ProbeResult::Speculated => "Y",
                    ProbeResult::Blocked => "",
                    ProbeResult::NotApplicable => "N/A",
                }
                .to_string(),
            );
        }
        t.row(&cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_full_matrix_shape() {
        let m = run(false);
        assert_eq!(m.rows.len(), 8);
        let s = render(&m);
        // Zen 3's row is empty in Table 9.
        let zen3_line = s.lines().find(|l| l.starts_with("Zen 3")).unwrap();
        assert!(!zen3_line.contains('Y'), "{zen3_line}");
        // Broadwell's row is all ✓.
        let bdw = &m.rows.iter().find(|(c, _)| *c == CpuId::Broadwell).unwrap().1;
        assert!(bdw.iter().all(|(_, r)| *r == ProbeResult::Speculated));
    }

    #[test]
    fn table10_zen_row_is_na() {
        let m = run(true);
        let zen = &m.rows.iter().find(|(c, _)| *c == CpuId::Zen).unwrap().1;
        assert!(zen.iter().all(|(_, r)| *r == ProbeResult::NotApplicable));
        let s = render(&m);
        assert!(s.contains("N/A"));
    }
}
