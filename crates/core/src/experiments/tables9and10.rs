//! Tables 9 and 10: whether each processor speculatively executes a
//! poisoned indirect branch, per privilege-mode configuration, with IBRS
//! disabled (Table 9) and enabled (Table 10).

use cpu_models::CpuId;

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::probe::{columns, table_row, ProbeResult};
use crate::report::TextTable;

/// One speculation matrix (either table).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecMatrix {
    /// Whether this is the IBRS-enabled variant (Table 10).
    pub ibrs: bool,
    /// Per-CPU rows of (column name, result).
    pub rows: Vec<(CpuId, Vec<(&'static str, ProbeResult)>)>,
}

/// Runs the probe matrix for all CPUs. Each CPU row is one retryable
/// harness cell; the probes are noise-free, so a retried row reproduces
/// the exact same cells as a fault-free run.
pub fn run(harness: &Harness, ibrs: bool) -> Result<SpecMatrix, ExperimentError> {
    let experiment = if ibrs { "table10" } else { "table9" };
    let rows = CpuId::ALL
        .iter()
        .map(|id| {
            let ctx = RunContext::new(experiment, id.microarch(), "probe", "");
            harness
                .run_attempts(&ctx, |_| table_row(&id.model(), ibrs))
                .map(|row| (*id, row))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SpecMatrix { ibrs, rows })
}

/// Renders the matrix with the paper's cell conventions (✓ / blank / N/A).
pub fn render(m: &SpecMatrix) -> String {
    let mut header = vec!["CPU"];
    let cols = columns();
    for (name, _) in &cols {
        header.push(name);
    }
    let mut t = TextTable::new(&header);
    for (id, row) in &m.rows {
        let mut cells = vec![id.microarch().to_string()];
        for (_, r) in row {
            cells.push(
                match r {
                    ProbeResult::Speculated => "Y",
                    ProbeResult::Blocked => "",
                    ProbeResult::NotApplicable => "N/A",
                }
                .to_string(),
            );
        }
        t.row(&cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};

    #[test]
    fn table9_full_matrix_shape() {
        let m = run(&Harness::new(), false).unwrap();
        assert_eq!(m.rows.len(), 8);
        let s = render(&m);
        // Zen 3's row is empty in Table 9.
        let zen3_line = s.lines().find(|l| l.starts_with("Zen 3")).unwrap();
        assert!(!zen3_line.contains('Y'), "{zen3_line}");
        // Broadwell's row is all ✓.
        let bdw = &m.rows.iter().find(|(c, _)| *c == CpuId::Broadwell).unwrap().1;
        assert!(bdw.iter().all(|(_, r)| *r == ProbeResult::Speculated));
    }

    #[test]
    fn table10_zen_row_is_na() {
        let m = run(&Harness::new(), true).unwrap();
        let zen = &m.rows.iter().find(|(c, _)| *c == CpuId::Zen).unwrap().1;
        assert!(zen.iter().all(|(_, r)| *r == ProbeResult::NotApplicable));
        let s = render(&m);
        assert!(s.contains("N/A"));
    }

    #[test]
    fn probe_cells_are_identical_under_injected_faults() {
        // The determinism guarantee: a FaultPlan that kills k < retry-limit
        // attempts of several rows still reproduces the exact Tables 9/10
        // a fault-free run produces.
        let clean9 = run(&Harness::new(), false).unwrap();
        let clean10 = run(&Harness::new(), true).unwrap();
        let plan = FaultPlan::new()
            .fail_cell("table9/Broadwell", FaultKind::SimFault, Some(2))
            .fail_cell("table9/Zen 3", FaultKind::Timeout, Some(1))
            .fail_cell("table10/Cascade Lake", FaultKind::SimFault, Some(2));
        let h = Harness::new().with_plan(plan);
        let faulty9 = run(&h, false).unwrap();
        let faulty10 = run(&h, true).unwrap();
        assert_eq!(clean9, faulty9);
        assert_eq!(clean10, faulty10);
        assert!(h.stats().faults_injected >= 5, "{:?}", h.stats());
        assert!(h.stats().retries >= 5);
    }
}
