//! Tables 3–8: per-mitigation microbenchmarks, with paper-vs-measured
//! comparisons. Each CPU row is one retryable harness cell.

use cpu_models::{paper_table3, paper_table5, CpuId};

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::micro;
use crate::report::{vs_paper, TextTable};

/// Runs one table row as a harness cell (retry + fault injection).
fn row_cell<T>(
    harness: &Harness,
    table: &str,
    cpu: CpuId,
    f: impl FnMut(u32) -> Result<T, ExperimentError>,
) -> Result<T, ExperimentError> {
    let ctx = RunContext::new(table, cpu.microarch(), "micro", "");
    harness.run_attempts(&ctx, f)
}

/// Renders Table 3 (syscall / sysret / swap cr3 cycles).
pub fn render_table3(harness: &Harness) -> Result<String, ExperimentError> {
    let mut t = TextTable::new(&["CPU", "syscall", "sysret", "swap cr3"]);
    for row in paper_table3() {
        let m = row.cpu.model();
        let (syscall, sysret, cr3) = row_cell(harness, "table3", row.cpu, |_| {
            Ok((micro::syscall_cycles(&m)?, micro::sysret_cycles(&m)?, micro::swap_cr3_cycles(&m)?))
        })?;
        let cr3 = match (cr3, row.swap_cr3) {
            (Some(got), Some(paper)) => vs_paper(got, paper as f64),
            (None, None) => "N/A".to_string(),
            (got, paper) => format!("mismatch: {got:?} vs {paper:?}"),
        };
        t.row(&[
            row.cpu.microarch().to_string(),
            vs_paper(syscall, row.syscall as f64),
            vs_paper(sysret, row.sysret as f64),
            cr3,
        ]);
    }
    Ok(t.render())
}

/// Renders Table 4 (verw buffer-clear cycles).
pub fn render_table4(harness: &Harness) -> Result<String, ExperimentError> {
    let paper: &[(CpuId, Option<f64>)] = &[
        (CpuId::Broadwell, Some(610.0)),
        (CpuId::SkylakeClient, Some(518.0)),
        (CpuId::CascadeLake, Some(458.0)),
        (CpuId::IceLakeClient, None),
        (CpuId::IceLakeServer, None),
        (CpuId::Zen, None),
        (CpuId::Zen2, None),
        (CpuId::Zen3, None),
    ];
    let mut t = TextTable::new(&["CPU", "verw clear cycles"]);
    for (id, want) in paper {
        let got = row_cell(harness, "table4", *id, |_| micro::verw_cycles(&id.model()))?;
        let cell = match (got, want) {
            (Some(g), Some(w)) => vs_paper(g, *w),
            (None, None) => "N/A".to_string(),
            other => format!("mismatch: {other:?}"),
        };
        t.row(&[id.microarch().to_string(), cell]);
    }
    Ok(t.render())
}

/// Renders Table 5 (indirect branch cycles per dispatch mechanism).
pub fn render_table5(harness: &Harness) -> Result<String, ExperimentError> {
    let mut t = TextTable::new(&["CPU", "Baseline", "IBRS extra", "Generic extra", "AMD extra"]);
    for row in paper_table5() {
        let m = row.cpu.model();
        let (baseline, ibrs_m, generic_m, amd_m) = row_cell(harness, "table5", row.cpu, |_| {
            let baseline = micro::indirect_call_cycles(&m, micro::Dispatch::Baseline)?
                .ok_or_else(|| ExperimentError::DegenerateStatistics {
                    ctx: RunContext::new("table5", row.cpu.microarch(), "micro", ""),
                    detail: "baseline dispatch inapplicable".to_string(),
                })?;
            Ok((
                baseline,
                micro::indirect_call_cycles(&m, micro::Dispatch::Ibrs)?,
                micro::indirect_call_cycles(&m, micro::Dispatch::RetpolineGeneric)?,
                micro::indirect_call_cycles(&m, micro::Dispatch::RetpolineAmd)?,
            ))
        })?;
        let ibrs = match (ibrs_m, row.ibrs_extra) {
            (Some(got), Some(paper)) => vs_paper(got - baseline, paper as f64),
            (None, None) => "N/A".to_string(),
            other => format!("mismatch: {other:?}"),
        };
        let generic = generic_m
            .map(|g| vs_paper(g - baseline, row.generic_extra as f64))
            .unwrap_or_default();
        let amd = match (amd_m, row.amd_extra) {
            (Some(got), Some(paper)) => vs_paper(got - baseline, paper as f64),
            (None, None) => "N/A".to_string(),
            other => format!("mismatch: {other:?}"),
        };
        t.row(&[
            row.cpu.microarch().to_string(),
            vs_paper(baseline, row.baseline as f64),
            ibrs,
            generic,
            amd,
        ]);
    }
    Ok(t.render())
}

/// Renders Table 6 (IBPB cycles).
pub fn render_table6(harness: &Harness) -> Result<String, ExperimentError> {
    let paper: &[(CpuId, f64)] = &[
        (CpuId::Broadwell, 5600.0),
        (CpuId::SkylakeClient, 4500.0),
        (CpuId::CascadeLake, 340.0),
        (CpuId::IceLakeClient, 2500.0),
        (CpuId::IceLakeServer, 840.0),
        (CpuId::Zen, 7400.0),
        (CpuId::Zen2, 1100.0),
        (CpuId::Zen3, 800.0),
    ];
    let mut t = TextTable::new(&["CPU", "IBPB cycles"]);
    for (id, want) in paper {
        let got = row_cell(harness, "table6", *id, |_| micro::ibpb_cycles(&id.model()))?;
        t.row(&[id.microarch().to_string(), vs_paper(got, *want)]);
    }
    Ok(t.render())
}

/// Renders Table 7 (RSB fill cycles).
pub fn render_table7() -> String {
    let paper: &[(CpuId, f64)] = &[
        (CpuId::Broadwell, 130.0),
        (CpuId::SkylakeClient, 130.0),
        (CpuId::CascadeLake, 120.0),
        (CpuId::IceLakeClient, 40.0),
        (CpuId::IceLakeServer, 69.0),
        (CpuId::Zen, 114.0),
        (CpuId::Zen2, 68.0),
        (CpuId::Zen3, 94.0),
    ];
    let mut t = TextTable::new(&["CPU", "RSB fill cycles"]);
    for (id, want) in paper {
        t.row(&[
            id.microarch().to_string(),
            vs_paper(micro::rsb_fill_cycles(&id.model()), *want),
        ]);
    }
    t.render()
}

/// Renders Table 8 (lfence cycles with a load in flight).
pub fn render_table8(harness: &Harness) -> Result<String, ExperimentError> {
    let paper: &[(CpuId, f64)] = &[
        (CpuId::Broadwell, 28.0),
        (CpuId::SkylakeClient, 20.0),
        (CpuId::CascadeLake, 15.0),
        (CpuId::IceLakeClient, 8.0),
        (CpuId::IceLakeServer, 13.0),
        (CpuId::Zen, 48.0),
        (CpuId::Zen2, 4.0),
        (CpuId::Zen3, 30.0),
    ];
    let mut t = TextTable::new(&["CPU", "lfence cycles"]);
    for (id, want) in paper {
        let got = row_cell(harness, "table8", *id, |_| micro::lfence_cycles(&id.model()))?;
        t.row(&[id.microarch().to_string(), vs_paper(got, *want)]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use crate::harness::Harness;

    #[test]
    fn all_tables_render_without_mismatch_markers() {
        let h = Harness::new();
        for (name, s) in [
            ("t3", super::render_table3(&h).unwrap()),
            ("t4", super::render_table4(&h).unwrap()),
            ("t5", super::render_table5(&h).unwrap()),
            ("t6", super::render_table6(&h).unwrap()),
            ("t7", super::render_table7()),
            ("t8", super::render_table8(&h).unwrap()),
        ] {
            assert!(!s.contains("mismatch"), "{name}:\n{s}");
            assert!(s.lines().count() >= 10, "{name} has all CPU rows");
        }
    }
}
