//! Tables 3–8: per-mitigation microbenchmarks, with paper-vs-measured
//! comparisons. Each CPU row is one retryable cell; each table is one
//! plan handed to the executor.
//!
//! The tables use distinct *workload* names (`entry-exit`, `verw`,
//! `indirect-call`, `ibpb`, `rsb-fill`, `lfence`) because the
//! cross-experiment cache keys cells by content — CPU/workload/config —
//! and drops the table name, so rows of different tables must not alias.

use cpu_models::{paper_table3, paper_table5, CpuId};

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::micro;
use crate::plan::{CellOutcome, CellSpec, CellValue, ExperimentPlan};
use crate::report::{vs_paper, TextTable};

/// Builds and runs one table's plan: a cell per CPU in `cpus`, computing
/// `f(cpu)`.
fn run_rows(
    exec: &Executor,
    table: &str,
    workload: &str,
    cpus: &[CpuId],
    f: impl Fn(CpuId) -> Result<CellValue, ExperimentError> + Clone + Send + Sync + 'static,
) -> Vec<CellOutcome> {
    let mut plan = ExperimentPlan::new(table);
    for cpu in cpus {
        let cpu = *cpu;
        let f = f.clone();
        plan.push(CellSpec::new(
            RunContext::new(table, cpu.microarch(), workload, ""),
            0,
            move |_| f(cpu),
        ));
    }
    exec.execute(&plan)
}

/// Renders Table 3 (syscall / sysret / swap cr3 cycles).
pub fn render_table3(exec: &Executor) -> Result<String, ExperimentError> {
    let rows = paper_table3();
    let cpus: Vec<CpuId> = rows.iter().map(|r| r.cpu).collect();
    let outcomes = run_rows(exec, "table3", "entry-exit", &cpus, |cpu| {
        let m = cpu.model();
        Ok(CellValue::OptNums(vec![
            Some(micro::syscall_cycles(&m)?),
            Some(micro::sysret_cycles(&m)?),
            micro::swap_cr3_cycles(&m)?,
        ]))
    });
    let mut t = TextTable::new(&["CPU", "syscall", "sysret", "swap cr3"]);
    for (row, out) in rows.iter().zip(&outcomes) {
        let v = out.opt_nums()?;
        let (syscall, sysret, cr3) = (v[0].unwrap_or(f64::NAN), v[1].unwrap_or(f64::NAN), v[2]);
        let cr3 = match (cr3, row.swap_cr3) {
            (Some(got), Some(paper)) => vs_paper(got, paper as f64),
            (None, None) => "N/A".to_string(),
            (got, paper) => format!("mismatch: {got:?} vs {paper:?}"),
        };
        t.row(&[
            row.cpu.microarch().to_string(),
            vs_paper(syscall, row.syscall as f64),
            vs_paper(sysret, row.sysret as f64),
            cr3,
        ]);
    }
    Ok(t.render())
}

/// Renders Table 4 (verw buffer-clear cycles).
pub fn render_table4(exec: &Executor) -> Result<String, ExperimentError> {
    let paper: &[(CpuId, Option<f64>)] = &[
        (CpuId::Broadwell, Some(610.0)),
        (CpuId::SkylakeClient, Some(518.0)),
        (CpuId::CascadeLake, Some(458.0)),
        (CpuId::IceLakeClient, None),
        (CpuId::IceLakeServer, None),
        (CpuId::Zen, None),
        (CpuId::Zen2, None),
        (CpuId::Zen3, None),
    ];
    let cpus: Vec<CpuId> = paper.iter().map(|(id, _)| *id).collect();
    let outcomes = run_rows(exec, "table4", "verw", &cpus, |cpu| {
        Ok(CellValue::OptNums(vec![micro::verw_cycles(&cpu.model())?]))
    });
    let mut t = TextTable::new(&["CPU", "verw clear cycles"]);
    for ((id, want), out) in paper.iter().zip(&outcomes) {
        let got = out.opt_nums()?[0];
        let cell = match (got, want) {
            (Some(g), Some(w)) => vs_paper(g, *w),
            (None, None) => "N/A".to_string(),
            other => format!("mismatch: {other:?}"),
        };
        t.row(&[id.microarch().to_string(), cell]);
    }
    Ok(t.render())
}

/// Renders Table 5 (indirect branch cycles per dispatch mechanism).
pub fn render_table5(exec: &Executor) -> Result<String, ExperimentError> {
    let rows = paper_table5();
    let cpus: Vec<CpuId> = rows.iter().map(|r| r.cpu).collect();
    let outcomes = run_rows(exec, "table5", "indirect-call", &cpus, |cpu| {
        let m = cpu.model();
        let baseline = micro::indirect_call_cycles(&m, micro::Dispatch::Baseline)?.ok_or_else(
            || ExperimentError::DegenerateStatistics {
                ctx: RunContext::new("table5", cpu.microarch(), "indirect-call", ""),
                detail: "baseline dispatch inapplicable".to_string(),
            },
        )?;
        Ok(CellValue::OptNums(vec![
            Some(baseline),
            micro::indirect_call_cycles(&m, micro::Dispatch::Ibrs)?,
            micro::indirect_call_cycles(&m, micro::Dispatch::RetpolineGeneric)?,
            micro::indirect_call_cycles(&m, micro::Dispatch::RetpolineAmd)?,
        ]))
    });
    let mut t = TextTable::new(&["CPU", "Baseline", "IBRS extra", "Generic extra", "AMD extra"]);
    for (row, out) in rows.iter().zip(&outcomes) {
        let v = out.opt_nums()?;
        let (baseline, ibrs_m, generic_m, amd_m) =
            (v[0].unwrap_or(f64::NAN), v[1], v[2], v[3]);
        let ibrs = match (ibrs_m, row.ibrs_extra) {
            (Some(got), Some(paper)) => vs_paper(got - baseline, paper as f64),
            (None, None) => "N/A".to_string(),
            other => format!("mismatch: {other:?}"),
        };
        let generic = generic_m
            .map(|g| vs_paper(g - baseline, row.generic_extra as f64))
            .unwrap_or_default();
        let amd = match (amd_m, row.amd_extra) {
            (Some(got), Some(paper)) => vs_paper(got - baseline, paper as f64),
            (None, None) => "N/A".to_string(),
            other => format!("mismatch: {other:?}"),
        };
        t.row(&[
            row.cpu.microarch().to_string(),
            vs_paper(baseline, row.baseline as f64),
            ibrs,
            generic,
            amd,
        ]);
    }
    Ok(t.render())
}

/// Renders Table 6 (IBPB cycles).
pub fn render_table6(exec: &Executor) -> Result<String, ExperimentError> {
    let paper: &[(CpuId, f64)] = &[
        (CpuId::Broadwell, 5600.0),
        (CpuId::SkylakeClient, 4500.0),
        (CpuId::CascadeLake, 340.0),
        (CpuId::IceLakeClient, 2500.0),
        (CpuId::IceLakeServer, 840.0),
        (CpuId::Zen, 7400.0),
        (CpuId::Zen2, 1100.0),
        (CpuId::Zen3, 800.0),
    ];
    let cpus: Vec<CpuId> = paper.iter().map(|(id, _)| *id).collect();
    let outcomes = run_rows(exec, "table6", "ibpb", &cpus, |cpu| {
        Ok(CellValue::Num(micro::ibpb_cycles(&cpu.model())?))
    });
    let mut t = TextTable::new(&["CPU", "IBPB cycles"]);
    for ((id, want), out) in paper.iter().zip(&outcomes) {
        t.row(&[id.microarch().to_string(), vs_paper(out.num()?, *want)]);
    }
    Ok(t.render())
}

/// Renders Table 7 (RSB fill cycles).
pub fn render_table7(exec: &Executor) -> Result<String, ExperimentError> {
    let paper: &[(CpuId, f64)] = &[
        (CpuId::Broadwell, 130.0),
        (CpuId::SkylakeClient, 130.0),
        (CpuId::CascadeLake, 120.0),
        (CpuId::IceLakeClient, 40.0),
        (CpuId::IceLakeServer, 69.0),
        (CpuId::Zen, 114.0),
        (CpuId::Zen2, 68.0),
        (CpuId::Zen3, 94.0),
    ];
    let cpus: Vec<CpuId> = paper.iter().map(|(id, _)| *id).collect();
    let outcomes = run_rows(exec, "table7", "rsb-fill", &cpus, |cpu| {
        Ok(CellValue::Num(micro::rsb_fill_cycles(&cpu.model())))
    });
    let mut t = TextTable::new(&["CPU", "RSB fill cycles"]);
    for ((id, want), out) in paper.iter().zip(&outcomes) {
        t.row(&[id.microarch().to_string(), vs_paper(out.num()?, *want)]);
    }
    Ok(t.render())
}

/// Renders Table 8 (lfence cycles with a load in flight).
pub fn render_table8(exec: &Executor) -> Result<String, ExperimentError> {
    let paper: &[(CpuId, f64)] = &[
        (CpuId::Broadwell, 28.0),
        (CpuId::SkylakeClient, 20.0),
        (CpuId::CascadeLake, 15.0),
        (CpuId::IceLakeClient, 8.0),
        (CpuId::IceLakeServer, 13.0),
        (CpuId::Zen, 48.0),
        (CpuId::Zen2, 4.0),
        (CpuId::Zen3, 30.0),
    ];
    let cpus: Vec<CpuId> = paper.iter().map(|(id, _)| *id).collect();
    let outcomes = run_rows(exec, "table8", "lfence", &cpus, |cpu| {
        Ok(CellValue::Num(micro::lfence_cycles(&cpu.model())?))
    });
    let mut t = TextTable::new(&["CPU", "lfence cycles"]);
    for ((id, want), out) in paper.iter().zip(&outcomes) {
        t.row(&[id.microarch().to_string(), vs_paper(out.num()?, *want)]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use crate::executor::Executor;

    #[test]
    fn all_tables_render_without_mismatch_markers() {
        let exec = Executor::default();
        for (name, s) in [
            ("t3", super::render_table3(&exec).unwrap()),
            ("t4", super::render_table4(&exec).unwrap()),
            ("t5", super::render_table5(&exec).unwrap()),
            ("t6", super::render_table6(&exec).unwrap()),
            ("t7", super::render_table7(&exec).unwrap()),
            ("t8", super::render_table8(&exec).unwrap()),
        ] {
            assert!(!s.contains("mismatch"), "{name}:\n{s}");
            assert!(s.lines().count() >= 10, "{name} has all CPU rows");
        }
    }
}
