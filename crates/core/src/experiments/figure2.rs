//! Figure 2: mitigation overhead on LEBench, attributed per mitigation,
//! for every CPU.

use cpu_models::CpuId;
use sim_kernel::BootParams;
use workloads::lebench;

use crate::attribution::{attribute, Attribution, OS_TOGGLES};
use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::report::{pct, TextTable};
use crate::stats::StopPolicy;

/// Figure 2's data: one attribution (stacked bar) per CPU.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// Per-CPU attributions in Table 2 order.
    pub bars: Vec<(CpuId, Attribution)>,
}

impl Figure2 {
    /// Cell failures that degraded any bar (empty on a clean run).
    pub fn failures(&self) -> Vec<&ExperimentError> {
        self.bars.iter().flat_map(|(_, a)| a.failures.iter()).collect()
    }
}

/// Runs the experiment for the given CPUs (pass [`CpuId::ALL`] for the
/// full figure). `quick` restricts LEBench to a fast subset, for tests.
///
/// Each CPU's successive-disable lattice becomes one plan executed by
/// `exec`, so the cells run across the executor's worker pool and the
/// lattice anchors land in the cross-experiment cache (the ablations
/// reuse them). A failed middle lattice cell degrades the affected
/// slices of that CPU's bar (see [`crate::attribution::attribute`]);
/// only anchor-cell failures abort the whole figure.
pub fn run(exec: &Executor, cpus: &[CpuId], quick: bool) -> Result<Figure2, ExperimentError> {
    let policy = StopPolicy { min_runs: 5, max_runs: 12, target_relative_ci: 0.01 };
    let workload_name = if quick { "getpid" } else { "lebench" };
    let mut bars = Vec::new();
    for (i, id) in cpus.iter().enumerate() {
        let model = id.model();
        let ctx = RunContext::new("figure2", id.microarch(), workload_name, "");
        let att = attribute(
            exec,
            &ctx,
            &OS_TOGGLES,
            0xF162 + i as u64,
            policy,
            move |params: &BootParams| {
                if quick {
                    lebench::run_op(&model, params, lebench::LeBenchOp::GetPid).cycles_per_op
                } else {
                    lebench::geomean(&lebench::run_suite(&model, params))
                }
            },
        )?;
        bars.push((*id, att));
    }
    Ok(Figure2 { bars })
}

/// Renders the figure as a table: total overhead plus per-mitigation
/// slices, with 95% CIs (the paper's error bars). Slices bridged over a
/// failed cell are marked `†` with a footnote.
pub fn render(f: &Figure2) -> String {
    let mut header = vec!["CPU".to_string(), "total".to_string()];
    if let Some((_, first)) = f.bars.first() {
        for s in &first.slices {
            header.push(s.name.to_string());
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&hdr);
    let mut any_degraded = false;
    for (id, att) in &f.bars {
        let mut row = vec![id.microarch().to_string(), pct(att.total)];
        for s in &att.slices {
            let marker = if s.degraded {
                any_degraded = true;
                "†"
            } else {
                ""
            };
            row.push(format!("{} ±{}{}", pct(s.overhead), pct(s.ci95), marker));
        }
        t.row(&row);
    }
    let mut out = t.render();
    if any_degraded {
        out.push_str("† degraded: bridged over a permanently failed lattice cell\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};
    use crate::harness::{Harness, RetryPolicy};

    fn test_exec() -> Executor {
        Executor::new(Harness::new().with_retry(RetryPolicy::immediate(3)))
    }

    #[test]
    fn overhead_declines_across_intel_generations() {
        // The paper's headline: >30% on old Intel down to ~3% on new.
        let f = run(
            &test_exec(),
            &[CpuId::Broadwell, CpuId::CascadeLake, CpuId::IceLakeServer],
            /* quick = */ true,
        )
        .unwrap();
        let totals: Vec<f64> = f.bars.iter().map(|(_, a)| a.total).collect();
        assert!(totals[0] > totals[1], "Broadwell > Cascade Lake");
        assert!(totals[1] > totals[2], "Cascade Lake > Ice Lake Server");
        assert!(totals[0] / totals[2].max(0.005) > 5.0, "roughly an order of magnitude");
    }

    #[test]
    fn pti_and_mds_dominate_on_broadwell() {
        let f = run(&test_exec(), &[CpuId::Broadwell], true).unwrap();
        let att = &f.bars[0].1;
        let find = |n: &str| att.slices.iter().find(|s| s.name.contains(n)).unwrap().overhead;
        assert!(find("Page Table") + find("MDS") > att.total * 0.6);
        let s = render(&f);
        assert!(s.contains("Broadwell"));
        assert!(!s.contains('†'), "clean run renders without degradation markers");
    }

    #[test]
    fn attribution_values_survive_transient_faults_exactly() {
        // A FaultPlan killing fewer runs than the retry limit must
        // reproduce the same rendering as a clean run: noise is applied
        // in the reduce step, so a retried cell's value is identical.
        let clean = run(&test_exec(), &[CpuId::Broadwell], true).unwrap();
        let plan = FaultPlan::new().fail_cell("Broadwell/getpid/[nopti]", FaultKind::SimFault, Some(2));
        let exec =
            Executor::new(Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan));
        let faulted = run(&exec, &[CpuId::Broadwell], true).unwrap();
        assert!(exec.stats().faults_injected >= 2);
        assert!(!faulted.bars[0].1.is_degraded());
        assert_eq!(render(&clean), render(&faulted));
    }

    #[test]
    fn permanent_fault_degrades_only_the_affected_bar() {
        let plan =
            FaultPlan::new().fail_cell("Broadwell/getpid/[nopti]", FaultKind::Timeout, None);
        let exec =
            Executor::new(Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan));
        let f = run(&exec, &[CpuId::Broadwell, CpuId::CascadeLake], true).unwrap();
        assert!(f.bars[0].1.is_degraded(), "Broadwell bar degraded");
        assert!(!f.bars[1].1.is_degraded(), "Cascade Lake bar untouched");
        assert_eq!(f.failures().len(), 1);
        let rendered = render(&f);
        assert!(rendered.contains('†'));
    }
}
