//! Figure 2: mitigation overhead on LEBench, attributed per mitigation,
//! for every CPU.

use cpu_models::CpuId;
use sim_kernel::BootParams;
use workloads::lebench;

use crate::attribution::{attribute, Attribution, OS_TOGGLES};
use crate::report::{pct, TextTable};
use crate::stats::StopPolicy;

/// Figure 2's data: one attribution (stacked bar) per CPU.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// Per-CPU attributions in Table 2 order.
    pub bars: Vec<(CpuId, Attribution)>,
}

/// Runs the experiment for the given CPUs (pass [`CpuId::ALL`] for the
/// full figure). `quick` restricts LEBench to a fast subset, for tests.
pub fn run(cpus: &[CpuId], quick: bool) -> Figure2 {
    let policy = StopPolicy { min_runs: 5, max_runs: 12, target_relative_ci: 0.01 };
    let mut bars = Vec::new();
    for (i, id) in cpus.iter().enumerate() {
        let model = id.model();
        let att = attribute(&OS_TOGGLES, 0xF16_2 + i as u64, policy, |params: &BootParams| {
            if quick {
                lebench::run_op(&model, params, lebench::LeBenchOp::GetPid).cycles_per_op
            } else {
                lebench::geomean(&lebench::run_suite(&model, params))
            }
        });
        bars.push((*id, att));
    }
    Figure2 { bars }
}

/// Renders the figure as a table: total overhead plus per-mitigation
/// slices, with 95% CIs (the paper's error bars).
pub fn render(f: &Figure2) -> String {
    let mut header = vec!["CPU".to_string(), "total".to_string()];
    if let Some((_, first)) = f.bars.first() {
        for s in &first.slices {
            header.push(s.name.to_string());
        }
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&hdr);
    for (id, att) in &f.bars {
        let mut row = vec![id.microarch().to_string(), pct(att.total)];
        for s in &att.slices {
            row.push(format!("{} ±{}", pct(s.overhead), pct(s.ci95)));
        }
        t.row(&row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_declines_across_intel_generations() {
        // The paper's headline: >30% on old Intel down to ~3% on new.
        let f = run(
            &[CpuId::Broadwell, CpuId::CascadeLake, CpuId::IceLakeServer],
            /* quick = */ true,
        );
        let totals: Vec<f64> = f.bars.iter().map(|(_, a)| a.total).collect();
        assert!(totals[0] > totals[1], "Broadwell > Cascade Lake");
        assert!(totals[1] > totals[2], "Cascade Lake > Ice Lake Server");
        assert!(totals[0] / totals[2].max(0.005) > 5.0, "roughly an order of magnitude");
    }

    #[test]
    fn pti_and_mds_dominate_on_broadwell() {
        let f = run(&[CpuId::Broadwell], true);
        let att = &f.bars[0].1;
        let find = |n: &str| att.slices.iter().find(|s| s.name.contains(n)).unwrap().overhead;
        assert!(find("Page Table") + find("MDS") > att.total * 0.6);
        let s = render(&f);
        assert!(s.contains("Broadwell"));
    }
}
