//! One driver per paper table/figure.
//!
//! Every driver returns a structured result plus a plain-text rendering,
//! so the `bench` crate's regeneration binaries, the examples, and
//! EXPERIMENTS.md all print from the same code.
//!
//! Drivers are *declarative*: each one enumerates its cells as an
//! [`crate::plan::ExperimentPlan`], hands the plan to an
//! [`crate::executor::Executor`] (worker pool + cross-experiment cache +
//! journal), and reduces the returned outcomes — applying noise seeded
//! from plan indices, never from the schedule — so results are
//! byte-identical for any `--jobs` value.
//!
//! | module | artifact |
//! |---|---|
//! | [`table1`] | Table 1 — default mitigations per CPU |
//! | [`table2`] | Table 2 — CPU inventory |
//! | [`figure2`] | Figure 2 — LEBench overhead attribution |
//! | [`figure3`] | Figure 3 — Octane slowdown attribution |
//! | [`tables3to8`] | Tables 3–8 — per-mitigation microbenchmarks |
//! | [`figure5`] | Figure 5 — SSBD slowdown on PARSEC |
//! | [`tables9and10`] | Tables 9/10 — the speculation matrix |
//! | [`vm`] | §4.4 — VM workloads (LEBench-in-VM, LFS) |
//! | [`eibrs_bimodal`] | §6.2.2 — bimodal kernel-entry latency |
//! | [`ablations`] | §7 what-ifs + design-choice ablations (beyond the paper's artifacts) |
//! | [`ebpf`] | the eBPF/kernel boundary (the paper's acknowledged gap) |
//! | [`smt`] | the §3.3 verw-vs-SMT-off trade-off behind Table 1's "Disable SMT" row |
//! | [`targeted`] | targeted Spectre-V1 hardening from branch-attackability analysis (beyond the paper) |

pub mod ablations;
pub mod ebpf;
pub mod smt;
pub mod eibrs_bimodal;
pub mod figure2;
pub mod figure3;
pub mod figure5;
pub mod table1;
pub mod table2;
pub mod targeted;
pub mod tables3to8;
pub mod tables9and10;
pub mod vm;
