//! Table 2: information about each evaluated CPU.

use cpu_models::CpuId;

use crate::report::TextTable;

/// Renders the CPU inventory (vendor, model, microarchitecture, power,
/// clock, cores), straight from the catalog.
pub fn render() -> String {
    let mut t = TextTable::new(&[
        "Vendor",
        "Model",
        "Microarchitecture",
        "Power (W)",
        "Clock (GHz)",
        "Cores",
    ]);
    for id in CpuId::ALL {
        let m = id.model();
        t.row(&[
            format!("{}", m.vendor),
            m.name.to_string(),
            format!("{} ({})", m.microarch, m.year),
            m.power_watts.to_string(),
            format!("{}", m.clock_ghz),
            m.cores.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_contains_all_rows() {
        let s = super::render();
        for name in [
            "E5-2640v4",
            "i7-6600U",
            "Xeon Silver 4210R",
            "i5-10351G1",
            "Xeon Gold 6354",
            "Ryzen 3 1200",
            "EPYC 7452",
            "Ryzen 5 5600X",
        ] {
            assert!(s.contains(name), "{name}");
        }
    }
}
