//! §6.2.2: the bimodal kernel-entry latency observed with eIBRS.
//!
//! "Most times they take a similar number of cycles ... but one in every
//! 8 to 20 or so entries they take an additional 210 cycles" — and the
//! slow entries correlate with the kernel-mode BTB being flushed. This
//! experiment measures per-syscall latency on a raw machine with an
//! empty kernel stub, classifies the entries into fast/slow modes, and
//! also verifies the flush correlation.

use uarch::isa::{Inst, Reg};
use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::ProgramBuilder;

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellSpec, CellValue, ExperimentPlan};

/// Latency histogram of kernel entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bimodal {
    /// Sorted distinct (latency, count) pairs.
    pub modes: Vec<(u64, u64)>,
    /// Interval between slow entries (0 when unimodal).
    pub slow_interval: u64,
    /// Extra cycles of a slow entry over a fast one (0 when unimodal).
    pub slow_extra: u64,
}

fn measure(model: &CpuModel, n: usize, ctx: &RunContext) -> Result<Bimodal, ExperimentError> {
    let mut m = Machine::new(model.clone());
    let mut pt = PageTable::new();
    pt.map_range(0x20_0000 - 0x4000, 0x200, 4, Pte::user(0));
    let table = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(table, 0, false)));
    m.set_reg(Reg::SP, 0x20_0000 - 64);

    // Enable eIBRS the way the kernel does (set once).
    if model.spec.eibrs {
        m.msrs
            .write(uarch::isa::msr_index::IA32_SPEC_CTRL, uarch::isa::spec_ctrl::IBRS)
            .map_err(|f| ExperimentError::fault(ctx, f, m.pc))?;
    }

    // Kernel stub: immediate sysret. User program: one syscall, halt.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Sysret);
    m.load_program(b.link(0x8000));
    m.syscall_entry = Some(0x8000);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Syscall);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));

    let mut lat = Vec::with_capacity(n);
    for _ in 0..n {
        m.mode = PrivMode::User;
        m.pc = 0x1000;
        let c0 = m.cycles();
        m.run(&mut NoEnv, 100).map_err(|e| ExperimentError::sim(ctx, e))?;
        lat.push(m.cycles() - c0);
    }

    let mut modes: Vec<(u64, u64)> = Vec::new();
    for l in &lat {
        match modes.iter_mut().find(|(v, _)| v == l) {
            Some((_, c)) => *c += 1,
            None => modes.push((*l, 1)),
        }
    }
    modes.sort_unstable();

    let (slow_interval, slow_extra) = if modes.len() >= 2 {
        let fast = modes[0].0;
        let slow = match modes.last() {
            Some((v, _)) => *v,
            None => fast,
        };
        let positions: Vec<usize> = lat
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == slow)
            .map(|(i, _)| i)
            .collect();
        let interval = if positions.len() >= 2 {
            (positions[1] - positions[0]) as u64
        } else {
            0
        };
        (interval, slow - fast)
    } else {
        (0, 0)
    };
    Ok(Bimodal { modes, slow_interval, slow_extra })
}

/// Measures `n` back-to-back syscall round trips on an eIBRS-style
/// machine and returns the latency histogram. One retryable cell per
/// CPU, encoded as integers (`[slow_interval, slow_extra, lat, count,
/// …]`) so the journal can replay it; `n` is part of the config because
/// it determines the histogram.
pub fn run(exec: &Executor, model: &CpuModel, n: usize) -> Result<Bimodal, ExperimentError> {
    let ctx = RunContext::new("eibrs-bimodal", model.microarch, "syscall", &format!("n={n}"));
    let mut plan = ExperimentPlan::new("eibrs-bimodal");
    let cell_ctx = ctx.clone();
    let model = model.clone();
    plan.push(CellSpec::new(ctx, 0, move |_| {
        let b = measure(&model, n, &cell_ctx)?;
        let mut v = vec![b.slow_interval, b.slow_extra];
        for (lat, count) in &b.modes {
            v.push(*lat);
            v.push(*count);
        }
        Ok(CellValue::Ints(v))
    }));
    let outcomes = exec.execute(&plan);
    let out = &outcomes[0];
    let v = out.ints()?;
    if v.len() < 2 || v.len() % 2 != 0 {
        return Err(ExperimentError::DegenerateStatistics {
            ctx: out.ctx.clone(),
            detail: format!("malformed bimodal encoding of length {}", v.len()),
        });
    }
    Ok(Bimodal {
        slow_interval: v[0],
        slow_extra: v[1],
        modes: v[2..].chunks(2).map(|c| (c[0], c[1])).collect(),
    })
}

/// Renders the histogram.
pub fn render(b: &Bimodal) -> String {
    let mut s = String::new();
    for (lat, count) in &b.modes {
        s.push_str(&format!("{lat:>6} cycles x{count}\n"));
    }
    if b.slow_extra > 0 {
        s.push_str(&format!(
            "slow entries every {} syscalls, +{} cycles\n",
            b.slow_interval, b.slow_extra
        ));
    } else {
        s.push_str("unimodal\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::{broadwell, cascade_lake, ice_lake_server};

    #[test]
    fn eibrs_parts_show_two_modes() {
        for model in [cascade_lake(), ice_lake_server()] {
            let b = run(&Executor::default(), &model, 128).unwrap();
            assert!(b.modes.len() >= 2, "{}: expected bimodal", model.microarch);
            // ~210 extra cycles, every 8-20 entries (§6.2.2).
            assert_eq!(b.slow_extra, 210, "{}", model.microarch);
            assert!(
                (8..=20).contains(&b.slow_interval),
                "{}: interval {}",
                model.microarch,
                b.slow_interval
            );
        }
    }

    #[test]
    fn non_eibrs_parts_are_unimodal() {
        let b = run(&Executor::default(), &broadwell(), 128).unwrap();
        assert_eq!(b.modes.len(), 1, "pre-eIBRS parts take constant time");
        assert_eq!(b.slow_extra, 0);
    }
}
