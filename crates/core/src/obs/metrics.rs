//! Prometheus-style text exposition of a sweep's observability stream.
//!
//! [`prometheus_text`] derives every counter from the raw [`Event`]
//! stream — *not* from [`HarnessStats`] — so comparing the exposition
//! against the harness's own counters (as `tests/trace_invariants.rs`
//! does) genuinely cross-checks the instrumentation instead of testing
//! a tautology. Histograms cover per-experiment wall clock and per-cell
//! queue latency.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

use crate::harness::{escape_json, HarnessStats};

use super::{Event, EventKind};

/// Bucket boundaries (seconds) for the queue-latency histogram.
const QUEUE_BUCKETS: [f64; 6] = [1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];
/// Bucket boundaries (seconds) for the per-experiment wall-clock
/// histogram.
const WALL_BUCKETS: [f64; 8] = [0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0];
/// Bucket boundaries (requests) for the server admission-queue depth
/// histogram, observed at each admission.
const DEPTH_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
/// Bucket boundaries (seconds) for the server end-to-end request
/// latency histogram (admission to response written).
const REQUEST_BUCKETS: [f64; 8] = [0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0];
/// Bucket boundaries (requests) for the pipeline-depth histogram:
/// outstanding requests on a connection as each request arrives.
const PIPELINE_BUCKETS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// A fixed-bucket cumulative histogram.
#[derive(Debug, Clone)]
struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Histogram {
        Histogram { bounds, counts: vec![0; bounds.len()], sum: 0.0, total: 0 }
    }

    fn observe(&mut self, v: f64) {
        for (i, b) in self.bounds.iter().enumerate() {
            if v <= *b {
                self.counts[i] += 1;
            }
        }
        self.sum += v;
        self.total += 1;
    }

    /// Writes `_bucket`/`_sum`/`_count` lines; `labels` is either empty
    /// or a `key="value",` fragment placed before `le`.
    fn expose(&self, out: &mut String, name: &str, labels: &str) {
        let bare = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", labels.trim_end_matches(','))
        };
        for (i, b) in self.bounds.iter().enumerate() {
            let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{b}\"}} {}", self.counts[i]);
        }
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {}", self.total);
        let _ = writeln!(out, "{name}_sum{bare} {}", self.sum);
        let _ = writeln!(out, "{name}_count{bare} {}", self.total);
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, "counter", help);
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the event stream (plus the harness's timing totals) as a
/// Prometheus text exposition.
pub fn prometheus_text(events: &[Event], stats: &HarnessStats) -> String {
    let mut simulated = 0u64;
    let mut failed = 0u64;
    let mut cached = 0u64;
    let mut replayed = 0u64;
    let mut retries = 0u64;
    let mut faults = 0u64;
    let mut watchdogs = 0u64;
    let mut plans = 0u64;
    let mut panics = 0u64;
    let mut journal_write_errors = 0u64;
    let mut breaker_tripped = 0u64;
    let mut breaker_skipped = 0u64;

    // Serving-layer (`regend`) families. `requests` counts admissions;
    // responses are grouped by (endpoint, status) where the endpoint is
    // the event's experiment field.
    let mut requests = 0u64;
    let mut rejected = 0u64;
    let mut artifact_cache_hits = 0u64;
    let mut coalesced = 0u64;
    let mut deadlines_expired = 0u64;
    let mut completed = 0u64;
    let mut responses: HashMap<(String, u16), u64> = HashMap::new();
    let mut depth_hist = Histogram::new(&DEPTH_BUCKETS);
    let mut request_hist = Histogram::new(&REQUEST_BUCKETS);

    // Keep-alive front-end families (PR 8): connection lifecycle and
    // pipelining, derived from the connection events the event loop
    // emits.
    let mut connections_opened = 0u64;
    let mut connections_closed = 0u64;
    let mut keepalive_requests = 0u64;
    let mut disconnects = 0u64;
    let mut idle_timeouts = 0u64;
    let mut pipeline_hist = Histogram::new(&PIPELINE_BUCKETS);

    // Fault-campaign families, grouped by survivability class.
    let mut campaigns = 0u64;
    let mut campaign_replayed = 0u64;
    let mut campaign_finished = 0u64;
    let mut campaign_classes: HashMap<&'static str, u64> = HashMap::new();

    // Cluster families, emitted by the sharded-serving proxy. BTreeMaps
    // keep label order deterministic without a sort pass.
    let mut shard_fetches: BTreeMap<(usize, bool), u64> = BTreeMap::new();
    let mut shard_failovers: BTreeMap<usize, u64> = BTreeMap::new();
    let mut shard_states: BTreeMap<usize, super::ShardState> = BTreeMap::new();
    let mut net_faults: HashMap<&'static str, u64> = HashMap::new();

    // Queue latency: pair each CellQueued with the next CellStarted for
    // the same cell key (FIFO per key; a re-executed plan can queue the
    // same key again later).
    let mut queued: HashMap<&str, VecDeque<Duration>> = HashMap::new();
    let mut queue_hist = Histogram::new(&QUEUE_BUCKETS);
    // Per-experiment wall clock: PlanStarted .. PlanFinished.
    let mut open_plans: HashMap<&str, Vec<Duration>> = HashMap::new();
    let mut wall: HashMap<&str, Histogram> = HashMap::new();

    for e in events {
        match &e.kind {
            EventKind::CellFinished { ok: true, .. } => simulated += 1,
            EventKind::CellFinished { ok: false, .. } => failed += 1,
            EventKind::CacheHit => cached += 1,
            EventKind::JournalReplay => replayed += 1,
            EventKind::Retry => retries += 1,
            EventKind::FaultInjected { .. } => faults += 1,
            EventKind::WatchdogFired => watchdogs += 1,
            EventKind::PanicCaught => panics += 1,
            EventKind::JournalWriteError => journal_write_errors += 1,
            EventKind::BreakerTripped => breaker_tripped += 1,
            EventKind::BreakerSkipped => breaker_skipped += 1,
            EventKind::RequestReceived { queue_depth } => {
                requests += 1;
                depth_hist.observe(*queue_depth as f64);
            }
            EventKind::RequestRejected => rejected += 1,
            EventKind::RequestCompleted { status, micros } => {
                completed += 1;
                *responses.entry((e.experiment.clone(), *status)).or_default() += 1;
                request_hist.observe(*micros as f64 / 1e6);
            }
            EventKind::ArtifactCacheHit => artifact_cache_hits += 1,
            EventKind::FlightCoalesced => coalesced += 1,
            EventKind::DeadlineExpired => deadlines_expired += 1,
            EventKind::ConnectionOpened => connections_opened += 1,
            EventKind::ConnectionClosed { requests } => {
                connections_closed += 1;
                keepalive_requests += requests;
            }
            EventKind::ClientDisconnected => disconnects += 1,
            EventKind::IdleTimeout => idle_timeouts += 1,
            EventKind::PipelineObserved { depth } => pipeline_hist.observe(*depth as f64),
            EventKind::CampaignStarted { .. } => campaigns += 1,
            EventKind::CampaignCoordinate { class, .. } => {
                *campaign_classes.entry(class.name()).or_default() += 1;
            }
            EventKind::CampaignReplayed => campaign_replayed += 1,
            EventKind::CampaignFinished => campaign_finished += 1,
            EventKind::ShardFetch { shard, ok } => {
                *shard_fetches.entry((*shard, *ok)).or_default() += 1;
            }
            EventKind::ShardStateChanged { shard, state } => {
                shard_states.insert(*shard, *state);
            }
            EventKind::ShardFailover { shard } => {
                *shard_failovers.entry(*shard).or_default() += 1;
            }
            EventKind::NetFaultInjected { fault } => {
                *net_faults.entry(fault.name()).or_default() += 1;
            }
            // Analysis totals are exposed from the process-wide
            // spec-taint counters below (the analysis also runs at
            // boot, outside any event-emitting driver); the event only
            // marks the trace.
            EventKind::SpecTaintAnalyzed { .. } => {}
            EventKind::CellQueued => {
                queued.entry(e.cell.as_str()).or_default().push_back(e.ts);
            }
            EventKind::CellStarted => {
                if let Some(ts) = queued.get_mut(e.cell.as_str()).and_then(VecDeque::pop_front)
                {
                    queue_hist.observe(secs(e.ts.saturating_sub(ts)));
                }
            }
            EventKind::PlanStarted { .. } => {
                open_plans.entry(e.experiment.as_str()).or_default().push(e.ts);
            }
            EventKind::PlanFinished => {
                plans += 1;
                if let Some(start) =
                    open_plans.get_mut(e.experiment.as_str()).and_then(Vec::pop)
                {
                    wall.entry(e.experiment.as_str())
                        .or_insert_with(|| Histogram::new(&WALL_BUCKETS))
                        .observe(secs(e.ts.saturating_sub(start)));
                }
            }
        }
    }

    let mut out = String::new();
    counter(
        &mut out,
        "regen_cells_simulated_total",
        "Cells simulated fresh (not cache or journal).",
        simulated,
    );
    counter(
        &mut out,
        "regen_cells_cached_total",
        "Cells served from the cross-experiment cache.",
        cached,
    );
    counter(
        &mut out,
        "regen_cells_replayed_total",
        "Cells replayed from a resume journal.",
        replayed,
    );
    counter(&mut out, "regen_retries_total", "Retry attempts (first attempts excluded).", retries);
    counter(&mut out, "regen_faults_injected_total", "Faults delivered by the fault plan.", faults);
    counter(
        &mut out,
        "regen_cells_failed_total",
        "Cells that failed permanently (retry budget exhausted).",
        failed,
    );
    counter(&mut out, "regen_watchdog_fired_total", "Wall-clock watchdog kills.", watchdogs);
    counter(&mut out, "regen_plans_total", "Experiment plans executed.", plans);
    counter(
        &mut out,
        "regen_panics_caught_total",
        "Compute-closure panics caught at the harness boundary.",
        panics,
    );
    counter(
        &mut out,
        "regen_journal_write_errors_total",
        "Journal appends/flushes/fsyncs that failed.",
        journal_write_errors,
    );
    counter(
        &mut out,
        "regen_breaker_tripped_total",
        "Experiments whose consecutive-panic circuit breaker opened.",
        breaker_tripped,
    );
    counter(
        &mut out,
        "regen_breaker_skipped_total",
        "Cells degraded unrun by an open panic circuit breaker.",
        breaker_skipped,
    );

    // Journal line classification comes from HarnessStats (it is an
    // open-time scan, not an event-stream phenomenon).
    header(&mut out, "regen_journal_stale_lines", "gauge", "Stale-seed journal lines skipped on resume.");
    let _ = writeln!(out, "regen_journal_stale_lines {}", stats.journal_stale);
    header(&mut out, "regen_journal_corrupt_lines", "gauge", "Checksum-failed journal lines skipped on resume.");
    let _ = writeln!(out, "regen_journal_corrupt_lines {}", stats.journal_corrupt);
    header(&mut out, "regen_journal_truncated_lines", "gauge", "Torn-tail journal lines skipped on resume.");
    let _ = writeln!(out, "regen_journal_truncated_lines {}", stats.journal_truncated);

    header(&mut out, "regen_sim_busy_seconds", "gauge", "Cumulative wall time simulating fresh cells.");
    let _ = writeln!(out, "regen_sim_busy_seconds {}", secs(stats.sim_time));
    header(&mut out, "regen_plan_wall_seconds", "gauge", "Cumulative wall time inside Executor::execute.");
    let _ = writeln!(out, "regen_plan_wall_seconds {}", secs(stats.plan_time));

    header(
        &mut out,
        "regen_queue_latency_seconds",
        "histogram",
        "Delay between a cell entering the worker queue and a worker starting it.",
    );
    queue_hist.expose(&mut out, "regen_queue_latency_seconds", "");

    header(
        &mut out,
        "regen_experiment_wall_seconds",
        "histogram",
        "Wall-clock time executing one experiment plan.",
    );
    let mut experiments: Vec<&&str> = wall.keys().collect();
    experiments.sort();
    for exp in experiments {
        let labels = format!("experiment=\"{}\",", escape_json(exp));
        wall[*exp].expose(&mut out, "regen_experiment_wall_seconds", &labels);
    }

    // Serving-layer families (all zero unless the events came from a
    // `regend` process).
    counter(
        &mut out,
        "regend_requests_total",
        "Connections admitted to the request queue.",
        requests,
    );
    counter(
        &mut out,
        "regend_rejected_total",
        "Connections rejected with 429 because the request queue was full.",
        rejected,
    );
    counter(
        &mut out,
        "regend_artifact_cache_hits_total",
        "Artifact requests served from the rendered-artifact memory cache.",
        artifact_cache_hits,
    );
    counter(
        &mut out,
        "regend_coalesced_total",
        "Requests coalesced onto a concurrent identical computation (single-flight).",
        coalesced,
    );
    counter(
        &mut out,
        "regend_deadline_expired_total",
        "Requests whose deadline expired before they could be served.",
        deadlines_expired,
    );
    header(
        &mut out,
        "regend_responses_total",
        "counter",
        "Responses written, by endpoint and HTTP status.",
    );
    let mut statuses: Vec<&(String, u16)> = responses.keys().collect();
    statuses.sort();
    for key in statuses {
        let _ = writeln!(
            out,
            "regend_responses_total{{endpoint=\"{}\",status=\"{}\"}} {}",
            escape_json(&key.0),
            key.1,
            responses[key]
        );
    }
    header(
        &mut out,
        "regend_in_flight",
        "gauge",
        "Requests admitted but not yet answered.",
    );
    let _ = writeln!(out, "regend_in_flight {}", requests.saturating_sub(completed));
    header(
        &mut out,
        "regend_queue_depth",
        "histogram",
        "Admission-queue depth observed as each request was admitted.",
    );
    depth_hist.expose(&mut out, "regend_queue_depth", "");
    header(
        &mut out,
        "regend_request_latency_seconds",
        "histogram",
        "End-to-end request latency: admission to response written.",
    );
    request_hist.expose(&mut out, "regend_request_latency_seconds", "");

    // Keep-alive front-end families (all zero for the pre-PR-8 model
    // where every connection carried exactly one request).
    counter(
        &mut out,
        "regend_keepalive_connections_total",
        "Client connections accepted by the event-driven front end.",
        connections_opened,
    );
    counter(
        &mut out,
        "regend_keepalive_closed_total",
        "Client connections closed (any reason).",
        connections_closed,
    );
    counter(
        &mut out,
        "regend_keepalive_requests_total",
        "Responses carried by closed connections (keep-alive reuse).",
        keepalive_requests,
    );
    counter(
        &mut out,
        "regend_disconnects_total",
        "Peers that vanished mid-request or mid-response.",
        disconnects,
    );
    counter(
        &mut out,
        "regend_idle_timeouts_total",
        "Connections reaped by the idle/stall deadline while holding partial state.",
        idle_timeouts,
    );
    header(
        &mut out,
        "regend_pipeline_depth",
        "histogram",
        "Outstanding requests on a connection as each request arrived (1 = serial).",
    );
    pipeline_hist.expose(&mut out, "regend_pipeline_depth", "");

    // Fault-campaign families (all zero unless the events came from a
    // `regen campaign` run).
    counter(
        &mut out,
        "regen_campaign_runs_total",
        "Fault campaigns started.",
        campaigns,
    );
    counter(
        &mut out,
        "regen_campaign_replayed_total",
        "Coordinates skipped because the campaign journal already had their verdict.",
        campaign_replayed,
    );
    counter(
        &mut out,
        "regen_campaign_finished_total",
        "Campaigns that reduced their outcomes into a survivability report.",
        campaign_finished,
    );
    header(
        &mut out,
        "regen_campaign_coordinates_total",
        "counter",
        "Fault coordinates executed and classified, by survivability class.",
    );
    for class in crate::campaign::SurvivalClass::ALL {
        let _ = writeln!(
            out,
            "regen_campaign_coordinates_total{{class=\"{}\"}} {}",
            class.name(),
            campaign_classes.get(class.name()).copied().unwrap_or(0)
        );
    }

    // Cluster families (all zero unless the events came from a sharded
    // `regend` proxy).
    header(
        &mut out,
        "regend_shard_fetches_total",
        "counter",
        "Proxy fetch attempts against shards, by shard and outcome.",
    );
    for ((shard, ok), n) in &shard_fetches {
        let _ = writeln!(
            out,
            "regend_shard_fetches_total{{shard=\"{shard}\",ok=\"{ok}\"}} {n}"
        );
    }
    header(
        &mut out,
        "regend_shard_failovers_total",
        "counter",
        "Requests the proxy answered by local recompute after giving up on a shard.",
    );
    for (shard, n) in &shard_failovers {
        let _ = writeln!(out, "regend_shard_failovers_total{{shard=\"{shard}\"}} {n}");
    }
    header(
        &mut out,
        "regend_shard_state",
        "gauge",
        "Last observed shard health state (0 = healthy, 1 = suspect, 2 = down).",
    );
    for (shard, state) in &shard_states {
        let _ = writeln!(out, "regend_shard_state{{shard=\"{shard}\"}} {}", state.gauge());
    }
    header(
        &mut out,
        "regend_net_faults_injected_total",
        "counter",
        "Network faults the proxy's plan injected into proxy-shard hops, by kind.",
    );
    for kind in crate::faultplan::NetFaultKind::ALL {
        let _ = writeln!(
            out,
            "regend_net_faults_injected_total{{kind=\"{}\"}} {}",
            kind.name(),
            net_faults.get(kind.name()).copied().unwrap_or(0)
        );
    }

    // Interpreter throughput families: process-wide totals published by
    // every `uarch::Machine` when a run or slice ends. Unlike the other
    // counters these do not come from the event stream — the interpreter
    // hot loop must not emit events — so they are sampled here at
    // exposition time.
    let (insts, transient_insts, transient_windows) = uarch::pmc::global::snapshot();
    counter(
        &mut out,
        "regen_uarch_instructions_total",
        "Committed instructions executed by all uarch machines in this process.",
        insts,
    );
    counter(
        &mut out,
        "regen_uarch_transient_instructions_total",
        "Transient (squashed) instructions executed inside speculation windows.",
        transient_insts,
    );
    counter(
        &mut out,
        "regen_uarch_transient_windows_total",
        "Transient-execution windows opened (mispredicts, faulting loads, SSB).",
        transient_windows,
    );

    // Branch-attackability analysis totals: process-wide counters the
    // `spec-taint` crate bumps on every analysis and hardening pass
    // (boot-time kernel text, BPF load, experiment corpus). Like the
    // interpreter family above, they are sampled at exposition time.
    let (scanned, flagged, fences) = spec_taint::counters::snapshot();
    counter(
        &mut out,
        "regen_spec_taint_branches_scanned_total",
        "Conditional branches classified by the spec-taint analysis in this process.",
        scanned,
    );
    counter(
        &mut out,
        "regen_spec_taint_branches_flagged_total",
        "Branches the analysis flagged attackable (Figure-1 gadget in the shadow).",
        flagged,
    );
    counter(
        &mut out,
        "regen_spec_taint_fences_inserted_total",
        "Hardening instructions inserted by spec-taint instrumentation passes.",
        fences,
    );
    out
}

/// Extracts the value of an unlabelled sample line (`<name> <value>`)
/// from an exposition — what the invariant tests use to compare the
/// metrics dump against [`HarnessStats`].
pub fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    let prefix = format!("{name} ");
    exposition
        .lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l[prefix.len()..].trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::super::{EventBus, EventKind, VirtualClock};
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_come_from_events_and_histograms_pair_up() {
        let bus = EventBus::with_clock(Arc::new(VirtualClock::new()));
        bus.emit("exp", "", "", 0, EventKind::PlanStarted { cells: 2 });
        bus.emit("exp", "exp/a", "a", 0, EventKind::CellQueued);
        bus.emit("exp", "exp/a", "a", 0, EventKind::CellStarted);
        bus.emit("exp", "exp/a", "a", 1, EventKind::Retry);
        bus.emit("exp", "exp/a", "a", 0, EventKind::CellFinished { ok: true, retries: 1 });
        bus.emit("exp", "exp/b", "b", 0, EventKind::CacheHit);
        bus.emit("exp", "", "", 0, EventKind::PlanFinished);
        let text = prometheus_text(&bus.snapshot(), &HarnessStats::default());
        assert_eq!(metric_value(&text, "regen_cells_simulated_total"), Some(1.0));
        assert_eq!(metric_value(&text, "regen_cells_cached_total"), Some(1.0));
        assert_eq!(metric_value(&text, "regen_retries_total"), Some(1.0));
        assert_eq!(metric_value(&text, "regen_plans_total"), Some(1.0));
        assert_eq!(metric_value(&text, "regen_queue_latency_seconds_count"), Some(1.0));
        assert!(text.contains("regen_experiment_wall_seconds_bucket{experiment=\"exp\",le=\"+Inf\"} 1"));
        assert!(text.contains("# TYPE regen_cells_simulated_total counter"));
    }

    #[test]
    fn keepalive_families_derive_from_connection_events() {
        let bus = EventBus::with_clock(Arc::new(VirtualClock::new()));
        bus.emit("regend", "", "", 0, EventKind::ConnectionOpened);
        bus.emit("regend", "", "", 0, EventKind::ConnectionOpened);
        bus.emit("regend", "/a", "", 0, EventKind::PipelineObserved { depth: 1 });
        bus.emit("regend", "/b", "", 0, EventKind::PipelineObserved { depth: 3 });
        bus.emit("regend", "", "", 0, EventKind::ClientDisconnected);
        bus.emit("regend", "", "", 0, EventKind::IdleTimeout);
        bus.emit("regend", "", "", 0, EventKind::ConnectionClosed { requests: 5 });
        bus.emit("regend", "", "", 0, EventKind::ConnectionClosed { requests: 2 });
        let text = prometheus_text(&bus.snapshot(), &HarnessStats::default());
        assert_eq!(metric_value(&text, "regend_keepalive_connections_total"), Some(2.0));
        assert_eq!(metric_value(&text, "regend_keepalive_closed_total"), Some(2.0));
        assert_eq!(metric_value(&text, "regend_keepalive_requests_total"), Some(7.0));
        assert_eq!(metric_value(&text, "regend_disconnects_total"), Some(1.0));
        assert_eq!(metric_value(&text, "regend_idle_timeouts_total"), Some(1.0));
        assert_eq!(metric_value(&text, "regend_pipeline_depth_count"), Some(2.0));
        assert!(text.contains("regend_pipeline_depth_bucket{le=\"2\"} 1"));
        assert!(text.contains("regend_pipeline_depth_bucket{le=\"4\"} 2"));
    }

    #[test]
    fn cluster_families_derive_from_shard_events() {
        use super::super::ShardState;
        use crate::faultplan::NetFaultKind;
        let bus = EventBus::with_clock(Arc::new(VirtualClock::new()));
        bus.emit("regend", "/cell/x", "", 0, EventKind::ShardFetch { shard: 1, ok: true });
        bus.emit("regend", "/cell/x", "", 1, EventKind::ShardFetch { shard: 1, ok: false });
        bus.emit("regend", "/cell/x", "", 1, EventKind::ShardFetch { shard: 1, ok: false });
        bus.emit(
            "regend",
            "",
            "",
            0,
            EventKind::ShardStateChanged { shard: 1, state: ShardState::Suspect },
        );
        bus.emit(
            "regend",
            "",
            "",
            0,
            EventKind::ShardStateChanged { shard: 1, state: ShardState::Down },
        );
        bus.emit("regend", "/cell/x", "", 0, EventKind::ShardFailover { shard: 1 });
        bus.emit(
            "regend",
            "/cell/x",
            "",
            0,
            EventKind::NetFaultInjected { fault: NetFaultKind::Drop },
        );
        let text = prometheus_text(&bus.snapshot(), &HarnessStats::default());
        assert!(text.contains("regend_shard_fetches_total{shard=\"1\",ok=\"true\"} 1"));
        assert!(text.contains("regend_shard_fetches_total{shard=\"1\",ok=\"false\"} 2"));
        assert!(text.contains("regend_shard_failovers_total{shard=\"1\"} 1"));
        // The gauge reflects the *last* state change, not a sum.
        assert!(text.contains("regend_shard_state{shard=\"1\"} 2"), "{text}");
        assert!(text.contains("regend_net_faults_injected_total{kind=\"drop\"} 1"));
        // Every net-fault label is always present, even at zero.
        assert!(text.contains("regend_net_faults_injected_total{kind=\"corrupt-byte\"} 0"));
    }

    #[test]
    fn uarch_counter_family_is_exposed() {
        let text = prometheus_text(&[], &HarnessStats::default());
        assert!(text.contains("# TYPE regen_uarch_instructions_total counter"));
        assert!(metric_value(&text, "regen_uarch_instructions_total").is_some());
        assert!(metric_value(&text, "regen_uarch_transient_instructions_total").is_some());
        assert!(metric_value(&text, "regen_uarch_transient_windows_total").is_some());
    }

    #[test]
    fn spec_taint_counter_family_is_exposed_and_tracks_analyses() {
        // Run one analysis so the scanned counter is provably live, then
        // check all three families are exposed with sane values.
        let report = spec_taint::analyze(
            0x1000,
            &[uarch::isa::Inst::Cmp(uarch::isa::Reg::R0, uarch::isa::Reg::R2)],
        );
        assert_eq!(report.scanned(), 0);
        let text = prometheus_text(&[], &HarnessStats::default());
        assert!(text.contains("# TYPE regen_spec_taint_branches_scanned_total counter"));
        let scanned = metric_value(&text, "regen_spec_taint_branches_scanned_total");
        let flagged = metric_value(&text, "regen_spec_taint_branches_flagged_total");
        let fences = metric_value(&text, "regen_spec_taint_fences_inserted_total");
        assert!(scanned.is_some() && flagged.is_some() && fences.is_some());
        assert!(flagged.unwrap() <= scanned.unwrap());
    }

    #[test]
    fn metric_value_ignores_labelled_lines() {
        let text = "a_bucket{le=\"1\"} 3\na 7\n";
        assert_eq!(metric_value(text, "a"), Some(7.0));
        assert_eq!(metric_value(text, "missing"), None);
    }
}
