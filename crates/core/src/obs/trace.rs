//! Chrome trace-event export: one lane per executor worker.
//!
//! [`chrome_trace_json`] renders an [`Event`] stream as the Trace Event
//! Format consumed by Perfetto and `chrome://tracing`: each
//! `CellStarted`/`CellFinished` pair becomes a complete (`"X"`) span on
//! its worker's lane, plan executions become spans on a dedicated
//! `plans` lane, and queue/cache/retry/fault/watchdog events become
//! instant (`"i"`) marks. Timestamps are microseconds from the bus
//! clock's epoch.
//!
//! The module also carries a dependency-free JSON well-formedness
//! checker ([`validate_json`]) so the trace-invariant tests can prove
//! the emitted file parses without pulling in a JSON library.

use crate::harness::escape_json;

use super::{Event, EventKind};

/// The synthetic lane (`tid`) plan-level spans are drawn on, far above
/// any plausible worker count.
pub const PLAN_LANE: usize = 1_000_000;

fn micros(e: &Event) -> u128 {
    e.ts.as_nanos() / 1_000
}

fn push_meta(out: &mut String, tid: usize, name: &str) {
    out.push_str(&format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    ));
}

/// Renders the event stream as Chrome trace-event JSON.
///
/// The output is a single object `{"displayTimeUnit":"ms",
/// "traceEvents":[...]}`. Unpaired opens (a sweep snapshotted
/// mid-flight) are dropped rather than emitted as dangling begin
/// events, so the file always loads.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut records: Vec<String> = Vec::new();

    // Lane metadata: one named lane per worker seen, plus the plan lane.
    let mut workers: Vec<usize> = events
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::CellStarted | EventKind::CellFinished { .. })
        })
        .map(|e| e.worker)
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for w in &workers {
        let mut s = String::new();
        push_meta(&mut s, *w, &format!("worker {w}"));
        records.push(s);
    }
    if events.iter().any(|e| matches!(e.kind, EventKind::PlanStarted { .. })) {
        let mut s = String::new();
        push_meta(&mut s, PLAN_LANE, "plans");
        records.push(s);
    }

    // Pair spans. Workers run one cell at a time and plans are executed
    // sequentially per executor, so a per-lane "open event" slot
    // suffices; the invariant tests assert exactly this discipline.
    let mut open_cell: std::collections::HashMap<usize, &Event> = std::collections::HashMap::new();
    let mut open_plan: Vec<&Event> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::CellStarted => {
                open_cell.insert(e.worker, e);
            }
            EventKind::CellFinished { ok, retries } => {
                if let Some(start) = open_cell.remove(&e.worker) {
                    let dur = micros(e).saturating_sub(micros(start)).max(1);
                    records.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"cell\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\
                         \"experiment\":\"{}\",\"cell\":\"{}\",\"ok\":{},\"retries\":{}}}}}",
                        escape_json(&start.content_key),
                        micros(start),
                        dur,
                        e.worker,
                        escape_json(&e.experiment),
                        escape_json(&e.cell),
                        ok,
                        retries
                    ));
                }
            }
            EventKind::PlanStarted { cells } => {
                let _ = cells;
                open_plan.push(e);
            }
            EventKind::PlanFinished => {
                if let Some(start) = open_plan.pop() {
                    let dur = micros(e).saturating_sub(micros(start)).max(1);
                    let cells = match start.kind {
                        EventKind::PlanStarted { cells } => cells,
                        _ => 0,
                    };
                    records.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"plan\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":1,\"tid\":{PLAN_LANE},\
                         \"args\":{{\"cells\":{cells}}}}}",
                        escape_json(&start.experiment),
                        micros(start),
                        dur
                    ));
                }
            }
            EventKind::CellQueued
            | EventKind::CacheHit
            | EventKind::JournalReplay
            | EventKind::Retry
            | EventKind::FaultInjected { .. }
            | EventKind::WatchdogFired
            | EventKind::PanicCaught
            | EventKind::JournalWriteError
            | EventKind::BreakerTripped
            | EventKind::BreakerSkipped
            | EventKind::RequestReceived { .. }
            | EventKind::RequestRejected
            | EventKind::RequestCompleted { .. }
            | EventKind::ArtifactCacheHit
            | EventKind::FlightCoalesced
            | EventKind::DeadlineExpired
            | EventKind::ConnectionOpened
            | EventKind::ConnectionClosed { .. }
            | EventKind::ClientDisconnected
            | EventKind::IdleTimeout
            | EventKind::PipelineObserved { .. }
            | EventKind::CampaignStarted { .. }
            | EventKind::CampaignCoordinate { .. }
            | EventKind::CampaignReplayed
            | EventKind::CampaignFinished
            | EventKind::ShardFetch { .. }
            | EventKind::ShardStateChanged { .. }
            | EventKind::ShardFailover { .. }
            | EventKind::NetFaultInjected { .. }
            | EventKind::SpecTaintAnalyzed { .. } => {
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
                     \"pid\":1,\"tid\":{},\"args\":{{\"cell\":\"{}\",\"attempt\":{}}}}}",
                    e.kind.name(),
                    e.kind.name(),
                    micros(e),
                    e.worker,
                    escape_json(&e.cell),
                    e.attempt
                ));
            }
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        records.join(",\n")
    )
}

/// Checks that `s` is exactly one well-formed JSON value (plus trailing
/// whitespace). Hand-rolled — the workspace carries no JSON library —
/// and strict enough to catch the failure modes a hand-built exporter
/// can produce: unbalanced brackets, bad escapes, trailing commas,
/// unquoted keys.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EventBus, EventKind, VirtualClock};
    use super::*;
    use std::sync::Arc;

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\":[1,2.5,-3e4,\"x\\n\",true,null]}").is_ok());
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("{\"bad\":\"\\x\"}").is_err());
    }

    #[test]
    fn spans_pair_and_json_is_valid() {
        let bus = EventBus::with_clock(Arc::new(VirtualClock::new()));
        bus.emit("exp", "", "", 0, EventKind::PlanStarted { cells: 1 });
        bus.emit("exp", "exp/c/w", "c/w", 0, EventKind::CellQueued);
        bus.emit("exp", "exp/c/w", "c/w", 0, EventKind::CellStarted);
        bus.emit("exp", "exp/c/w", "c/w", 1, EventKind::Retry);
        bus.emit("exp", "exp/c/w", "c/w", 0, EventKind::CellFinished { ok: true, retries: 1 });
        bus.emit("exp", "", "", 0, EventKind::PlanFinished);
        let json = chrome_trace_json(&bus.snapshot());
        validate_json(&json).expect("trace must be well-formed JSON");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2, "one cell span, one plan span");
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2, "queued + retry instants");
        assert!(json.contains("\"tid\":1000000"), "plan lane present");
    }

    #[test]
    fn unpaired_open_is_dropped() {
        let bus = EventBus::with_clock(Arc::new(VirtualClock::new()));
        bus.emit("exp", "exp/c/w", "c/w", 0, EventKind::CellStarted);
        let json = chrome_trace_json(&bus.snapshot());
        validate_json(&json).expect("still valid");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0);
    }
}
