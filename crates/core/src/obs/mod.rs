//! Executor observability: a structured event bus plus export sinks.
//!
//! The paper's contribution is *measurement you can trust*; PR 2's
//! executor made measurement fast but opaque. This module makes every
//! cell's lifecycle observable without touching any measured value:
//!
//! * an [`EventBus`] collects structured [`Event`]s — cell queued /
//!   started / finished / cache-hit / journal-replay / retry /
//!   fault-injected / watchdog-fired — each carrying the experiment,
//!   cell key, content key, worker id, attempt, and a monotonic
//!   timestamp from a swappable [`Clock`];
//! * [`trace`] renders the bus as Chrome trace-event JSON (one lane per
//!   worker, loadable in Perfetto / `chrome://tracing`);
//! * [`metrics`] renders it as a Prometheus-style text exposition whose
//!   counters cross-check [`crate::harness::HarnessStats`].
//!
//! Recording is observational only: the executor emits events *after*
//! computing values, the bus never feeds back into scheduling, and the
//! same seed renders byte-identical artifacts with the bus attached or
//! not (pinned by `tests/trace_invariants.rs`).
//!
//! **Lock discipline.** Events are fully built (timestamp taken, keys
//! cloned) before the bus lock is acquired, so the critical section is
//! a single `Vec::push`. The bus lock is never held while any other
//! lock (cache, stats, journal) is taken.

pub mod clock;
pub mod metrics;
pub mod trace;

use std::cell::Cell as StdCell;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::faultplan::FaultKind;
use crate::harness::lock;

pub use clock::{Clock, SystemClock, VirtualClock};

thread_local! {
    /// The executor worker lane the current thread is running cells
    /// for. The scheduler / reduce path (and every thread outside the
    /// pool) reports lane 0.
    static CURRENT_WORKER: StdCell<usize> = const { StdCell::new(0) };
}

/// Tags the current thread as executor worker `worker` for subsequent
/// event emission. Called by the executor when a pool thread starts.
pub fn set_current_worker(worker: usize) {
    CURRENT_WORKER.with(|c| c.set(worker));
}

/// The worker lane recorded on events emitted from this thread.
pub fn current_worker() -> usize {
    CURRENT_WORKER.with(|c| c.get())
}

/// What happened to a cell (or a plan) at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An [`crate::plan::ExperimentPlan`] entered the executor.
    PlanStarted {
        /// Number of cells in the plan.
        cells: usize,
    },
    /// The plan's outcomes were handed back in plan order.
    PlanFinished,
    /// A fresh cell was placed on the worker queue.
    CellQueued,
    /// A worker began simulating the cell (span open).
    CellStarted,
    /// The worker finished the cell (span close).
    CellFinished {
        /// Whether the cell produced a value (false = permanent failure).
        ok: bool,
        /// Extra attempts the harness needed.
        retries: u32,
    },
    /// The cell was served from the cross-experiment cache.
    CacheHit,
    /// The cell was replayed from a resume journal.
    JournalReplay,
    /// The harness is re-attempting the cell (attempt > 0).
    Retry,
    /// The fault plan injected a failure into this attempt.
    FaultInjected {
        /// The injected failure kind.
        fault: FaultKind,
    },
    /// The harness's wall-clock deadline killed a completed-but-late
    /// attempt.
    WatchdogFired,
    /// A compute closure panicked and the unwind was caught at the
    /// harness boundary.
    PanicCaught,
    /// A journal append/flush/fsync failed; the cell will re-run on
    /// resume.
    JournalWriteError,
    /// An experiment crossed its consecutive-panic threshold; its
    /// remaining cells degrade without burning retries.
    BreakerTripped,
    /// A cell was short-circuited (degraded unrun) by an open breaker.
    BreakerSkipped,

    // Serving-layer kinds, emitted by `regend` (crates/serve). The
    // `cell` field carries the request path; `experiment` is the
    // artifact or endpoint being served.
    /// A connection was admitted to the server's bounded request queue;
    /// `queue_depth` is the depth right after admission.
    RequestReceived {
        /// Queue depth including this request.
        queue_depth: usize,
    },
    /// A connection was rejected at admission (HTTP 429 + `Retry-After`)
    /// because the request queue was full.
    RequestRejected,
    /// A response was fully written back to the client.
    RequestCompleted {
        /// The HTTP status code sent.
        status: u16,
        /// End-to-end latency (admission to response written) in
        /// microseconds, measured by the serving worker.
        micros: u64,
    },
    /// An artifact request was served from the rendered-artifact memory
    /// cache without touching the executor.
    ArtifactCacheHit,
    /// A request was coalesced onto a concurrent identical computation
    /// (single-flight follower: it waited, computed nothing).
    FlightCoalesced,
    /// A request's deadline expired before it could be served; it was
    /// answered with an error instead of stale or partial data.
    DeadlineExpired,
    /// A client connection was accepted by the event-driven front end
    /// (keep-alive: one connection now carries many requests).
    ConnectionOpened,
    /// A connection was closed (any reason); `requests` is how many
    /// responses it carried — the keep-alive reuse factor.
    ConnectionClosed {
        /// Responses completed on this connection over its lifetime.
        requests: u64,
    },
    /// A peer vanished mid-request or mid-response (reset, or EOF with
    /// work still owed); its slot was freed immediately.
    ClientDisconnected,
    /// A connection was reaped by the idle/stall deadline while holding
    /// partial state (half a request, or an undrained response).
    IdleTimeout,
    /// One request was parsed; `depth` counts the requests outstanding
    /// on its connection including itself (1 = no pipelining).
    PipelineObserved {
        /// Outstanding requests on the connection, this one included.
        depth: usize,
    },

    // Fault-campaign kinds, emitted by the campaign driver. The
    // `experiment` field carries the campaign label; `cell` carries the
    // coordinate id for per-coordinate kinds.
    /// A fault campaign began; `coordinates` is the number it will
    /// explore (after sampling and resume-skipping).
    CampaignStarted {
        /// Coordinates left to execute in this run.
        coordinates: usize,
    },
    /// One coordinate's perturbed sweep was executed and classified.
    CampaignCoordinate {
        /// The fault kind that was injected.
        fault: FaultKind,
        /// The survivability verdict.
        class: crate::campaign::SurvivalClass,
    },
    /// A coordinate was skipped because the campaign journal already
    /// had its verdict (resume).
    CampaignReplayed,
    /// The campaign reduced its outcomes into the survivability report.
    CampaignFinished,

    // Cluster kinds, emitted by the sharded-serving proxy. The `cell`
    // field carries the request path of the hop (or probe).
    /// The proxy completed one fetch attempt against a shard.
    ShardFetch {
        /// Index of the shard the hop targeted.
        shard: usize,
        /// Whether the fetch returned a verified response.
        ok: bool,
    },
    /// A shard's health state machine moved to a new state.
    ShardStateChanged {
        /// Index of the shard whose state changed.
        shard: usize,
        /// The state it moved to.
        state: ShardState,
    },
    /// The proxy gave up on a shard for one request and recomputed the
    /// answer locally (failover; bytes stay identical by construction).
    ShardFailover {
        /// Index of the shard that was failed over.
        shard: usize,
    },
    /// The proxy's network fault plan injected a failure into a hop.
    NetFaultInjected {
        /// The injected network failure kind.
        fault: crate::faultplan::NetFaultKind,
    },

    // Branch-analysis kinds, emitted by the `targeted` experiment
    // driver. The `experiment` field carries the driver name.
    /// The spec-taint branch-attackability analysis classified a
    /// program set; counts are summed over every program analysed.
    SpecTaintAnalyzed {
        /// Conditional branches the analysis classified.
        scanned: usize,
        /// Branches flagged attackable (hardened under `targeted`).
        flagged: usize,
    },
}

impl EventKind {
    /// Short stable name, used by the sinks.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PlanStarted { .. } => "plan_started",
            EventKind::PlanFinished => "plan_finished",
            EventKind::CellQueued => "cell_queued",
            EventKind::CellStarted => "cell_started",
            EventKind::CellFinished { .. } => "cell_finished",
            EventKind::CacheHit => "cache_hit",
            EventKind::JournalReplay => "journal_replay",
            EventKind::Retry => "retry",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::WatchdogFired => "watchdog_fired",
            EventKind::PanicCaught => "panic_caught",
            EventKind::JournalWriteError => "journal_write_error",
            EventKind::BreakerTripped => "breaker_tripped",
            EventKind::BreakerSkipped => "breaker_skipped",
            EventKind::RequestReceived { .. } => "request_received",
            EventKind::RequestRejected => "request_rejected",
            EventKind::RequestCompleted { .. } => "request_completed",
            EventKind::ArtifactCacheHit => "artifact_cache_hit",
            EventKind::FlightCoalesced => "flight_coalesced",
            EventKind::DeadlineExpired => "deadline_expired",
            EventKind::ConnectionOpened => "connection_opened",
            EventKind::ConnectionClosed { .. } => "connection_closed",
            EventKind::ClientDisconnected => "client_disconnected",
            EventKind::IdleTimeout => "idle_timeout",
            EventKind::PipelineObserved { .. } => "pipeline_observed",
            EventKind::CampaignStarted { .. } => "campaign_started",
            EventKind::CampaignCoordinate { .. } => "campaign_coordinate",
            EventKind::CampaignReplayed => "campaign_replayed",
            EventKind::CampaignFinished => "campaign_finished",
            EventKind::ShardFetch { .. } => "shard_fetch",
            EventKind::ShardStateChanged { .. } => "shard_state_changed",
            EventKind::ShardFailover { .. } => "shard_failover",
            EventKind::NetFaultInjected { .. } => "net_fault_injected",
            EventKind::SpecTaintAnalyzed { .. } => "spec_taint_analyzed",
        }
    }
}

/// The health state of one shard, as judged by the proxy's probe loop
/// plus passive fetch outcomes. The machine is deliberately small:
/// one failure makes a shard *suspect* (still routed to, retried
/// harder), three consecutive failures make it *down* (skipped —
/// requests fail over to local recompute immediately), and any success
/// snaps it back to *healthy*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardState {
    /// Last probe/fetch succeeded; routed to normally.
    Healthy,
    /// At least one recent failure; routed to, but treated warily.
    Suspect,
    /// Consecutive-failure threshold crossed; fail over without trying.
    Down,
}

impl ShardState {
    /// Every state, in escalation order.
    pub const ALL: [ShardState; 3] = [ShardState::Healthy, ShardState::Suspect, ShardState::Down];

    /// Stable name, used by `/healthz` JSON and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            ShardState::Healthy => "healthy",
            ShardState::Suspect => "suspect",
            ShardState::Down => "down",
        }
    }

    /// Numeric gauge value for the Prometheus exposition
    /// (0 = healthy, 1 = suspect, 2 = down).
    pub fn gauge(self) -> u64 {
        match self {
            ShardState::Healthy => 0,
            ShardState::Suspect => 1,
            ShardState::Down => 2,
        }
    }
}

impl std::fmt::Display for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured observation. Plan-level events leave `cell` and
/// `content_key` empty.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic timestamp from the bus's [`Clock`].
    pub ts: Duration,
    /// Experiment driver name (e.g. `"figure2"`).
    pub experiment: String,
    /// Full cell key (`experiment/cpu/workload/[config]`).
    pub cell: String,
    /// Content-addressed key (`cpu/workload/[config]`).
    pub content_key: String,
    /// Executor worker lane the event was emitted from.
    pub worker: usize,
    /// 0-based attempt index the event refers to.
    pub attempt: u32,
    /// What happened.
    pub kind: EventKind,
}

/// Collects [`Event`]s from the executor and harness.
///
/// Shared by `Arc` between the executor, its harness, and whoever wants
/// to export the stream afterwards. `Sync`; see the module docs for the
/// lock discipline that keeps recording cheap.
#[derive(Debug)]
pub struct EventBus {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<Event>>,
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new()
    }
}

impl EventBus {
    /// A bus over the [`SystemClock`].
    pub fn new() -> EventBus {
        EventBus::with_clock(Arc::new(SystemClock::new()))
    }

    /// A bus over an explicit clock (tests pass a [`VirtualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> EventBus {
        EventBus { clock, events: Mutex::new(Vec::new()) }
    }

    /// A reading of the bus clock (what event timestamps are relative
    /// to).
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Records one event. The worker lane is taken from the calling
    /// thread's tag (see [`set_current_worker`]).
    pub fn emit(
        &self,
        experiment: &str,
        cell: &str,
        content_key: &str,
        attempt: u32,
        kind: EventKind,
    ) {
        let event = Event {
            ts: self.clock.now(),
            experiment: experiment.to_string(),
            cell: cell.to_string(),
            content_key: content_key.to_string(),
            worker: current_worker(),
            attempt,
            kind,
        };
        lock(&self.events).push(event);
    }

    /// A snapshot of every event recorded so far, in emission order.
    pub fn snapshot(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        lock(&self.events).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_worker_and_virtual_timestamps() {
        let bus = EventBus::with_clock(Arc::new(VirtualClock::new()));
        set_current_worker(3);
        bus.emit("exp", "exp/c/w", "c/w", 0, EventKind::CellStarted);
        bus.emit("exp", "exp/c/w", "c/w", 0, EventKind::CellFinished { ok: true, retries: 0 });
        set_current_worker(0);
        let events = bus.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].worker, 3);
        assert_eq!(events[0].kind, EventKind::CellStarted);
        assert!(events[1].ts > events[0].ts, "virtual clock ticks every read");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::CellQueued.name(), "cell_queued");
        assert_eq!(
            EventKind::FaultInjected { fault: FaultKind::Timeout }.name(),
            "fault_injected"
        );
    }
}
