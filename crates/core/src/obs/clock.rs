//! Time sources for the observability layer.
//!
//! Every [`crate::obs::Event`] carries a monotonic timestamp taken from
//! a [`Clock`]. Production sweeps use the [`SystemClock`] (a
//! `std::time::Instant` epoch); tests swap in a [`VirtualClock`] they
//! can drive deterministically, so span-pairing and monotonicity
//! invariants can be asserted without depending on real scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source. Implementations must never go backwards:
/// two `now()` calls observed in program order on one thread must
/// return non-decreasing durations.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// Wall-clock time since construction, backed by `Instant`.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> SystemClock {
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A deterministic clock for tests.
///
/// Every `now()` read ticks the clock forward by one microsecond, so
/// no two events ever share a timestamp and per-worker monotonicity is
/// a real (checkable) property rather than an accident of timer
/// resolution. Tests can additionally [`VirtualClock::advance`] time by
/// arbitrary amounts to model slow cells.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at its epoch (t = 0).
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advances the clock by `d` without producing a reading.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        // fetch_add returns the pre-tick value; each reader then leaves
        // the clock 1µs later for the next one.
        Duration::from_nanos(self.nanos.fetch_add(1_000, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_ticks_and_advances() {
        let c = VirtualClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b > a, "every read must tick");
        c.advance(Duration::from_secs(5));
        assert!(c.now() >= Duration::from_secs(5));
    }
}
