//! The speculation probe: Figure 6's divider-counter technique, used to
//! produce Tables 9 and 10.
//!
//! The probe trains the branch target buffer toward a "victim target"
//! containing a divide instruction, then redirects the function pointer
//! to a harmless target and watches the `ARITH.DIVIDER_ACTIVE`
//! performance counter across the dispatch. If the counter moved, the
//! victim target ran *speculatively* — architectural state never shows
//! it. Training and victim dispatch can run in different privilege
//! modes, with or without an intervening `syscall`, and with IBRS on or
//! off, reproducing the paper's full matrix.
//!
//! Faithfulness note (Zen 3): the test dispatch deliberately enters the
//! shared branch sequence through the "pointer overwrite" step, exactly
//! as Figure 6's sketch does. On a part whose BTB lookup folds in exact
//! branch history (our Zen 3 model, per the paper's §6.2 hypothesis),
//! that entry-path difference alone defeats the poisoning — which is how
//! the paper's own harness came up empty on Zen 3.

use uarch::isa::{msr_index, spec_ctrl, Cond, Inst, Pmc, Reg, Width};
use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::ProgramBuilder;

use crate::harness::{ExperimentError, RunContext};

/// One cell of Table 9/10: attacker mode → victim mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeConfig {
    /// Mode the BTB is trained in.
    pub train: PrivMode,
    /// Mode the victim dispatch runs in.
    pub victim: PrivMode,
    /// Whether a `syscall`/`sysret` round trip separates training from
    /// the victim.
    pub intervening_syscall: bool,
    /// Whether `IA32_SPEC_CTRL.IBRS` is set throughout.
    pub ibrs: bool,
}

impl ProbeConfig {
    /// A stable label for journal keys and error context.
    pub fn label(&self) -> String {
        format!(
            "{:?}->{:?} {}syscall{}",
            self.train,
            self.victim,
            if self.intervening_syscall { "" } else { "no" },
            if self.ibrs { " ibrs" } else { "" }
        )
    }
}

/// Result of one probe run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The poisoned target executed speculatively (a ✓ in the table).
    Speculated,
    /// No speculative dispatch to the trained target (empty cell).
    Blocked,
    /// The configuration is not expressible (Zen has no IBRS).
    NotApplicable,
}

/// Code layout for the probe scene.
const VICTIM_TARGET: u64 = 0x5000;
const NOP_TARGET: u64 = 0x6000;
/// Training entry: BHB fill, then the shared dispatch tail.
const TRAIN_ENTRY: u64 = 0x1000;
/// Shared dispatch tail: pointer load + indirect call.
const TAIL: u64 = 0x2000;
/// Test entry: the pointer-overwrite step, then straight to the tail —
/// so the victim dispatch executes with recent history that differs from
/// every training run.
const TEST_ENTRY: u64 = 0x0800;
const SYSCALL_STUB: u64 = 0x7000;
/// Data page holding the function pointer.
const PTR_VADDR: u64 = 0x10_0000;
const STACK_TOP: u64 = 0x20_0000;

/// Runs the probe on the given CPU model and configuration.
pub fn run(model: &CpuModel, config: ProbeConfig) -> Result<ProbeResult, ExperimentError> {
    if config.ibrs && !model.spec.ibrs_supported {
        return Ok(ProbeResult::NotApplicable);
    }
    let ctx = RunContext::new("probe", model.microarch, &config.label(), "");
    let mut m = Machine::new(model.clone());

    // Address space: pointer page + stack, user-accessible (the paper
    // shares the page between attacker and victim so all 64 address bits
    // match, §6.1).
    let mut pt = PageTable::new();
    pt.map(PTR_VADDR, Pte::user(0x100));
    pt.map_range(STACK_TOP - 0x4000, 0x200, 4, Pte::user(0));
    let table = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(table, 0, false)));
    m.set_reg(Reg::SP, STACK_TOP - 64);

    // victim_target: `int c = 12345 / 6789;` then return (Figure 6).
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R6, 12345);
    b.mov_imm(Reg::R7, 6789);
    b.push(Inst::Div(Reg::R6, Reg::R7));
    b.push(Inst::Ret);
    m.load_program(b.link(VICTIM_TARGET));

    // nop_target: do nothing.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    m.load_program(b.link(NOP_TARGET));

    // The shared dispatch tail: reload the (clflushed) pointer and make
    // the indirect call. The rdpmc bracketing from Figure 6 is done by
    // the Rust driver, which reads the machine's counter bank directly —
    // identical information, less boilerplate.
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R9, PTR_VADDR);
    b.push(Inst::Clflush(Reg::R9));
    b.push(Inst::Load { dst: Reg::R10, base: Reg::R9, offset: 0, width: Width::B8 });
    b.push(Inst::CallInd(Reg::R10));
    b.push(Inst::Halt);
    m.load_program(b.link(TAIL));

    // divide_happened()'s training body: fill the branch history buffer,
    // then dispatch through the tail.
    let mut b = ProgramBuilder::new();
    let fill = b.new_label();
    b.mov_imm(Reg::R8, 128);
    b.bind(fill);
    b.push(Inst::SubImm(Reg::R8, 1));
    b.cmp_imm(Reg::R8, 0);
    b.jcc(Cond::Ne, fill);
    b.push(Inst::Jmp(TAIL));
    m.load_program(b.link(TRAIN_ENTRY));

    // Test entry: the "potentially overwrite the entry" step — a store to
    // the pointer, then the tail. The victim dispatch therefore executes
    // with recent branch history that differs from the training runs;
    // only history-conditioned BTBs (Zen 3) care.
    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R9, PTR_VADDR);
    b.mov_imm(Reg::R10, NOP_TARGET);
    b.push(Inst::Store { src: Reg::R10, base: Reg::R9, offset: 0, width: Width::B8 });
    // Drain the store buffer so the tail's pointer reload cannot
    // speculatively bypass the overwrite (that would be a Speculative
    // Store Bypass dispatch hijack — a real attack, but a different
    // experiment; see `attacks::ssb`).
    b.push(Inst::Mfence);
    b.push(Inst::Jmp(TAIL));
    m.load_program(b.link(TEST_ENTRY));

    // Minimal syscall stub for the intervening round trip.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Sysret);
    m.load_program(b.link(SYSCALL_STUB));
    m.syscall_entry = Some(SYSCALL_STUB);
    // And a tiny user program that performs the syscall.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Syscall);
    b.push(Inst::Halt);
    m.load_program(b.link(0x7800));

    if config.ibrs {
        m.mode = PrivMode::Kernel;
        m.msrs
            .write(msr_index::IA32_SPEC_CTRL, spec_ctrl::IBRS)
            .map_err(|f| ExperimentError::fault(&ctx, f, m.pc))?;
    }

    // Point the shared pointer at the victim and train.
    m.mem.write_u64(0x100 << 12, VICTIM_TARGET);
    for _ in 0..8 {
        m.bhb.clear();
        m.mode = config.train;
        m.pc = TRAIN_ENTRY;
        m.run(&mut NoEnv, 10_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
    }

    // Optional intervening syscall round trip (runs in user mode).
    if config.intervening_syscall {
        m.mode = PrivMode::User;
        m.pc = 0x7800;
        m.run(&mut NoEnv, 1_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
    }

    // Victim dispatch: enter through the overwrite step, in victim mode,
    // watching the divider counter.
    m.bhb.clear();
    m.mode = config.victim;
    m.pc = TEST_ENTRY;
    let before = m.pmc.read(Pmc::DividerActive);
    m.run(&mut NoEnv, 10_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
    let after = m.pmc.read(Pmc::DividerActive);

    Ok(if after > before {
        ProbeResult::Speculated
    } else {
        ProbeResult::Blocked
    })
}

/// The five columns of Tables 9/10, in the paper's order.
pub fn columns() -> [(&'static str, ProbeConfig); 5] {
    use PrivMode::{Kernel, User};
    let c = |train, victim, syscall| ProbeConfig {
        train,
        victim,
        intervening_syscall: syscall,
        ibrs: false,
    };
    [
        ("syscall user->kernel", c(User, Kernel, true)),
        ("syscall user->user", c(User, User, true)),
        ("syscall kernel->kernel", c(Kernel, Kernel, true)),
        ("nosyscall user->user", c(User, User, false)),
        ("nosyscall kernel->kernel", c(Kernel, Kernel, false)),
    ]
}

/// A full row (one CPU) of Table 9 (`ibrs = false`) or Table 10
/// (`ibrs = true`).
pub fn table_row(
    model: &CpuModel,
    ibrs: bool,
) -> Result<Vec<(&'static str, ProbeResult)>, ExperimentError> {
    columns()
        .into_iter()
        .map(|(name, mut cfg)| {
            cfg.ibrs = ibrs;
            run(model, cfg).map(|r| (name, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    fn speculated(model: &CpuModel, train: PrivMode, victim: PrivMode, ibrs: bool) -> bool {
        run(
            model,
            ProbeConfig { train, victim, intervening_syscall: train != victim, ibrs },
        )
        .unwrap()
            == ProbeResult::Speculated
    }

    #[test]
    fn table9_matches_paper() {
        use PrivMode::{Kernel, User};
        // Expected ✓ cells per Table 9 (IBRS disabled):
        // columns: u->k, u->u, k->k (same for both syscall variants).
        for id in CpuId::ALL {
            let m = id.model();
            let (uk, uu, kk) = match id {
                CpuId::Broadwell
                | CpuId::SkylakeClient
                | CpuId::Zen
                | CpuId::Zen2 => (true, true, true),
                CpuId::CascadeLake | CpuId::IceLakeClient | CpuId::IceLakeServer => {
                    (false, true, true)
                }
                CpuId::Zen3 => (false, false, false),
            };
            assert_eq!(speculated(&m, User, Kernel, false), uk, "{id} user->kernel");
            assert_eq!(speculated(&m, User, User, false), uu, "{id} user->user");
            assert_eq!(speculated(&m, Kernel, Kernel, false), kk, "{id} kernel->kernel");
        }
    }

    #[test]
    fn table10_matches_paper() {
        use PrivMode::{Kernel, User};
        for id in CpuId::ALL {
            let m = id.model();
            if id == CpuId::Zen {
                // Zen has no IBRS: every cell N/A.
                for (name, cfg) in columns() {
                    let mut cfg = cfg;
                    cfg.ibrs = true;
                    assert_eq!(run(&m, cfg).unwrap(), ProbeResult::NotApplicable, "{id} {name}");
                }
                continue;
            }
            let (uk, uu, kk) = match id {
                // Pre-Spectre IBRS blocks everything (§6.2.1).
                CpuId::Broadwell | CpuId::SkylakeClient => (false, false, false),
                CpuId::CascadeLake | CpuId::IceLakeServer => (false, true, true),
                // Ice Lake Client: kernel-mode prediction suppressed.
                CpuId::IceLakeClient => (false, true, false),
                // AMD IBRS blocks everything; Zen 3 is blocked regardless.
                CpuId::Zen2 | CpuId::Zen3 => (false, false, false),
                CpuId::Zen => unreachable!(),
            };
            assert_eq!(speculated(&m, User, Kernel, true), uk, "{id} user->kernel");
            assert_eq!(speculated(&m, User, User, true), uu, "{id} user->user");
            assert_eq!(speculated(&m, Kernel, Kernel, true), kk, "{id} kernel->kernel");
        }
    }

    #[test]
    fn kernel_to_user_matches_user_to_kernel() {
        // §6.2: "the same attacks processors vulnerable to the
        // user→kernel version were vulnerable to a kernel→user attack".
        use PrivMode::{Kernel, User};
        for id in CpuId::ALL {
            let m = id.model();
            assert_eq!(
                speculated(&m, Kernel, User, false),
                speculated(&m, User, Kernel, false),
                "{id}"
            );
        }
    }
}
