//! Fault-space exploration campaigns: search the injection space
//! instead of sampling it.
//!
//! [`crate::faultplan`] injects at hand-picked coordinates, so every
//! recovery proof so far covers exactly the faults somebody thought of.
//! A *campaign* closes that gap the way the paper replaced anecdotal
//! attack PoCs with a systematic sweep of the attack space: take a clean
//! reference sweep, enumerate **every** `(content-key, attempt,
//! fault-kind)` coordinate its cell set admits (or a seeded stratified
//! sample for large spaces), execute each coordinate as an independent
//! perturbed sweep through the unchanged executor/retry/breaker/fsck
//! machinery, and classify what came out:
//!
//! * [`SurvivalClass::Absorbed`] — the artifact bytes are identical to
//!   the reference; retry / fsck ate the fault whole.
//! * [`SurvivalClass::Degraded`] — the output differs but is correctly
//!   accounted as partial (`†`-bridged slices, `DEGRADED` reported).
//! * [`SurvivalClass::FailedLoud`] — an artifact failed with a typed
//!   error and a nonzero exit; noisy, but honest.
//! * [`SurvivalClass::SilentCorruption`] — the output differs from the
//!   reference while the sweep claims to be clean, **or** a damaged
//!   journal line would replay a wrong value on resume. Always a bug.
//!
//! This module is the pure half of the feature: coordinate enumeration,
//! deterministic stratified sampling, outcome classification, the
//! crash-safe campaign journal (so an interrupted campaign resumes),
//! and the byte-deterministic report. The sweep-running half lives in
//! the `bench` crate, which owns the artifact drivers.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};

use crate::faultplan::{FaultKind, FaultPlan, NetFaultKind, NetFaultPlan};
use crate::harness::{classify_line, escape_json, lock, JournalScan, LineClass};
use crate::persist::crc32;
use crate::plan::CellValue;
use std::sync::Mutex;

/// What the machinery did with one injected fault coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurvivalClass {
    /// Artifact bytes identical to the reference sweep: the fault was
    /// retried / recovered away completely.
    Absorbed,
    /// Output differs but is accounted: `†`-bridged slices and a
    /// DEGRADED verdict (exit 1).
    Degraded,
    /// An artifact failed outright with a typed error (exit 1); loud,
    /// attributable, recoverable by a re-run.
    FailedLoud,
    /// Output differs from the reference while the sweep claims to be
    /// clean (or resume state would silently replay a wrong value).
    /// Always a bug in the machinery, never an acceptable outcome.
    SilentCorruption,
}

impl SurvivalClass {
    /// Every class, in lattice order (best to worst).
    pub const ALL: [SurvivalClass; 4] = [
        SurvivalClass::Absorbed,
        SurvivalClass::Degraded,
        SurvivalClass::FailedLoud,
        SurvivalClass::SilentCorruption,
    ];

    /// Stable name used in the campaign journal, report, and metrics.
    pub fn name(self) -> &'static str {
        match self {
            SurvivalClass::Absorbed => "absorbed",
            SurvivalClass::Degraded => "degraded",
            SurvivalClass::FailedLoud => "failed-loud",
            SurvivalClass::SilentCorruption => "silent-corruption",
        }
    }

    /// Parses a stable name (the campaign journal reader).
    pub fn parse(s: &str) -> Option<SurvivalClass> {
        SurvivalClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for SurvivalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One point of the fault space: inject `kind` into the cell addressed
/// by `(content_key, seed)` for its first `attempt + 1` attempts.
///
/// The attempt axis makes retry depth part of the search: `attempt 0`
/// kills only the first try (one retry must absorb it), and
/// `attempt == retries - 1` kills every try (the cell fails permanently
/// and the degradation path is on trial). I/O-layer kinds have a single
/// coordinate per cell — a cell's value is journaled exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Coordinate {
    /// Content-addressed cell key (`cpu/workload/[config]`). Targeting
    /// the content key (not the per-experiment cell key) means the
    /// fault fires in whichever experiment computes the cell first —
    /// exactly where a real failure would land under the shared cache.
    pub content_key: String,
    /// The cell's seed, as recorded by the reference sweep.
    pub seed: u64,
    /// 0-based attempt depth: the injected rule fires `attempt + 1`
    /// times.
    pub attempt: u32,
    /// Which failure to inject.
    pub kind: FaultKind,
}

impl Coordinate {
    /// Canonical id: `kind:attempt:seed:content-key` (the key goes
    /// last because it may contain any character except a newline).
    pub fn id(&self) -> String {
        format!("{}:{}:{}:{}", self.kind.name(), self.attempt, self.seed, self.content_key)
    }

    /// Parses a canonical id back into a coordinate.
    pub fn parse_id(id: &str) -> Option<Coordinate> {
        let mut parts = id.splitn(4, ':');
        let kind = FaultKind::parse(parts.next()?)?;
        let attempt = parts.next()?.parse().ok()?;
        let seed = parts.next()?.parse().ok()?;
        let content_key = parts.next()?.to_string();
        if content_key.is_empty() {
            return None;
        }
        Some(Coordinate { content_key, seed, attempt, kind })
    }

    /// The fault plan that realises this coordinate: one targeted rule
    /// matching the content key, delivered `attempt + 1` times.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new().fail_cell(self.content_key.clone(), self.kind, Some(self.attempt + 1))
    }
}

impl fmt::Display for Coordinate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// Enumerates the full coordinate space of a cell set: every
/// `(cell, attempt, kind)` point, duplicate-free and in a canonical
/// order (cells sorted by key then seed; kinds in [`FaultKind::ALL`]
/// order; attempts ascending). Compute-path kinds get `retries`
/// attempt depths; I/O kinds get one (a cell journals once).
pub fn enumerate_coordinates(cells: &[(String, u64)], retries: u32) -> Vec<Coordinate> {
    let mut cells: Vec<(String, u64)> = cells.to_vec();
    cells.sort();
    cells.dedup();
    let retries = retries.max(1);
    let mut out = Vec::new();
    for (key, seed) in &cells {
        for kind in FaultKind::ALL {
            let depths = if kind.is_io() { 1 } else { retries };
            for attempt in 0..depths {
                out.push(Coordinate {
                    content_key: key.clone(),
                    seed: *seed,
                    attempt,
                    kind,
                });
            }
        }
    }
    out
}

/// Deterministic stratified sample of `n` coordinates from `space`,
/// decided by `seed`:
///
/// * strata are the fault kinds, so a small sample still exercises
///   every failure mode the space contains;
/// * per-stratum quotas are proportional with largest-remainder
///   rounding, so quotas sum to exactly `min(n, space.len())`;
/// * within a stratum, coordinates are ranked by a seeded hash of
///   their id — same seed, same sample, independent of how the caller
///   ordered the space;
/// * the result preserves the enumeration order of `space` (so the
///   report reads like a filtered full report).
pub fn stratified_sample(space: &[Coordinate], n: usize, seed: u64) -> Vec<Coordinate> {
    if n >= space.len() {
        return space.to_vec();
    }
    // Group indices by kind, preserving order.
    let mut strata: Vec<(FaultKind, Vec<usize>)> = Vec::new();
    for kind in FaultKind::ALL {
        let idx: Vec<usize> =
            (0..space.len()).filter(|&i| space[i].kind == kind).collect();
        if !idx.is_empty() {
            strata.push((kind, idx));
        }
    }
    // Largest-remainder quotas.
    let total = space.len();
    let mut quotas: Vec<usize> = Vec::with_capacity(strata.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(strata.len());
    let mut assigned = 0usize;
    for (s, (_, idx)) in strata.iter().enumerate() {
        let exact_num = (n as u128) * (idx.len() as u128);
        let q = (exact_num / total as u128) as usize;
        quotas.push(q.min(idx.len()));
        assigned += quotas[s];
        remainders.push((exact_num % total as u128, s));
    }
    // Hand out the remaining slots by remainder size (ties broken by
    // stratum order — deterministic).
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = n.saturating_sub(assigned);
    while left > 0 {
        let mut gave = false;
        for &(_, s) in &remainders {
            if left == 0 {
                break;
            }
            if quotas[s] < strata[s].1.len() {
                quotas[s] += 1;
                left -= 1;
                gave = true;
            }
        }
        if !gave {
            break;
        }
    }
    // Rank each stratum by seeded hash, take the quota, then restore
    // enumeration order.
    let mut picked: Vec<usize> = Vec::with_capacity(n);
    for (s, (_, idx)) in strata.iter().enumerate() {
        let mut ranked: Vec<(u64, usize)> = idx
            .iter()
            .map(|&i| (sample_hash(seed, &space[i].id()), i))
            .collect();
        ranked.sort();
        picked.extend(ranked.into_iter().take(quotas[s]).map(|(_, i)| i));
    }
    picked.sort_unstable();
    picked.into_iter().map(|i| space[i].clone()).collect()
}

/// FNV-1a + xorshift* hash of (seed, id) — the sampling rank.
fn sample_hash(seed: u64, id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut x = h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// What the campaign driver observed from one perturbed sweep, reduced
/// to the facts classification needs.
#[derive(Debug, Clone, Default)]
pub struct SweepObservation {
    /// The concatenated artifact renderings (the sweep's stdout).
    pub rendered: String,
    /// Artifacts that failed with a typed error.
    pub failed_artifacts: Vec<String>,
    /// Artifacts that rendered but carry degraded (`†`-bridged) slices.
    pub degraded_artifacts: Vec<String>,
    /// Extra attempts the harness spent across the sweep.
    pub retries: u64,
    /// Faults the plan actually delivered (0 means the coordinate never
    /// fired — e.g. a cell served from cache before its fault could).
    pub faults_injected: u64,
    /// Whether the perturbed sweep's journal, re-scanned after the
    /// sweep, shows the injected damage as detected (corrupt or torn
    /// lines counted) — the I/O-kind absorption proof.
    pub journal_damage_detected: bool,
    /// Whether any journal entry that would replay on resume differs
    /// from the reference value for the same (cell, seed) — the resume
    /// path's silent-corruption detector.
    pub journal_replay_mismatch: bool,
}

/// Classifies one coordinate's observation against the reference
/// rendering. The lattice is checked worst-first: a replay mismatch is
/// silent corruption even if the rendered bytes matched.
pub fn classify(reference: &str, obs: &SweepObservation) -> SurvivalClass {
    if obs.journal_replay_mismatch {
        return SurvivalClass::SilentCorruption;
    }
    if obs.rendered == reference
        && obs.failed_artifacts.is_empty()
        && obs.degraded_artifacts.is_empty()
    {
        return SurvivalClass::Absorbed;
    }
    if !obs.degraded_artifacts.is_empty() {
        return SurvivalClass::Degraded;
    }
    if !obs.failed_artifacts.is_empty() {
        return SurvivalClass::FailedLoud;
    }
    if obs.rendered == reference {
        // Bytes match and nothing failed or degraded — but the guard
        // above already returned Absorbed for that; reaching here means
        // inconsistent accounting, which is its own (loud) bug class.
        return SurvivalClass::Absorbed;
    }
    SurvivalClass::SilentCorruption
}

/// Scans a cell journal's text the way `Journal::open` would (without
/// printing warnings or touching the file), returning the per-class
/// line counts and the entries a resume would replay.
pub fn scan_journal_text(text: &str) -> (JournalScan, HashMap<(String, u64), CellValue>) {
    let mut scan = JournalScan::default();
    let mut entries = HashMap::new();
    let complete_tail = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let n = lines.len();
    for (i, line) in lines.iter().enumerate() {
        let is_last = i + 1 == n && !complete_tail;
        match classify_line(line, is_last) {
            LineClass::Valid(key, seed, v) => {
                scan.valid += 1;
                entries.insert((key, seed), v);
            }
            LineClass::Stale => scan.stale += 1,
            LineClass::TruncatedTail => scan.truncated += 1,
            LineClass::Corrupt => scan.corrupt += 1,
            LineClass::Header | LineClass::Blank => {}
        }
    }
    (scan, entries)
}

/// One classified coordinate, as recorded in the campaign journal and
/// the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinateOutcome {
    /// Which fault-space point.
    pub coord: Coordinate,
    /// The survivability verdict.
    pub class: SurvivalClass,
    /// Retries the perturbed sweep spent (deterministic for a fixed
    /// plan, so it is safe to include in the byte-pinned report).
    pub retries: u64,
    /// Faults the plan actually delivered.
    pub faults_injected: u64,
    /// A short deterministic note: the first failed or degraded
    /// artifact, or journal-damage accounting for I/O kinds.
    pub detail: String,
}

impl CoordinateOutcome {
    fn to_json(&self) -> String {
        format!(
            "{{\"coord\":\"{}\",\"kind\":\"{}\",\"attempt\":{},\"cell\":\"{}\",\"seed\":{},\
             \"class\":\"{}\",\"retries\":{},\"faults\":{},\"detail\":\"{}\"}}",
            escape_json(&self.coord.id()),
            self.coord.kind.name(),
            self.coord.attempt,
            escape_json(&self.coord.content_key),
            self.coord.seed,
            self.class.name(),
            self.retries,
            self.faults_injected,
            escape_json(&self.detail)
        )
    }
}

/// The header line a campaign journal starts with.
pub const CAMPAIGN_JOURNAL_HEADER: &str = "#regen-campaign v1";

/// Append-only, CRC-checksummed journal of classified coordinates, so
/// a campaign killed at coordinate 800 of 1000 resumes with 800 rows
/// replayed instead of re-running them. Line format mirrors the cell
/// journal's v2 framing (`c1 <crc32 lowercase-hex> <payload JSON>`);
/// damaged lines (the torn tail of a killed campaign) are skipped on
/// load and simply re-run.
#[derive(Debug)]
pub struct CampaignJournal {
    file: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl CampaignJournal {
    /// Opens (or creates) a campaign journal, returning the outcomes
    /// already on record. Damaged lines are counted, not fatal: a
    /// SIGKILLed campaign may leave a torn tail, and the coordinate it
    /// belonged to just re-runs.
    pub fn open(path: &Path) -> io::Result<(CampaignJournal, Vec<CoordinateOutcome>, u64)> {
        let mut replayed = Vec::new();
        let mut skipped = 0u64;
        let mut had_content = false;
        match std::fs::read_to_string(path) {
            Ok(text) => {
                had_content = !text.is_empty();
                for line in text.lines() {
                    let trimmed = line.trim_end_matches('\r');
                    if trimmed.trim().is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    match decode_campaign_line(trimmed) {
                        Some(outcome) => replayed.push(outcome),
                        None => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
        if !had_content {
            file.write_all(CAMPAIGN_JOURNAL_HEADER.as_bytes())?;
            file.write_all(b"\n")?;
            file.flush()?;
        }
        Ok((
            CampaignJournal { file: Mutex::new(file), path: path.to_path_buf() },
            replayed,
            skipped,
        ))
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one classified coordinate and flushes, so a kill right
    /// after costs at most the coordinate in flight.
    pub fn record(&self, outcome: &CoordinateOutcome) -> io::Result<()> {
        let payload = outcome.to_json();
        let line = format!("c1 {:08x} {}\n", crc32(payload.as_bytes()), payload);
        let mut file = lock(&self.file);
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Fsyncs the backing file (called once per coordinate batch).
    pub fn sync(&self) -> io::Result<()> {
        let mut file = lock(&self.file);
        file.flush()?;
        file.get_ref().sync_data()
    }
}

/// Decodes one `c1 <crc> <payload>` campaign-journal line.
fn decode_campaign_line(line: &str) -> Option<CoordinateOutcome> {
    let rest = line.strip_prefix("c1 ")?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    if crc_hex.len() != 8
        || !crc_hex.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    let declared = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(payload.as_bytes()) != declared {
        return None;
    }
    let coord = Coordinate::parse_id(&extract_str(payload, "coord")?)?;
    let class = SurvivalClass::parse(&extract_str(payload, "class")?)?;
    let retries = extract_u64(payload, "retries")?;
    let faults_injected = extract_u64(payload, "faults")?;
    let detail = extract_str(payload, "detail")?;
    Some(CoordinateOutcome { coord, class, retries, faults_injected, detail })
}

/// Extracts a string field from the flat, trusted-shape JSON the
/// campaign journal writes (same conventions as the cell journal: the
/// writer escapes only `"` `\` and control characters).
fn extract_str(payload: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = payload.find(&needle)? + needle.len();
    let bytes = payload.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                let next = *bytes.get(i + 1)?;
                match next {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'u' => {
                        let hex = payload.get(i + 2..i + 6)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 2;
            }
            _ => {
                let c = payload[i..].chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

/// Extracts an unsigned integer field from a flat JSON payload.
fn extract_u64(payload: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let start = payload.find(&needle)? + needle.len();
    let digits: String =
        payload[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The reduced verdict of a whole campaign: every classified
/// coordinate plus the inputs that make the report reproducible.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Artifact names the sweeps regenerated, in paper order.
    pub artifacts: Vec<String>,
    /// Whether the quick workload variants were used.
    pub quick: bool,
    /// The retry budget (attempts per cell) — the attempt-axis depth.
    pub retries: u32,
    /// Sampling seed (meaningful only when `sample` is set).
    pub seed: u64,
    /// Stratified-sample size, if the space was sampled.
    pub sample: Option<usize>,
    /// Distinct cells the reference sweep recorded.
    pub cells: usize,
    /// Size of the full coordinate space (before sampling).
    pub space: usize,
    /// Classified coordinates, in enumeration order.
    pub outcomes: Vec<CoordinateOutcome>,
}

impl CampaignReport {
    /// Per-class totals, in lattice order.
    pub fn counts(&self) -> [(SurvivalClass, usize); 4] {
        SurvivalClass::ALL.map(|c| {
            (c, self.outcomes.iter().filter(|o| o.class == c).count())
        })
    }

    /// The coordinates classified as silent corruption — each one a
    /// bug.
    pub fn silent_corruptions(&self) -> Vec<&CoordinateOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.class == SurvivalClass::SilentCorruption)
            .collect()
    }

    /// Byte-deterministic JSON rendering (no timestamps, no timings;
    /// outcomes in enumeration order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"campaign\": {");
        out.push_str(&format!(
            "\"artifacts\":[{}],\"quick\":{},\"retries\":{},\"seed\":{},\"sample\":{},\
             \"cells\":{},\"space\":{},\"explored\":{}}},\n",
            self.artifacts
                .iter()
                .map(|a| format!("\"{}\"", escape_json(a)))
                .collect::<Vec<_>>()
                .join(","),
            self.quick,
            self.retries,
            self.seed,
            self.sample.map(|n| n.to_string()).unwrap_or_else(|| "null".to_string()),
            self.cells,
            self.space,
            self.outcomes.len(),
        ));
        out.push_str("  \"summary\": {");
        let counts = self.counts();
        out.push_str(
            &counts
                .iter()
                .map(|(c, n)| format!("\"{}\":{n}", c.name()))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\n  \"results\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&o.to_json());
            if i + 1 < self.outcomes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The human-readable survivability matrix: one row per fault
    /// kind, one column per class, plus the attempt-depth split for
    /// compute kinds and an explicit list of any silent corruptions.
    pub fn render_matrix(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "survivability matrix ({} coordinate(s) over {} cell(s), retry budget {}):\n",
            self.outcomes.len(),
            self.cells,
            self.retries
        ));
        out.push_str(&format!(
            "  {:16} {:>9} {:>9} {:>12} {:>18}\n",
            "fault kind", "absorbed", "degraded", "failed-loud", "silent-corruption"
        ));
        for kind in FaultKind::ALL {
            let row: Vec<usize> = SurvivalClass::ALL
                .iter()
                .map(|c| {
                    self.outcomes
                        .iter()
                        .filter(|o| o.coord.kind == kind && o.class == *c)
                        .count()
                })
                .collect();
            if row.iter().sum::<usize>() == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:16} {:>9} {:>9} {:>12} {:>18}\n",
                kind.name(),
                row[0],
                row[1],
                row[2],
                row[3]
            ));
        }
        let silent = self.silent_corruptions();
        if silent.is_empty() {
            out.push_str("  no silent corruption: every divergence was accounted.\n");
        } else {
            out.push_str(&format!(
                "  {} SILENT CORRUPTION coordinate(s) — each one is a bug:\n",
                silent.len()
            ));
            for o in silent {
                out.push_str(&format!("    {}  ({})\n", o.coord.id(), o.detail));
            }
        }
        out
    }
}

/// When along a hop's lifetime a cluster-campaign fault fires.
///
/// The serving tier's analogue of the compute campaign's attempt axis:
/// `First` kills only the first attempt per hop (the proxy's bounded
/// retry must absorb it), `Always` kills every attempt (the shard is
/// effectively unreachable and the failover-to-local-recompute path is
/// on trial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTiming {
    /// The fault fires once per hop; retry must absorb it.
    First,
    /// The fault fires on every attempt; failover must cover it.
    Always,
}

impl FaultTiming {
    /// Both timings, in enumeration order.
    pub const ALL: [FaultTiming; 2] = [FaultTiming::First, FaultTiming::Always];

    /// Stable name used in coordinate ids and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultTiming::First => "first",
            FaultTiming::Always => "always",
        }
    }

    /// Parses a stable name.
    pub fn parse(s: &str) -> Option<FaultTiming> {
        FaultTiming::ALL.into_iter().find(|t| t.name() == s)
    }
}

impl fmt::Display for FaultTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One point of the serving-tier fault space: inject `kind` into every
/// proxy↔shard hop that targets `shard`, with `timing` deciding whether
/// the hop's first attempt or all attempts are hit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClusterCoordinate {
    /// Index of the shard whose hops are attacked.
    pub shard: usize,
    /// Which network failure to inject.
    pub kind: NetFaultKind,
    /// Whether retry (first) or failover (always) is on trial.
    pub timing: FaultTiming,
}

impl ClusterCoordinate {
    /// Canonical id: `kind:timing:shard`.
    pub fn id(&self) -> String {
        format!("{}:{}:{}", self.kind.name(), self.timing.name(), self.shard)
    }

    /// Parses a canonical id back into a coordinate.
    pub fn parse_id(id: &str) -> Option<ClusterCoordinate> {
        let mut parts = id.splitn(3, ':');
        let kind = NetFaultKind::parse(parts.next()?)?;
        let timing = FaultTiming::parse(parts.next()?)?;
        let shard = parts.next()?.parse().ok()?;
        Some(ClusterCoordinate { shard, kind, timing })
    }

    /// The network fault plan this coordinate describes: a single
    /// targeted rule on the shard, firing once per hop (`first`) or
    /// forever (`always`).
    pub fn net_fault_plan(&self) -> NetFaultPlan {
        let times = match self.timing {
            FaultTiming::First => Some(1),
            FaultTiming::Always => None,
        };
        NetFaultPlan::new().fail_hop(Some(self.shard), "", self.kind, times)
    }
}

impl fmt::Display for ClusterCoordinate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// Enumerates the full (shard × net-fault-kind × timing) space for an
/// `shards`-shard cluster, in deterministic order.
pub fn enumerate_cluster_coordinates(shards: usize) -> Vec<ClusterCoordinate> {
    let mut space = Vec::with_capacity(shards * NetFaultKind::ALL.len() * FaultTiming::ALL.len());
    for shard in 0..shards {
        for kind in NetFaultKind::ALL {
            for timing in FaultTiming::ALL {
                space.push(ClusterCoordinate { shard, kind, timing });
            }
        }
    }
    space
}

/// What the cluster campaign driver observed from one perturbed burst,
/// reduced to the facts classification needs. Raw counts here are *not*
/// byte-deterministic across runs (they depend on scheduling), so the
/// report records only the derived class.
#[derive(Debug, Clone, Default)]
pub struct ClusterObservation {
    /// Requests that completed 200 with bytes identical to the serial
    /// reference.
    pub responses_200: u64,
    /// Requests shed with 503 + `Retry-After` (degraded-mode pushback).
    pub responses_503: u64,
    /// Requests that errored at the client after exhausting retries.
    pub errors: u64,
    /// 200-responses whose bytes differed from the serial reference —
    /// each one is silent corruption.
    pub mismatches: u64,
    /// Hops the proxy failed over to local recompute.
    pub failovers: u64,
    /// Responses carrying a degraded-mode marker
    /// (`X-Regend-Shard-Degraded`).
    pub degraded: u64,
}

/// Classifies one cluster coordinate's observation, worst-first on the
/// same lattice as the compute tier: any byte mismatch is silent
/// corruption; client-visible errors or an all-failed burst are loud;
/// shed load or degraded markers are degraded; clean bytes with the
/// fault fully hidden are absorbed.
pub fn classify_cluster(obs: &ClusterObservation) -> SurvivalClass {
    if obs.mismatches > 0 {
        return SurvivalClass::SilentCorruption;
    }
    if obs.errors > 0 || obs.responses_200 == 0 {
        return SurvivalClass::FailedLoud;
    }
    if obs.responses_503 > 0 || obs.degraded > 0 {
        return SurvivalClass::Degraded;
    }
    SurvivalClass::Absorbed
}

/// One classified cluster coordinate, as recorded in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Which serving-tier fault-space point.
    pub coord: ClusterCoordinate,
    /// The survivability verdict.
    pub class: SurvivalClass,
    /// A short deterministic note (e.g. `failover` when the proxy
    /// recomputed locally); never raw counts.
    pub detail: String,
}

impl ClusterOutcome {
    fn to_json(&self) -> String {
        format!(
            "{{\"coord\":\"{}\",\"kind\":\"{}\",\"timing\":\"{}\",\"shard\":{},\
             \"class\":\"{}\",\"detail\":\"{}\"}}",
            escape_json(&self.coord.id()),
            self.coord.kind.name(),
            self.coord.timing.name(),
            self.coord.shard,
            self.class.name(),
            escape_json(&self.detail)
        )
    }
}

/// The reduced verdict of a serving-tier campaign. Deliberately
/// class-only: request counts, latencies and retry totals vary with
/// scheduling, so including them would unpin the committed baseline.
#[derive(Debug, Clone)]
pub struct ClusterCampaignReport {
    /// How many shards the cluster ran.
    pub shards: usize,
    /// Requests issued per coordinate burst.
    pub requests_per_coordinate: usize,
    /// Whether quick workload variants were used.
    pub quick: bool,
    /// Classified coordinates, in enumeration order.
    pub outcomes: Vec<ClusterOutcome>,
}

impl ClusterCampaignReport {
    /// Per-class totals, in lattice order.
    pub fn counts(&self) -> [(SurvivalClass, usize); 4] {
        SurvivalClass::ALL.map(|c| (c, self.outcomes.iter().filter(|o| o.class == c).count()))
    }

    /// The coordinates classified as silent corruption — each one a
    /// bug in the serving tier.
    pub fn silent_corruptions(&self) -> Vec<&ClusterOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.class == SurvivalClass::SilentCorruption)
            .collect()
    }

    /// Byte-deterministic JSON rendering (classes only, enumeration
    /// order, no counts or timings).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"cluster_campaign\": {");
        out.push_str(&format!(
            "\"version\":\"regend-cluster-campaign/v1\",\"shards\":{},\
             \"requests_per_coordinate\":{},\"quick\":{},\"explored\":{}}},\n",
            self.shards,
            self.requests_per_coordinate,
            self.quick,
            self.outcomes.len(),
        ));
        out.push_str("  \"summary\": {");
        out.push_str(
            &self
                .counts()
                .iter()
                .map(|(c, n)| format!("\"{}\":{n}", c.name()))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\n  \"results\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&o.to_json());
            if i + 1 < self.outcomes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The human-readable matrix: one row per net-fault kind, split by
    /// timing, one column per class.
    pub fn render_matrix(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster survivability matrix ({} coordinate(s), {} shard(s), {} request(s) each):\n",
            self.outcomes.len(),
            self.shards,
            self.requests_per_coordinate
        ));
        out.push_str(&format!(
            "  {:22} {:>9} {:>9} {:>12} {:>18}\n",
            "net fault × timing", "absorbed", "degraded", "failed-loud", "silent-corruption"
        ));
        for kind in NetFaultKind::ALL {
            for timing in FaultTiming::ALL {
                let row: Vec<usize> = SurvivalClass::ALL
                    .iter()
                    .map(|c| {
                        self.outcomes
                            .iter()
                            .filter(|o| {
                                o.coord.kind == kind
                                    && o.coord.timing == timing
                                    && o.class == *c
                            })
                            .count()
                    })
                    .collect();
                if row.iter().sum::<usize>() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:22} {:>9} {:>9} {:>12} {:>18}\n",
                    format!("{} ({})", kind.name(), timing.name()),
                    row[0],
                    row[1],
                    row[2],
                    row[3]
                ));
            }
        }
        let silent = self.silent_corruptions();
        if silent.is_empty() {
            out.push_str("  no silent corruption: every divergence was accounted.\n");
        } else {
            out.push_str(&format!(
                "  {} SILENT CORRUPTION coordinate(s) — each one is a bug:\n",
                silent.len()
            ));
            for o in silent {
                out.push_str(&format!("    {}  ({})\n", o.coord.id(), o.detail));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<(String, u64)> {
        vec![
            ("cpuB/w/[cfg]".to_string(), 0),
            ("cpuA/w/[cfg]".to_string(), 7),
            ("cpuA/w/[cfg]".to_string(), 7), // duplicate, must collapse
        ]
    }

    #[test]
    fn enumeration_is_sorted_dedup_and_sized() {
        let space = enumerate_coordinates(&cells(), 3);
        // 2 distinct cells x (4 compute kinds x 3 attempts + 2 io kinds).
        assert_eq!(space.len(), 2 * (4 * 3 + 2));
        let ids: std::collections::HashSet<String> =
            space.iter().map(Coordinate::id).collect();
        assert_eq!(ids.len(), space.len(), "duplicate-free");
        assert_eq!(space, enumerate_coordinates(&cells(), 3), "deterministic");
        assert!(space[0].content_key <= space[space.len() - 1].content_key, "sorted by cell");
        // IO kinds get exactly one attempt depth.
        assert!(space
            .iter()
            .filter(|c| c.kind.is_io())
            .all(|c| c.attempt == 0));
    }

    #[test]
    fn coordinate_ids_round_trip() {
        for coord in enumerate_coordinates(&cells(), 2) {
            assert_eq!(Coordinate::parse_id(&coord.id()), Some(coord.clone()), "{coord}");
        }
        // Keys containing the separator still round-trip (key is last).
        let c = Coordinate {
            content_key: "cpu/w/[x:y=1]".to_string(),
            seed: 3,
            attempt: 1,
            kind: FaultKind::Timeout,
        };
        assert_eq!(Coordinate::parse_id(&c.id()), Some(c));
        assert_eq!(Coordinate::parse_id("nope"), None);
    }

    #[test]
    fn coordinate_fault_plans_fire_exactly_attempt_plus_one_times() {
        let c = Coordinate {
            content_key: "cpu/w/[cfg]".to_string(),
            seed: 0,
            attempt: 1,
            kind: FaultKind::SimFault,
        };
        let plan = c.fault_plan();
        let key = "exp/cpu/w/[cfg]";
        assert_eq!(plan.inject(key, 0), Some(FaultKind::SimFault));
        assert_eq!(plan.inject(key, 1), Some(FaultKind::SimFault));
        assert_eq!(plan.inject(key, 2), None, "attempt 3 gets through");
    }

    #[test]
    fn sample_is_seed_stable_and_a_subset() {
        let space = enumerate_coordinates(
            &(0..20).map(|i| (format!("cpu{i}/w/[c]"), 0)).collect::<Vec<_>>(),
            3,
        );
        let a = stratified_sample(&space, 25, 42);
        let b = stratified_sample(&space, 25, 42);
        assert_eq!(a, b, "seed-stable");
        assert_eq!(a.len(), 25);
        let all: std::collections::HashSet<String> = space.iter().map(Coordinate::id).collect();
        assert!(a.iter().all(|c| all.contains(&c.id())), "subset of the space");
        // Every kind is represented (25 >= 6 strata).
        for kind in FaultKind::ALL {
            assert!(a.iter().any(|c| c.kind == kind), "stratum {kind} covered");
        }
        // A different seed picks a different sample (overwhelmingly).
        let c = stratified_sample(&space, 25, 43);
        assert_ne!(a, c, "seed changes the pick");
        // Oversampling returns the whole space.
        assert_eq!(stratified_sample(&space, space.len() + 10, 1), space);
    }

    #[test]
    fn classification_lattice() {
        let reference = "== T ==\nvalue 1\n";
        let clean = SweepObservation { rendered: reference.to_string(), ..Default::default() };
        assert_eq!(classify(reference, &clean), SurvivalClass::Absorbed);

        let degraded = SweepObservation {
            rendered: "== T ==\nvalue 1 \u{2020}\n".to_string(),
            degraded_artifacts: vec!["t".to_string()],
            ..Default::default()
        };
        assert_eq!(classify(reference, &degraded), SurvivalClass::Degraded);

        let failed = SweepObservation {
            rendered: "== T == FAILED\n".to_string(),
            failed_artifacts: vec!["t".to_string()],
            ..Default::default()
        };
        assert_eq!(classify(reference, &failed), SurvivalClass::FailedLoud);

        let silent = SweepObservation {
            rendered: "== T ==\nvalue 2\n".to_string(),
            ..Default::default()
        };
        assert_eq!(classify(reference, &silent), SurvivalClass::SilentCorruption);

        // A replay mismatch is silent corruption even with clean bytes.
        let replay = SweepObservation {
            rendered: reference.to_string(),
            journal_replay_mismatch: true,
            ..Default::default()
        };
        assert_eq!(classify(reference, &replay), SurvivalClass::SilentCorruption);
    }

    #[test]
    fn campaign_journal_round_trips_and_survives_torn_tails() {
        let dir = std::env::temp_dir().join(format!("sb-campaign-j-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        let _ = std::fs::remove_file(&path);
        let outcome = CoordinateOutcome {
            coord: Coordinate {
                content_key: "cpu/w/[a \"q\"]".to_string(),
                seed: 9,
                attempt: 2,
                kind: FaultKind::PanicFault,
            },
            class: SurvivalClass::FailedLoud,
            retries: 4,
            faults_injected: 3,
            detail: "table1 failed".to_string(),
        };
        {
            let (j, replayed, skipped) = CampaignJournal::open(&path).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(skipped, 0);
            j.record(&outcome).unwrap();
            j.sync().unwrap();
        }
        // Tear the tail: append half a line, as a SIGKILL mid-append
        // would.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"c1 deadbeef {\"coord\":\"sim:0:0:x").unwrap();
        }
        let (_j, replayed, skipped) = CampaignJournal::open(&path).unwrap();
        assert_eq!(replayed, vec![outcome]);
        assert_eq!(skipped, 1, "torn tail skipped, not fatal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_json_is_deterministic_and_well_formed() {
        let space = enumerate_coordinates(&[("cpu/w/[c]".to_string(), 1)], 2);
        let outcomes: Vec<CoordinateOutcome> = space
            .iter()
            .map(|c| CoordinateOutcome {
                coord: c.clone(),
                class: SurvivalClass::Absorbed,
                retries: 1,
                faults_injected: 1,
                detail: String::new(),
            })
            .collect();
        let report = CampaignReport {
            artifacts: vec!["table1".to_string()],
            quick: true,
            retries: 2,
            seed: 7,
            sample: None,
            cells: 1,
            space: space.len(),
            outcomes,
        };
        let a = report.to_json();
        assert_eq!(a, report.to_json(), "byte-deterministic");
        crate::obs::trace::validate_json(&a).expect("report is well-formed JSON");
        let matrix = report.render_matrix();
        assert!(matrix.contains("no silent corruption"));
        assert!(matrix.contains("sim"), "{matrix}");
    }

    #[test]
    fn cluster_enumeration_covers_the_space_and_ids_round_trip() {
        let space = enumerate_cluster_coordinates(4);
        assert_eq!(space.len(), 4 * 4 * 2, "shard x kind x timing");
        let ids: std::collections::HashSet<String> =
            space.iter().map(ClusterCoordinate::id).collect();
        assert_eq!(ids.len(), space.len(), "duplicate-free");
        assert_eq!(space, enumerate_cluster_coordinates(4), "deterministic");
        for coord in &space {
            assert_eq!(ClusterCoordinate::parse_id(&coord.id()), Some(coord.clone()), "{coord}");
        }
        assert_eq!(ClusterCoordinate::parse_id("nope"), None);
        assert_eq!(ClusterCoordinate::parse_id("drop:never:0"), None);
    }

    #[test]
    fn cluster_coordinate_plans_match_their_timing() {
        let first = ClusterCoordinate {
            shard: 1,
            kind: NetFaultKind::Drop,
            timing: FaultTiming::First,
        };
        let plan = first.net_fault_plan();
        assert_eq!(plan.inject(1, "/cell/x", 0), Some(NetFaultKind::Drop));
        assert_eq!(plan.inject(1, "/cell/x", 1), None, "first timing fires once per hop");
        assert_eq!(plan.inject(0, "/cell/x", 0), None, "other shards untouched");

        let always = ClusterCoordinate {
            shard: 2,
            kind: NetFaultKind::Stall,
            timing: FaultTiming::Always,
        };
        let plan = always.net_fault_plan();
        for attempt in 0..5 {
            assert_eq!(plan.inject(2, "/artifact/t", attempt), Some(NetFaultKind::Stall));
        }
    }

    #[test]
    fn cluster_classification_lattice() {
        let clean = ClusterObservation { responses_200: 64, ..Default::default() };
        assert_eq!(classify_cluster(&clean), SurvivalClass::Absorbed);

        let shed = ClusterObservation { responses_200: 60, responses_503: 4, ..Default::default() };
        assert_eq!(classify_cluster(&shed), SurvivalClass::Degraded);

        let marked = ClusterObservation { responses_200: 64, degraded: 3, ..Default::default() };
        assert_eq!(classify_cluster(&marked), SurvivalClass::Degraded);

        let loud = ClusterObservation { responses_200: 63, errors: 1, ..Default::default() };
        assert_eq!(classify_cluster(&loud), SurvivalClass::FailedLoud);

        let dead = ClusterObservation::default();
        assert_eq!(classify_cluster(&dead), SurvivalClass::FailedLoud, "no 200s is loud");

        // A byte mismatch outranks everything, even a clean-looking run.
        let silent = ClusterObservation { responses_200: 64, mismatches: 1, ..Default::default() };
        assert_eq!(classify_cluster(&silent), SurvivalClass::SilentCorruption);
    }

    #[test]
    fn cluster_report_json_is_deterministic_and_well_formed() {
        let outcomes: Vec<ClusterOutcome> = enumerate_cluster_coordinates(2)
            .into_iter()
            .map(|coord| {
                let class = match coord.timing {
                    FaultTiming::First => SurvivalClass::Absorbed,
                    FaultTiming::Always => SurvivalClass::Degraded,
                };
                ClusterOutcome { coord, class, detail: "failover".to_string() }
            })
            .collect();
        let report = ClusterCampaignReport {
            shards: 2,
            requests_per_coordinate: 16,
            quick: true,
            outcomes,
        };
        let a = report.to_json();
        assert_eq!(a, report.to_json(), "byte-deterministic");
        crate::obs::trace::validate_json(&a).expect("report is well-formed JSON");
        assert!(a.contains("regend-cluster-campaign/v1"));
        let matrix = report.render_matrix();
        assert!(matrix.contains("no silent corruption"));
        assert!(matrix.contains("corrupt-byte (always)"), "{matrix}");
    }
}
