//! Deterministic fault injection for the measurement harness.
//!
//! Real benchmark rigs fail in boring, recurring ways: a run wedges and
//! has to be killed, a machine reboots mid-sweep, a sample file comes
//! back corrupt. The paper's methodology (§4.1) survives those because a
//! human re-ran the affected configuration; this module lets *tests*
//! prove the harness does the same thing mechanically. A [`FaultPlan`]
//! decides — deterministically, from a seed and a rule list — whether a
//! given lattice cell's nth attempt fails, and how. The measurement loop
//! in [`crate::harness`] consults the plan before and during every cell.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// What kind of failure to inject into a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The simulated machine dies (models a crashed run).
    SimFault,
    /// The run exceeds its wall-clock deadline (models a hang the
    /// watchdog had to kill).
    Timeout,
    /// The run completes but its samples are garbage (models a corrupt
    /// result file); the statistics layer must detect and reject them.
    CorruptSample,
    /// The cell's compute closure panics (models a bug in a driver);
    /// the harness must catch the unwind and degrade, never abort.
    PanicFault,
    /// The journal append for this cell is torn mid-write (models a
    /// crash or full disk during an append); resume must re-run the
    /// cell and fsck must classify the tail.
    TornWrite,
    /// The journal line for this cell reaches disk with a flipped byte
    /// (models silent media corruption); the v2 checksum must catch it.
    JournalCorrupt,
}

impl FaultKind {
    /// Every kind, in the canonical order campaigns enumerate them:
    /// compute-path kinds first, then the I/O-layer kinds.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::SimFault,
        FaultKind::Timeout,
        FaultKind::CorruptSample,
        FaultKind::PanicFault,
        FaultKind::TornWrite,
        FaultKind::JournalCorrupt,
    ];

    /// The CLI names of every kind, comma-joined — the single source of
    /// truth for usage text and "unknown kind" errors.
    pub fn all_names() -> String {
        FaultKind::ALL.map(FaultKind::name).join(", ")
    }

    /// CLI name (`--inject kind=...`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SimFault => "sim",
            FaultKind::Timeout => "timeout",
            FaultKind::CorruptSample => "corrupt",
            FaultKind::PanicFault => "panic",
            FaultKind::TornWrite => "torn-write",
            FaultKind::JournalCorrupt => "journal-corrupt",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "sim" => Some(FaultKind::SimFault),
            "timeout" => Some(FaultKind::Timeout),
            "corrupt" => Some(FaultKind::CorruptSample),
            "panic" => Some(FaultKind::PanicFault),
            "torn-write" => Some(FaultKind::TornWrite),
            "journal-corrupt" => Some(FaultKind::JournalCorrupt),
            _ => None,
        }
    }

    /// True for I/O-layer kinds, which fire when a completed cell is
    /// journaled ([`FaultPlan::inject_io`]) rather than during compute
    /// attempts ([`FaultPlan::inject`]).
    pub fn is_io(self) -> bool {
        matches!(self, FaultKind::TornWrite | FaultKind::JournalCorrupt)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One targeted injection rule: cells whose key contains `cell_substr`
/// fail with `kind` on their first `times` attempts (`None` = every
/// attempt, i.e. a permanent failure).
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Substring matched against the cell key
    /// (`experiment/cpu/workload/[config]`).
    pub cell_substr: String,
    /// Failure to inject.
    pub kind: FaultKind,
    /// How many attempts to kill per cell; `None` kills them all.
    pub times: Option<u32>,
}

/// A deterministic fault-injection plan.
///
/// Two mechanisms compose:
///
/// * **Targeted rules** ([`FaultPlan::fail_cell`]): kill specific cells
///   a fixed number of times (or forever). This is what the resume /
///   keep-going integration tests use.
/// * **Seeded background noise** ([`FaultPlan::seeded`]): every
///   (cell, attempt) pair fails with probability `p`, decided by a hash
///   of the seed — a deterministic model of a generally flaky rig.
///
/// The plan is consulted once per attempt; delivered injections are
/// counted per (rule, cell) so `times = Some(k)` lets attempt `k`
/// through, which is how tests prove retry recovers. The counters are
/// keyed by cell, not by global call order, so injection is independent
/// of how the executor interleaves cells across workers.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
    probability: f64,
    delivered: Mutex<HashMap<(usize, String), u32>>,
}

impl Clone for FaultPlan {
    fn clone(&self) -> FaultPlan {
        FaultPlan {
            rules: self.rules.clone(),
            seed: self.seed,
            probability: self.probability,
            delivered: Mutex::new(
                self.delivered.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            ),
        }
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A background-flakiness plan: each (cell, attempt) fails with
    /// probability `probability`, decided deterministically from `seed`.
    pub fn seeded(seed: u64, probability: f64) -> FaultPlan {
        FaultPlan { seed, probability: probability.clamp(0.0, 1.0), ..FaultPlan::default() }
    }

    /// Adds a targeted rule (builder style).
    pub fn fail_cell(
        mut self,
        cell_substr: impl Into<String>,
        kind: FaultKind,
        times: Option<u32>,
    ) -> FaultPlan {
        self.rules.push(FaultRule { cell_substr: cell_substr.into(), kind, times });
        self
    }

    /// Whether the plan can ever inject anything.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.probability == 0.0
    }

    /// Parses the `regen --inject` specification:
    ///
    /// ```text
    /// cell=<substr>:kind=<sim|timeout|corrupt>:times=<n|forever>[,<rule>...]
    /// seed=<n>:prob=<float>
    /// ```
    ///
    /// Rules are comma-separated; a `seed=`/`prob=` pair may appear as
    /// one of them to add background flakiness.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for rule in spec.split(',').filter(|r| !r.is_empty()) {
            let mut cell = None;
            let mut kind = FaultKind::SimFault;
            let mut times = None;
            let mut seed = None;
            let mut prob = None;
            for part in rule.split(':') {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| format!("bad --inject part (want key=value): {part:?}"))?;
                match key {
                    "cell" => cell = Some(value.to_string()),
                    "kind" => {
                        kind = FaultKind::parse(value).ok_or_else(|| {
                            format!(
                                "unknown fault kind {value:?} (valid kinds: {})",
                                FaultKind::all_names()
                            )
                        })?
                    }
                    "times" => {
                        times = if value == "forever" {
                            None
                        } else {
                            Some(value.parse::<u32>().map_err(|e| {
                                format!("bad times value {value:?}: {e}")
                            })?)
                        }
                    }
                    "seed" => {
                        seed = Some(
                            value
                                .parse::<u64>()
                                .map_err(|e| format!("bad seed value {value:?}: {e}"))?,
                        )
                    }
                    "prob" => {
                        prob = Some(
                            value
                                .parse::<f64>()
                                .map_err(|e| format!("bad prob value {value:?}: {e}"))?,
                        )
                    }
                    other => return Err(format!("unknown --inject key: {other:?}")),
                }
            }
            match (cell, seed, prob) {
                (Some(c), None, None) => {
                    plan.rules.push(FaultRule { cell_substr: c, kind, times });
                }
                (None, Some(s), Some(p)) => {
                    plan.seed = s;
                    plan.probability = p.clamp(0.0, 1.0);
                }
                _ => {
                    return Err(format!(
                        "--inject rule needs either cell=... or seed=...:prob=...: {rule:?}"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Decides whether attempt `attempt` of the cell named `cell_key`
    /// fails, and how. Deterministic given the plan's history: calling
    /// in the same order always yields the same injections. I/O-layer
    /// rules ([`FaultKind::is_io`]) are never delivered here — they
    /// fire from [`FaultPlan::inject_io`] when the cell is journaled.
    pub fn inject(&self, cell_key: &str, attempt: u32) -> Option<FaultKind> {
        if let Some(kind) = self.match_rules(cell_key, |k| !k.is_io()) {
            return Some(kind);
        }
        if self.probability > 0.0 && unit_hash(self.seed, cell_key, attempt) < self.probability {
            // Background faults rotate through the compute kinds
            // deterministically.
            let kinds = [FaultKind::SimFault, FaultKind::Timeout, FaultKind::CorruptSample];
            let pick = (mix(self.seed ^ 0xC0FF_EE00, cell_key, attempt) % 3) as usize;
            return Some(kinds[pick]);
        }
        None
    }

    /// Decides whether journaling the completed cell named `cell_key`
    /// suffers an injected I/O fault. Same delivery accounting as
    /// [`FaultPlan::inject`] (a `times = Some(k)` rule damages the
    /// first `k` appends for each matching cell), but consulted on the
    /// write path, so compute rules never fire here and vice versa.
    pub fn inject_io(&self, cell_key: &str) -> Option<FaultKind> {
        self.match_rules(cell_key, |k| k.is_io())
    }

    /// Shared targeted-rule matcher; `eligible` selects which rule
    /// kinds this call site may deliver.
    fn match_rules(&self, cell_key: &str, eligible: impl Fn(FaultKind) -> bool) -> Option<FaultKind> {
        for (i, rule) in self.rules.iter().enumerate() {
            if !eligible(rule.kind) || !cell_key.contains(rule.cell_substr.as_str()) {
                continue;
            }
            match rule.times {
                None => return Some(rule.kind),
                Some(limit) => {
                    let mut delivered =
                        self.delivered.lock().unwrap_or_else(|e| e.into_inner());
                    let count = delivered.entry((i, cell_key.to_string())).or_insert(0);
                    if *count < limit {
                        *count += 1;
                        return Some(rule.kind);
                    }
                }
            }
        }
        None
    }
}

/// What kind of failure to inject into one proxy↔shard network hop.
///
/// The serving-tier sibling of [`FaultKind`]: where `FaultKind`
/// perturbs the compute/journal path inside one process, a
/// `NetFaultKind` perturbs the wire between the cluster proxy and a
/// shard. Injection is client-side (in the proxy's fetch path), so the
/// shard under test is untouched and the same seed reproduces the same
/// hop-level failures on any machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFaultKind {
    /// The request never reaches the shard (models a dropped packet /
    /// dead route): the fetch fails immediately with a transport error.
    Drop,
    /// The shard stops answering (models a hung peer): the fetch blocks
    /// for the stall window, then fails with a timeout.
    Stall,
    /// The response body is cut short mid-flight (models a torn
    /// transfer); length/checksum verification must catch it.
    Truncate,
    /// One body byte is flipped in flight (models silent wire
    /// corruption); the body checksum must catch it — a corrupt byte
    /// that reaches a client is silent corruption by definition.
    CorruptByte,
}

impl NetFaultKind {
    /// Every kind, in the canonical order cluster campaigns enumerate
    /// them.
    pub const ALL: [NetFaultKind; 4] = [
        NetFaultKind::Drop,
        NetFaultKind::Stall,
        NetFaultKind::Truncate,
        NetFaultKind::CorruptByte,
    ];

    /// The CLI names of every kind, comma-joined.
    pub fn all_names() -> String {
        NetFaultKind::ALL.map(NetFaultKind::name).join(", ")
    }

    /// CLI name (`regend --net-inject kind=...`).
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::Drop => "drop",
            NetFaultKind::Stall => "stall",
            NetFaultKind::Truncate => "truncate",
            NetFaultKind::CorruptByte => "corrupt-byte",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<NetFaultKind> {
        NetFaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One targeted network rule: hops to `shard` (or any shard when
/// `None`) whose request path contains `path_substr` fail with `kind`
/// on their first `times` attempts per hop (`None` = every attempt).
#[derive(Debug, Clone)]
pub struct NetFaultRule {
    /// Shard index the rule targets; `None` matches every shard.
    pub shard: Option<usize>,
    /// Substring matched against the request path (empty matches all).
    pub path_substr: String,
    /// Failure to inject on the hop.
    pub kind: NetFaultKind,
    /// How many attempts to kill per (rule, hop); `None` kills all.
    pub times: Option<u32>,
}

/// A deterministic network-fault plan for the proxy↔shard hop.
///
/// Mirrors [`FaultPlan`]'s two mechanisms — targeted rules plus seeded
/// background noise — and its delivery accounting: counters are keyed
/// per (rule, hop), where a hop is `shard:path`, so injection is
/// independent of how proxy workers interleave fetches.
#[derive(Debug, Default)]
pub struct NetFaultPlan {
    rules: Vec<NetFaultRule>,
    seed: u64,
    probability: f64,
    delivered: Mutex<HashMap<(usize, String), u32>>,
}

impl Clone for NetFaultPlan {
    fn clone(&self) -> NetFaultPlan {
        NetFaultPlan {
            rules: self.rules.clone(),
            seed: self.seed,
            probability: self.probability,
            delivered: Mutex::new(
                self.delivered.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            ),
        }
    }
}

impl NetFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// A background-flakiness plan: each (hop, attempt) fails with
    /// probability `probability`, decided deterministically from `seed`,
    /// rotating through every [`NetFaultKind`].
    pub fn seeded(seed: u64, probability: f64) -> NetFaultPlan {
        NetFaultPlan { seed, probability: probability.clamp(0.0, 1.0), ..NetFaultPlan::default() }
    }

    /// Adds a targeted rule (builder style).
    pub fn fail_hop(
        mut self,
        shard: Option<usize>,
        path_substr: impl Into<String>,
        kind: NetFaultKind,
        times: Option<u32>,
    ) -> NetFaultPlan {
        self.rules.push(NetFaultRule { shard, path_substr: path_substr.into(), kind, times });
        self
    }

    /// Whether the plan can ever inject anything.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.probability == 0.0
    }

    /// Parses the `regend --net-inject` specification:
    ///
    /// ```text
    /// shard=<n|any>:kind=<drop|stall|truncate|corrupt-byte>:times=<n|forever>[:path=<substr>][,<rule>...]
    /// seed=<n>:prob=<float>
    /// ```
    pub fn parse_spec(spec: &str) -> Result<NetFaultPlan, String> {
        let mut plan = NetFaultPlan::new();
        for rule in spec.split(',').filter(|r| !r.is_empty()) {
            let mut shard: Option<Option<usize>> = None;
            let mut kind = None;
            let mut times = None;
            let mut path = String::new();
            let mut seed = None;
            let mut prob = None;
            for part in rule.split(':') {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| format!("bad --net-inject part (want key=value): {part:?}"))?;
                match key {
                    "shard" => {
                        shard = Some(if value == "any" {
                            None
                        } else {
                            Some(value.parse::<usize>().map_err(|e| {
                                format!("bad shard value {value:?}: {e}")
                            })?)
                        })
                    }
                    "kind" => {
                        kind = Some(NetFaultKind::parse(value).ok_or_else(|| {
                            format!(
                                "unknown net fault kind {value:?} (valid kinds: {})",
                                NetFaultKind::all_names()
                            )
                        })?)
                    }
                    "times" => {
                        times = if value == "forever" {
                            None
                        } else {
                            Some(value.parse::<u32>().map_err(|e| {
                                format!("bad times value {value:?}: {e}")
                            })?)
                        }
                    }
                    "path" => path = value.to_string(),
                    "seed" => {
                        seed = Some(
                            value
                                .parse::<u64>()
                                .map_err(|e| format!("bad seed value {value:?}: {e}"))?,
                        )
                    }
                    "prob" => {
                        prob = Some(
                            value
                                .parse::<f64>()
                                .map_err(|e| format!("bad prob value {value:?}: {e}"))?,
                        )
                    }
                    other => return Err(format!("unknown --net-inject key: {other:?}")),
                }
            }
            match (shard, kind, seed, prob) {
                (Some(s), Some(k), None, None) => {
                    plan.rules.push(NetFaultRule { shard: s, path_substr: path, kind: k, times });
                }
                (None, None, Some(s), Some(p)) => {
                    plan.seed = s;
                    plan.probability = p.clamp(0.0, 1.0);
                }
                _ => {
                    return Err(format!(
                        "--net-inject rule needs shard=...:kind=... or seed=...:prob=...: {rule:?}"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Decides whether attempt `attempt` of the hop `(shard, path)`
    /// suffers an injected network fault, and which. Deterministic
    /// given the plan's history, independent of fetch interleaving
    /// across hops.
    pub fn inject(&self, shard: usize, path: &str, attempt: u32) -> Option<NetFaultKind> {
        let hop = format!("{shard}:{path}");
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.shard.is_some_and(|s| s != shard) || !path.contains(rule.path_substr.as_str())
            {
                continue;
            }
            match rule.times {
                None => return Some(rule.kind),
                Some(limit) => {
                    let mut delivered =
                        self.delivered.lock().unwrap_or_else(|e| e.into_inner());
                    let count = delivered.entry((i, hop.clone())).or_insert(0);
                    if *count < limit {
                        *count += 1;
                        return Some(rule.kind);
                    }
                }
            }
        }
        if self.probability > 0.0 && unit_hash(self.seed, &hop, attempt) < self.probability {
            let pick = (mix(self.seed ^ 0xBAD_CAB1E, &hop, attempt)
                % NetFaultKind::ALL.len() as u64) as usize;
            return Some(NetFaultKind::ALL[pick]);
        }
        None
    }
}

/// Deterministic hash of (seed, key, attempt) into a u64.
fn mix(seed: u64, key: &str, attempt: u32) -> u64 {
    // FNV-1a over the key, then an xorshift* finalizer with the seed and
    // attempt folded in.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut x = h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ((attempt as u64) << 32);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Deterministic hash of (seed, key, attempt) into [0, 1).
fn unit_hash(seed: u64, key: &str, attempt: u32) -> f64 {
    (mix(seed, key, attempt) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.inject("figure2/Broadwell/lebench/[nopti]", 0), None);
    }

    #[test]
    fn targeted_rule_counts_down() {
        let p = FaultPlan::new().fail_cell("[nopti]", FaultKind::Timeout, Some(2));
        let key = "figure2/Broadwell/lebench/[nopti]";
        assert_eq!(p.inject(key, 0), Some(FaultKind::Timeout));
        assert_eq!(p.inject(key, 1), Some(FaultKind::Timeout));
        assert_eq!(p.inject(key, 2), None, "attempt 3 gets through");
        // Other cells are untouched.
        assert_eq!(p.inject("figure2/Broadwell/lebench/[nopti mds=off]", 0), None);
    }

    #[test]
    fn permanent_rule_never_relents() {
        let p = FaultPlan::new().fail_cell("Zen 3", FaultKind::SimFault, None);
        for attempt in 0..10 {
            assert_eq!(p.inject("vm/Zen 3/lfs/[default]", attempt), Some(FaultKind::SimFault));
        }
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let a = FaultPlan::seeded(42, 0.3);
        let b = FaultPlan::seeded(42, 0.3);
        for attempt in 0..20 {
            assert_eq!(a.inject("x/y/z/[w]", attempt), b.inject("x/y/z/[w]", attempt));
        }
        // Roughly the right rate over many cells.
        let p = FaultPlan::seeded(7, 0.25);
        let hits = (0..1000)
            .filter(|i| p.inject(&format!("cell-{i}"), 0).is_some())
            .count();
        assert!((150..350).contains(&hits), "rate {hits}/1000");
    }

    #[test]
    fn io_kinds_fire_on_the_write_path_only() {
        let p = FaultPlan::new()
            .fail_cell("[torn]", FaultKind::TornWrite, Some(1))
            .fail_cell("[torn]", FaultKind::PanicFault, Some(1));
        let key = "f/cpu/w/[torn]";
        // Compute-path injection skips the io rule and delivers the
        // panic; write-path injection skips the panic and delivers the
        // torn write. Each keeps its own delivery count.
        assert_eq!(p.inject(key, 0), Some(FaultKind::PanicFault));
        assert_eq!(p.inject(key, 1), None);
        assert_eq!(p.inject_io(key), Some(FaultKind::TornWrite));
        assert_eq!(p.inject_io(key), None, "times=1 exhausted");
        // Cells not matching the substring are untouched.
        assert_eq!(p.inject_io("f/cpu/w/[clean]"), None);
    }

    #[test]
    fn io_kind_names_parse() {
        assert_eq!(FaultKind::parse("panic"), Some(FaultKind::PanicFault));
        assert_eq!(FaultKind::parse("torn-write"), Some(FaultKind::TornWrite));
        assert_eq!(FaultKind::parse("journal-corrupt"), Some(FaultKind::JournalCorrupt));
        assert!(FaultKind::PanicFault.name() == "panic");
        assert!(!FaultKind::PanicFault.is_io());
        assert!(FaultKind::TornWrite.is_io() && FaultKind::JournalCorrupt.is_io());
    }

    #[test]
    fn unknown_kind_error_lists_every_valid_kind() {
        let err = FaultPlan::parse_spec("cell=x:kind=nope").unwrap_err();
        for k in FaultKind::ALL {
            assert!(err.contains(k.name()), "{err:?} must name {}", k.name());
        }
        assert_eq!(FaultKind::ALL.len(), 6, "campaigns enumerate exactly six kinds");
    }

    #[test]
    fn spec_round_trips() {
        let p = FaultPlan::parse_spec("cell=[nopti]:kind=timeout:times=2").unwrap();
        assert_eq!(p.inject("f2/bdw/le/[nopti]", 0), Some(FaultKind::Timeout));
        let p = FaultPlan::parse_spec("cell=x:kind=sim:times=forever,seed=3:prob=0.5").unwrap();
        assert_eq!(p.inject("a/x/b", 5), Some(FaultKind::SimFault));
        assert!(FaultPlan::parse_spec("cell=x:kind=nope").is_err());
        assert!(FaultPlan::parse_spec("kind=sim").is_err());
        assert!(FaultPlan::parse_spec("cell=x:times=abc").is_err());
    }

    #[test]
    fn net_targeted_rule_counts_per_hop() {
        let p = NetFaultPlan::new().fail_hop(Some(1), "/cell/", NetFaultKind::Drop, Some(2));
        // Wrong shard and wrong path are untouched.
        assert_eq!(p.inject(0, "/cell/abc", 0), None);
        assert_eq!(p.inject(1, "/healthz", 0), None);
        // Each matching hop gets its own delivery budget.
        assert_eq!(p.inject(1, "/cell/abc", 0), Some(NetFaultKind::Drop));
        assert_eq!(p.inject(1, "/cell/abc", 1), Some(NetFaultKind::Drop));
        assert_eq!(p.inject(1, "/cell/abc", 2), None, "times=2 exhausted");
        assert_eq!(p.inject(1, "/cell/def", 0), Some(NetFaultKind::Drop));
    }

    #[test]
    fn net_any_shard_rule_and_forever() {
        let p = NetFaultPlan::new().fail_hop(None, "", NetFaultKind::Stall, None);
        for shard in 0..4 {
            for attempt in 0..3 {
                assert_eq!(p.inject(shard, "/artifact/figure2", attempt), Some(NetFaultKind::Stall));
            }
        }
    }

    #[test]
    fn net_seeded_background_is_deterministic() {
        let a = NetFaultPlan::seeded(42, 0.3);
        let b = NetFaultPlan::seeded(42, 0.3);
        for attempt in 0..20 {
            assert_eq!(a.inject(2, "/cell/k", attempt), b.inject(2, "/cell/k", attempt));
        }
        let p = NetFaultPlan::seeded(7, 0.25);
        let hits = (0..1000usize)
            .filter(|i| p.inject(i % 4, &format!("/cell/{i}"), 0).is_some())
            .count();
        assert!((150..350).contains(&hits), "rate {hits}/1000");
        // A clone replays identically from the same delivery history.
        let p = NetFaultPlan::new().fail_hop(Some(0), "", NetFaultKind::Truncate, Some(1));
        assert_eq!(p.inject(0, "/x", 0), Some(NetFaultKind::Truncate));
        let c = p.clone();
        assert_eq!(c.inject(0, "/x", 1), None, "clone carries delivery counters");
    }

    #[test]
    fn net_spec_round_trips() {
        let p = NetFaultPlan::parse_spec("shard=1:kind=drop:times=1").unwrap();
        assert_eq!(p.inject(1, "/cell/x", 0), Some(NetFaultKind::Drop));
        assert_eq!(p.inject(1, "/cell/x", 1), None);
        let p = NetFaultPlan::parse_spec(
            "shard=any:kind=corrupt-byte:times=forever:path=/cell/,seed=3:prob=0.5",
        )
        .unwrap();
        assert_eq!(p.inject(3, "/cell/x", 0), Some(NetFaultKind::CorruptByte));
        assert!(!p.is_empty());
        assert!(NetFaultPlan::parse_spec("shard=0:kind=nope").is_err());
        assert!(NetFaultPlan::parse_spec("kind=drop").is_err());
        assert!(NetFaultPlan::parse_spec("shard=x:kind=drop").is_err());
        let err = NetFaultPlan::parse_spec("shard=0:kind=bogus").unwrap_err();
        for k in NetFaultKind::ALL {
            assert!(err.contains(k.name()), "{err:?} must name {}", k.name());
        }
        assert!(NetFaultPlan::new().is_empty());
    }
}
