//! Single-flight request coalescing.
//!
//! A [`SingleFlight`] group guarantees that, for any key, at most one
//! caller at a time executes the expensive computation while every
//! concurrent caller for the same key blocks and receives a clone of
//! the leader's result. This is the serving-layer complement to the
//! executor's content-addressed cell cache: the cache deduplicates
//! *completed* work, single-flight deduplicates work that is still *in
//! flight*, so a burst of identical queries costs one computation
//! instead of N.
//!
//! The group is deliberately memoryless: once the leader finishes and
//! the followers are released, the key is forgotten. Callers that want
//! repeated queries served without recomputation put a cache in front
//! (as `regend`'s artifact cache does) — conflating the two concerns
//! would make cache-eviction policy a correctness hazard here.
//!
//! Panic safety: if the leader's closure panics, the slot is cleaned up
//! and one waiting follower is promoted to leader (the unwinding is
//! propagated to the original leader's caller). Followers therefore
//! never deadlock on a dead flight.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// How a [`SingleFlight::run`] call obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// This caller executed the computation.
    Led,
    /// This caller waited for a concurrent leader and shares its value.
    Coalesced,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlightState {
    /// A leader is running the computation.
    Running,
    /// The leader panicked; a follower must take over.
    Abandoned,
}

/// A group of in-flight computations, keyed by string.
///
/// `V` is the (cloneable) result type. The closure runs *outside* the
/// group lock, so computations for different keys proceed in parallel.
#[derive(Debug, Default)]
pub struct SingleFlight<V: Clone> {
    flights: Mutex<HashMap<String, FlightState>>,
    done: Mutex<HashMap<String, V>>,
    cv: Condvar,
}

fn relock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<V: Clone> SingleFlight<V> {
    /// An empty group.
    pub fn new() -> SingleFlight<V> {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
            done: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    /// Runs `f` for `key`, coalescing with any concurrent call for the
    /// same key: exactly one caller (the leader) executes `f`; the rest
    /// block and receive a clone of the leader's value.
    pub fn run(&self, key: &str, f: impl FnOnce() -> V) -> (V, FlightOutcome) {
        let mut flights = relock(&self.flights);
        loop {
            match flights.get(key) {
                None | Some(FlightState::Abandoned) => {
                    // Become (or take over as) the leader. Any value a
                    // *previous* flight posted is dropped now, so this
                    // flight's followers wait for the fresh one.
                    flights.insert(key.to_string(), FlightState::Running);
                    relock(&self.done).remove(key);
                    drop(flights);
                    let value = {
                        // If `f` panics, mark the flight abandoned so a
                        // follower is promoted instead of waiting forever.
                        let guard = AbandonOnDrop { group: self, key, armed: true };
                        let value = f();
                        let mut g = guard;
                        g.armed = false;
                        value
                    };
                    relock(&self.done).insert(key.to_string(), value.clone());
                    relock(&self.flights).remove(key);
                    self.cv.notify_all();
                    return (value, FlightOutcome::Led);
                }
                Some(FlightState::Running) => {
                    flights = self.cv.wait(flights).unwrap_or_else(|e| e.into_inner());
                    // The leader finished (value posted) or died
                    // (Abandoned: loop back and take over). A *later*
                    // flight for the same key clears the posted value
                    // when it starts, so a stale read is impossible and
                    // we simply loop like everyone else.
                    if let Some(v) = relock(&self.done).get(key).cloned() {
                        return (v, FlightOutcome::Coalesced);
                    }
                }
            }
        }
    }

    /// Drops the posted value for `key`, if any. The group itself calls
    /// this implicitly at the start of each new flight; callers only
    /// need it to bound memory when keys are unbounded.
    pub fn forget(&self, key: &str) {
        relock(&self.done).remove(key);
    }
}

struct AbandonOnDrop<'a, V: Clone> {
    group: &'a SingleFlight<V>,
    key: &'a str,
    armed: bool,
}

impl<V: Clone> Drop for AbandonOnDrop<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            relock(&self.group.flights).insert(self.key.to_string(), FlightState::Abandoned);
            self.group.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn concurrent_callers_coalesce_onto_one_computation() {
        let group = Arc::new(SingleFlight::<u64>::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let group = Arc::clone(&group);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || {
                group.run("k", || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    42
                })
            }));
        }
        let results: Vec<(u64, FlightOutcome)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(v, _)| *v == 42));
        let leaders = results.iter().filter(|(_, o)| *o == FlightOutcome::Led).count();
        // Threads that arrive after the flight lands lead a fresh one,
        // so more than one leader is possible — but every caller that
        // overlapped the first flight must have coalesced.
        assert_eq!(leaders, calls.load(Ordering::SeqCst));
        assert!(leaders < 8, "at least one caller coalesced");
    }

    #[test]
    fn distinct_keys_run_independently() {
        let group = SingleFlight::<&'static str>::new();
        assert_eq!(group.run("a", || "va").0, "va");
        assert_eq!(group.run("b", || "vb").0, "vb");
    }

    #[test]
    fn a_panicking_leader_promotes_a_follower() {
        let group = Arc::new(SingleFlight::<u64>::new());
        let g2 = Arc::clone(&group);
        let doomed = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g2.run("k", || panic!("leader dies"))
            }));
            assert!(r.is_err());
        });
        // Give the doomed leader a head start, then follow.
        std::thread::sleep(Duration::from_millis(20));
        let (v, _) = group.run("k", || 7);
        assert_eq!(v, 7);
        doomed.join().unwrap();
    }
}
