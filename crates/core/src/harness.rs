//! Fault-tolerant execution of measurement cells.
//!
//! Every number in the paper's tables and figures comes from a *cell*:
//! one (experiment, CPU model, workload, mitigation config) point in a
//! lattice. This module wraps the act of producing a cell's value with
//! the machinery a real benchmark rig needs to survive a long sweep:
//!
//! * **Typed errors** ([`ExperimentError`]) that carry the cell context,
//!   so a failure three layers down still names the CPU model and
//!   mitigation config it came from.
//! * **A watchdog** ([`Watchdog`]): an instruction budget handed to the
//!   simulator plus a wall-clock deadline enforced around each attempt.
//! * **Retry with bounded exponential backoff** ([`RetryPolicy`]); the
//!   attempt index is passed to the cell closure so a cell that wants
//!   attempt-dependent behaviour can have it.
//! * **Deterministic fault injection** (a [`FaultPlan`] consulted before
//!   and after every attempt) so tests can prove recovery works.
//! * **A JSON-lines journal** ([`Journal`]) of completed cells, keyed by
//!   content key *and seed*, so an interrupted sweep resumes without
//!   re-measuring finished work — and a stale entry recorded under a
//!   different seed is never replayed.
//!
//! The harness is `Sync`: the [`crate::executor`] runs cells from a
//! `std::thread::scope` worker pool, so every mutable bit (stats, the
//! fault plan's delivery counters, the journal) sits behind a mutex.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use uarch::SimError;

use crate::faultplan::{FaultKind, FaultPlan};
use crate::obs::{EventBus, EventKind};
use crate::persist::{atomic_write, crc32, WriteDamage};
use crate::plan::CellValue;
use crate::stats::Measurement;

/// Locks a mutex, recovering from poisoning (a panicking worker must
/// not wedge the rest of the sweep; the counters it held are still
/// internally consistent).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Identifies the lattice cell a run belongs to. Threaded into every
/// [`ExperimentError`] so failures are attributable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunContext {
    /// Experiment driver, e.g. `"figure2"` or `"tables9and10"`.
    pub experiment: String,
    /// CPU model name, e.g. `"Broadwell (Xeon E5-2699 v4)"`.
    pub cpu: String,
    /// Workload name, e.g. `"lebench"` or `"syscall"`.
    pub workload: String,
    /// Mitigation config (kernel cmdline fragment); empty for the
    /// experiment default.
    pub config: String,
}

impl RunContext {
    /// Builds a context; any field may be left empty.
    pub fn new(experiment: &str, cpu: &str, workload: &str, config: &str) -> RunContext {
        RunContext {
            experiment: experiment.to_string(),
            cpu: cpu.to_string(),
            workload: workload.to_string(),
            config: config.to_string(),
        }
    }

    /// Canonical journal / fault-plan key:
    /// `experiment/cpu/workload/[config]`. The config is bracketed so a
    /// fault rule for `[nopti]` does not also match `[nopti mds=off]`.
    pub fn cell_key(&self) -> String {
        if self.config.is_empty() {
            format!("{}/{}/{}", self.experiment, self.cpu, self.workload)
        } else {
            format!("{}/{}/{}/[{}]", self.experiment, self.cpu, self.workload, self.config)
        }
    }

    /// The content-addressed part of the key: `cpu/workload/[config]`,
    /// *without* the experiment segment. A cell's simulated value
    /// depends only on these, so two experiments requesting the same
    /// content key (and seed) share one simulation.
    pub fn content_key(&self) -> String {
        if self.config.is_empty() {
            format!("{}/{}", self.cpu, self.workload)
        } else {
            format!("{}/{}/[{}]", self.cpu, self.workload, self.config)
        }
    }
}

impl fmt::Display for RunContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cell_key())
    }
}

/// Why a measurement cell (or a whole experiment) failed.
///
/// Every variant carries the [`RunContext`] it arose in.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The simulated machine failed (includes instruction-budget
    /// exhaustion, see [`ExperimentError::is_budget_exhausted`]).
    Sim { ctx: RunContext, source: SimError },
    /// The watchdog's wall-clock deadline expired (or a timeout was
    /// injected by the fault plan).
    Timeout { ctx: RunContext, deadline: Duration },
    /// A sandbox verifier (eBPF, JS) rejected the workload.
    VerifierRejected { ctx: RunContext, reason: String },
    /// The statistics layer rejected the samples (NaN / non-finite /
    /// corrupt data).
    DegenerateStatistics { ctx: RunContext, detail: String },
    /// An attribution lattice needs at least `needed` configs.
    InsufficientConfigs { ctx: RunContext, needed: usize, got: usize },
    /// The cell's compute closure panicked; the unwind was caught at the
    /// harness boundary so one buggy cell can never abort the sweep.
    /// Also produced (with a `circuit breaker` message) for cells
    /// short-circuited by an open per-experiment panic breaker.
    Panicked { ctx: RunContext, message: String },
    /// A cell kept failing after exhausting the retry budget; `last` is
    /// the error from the final attempt.
    CellFailed { ctx: RunContext, attempts: u32, last: Box<ExperimentError> },
}

impl ExperimentError {
    /// Wraps a simulator error with its cell context.
    pub fn sim(ctx: &RunContext, source: SimError) -> ExperimentError {
        ExperimentError::Sim { ctx: ctx.clone(), source }
    }

    /// Wraps an architectural fault (e.g. a rejected MSR write) with its
    /// cell context.
    pub fn fault(ctx: &RunContext, fault: uarch::Fault, at: u64) -> ExperimentError {
        ExperimentError::Sim {
            ctx: ctx.clone(),
            source: SimError::UnhandledFault { fault, at },
        }
    }

    /// The context the failure arose in.
    pub fn context(&self) -> &RunContext {
        match self {
            ExperimentError::Sim { ctx, .. }
            | ExperimentError::Timeout { ctx, .. }
            | ExperimentError::VerifierRejected { ctx, .. }
            | ExperimentError::DegenerateStatistics { ctx, .. }
            | ExperimentError::InsufficientConfigs { ctx, .. }
            | ExperimentError::Panicked { ctx, .. }
            | ExperimentError::CellFailed { ctx, .. } => ctx,
        }
    }

    /// True if the root cause is the simulator's instruction budget.
    pub fn is_budget_exhausted(&self) -> bool {
        match self {
            ExperimentError::Sim { source, .. } => {
                matches!(source, SimError::InstructionBudgetExhausted)
            }
            ExperimentError::CellFailed { last, .. } => last.is_budget_exhausted(),
            _ => false,
        }
    }

    /// True if the root cause is a caught panic (directly, or as the
    /// final error of an exhausted retry loop) — what the executor's
    /// per-experiment circuit breaker counts.
    pub fn is_panic(&self) -> bool {
        match self {
            ExperimentError::Panicked { .. } => true,
            ExperimentError::CellFailed { last, .. } => last.is_panic(),
            _ => false,
        }
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Sim { ctx, source } => write!(f, "[{ctx}] simulator: {source}"),
            ExperimentError::Timeout { ctx, deadline } => {
                write!(f, "[{ctx}] watchdog: run exceeded {deadline:?}")
            }
            ExperimentError::VerifierRejected { ctx, reason } => {
                write!(f, "[{ctx}] verifier rejected workload: {reason}")
            }
            ExperimentError::DegenerateStatistics { ctx, detail } => {
                write!(f, "[{ctx}] degenerate statistics: {detail}")
            }
            ExperimentError::InsufficientConfigs { ctx, needed, got } => {
                write!(f, "[{ctx}] need at least {needed} configs, got {got}")
            }
            ExperimentError::Panicked { ctx, message } => {
                write!(f, "[{ctx}] compute closure panicked: {message}")
            }
            ExperimentError::CellFailed { ctx, attempts, last } => {
                write!(f, "[{ctx}] cell failed after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Bounded exponential backoff between retry attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per cell (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff never exceeds this.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Default for `regen`: 3 attempts, 10ms/80ms backoff.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
        }
    }

    /// Retry without sleeping — what tests use.
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts, base_delay: Duration::ZERO, max_delay: Duration::ZERO }
    }

    /// Delay before attempt `attempt` (0-based; attempt 0 has none).
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(16);
        (self.base_delay * factor).min(self.max_delay)
    }
}

/// Per-run resource limits, enforced by the harness (wall clock) and by
/// the simulator via [`Watchdog::instruction_budget`] (instructions).
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// Instruction budget experiment drivers must pass to `Machine::run`
    /// / `Hypervisor::run` for a single measured run.
    pub instruction_budget: u64,
    /// Wall-clock deadline for one attempt at a cell.
    pub wall_deadline: Duration,
}

impl Watchdog {
    /// Defaults sized for the heaviest cell (the VM sweep's 4G-instruction
    /// guest boot) with slack.
    pub fn standard() -> Watchdog {
        Watchdog {
            instruction_budget: 8_000_000_000,
            wall_deadline: Duration::from_secs(120),
        }
    }

    /// The budget capped to `cap` — drivers with a known-cheaper cell use
    /// this so a wedged simulation dies early.
    pub fn instruction_budget(&self, cap: u64) -> u64 {
        self.instruction_budget.min(cap)
    }
}

/// Counters the harness keeps while running a sweep, including the
/// per-phase wall-clock totals the end-of-run summary reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Cells simulated fresh (not satisfied from cache or journal).
    pub cells_run: u64,
    /// Cells served from the in-memory cross-experiment cache.
    pub cells_from_cache: u64,
    /// Cells satisfied from a resume journal without re-measuring.
    pub cells_from_journal: u64,
    /// Total retry attempts across all cells (first attempts excluded).
    pub retries: u64,
    /// Faults delivered by the fault plan.
    pub faults_injected: u64,
    /// Cells that failed permanently (retry budget exhausted).
    pub cells_failed: u64,
    /// Panics caught at the harness boundary (one per panicking
    /// attempt, not per cell).
    pub panics_caught: u64,
    /// Cells short-circuited by an open per-experiment panic breaker
    /// (degraded without burning retry attempts).
    pub breaker_skipped: u64,
    /// Journal appends (or flushes/fsyncs) that failed; nonzero makes
    /// the sweep not clean, because resumability was silently lost.
    pub journal_write_errors: u64,
    /// Journal lines skipped on open because they predate the
    /// seed-aware format (stale: replaying them would be wrong).
    pub journal_stale: u64,
    /// Journal lines rejected on open because their checksum or
    /// structure was wrong mid-file (corruption, never replayed).
    pub journal_corrupt: u64,
    /// Incomplete final journal lines skipped on open (the torn tail of
    /// a crashed writer; expected after a kill, not an error).
    pub journal_truncated: u64,
    /// Cumulative wall time spent inside fresh-cell attempt loops,
    /// summed across workers (so it can exceed the sweep's elapsed
    /// time when `--jobs > 1`).
    pub sim_time: Duration,
    /// Cumulative wall time inside `Executor::execute` (scheduling,
    /// cache pre-pass, and the worker pool), one span per plan.
    pub plan_time: Duration,
}

impl HarnessStats {
    /// The counter deltas since an `earlier` snapshot — what `regen`
    /// uses for its per-artifact accounting.
    pub fn since(&self, earlier: &HarnessStats) -> HarnessStats {
        HarnessStats {
            cells_run: self.cells_run.wrapping_sub(earlier.cells_run),
            cells_from_cache: self.cells_from_cache.wrapping_sub(earlier.cells_from_cache),
            cells_from_journal: self.cells_from_journal.wrapping_sub(earlier.cells_from_journal),
            retries: self.retries.wrapping_sub(earlier.retries),
            faults_injected: self.faults_injected.wrapping_sub(earlier.faults_injected),
            cells_failed: self.cells_failed.wrapping_sub(earlier.cells_failed),
            panics_caught: self.panics_caught.wrapping_sub(earlier.panics_caught),
            breaker_skipped: self.breaker_skipped.wrapping_sub(earlier.breaker_skipped),
            journal_write_errors: self
                .journal_write_errors
                .wrapping_sub(earlier.journal_write_errors),
            journal_stale: self.journal_stale.wrapping_sub(earlier.journal_stale),
            journal_corrupt: self.journal_corrupt.wrapping_sub(earlier.journal_corrupt),
            journal_truncated: self.journal_truncated.wrapping_sub(earlier.journal_truncated),
            sim_time: self.sim_time.saturating_sub(earlier.sim_time),
            plan_time: self.plan_time.saturating_sub(earlier.plan_time),
        }
    }

    /// Adds another snapshot's counters into this one — how a fault
    /// campaign aggregates totals across its many independent sweeps.
    pub fn absorb(&mut self, other: &HarnessStats) {
        self.cells_run += other.cells_run;
        self.cells_from_cache += other.cells_from_cache;
        self.cells_from_journal += other.cells_from_journal;
        self.retries += other.retries;
        self.faults_injected += other.faults_injected;
        self.cells_failed += other.cells_failed;
        self.panics_caught += other.panics_caught;
        self.breaker_skipped += other.breaker_skipped;
        self.journal_write_errors += other.journal_write_errors;
        self.journal_stale += other.journal_stale;
        self.journal_corrupt += other.journal_corrupt;
        self.journal_truncated += other.journal_truncated;
        self.sim_time += other.sim_time;
        self.plan_time += other.plan_time;
    }
}

/// The fault-tolerant cell runner beneath the [`crate::executor`].
/// Cheap to construct; share by reference. `Sync`, so executor workers
/// can drive it concurrently.
#[derive(Debug, Default)]
pub struct Harness {
    /// Retry/backoff schedule.
    pub retry: RetryPolicy,
    /// Per-run resource limits.
    pub watchdog: Watchdog,
    /// Deterministic fault injection (empty by default).
    pub plan: FaultPlan,
    stats: Mutex<HarnessStats>,
    obs: Option<Arc<EventBus>>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::standard()
    }
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog::standard()
    }
}

impl Harness {
    /// A harness with standard retry/watchdog settings and no fault
    /// plan.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Builder: install a fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Harness {
        self.plan = plan;
        self
    }

    /// Builder: install a retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Harness {
        self.retry = retry;
        self
    }

    /// Builder: install a watchdog.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Harness {
        self.watchdog = watchdog;
        self
    }

    /// Builder: attach an observability event bus. The harness then
    /// reports retries, injected faults, and watchdog kills as
    /// [`EventKind`]s in addition to its counters.
    pub fn with_obs(mut self, bus: Arc<EventBus>) -> Harness {
        self.obs = Some(bus);
        self
    }

    /// Installs (or replaces) the event bus after construction — the
    /// executor uses this to share one bus with its harness.
    pub(crate) fn set_obs(&mut self, bus: Arc<EventBus>) {
        self.obs = Some(bus);
    }

    /// The attached event bus, if any.
    pub fn obs(&self) -> Option<&Arc<EventBus>> {
        self.obs.as_ref()
    }

    /// Counters so far.
    pub fn stats(&self) -> HarnessStats {
        *lock(&self.stats)
    }

    /// Emits an event on the attached bus (no-op when none is attached).
    fn emit(&self, ctx: &RunContext, attempt: u32, kind: EventKind) {
        if let Some(bus) = &self.obs {
            bus.emit(&ctx.experiment, &ctx.cell_key(), &ctx.content_key(), attempt, kind);
        }
    }

    pub(crate) fn note_cache_hit(&self) {
        lock(&self.stats).cells_from_cache += 1;
    }

    pub(crate) fn note_journal_hit(&self) {
        lock(&self.stats).cells_from_journal += 1;
    }

    /// Adds one `Executor::execute` span to the plan-time total.
    pub(crate) fn note_plan_time(&self, d: Duration) {
        lock(&self.stats).plan_time += d;
    }

    /// Counts a failed journal append/flush/fsync (the executor also
    /// emits the matching event with its cell context).
    pub(crate) fn note_journal_write_error(&self) {
        lock(&self.stats).journal_write_errors += 1;
    }

    /// Counts a fault delivered outside the attempt loop (the I/O-layer
    /// kinds, injected by the executor on the journal write path).
    pub(crate) fn note_fault_injected(&self) {
        lock(&self.stats).faults_injected += 1;
    }

    /// Counts a cell degraded by an open panic circuit breaker.
    pub(crate) fn note_breaker_skipped(&self) {
        let mut stats = lock(&self.stats);
        stats.breaker_skipped += 1;
        stats.cells_failed += 1;
    }

    /// Folds a journal's open-time line classification into the sweep
    /// counters, so fsck-able damage shows up in the end-of-run summary
    /// and the metrics exposition.
    pub(crate) fn note_journal_scan(&self, scan: &JournalScan) {
        let mut stats = lock(&self.stats);
        stats.journal_stale += scan.stale;
        stats.journal_corrupt += scan.corrupt;
        stats.journal_truncated += scan.truncated;
    }

    /// Runs one plan cell's compute closure with fault injection,
    /// watchdog, and retry; returns the value (or permanent failure)
    /// plus the number of extra attempts used. Degenerate values
    /// (non-finite floats) are rejected and retried like any other
    /// failure, so corrupt data cannot reach a table.
    pub(crate) fn run_value(
        &self,
        ctx: &RunContext,
        f: impl Fn(u32) -> Result<CellValue, ExperimentError>,
    ) -> (Result<CellValue, ExperimentError>, u32) {
        let started = Instant::now();
        let result = self.attempt_loop(ctx, |attempt| {
            let v = f(attempt)?;
            if v.is_degenerate() {
                return Err(ExperimentError::DegenerateStatistics {
                    ctx: ctx.clone(),
                    detail: format!("non-finite value in {} cell", v.kind()),
                });
            }
            Ok(v)
        });
        let elapsed = started.elapsed();
        match result {
            Ok((v, attempt)) => {
                let mut stats = lock(&self.stats);
                stats.cells_run += 1;
                stats.sim_time += elapsed;
                drop(stats);
                (Ok(v), attempt)
            }
            Err(e) => {
                let mut stats = lock(&self.stats);
                stats.cells_failed += 1;
                stats.sim_time += elapsed;
                drop(stats);
                (Err(e), self.retry.max_attempts.max(1) - 1)
            }
        }
    }

    /// Runs one measurement cell with fault injection, watchdog, and
    /// retry.
    ///
    /// The closure receives the attempt index (0-based). On success the
    /// measurement's `retries` field records how many extra attempts
    /// were needed. Experiment drivers no longer call this directly —
    /// they produce [`crate::plan::ExperimentPlan`]s — but it remains
    /// the primitive for one-off measurements and tests.
    pub fn run_cell(
        &self,
        ctx: &RunContext,
        mut f: impl FnMut(u32) -> Result<Measurement, ExperimentError>,
    ) -> Result<Measurement, ExperimentError> {
        let started = Instant::now();
        let result = self.attempt_loop(ctx, |attempt| {
            let mut m = f(attempt)?;
            m.retries = attempt;
            if !m.mean.is_finite() || !m.ci95.is_finite() {
                return Err(ExperimentError::DegenerateStatistics {
                    ctx: ctx.clone(),
                    detail: format!("non-finite measurement (mean {}, ci95 {})", m.mean, m.ci95),
                });
            }
            Ok(m)
        });
        let elapsed = started.elapsed();
        match result {
            Ok((m, _)) => {
                let mut stats = lock(&self.stats);
                stats.cells_run += 1;
                stats.sim_time += elapsed;
                drop(stats);
                Ok(m)
            }
            Err(e) => {
                let mut stats = lock(&self.stats);
                stats.cells_failed += 1;
                stats.sim_time += elapsed;
                drop(stats);
                Err(e)
            }
        }
    }

    /// Runs a non-measurement computation (e.g. a speculation probe or a
    /// table row) with the same fault injection, watchdog, and retry.
    pub fn run_attempts<T>(
        &self,
        ctx: &RunContext,
        f: impl FnMut(u32) -> Result<T, ExperimentError>,
    ) -> Result<T, ExperimentError> {
        match self.attempt_loop(ctx, f) {
            Ok((v, _)) => Ok(v),
            Err(e) => {
                lock(&self.stats).cells_failed += 1;
                Err(e)
            }
        }
    }

    /// The retry loop. On success returns the value together with the
    /// 0-based attempt index that produced it.
    ///
    /// Every call into the compute closure runs under `catch_unwind`:
    /// a panicking cell is mapped to [`ExperimentError::Panicked`] and
    /// flows through the same retry/degrade path as any other failure,
    /// so one buggy closure can never abort the whole sweep.
    fn attempt_loop<T>(
        &self,
        ctx: &RunContext,
        mut f: impl FnMut(u32) -> Result<T, ExperimentError>,
    ) -> Result<(T, u32), ExperimentError> {
        let key = ctx.cell_key();
        let mut last: Option<ExperimentError> = None;
        let mut guarded = |attempt: u32, force_panic: bool| -> Result<T, ExperimentError> {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if force_panic {
                    panic!("injected panic (fault plan)");
                }
                f(attempt)
            }));
            match caught {
                Ok(r) => r,
                Err(payload) => {
                    lock(&self.stats).panics_caught += 1;
                    self.emit(ctx, attempt, EventKind::PanicCaught);
                    Err(ExperimentError::Panicked {
                        ctx: ctx.clone(),
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        };
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                lock(&self.stats).retries += 1;
                self.emit(ctx, attempt, EventKind::Retry);
                let delay = self.retry.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            let injected = self.plan.inject(&key, attempt);
            if let Some(fault) = injected {
                lock(&self.stats).faults_injected += 1;
                self.emit(ctx, attempt, EventKind::FaultInjected { fault });
            }
            let outcome = match injected {
                Some(FaultKind::SimFault) => Err(ExperimentError::Sim {
                    ctx: ctx.clone(),
                    source: SimError::UnhandledFault {
                        fault: uarch::Fault::GeneralProtection,
                        at: 0,
                    },
                }),
                Some(FaultKind::Timeout) => Err(ExperimentError::Timeout {
                    ctx: ctx.clone(),
                    deadline: self.watchdog.wall_deadline,
                }),
                Some(FaultKind::CorruptSample) => {
                    // Let the run complete, then garble its result: the
                    // harness's own non-finite guard (or the caller's)
                    // must catch it, proving corrupt data cannot leak
                    // into a table.
                    guarded(attempt, false).and_then(|_| {
                        Err(ExperimentError::DegenerateStatistics {
                            ctx: ctx.clone(),
                            detail: "injected corrupt sample".to_string(),
                        })
                    })
                }
                Some(FaultKind::PanicFault) => guarded(attempt, true),
                // I/O-layer kinds never reach the compute path (the
                // fault plan routes them to `inject_io`), but a match
                // arm keeps the compiler honest if one slips through.
                Some(FaultKind::TornWrite) | Some(FaultKind::JournalCorrupt) => {
                    guarded(attempt, false)
                }
                None => {
                    let started = Instant::now();
                    let r = guarded(attempt, false);
                    if r.is_ok() && started.elapsed() > self.watchdog.wall_deadline {
                        self.emit(ctx, attempt, EventKind::WatchdogFired);
                        Err(ExperimentError::Timeout {
                            ctx: ctx.clone(),
                            deadline: self.watchdog.wall_deadline,
                        })
                    } else {
                        r
                    }
                }
            };
            match outcome {
                Ok(v) => return Ok((v, attempt)),
                Err(e) => last = Some(e),
            }
        }
        let attempts = self.retry.max_attempts.max(1);
        let last = last.unwrap_or(ExperimentError::Timeout {
            ctx: ctx.clone(),
            deadline: self.watchdog.wall_deadline,
        });
        Err(ExperimentError::CellFailed { ctx: ctx.clone(), attempts, last: Box::new(last) })
    }
}

/// Converts a caught panic payload into a displayable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The header line a freshly created v2 journal starts with.
pub const JOURNAL_HEADER_V2: &str = "#regen-journal v2";

/// How `Journal::open` / `fsck` classified one journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum LineClass {
    /// A parseable cell entry (v2 with a matching checksum, or a legacy
    /// v1 line carrying seed and kind).
    Valid(String, u64, CellValue),
    /// The format header (`#regen-journal v2`).
    Header,
    /// A blank line (ignored, not counted).
    Blank,
    /// A pre-seed-format line: structurally sound but recorded before
    /// cells were keyed by seed, so replaying it would be wrong.
    Stale,
    /// The incomplete final line of a killed writer (no closing brace /
    /// short header); expected after a crash, recovered by re-running.
    TruncatedTail,
    /// A line whose checksum or structure is wrong anywhere else —
    /// corruption that fsck quarantines.
    Corrupt,
}

/// Per-class line counts from loading a journal file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalScan {
    /// Valid cell entries loaded (later duplicates overwrite earlier
    /// ones, so this can exceed the entry count).
    pub valid: u64,
    /// Stale pre-seed-format lines skipped.
    pub stale: u64,
    /// Torn final lines skipped.
    pub truncated: u64,
    /// Checksum/structure failures skipped.
    pub corrupt: u64,
}

impl JournalScan {
    /// True if every line was valid (or header/blank).
    pub fn is_clean(&self) -> bool {
        self.stale == 0 && self.truncated == 0 && self.corrupt == 0
    }
}

/// Renders one completed cell as the journal's payload JSON object:
/// `{"cell":"...","seed":N,"kind":"...",...}`. This is the same shape a
/// v2 journal line carries (minus the checksum framing), so the serving
/// layer's `GET /cell/...` responses and the on-disk resume format
/// cannot drift apart.
pub fn cell_value_json(key: &str, seed: u64, v: &CellValue) -> String {
    format!(
        "{{\"cell\":\"{}\",\"seed\":{},\"kind\":\"{}\",{}}}",
        escape_json(key),
        seed,
        v.kind(),
        journal_value_fields(v)
    )
}

/// Encodes one cell entry as a v2 journal line (with trailing newline):
/// `v2 <crc32-of-payload, 8 hex digits> <payload JSON>`.
fn encode_v2_line(key: &str, seed: u64, v: &CellValue) -> String {
    let payload = cell_value_json(key, seed, v);
    format!("v2 {:08x} {}\n", crc32(payload.as_bytes()), payload)
}

/// Classifies one journal line. `is_last` enables the torn-tail
/// heuristic: only the final line of a file can be an expected
/// crash artifact; the same damage mid-file is corruption.
pub fn classify_line(line: &str, is_last: bool) -> LineClass {
    let trimmed = line.trim_end_matches('\r');
    if trimmed.trim().is_empty() {
        return LineClass::Blank;
    }
    if let Some(rest) = trimmed.strip_prefix("#regen-journal ") {
        if rest.trim() == "v2" {
            return LineClass::Header;
        }
        return LineClass::Corrupt;
    }
    if let Some(rest) = trimmed.strip_prefix("v2 ") {
        // `<crc8hex> <payload>`; anything structurally short on the
        // final line is a torn write.
        let (crc_hex, payload) = match rest.split_once(' ') {
            Some(pair) => pair,
            None => {
                return if is_last { LineClass::TruncatedTail } else { LineClass::Corrupt }
            }
        };
        // The writer emits exactly 8 lowercase hex digits; accepting
        // case-insensitive hex would let a one-bit flip ('a' -> 'A')
        // produce a different byte that still parses to the same
        // checksum, breaking the every-single-byte-corruption-detected
        // property.
        if crc_hex.len() != 8
            || !crc_hex.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return if is_last { LineClass::TruncatedTail } else { LineClass::Corrupt };
        }
        let declared = match u32::from_str_radix(crc_hex, 16) {
            Ok(c) => c,
            Err(_) => {
                return if is_last { LineClass::TruncatedTail } else { LineClass::Corrupt }
            }
        };
        if crc32(payload.as_bytes()) != declared {
            // A torn tail is a *prefix* of a valid line, so it cannot
            // end in the closing brace; a bit-flip keeps the brace.
            return if is_last && !payload.ends_with('}') {
                LineClass::TruncatedTail
            } else {
                LineClass::Corrupt
            };
        }
        return match parse_journal_line(payload) {
            Some((key, seed, v)) => LineClass::Valid(key, seed, v),
            None => LineClass::Corrupt,
        };
    }
    if trimmed.starts_with("{\"cell\":\"") {
        // Legacy v1 line (no checksum). Replay it if it carries seed
        // and kind; the pre-plan format without them is stale.
        if let Some((key, seed, v)) = parse_journal_line(trimmed) {
            return LineClass::Valid(key, seed, v);
        }
        if trimmed.ends_with('}') && extract_string_field(trimmed, "cell").is_some() {
            return LineClass::Stale;
        }
        return if is_last { LineClass::TruncatedTail } else { LineClass::Corrupt };
    }
    if is_last {
        LineClass::TruncatedTail
    } else {
        LineClass::Corrupt
    }
}

/// JSON-lines journal of completed cells, keyed by **content key and
/// seed**.
///
/// Format v2 prefixes every entry with a CRC-32 over its payload and
/// starts fresh files with a [`JOURNAL_HEADER_V2`] line:
///
/// ```text
/// #regen-journal v2
/// v2 91a3c7f0 {"cell":"Broadwell (...)/lebench/[nopti]","seed":0,"kind":"meas","mean":1.083,"ci95":0.004,"n":12,"retries":1}
/// ```
///
/// Raw-value payloads use `kind` `num`, `nums`, `optnums`, `ints`, or
/// `flags` with a `"v":[...]` array (`null` marks a not-applicable
/// entry). Hand-rolled (the workspace carries no serde); the writer
/// escapes and the reader accepts exactly this shape, tolerating
/// unknown trailing fields. Legacy v1 lines (bare JSON, no checksum)
/// still replay; pre-seed-format lines are counted stale and skipped —
/// a resumed sweep must never reuse a value recorded under different
/// seeding. Every line is classified on open ([`classify_line`]) and
/// the per-class counts are kept in [`JournalScan`].
///
/// Durability: appends go through a buffered writer that is flushed
/// after every cell ([`Journal::record`]) and fsynced at plan
/// boundaries ([`Journal::sync`]), bounding loss after SIGKILL to the
/// cells of the current plan and after power loss to the current plan's
/// flush window.
#[derive(Debug, Default)]
pub struct Journal {
    path: Option<PathBuf>,
    entries: Mutex<HashMap<(String, u64), CellValue>>,
    file: Mutex<Option<BufWriter<File>>>,
    scan: JournalScan,
}

impl Journal {
    /// An in-memory journal (tests, or sweeps that only want dedup).
    pub fn in_memory() -> Journal {
        Journal::default()
    }

    /// Opens (or creates) a journal file, loading any completed cells
    /// already recorded in it and classifying every line as valid /
    /// stale / truncated-tail / corrupt. When anything other than valid
    /// lines is found, a one-line warning naming the path and counts is
    /// printed — a resumed sweep must never silently drop work.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let mut entries = HashMap::new();
        let mut scan = JournalScan::default();
        let mut had_content = false;
        match std::fs::read_to_string(path) {
            Ok(text) => {
                had_content = !text.is_empty();
                // A file ending exactly at a newline has no torn tail.
                let complete_tail = text.ends_with('\n');
                let lines: Vec<&str> = text.lines().collect();
                let n = lines.len();
                for (i, line) in lines.iter().enumerate() {
                    let is_last = i + 1 == n && !complete_tail;
                    match classify_line(line, is_last) {
                        LineClass::Valid(key, seed, v) => {
                            scan.valid += 1;
                            entries.insert((key, seed), v);
                        }
                        LineClass::Stale => scan.stale += 1,
                        LineClass::TruncatedTail => scan.truncated += 1,
                        LineClass::Corrupt => scan.corrupt += 1,
                        LineClass::Header | LineClass::Blank => {}
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if !scan.is_clean() {
            eprintln!(
                "warning: journal {}: skipped {} stale, {} corrupt, {} truncated line(s); \
                 affected cells will re-run (run `regen fsck` to quarantine and compact)",
                path.display(),
                scan.stale,
                scan.corrupt,
                scan.truncated
            );
        }
        let mut file = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
        if !had_content {
            file.write_all(JOURNAL_HEADER_V2.as_bytes())?;
            file.write_all(b"\n")?;
            file.flush()?;
        }
        Ok(Journal {
            path: Some(path.to_path_buf()),
            entries: Mutex::new(entries),
            file: Mutex::new(Some(file)),
            scan,
        })
    }

    /// Where this journal persists, if anywhere.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The per-class line counts from open time.
    pub fn scan(&self) -> &JournalScan {
        &self.scan
    }

    /// Number of completed cells on record.
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// True if no cells are on record.
    pub fn is_empty(&self) -> bool {
        lock(&self.entries).is_empty()
    }

    /// The recorded value for `key`, if the cell completed **under the
    /// same seed**. An entry journaled with a different seed is stale
    /// and never returned.
    pub fn lookup(&self, key: &str, seed: u64) -> Option<CellValue> {
        lock(&self.entries).get(&(key.to_string(), seed)).cloned()
    }

    /// Every completed cell on record, sorted by `(key, seed)` — the
    /// deterministic cell census a fault campaign enumerates its
    /// coordinate space from. Workers append in nondeterministic order;
    /// sorting here is what makes the campaign's space stable.
    pub fn entries(&self) -> Vec<((String, u64), CellValue)> {
        let mut out: Vec<((String, u64), CellValue)> = lock(&self.entries)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Records a completed cell: inserts it in memory, appends a v2
    /// line to the backing file (if any), and flushes so a subsequent
    /// SIGKILL cannot lose it from the OS's point of view. The caller
    /// (the executor) counts and reports failures; losing a journal
    /// line only costs a re-measurement, never the sweep.
    pub fn record(&self, key: &str, seed: u64, v: &CellValue) -> std::io::Result<()> {
        self.record_damaged(key, seed, v, None)
    }

    /// [`Journal::record`] with an optional injected I/O fault applied
    /// to the bytes that reach disk. The in-memory entry is stored
    /// intact either way — only durability is damaged, exactly like a
    /// real torn write.
    pub fn record_damaged(
        &self,
        key: &str,
        seed: u64,
        v: &CellValue,
        damage: Option<WriteDamage>,
    ) -> std::io::Result<()> {
        lock(&self.entries).insert((key.to_string(), seed), v.clone());
        if let Some(file) = lock(&self.file).as_mut() {
            let line = encode_v2_line(key, seed, v);
            match damage {
                None => file.write_all(line.as_bytes())?,
                Some(d) => file.write_all(&d.apply(&line))?,
            }
            file.flush()?;
        }
        Ok(())
    }

    /// Fsyncs the backing file — called by the executor at plan
    /// boundaries so a power loss cannot roll back past the last
    /// completed plan.
    pub fn sync(&self) -> std::io::Result<()> {
        if let Some(file) = lock(&self.file).as_mut() {
            file.flush()?;
            file.get_ref().sync_data()?;
        }
        Ok(())
    }
}

/// The verdict of [`fsck_journal`] on one journal file.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Per-class line counts over the whole file.
    pub scan: JournalScan,
    /// Distinct (cell, seed) entries surviving compaction.
    pub entries: u64,
    /// Where quarantined (corrupt + truncated) raw lines were written,
    /// when there were any.
    pub quarantine: Option<PathBuf>,
}

impl FsckReport {
    /// Exit-code severity: 0 = every line valid; 1 = recoverable crash
    /// artifacts only (stale / torn tail); 2 = checksum or structural
    /// corruption found.
    pub fn severity(&self) -> u8 {
        if self.scan.corrupt > 0 {
            2
        } else if self.scan.stale > 0 || self.scan.truncated > 0 {
            1
        } else {
            0
        }
    }
}

/// Verifies and repairs a journal file:
///
/// 1. classifies every line ([`classify_line`]);
/// 2. writes corrupt and truncated raw lines to `<journal>.quarantine`
///    (appending, so repeated fsck runs keep earlier evidence);
/// 3. atomically rewrites the journal compacted — header plus one v2
///    line per surviving (cell, seed) entry, legacy v1 lines upgraded.
///
/// The rewrite goes through [`atomic_write`], so a crash mid-fsck
/// leaves the original journal untouched.
pub fn fsck_journal(path: &Path) -> std::io::Result<FsckReport> {
    let text = std::fs::read_to_string(path)?;
    let complete_tail = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let n = lines.len();
    let mut scan = JournalScan::default();
    let mut entries: Vec<((String, u64), CellValue)> = Vec::new();
    let mut seen: HashMap<(String, u64), usize> = HashMap::new();
    let mut bad_lines = String::new();
    for (i, line) in lines.iter().enumerate() {
        let is_last = i + 1 == n && !complete_tail;
        match classify_line(line, is_last) {
            LineClass::Valid(key, seed, v) => {
                scan.valid += 1;
                let k = (key, seed);
                match seen.get(&k) {
                    // A later duplicate wins, matching Journal::open.
                    Some(&at) => entries[at].1 = v,
                    None => {
                        seen.insert(k.clone(), entries.len());
                        entries.push((k, v));
                    }
                }
            }
            LineClass::Stale => scan.stale += 1,
            LineClass::TruncatedTail => {
                scan.truncated += 1;
                bad_lines.push_str(line);
                bad_lines.push('\n');
            }
            LineClass::Corrupt => {
                scan.corrupt += 1;
                bad_lines.push_str(line);
                bad_lines.push('\n');
            }
            LineClass::Header | LineClass::Blank => {}
        }
    }

    let mut quarantine = None;
    if !bad_lines.is_empty() {
        let qpath = PathBuf::from(format!("{}.quarantine", path.display()));
        let mut q = OpenOptions::new().create(true).append(true).open(&qpath)?;
        q.write_all(bad_lines.as_bytes())?;
        q.sync_all()?;
        quarantine = Some(qpath);
    }

    let mut compacted = String::from(JOURNAL_HEADER_V2);
    compacted.push('\n');
    for ((key, seed), v) in &entries {
        compacted.push_str(&encode_v2_line(key, *seed, v));
    }
    atomic_write(path, compacted.as_bytes())?;

    Ok(FsckReport { scan, entries: entries.len() as u64, quarantine })
}

/// Serializes a cell value's payload fields (everything after `kind`).
fn journal_value_fields(v: &CellValue) -> String {
    fn join<T, F: Fn(&T) -> String>(xs: &[T], f: F) -> String {
        xs.iter().map(f).collect::<Vec<_>>().join(",")
    }
    match v {
        CellValue::Measurement(m) => format!(
            "\"mean\":{},\"ci95\":{},\"n\":{},\"retries\":{}",
            m.mean, m.ci95, m.n, m.retries
        ),
        CellValue::Num(x) => format!("\"v\":[{x}]"),
        CellValue::Nums(xs) => format!("\"v\":[{}]", join(xs, |x| x.to_string())),
        CellValue::OptNums(xs) => format!(
            "\"v\":[{}]",
            join(xs, |x| x.map(|x| x.to_string()).unwrap_or_else(|| "null".to_string()))
        ),
        CellValue::Ints(xs) => format!("\"v\":[{}]", join(xs, |x| x.to_string())),
        CellValue::Flags(xs) => format!(
            "\"v\":[{}]",
            join(xs, |x| match x {
                Some(true) => "1".to_string(),
                Some(false) => "0".to_string(),
                None => "null".to_string(),
            })
        ),
    }
}

/// Escapes a string for embedding in the hand-rolled JSON the journal,
/// the trace writer, and the metrics exposition emit.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Parses one journal line; `None` for malformed input (a truncated
/// final line from a killed run, or a stale pre-seed-format line, is
/// expected, not an error).
fn parse_journal_line(line: &str) -> Option<(String, u64, CellValue)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let cell_raw = extract_string_field(line, "cell")?;
    let seed = extract_number_field(line, "seed")? as u64;
    let kind = extract_string_field(line, "kind")?;
    let value = match kind.as_str() {
        "meas" => {
            let mean = extract_number_field(line, "mean")?;
            let ci95 = extract_number_field(line, "ci95")?;
            let n = extract_number_field(line, "n")? as u64;
            let retries = extract_number_field(line, "retries").unwrap_or(0.0) as u32;
            CellValue::Measurement(Measurement { mean, ci95, n, retries })
        }
        "num" => {
            let xs = extract_array_tokens(line, "v")?;
            if xs.len() != 1 {
                return None;
            }
            CellValue::Num(xs[0].parse().ok()?)
        }
        "nums" => CellValue::Nums(
            extract_array_tokens(line, "v")?
                .iter()
                .map(|t| t.parse::<f64>().ok())
                .collect::<Option<Vec<_>>>()?,
        ),
        "optnums" => CellValue::OptNums(
            extract_array_tokens(line, "v")?
                .iter()
                .map(|t| {
                    if t == "null" {
                        Some(None)
                    } else {
                        t.parse::<f64>().ok().map(Some)
                    }
                })
                .collect::<Option<Vec<_>>>()?,
        ),
        "ints" => CellValue::Ints(
            extract_array_tokens(line, "v")?
                .iter()
                .map(|t| t.parse::<u64>().ok())
                .collect::<Option<Vec<_>>>()?,
        ),
        "flags" => CellValue::Flags(
            extract_array_tokens(line, "v")?
                .iter()
                .map(|t| match t.as_str() {
                    "1" => Some(Some(true)),
                    "0" => Some(Some(false)),
                    "null" => Some(None),
                    _ => None,
                })
                .collect::<Option<Vec<_>>>()?,
        ),
        _ => return None,
    };
    if value.is_degenerate() {
        return None;
    }
    Some((unescape_json(&cell_raw), seed, value))
}

/// Extracts the raw (still-escaped) value of `"name":"..."`.
fn extract_string_field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_string()),
            _ => end += 1,
        }
    }
    None
}

fn extract_number_field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the comma-separated raw tokens of `"name":[...]`.
fn extract_array_tokens(line: &str, name: &str) -> Option<Vec<String>> {
    let tag = format!("\"{name}\":[");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    Some(body.split(',').map(|t| t.trim().to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};

    fn ctx() -> RunContext {
        RunContext::new("figure2", "Broadwell", "lebench", "nopti")
    }

    fn ok_measurement(_attempt: u32) -> Result<Measurement, ExperimentError> {
        Ok(Measurement { mean: 1.5, ci95: 0.01, n: 10, retries: 0 })
    }

    #[test]
    fn cell_key_brackets_config() {
        assert_eq!(ctx().cell_key(), "figure2/Broadwell/lebench/[nopti]");
        let no_config = RunContext::new("vm", "Zen 3", "boot", "");
        assert_eq!(no_config.cell_key(), "vm/Zen 3/boot");
    }

    #[test]
    fn content_key_drops_only_the_experiment() {
        assert_eq!(ctx().content_key(), "Broadwell/lebench/[nopti]");
        let no_config = RunContext::new("vm", "Zen 3", "boot", "");
        assert_eq!(no_config.content_key(), "Zen 3/boot");
    }

    #[test]
    fn clean_run_is_untouched() {
        let h = Harness::new().with_retry(RetryPolicy::immediate(3));
        let m = h.run_cell(&ctx(), ok_measurement).unwrap();
        assert_eq!(m.retries, 0);
        let s = h.stats();
        assert_eq!((s.cells_run, s.retries, s.faults_injected), (1, 0, 0));
    }

    #[test]
    fn transient_fault_is_retried_and_counted() {
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::SimFault, Some(2));
        let h = Harness::new().with_retry(RetryPolicy::immediate(4)).with_plan(plan);
        let m = h.run_cell(&ctx(), ok_measurement).unwrap();
        assert_eq!(m.retries, 2, "succeeded on the third attempt");
        let s = h.stats();
        assert_eq!((s.retries, s.faults_injected, s.cells_failed), (2, 2, 0));
    }

    #[test]
    fn permanent_fault_exhausts_retries() {
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::Timeout, None);
        let h = Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan);
        let err = h.run_cell(&ctx(), ok_measurement).unwrap_err();
        match &err {
            ExperimentError::CellFailed { attempts, last, .. } => {
                assert_eq!(*attempts, 3);
                assert!(matches!(**last, ExperimentError::Timeout { .. }));
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(err.context().config, "nopti");
        assert_eq!(h.stats().cells_failed, 1);
    }

    #[test]
    fn corrupt_sample_is_rejected_then_recovered() {
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::CorruptSample, Some(1));
        let h = Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan);
        let m = h.run_cell(&ctx(), ok_measurement).unwrap();
        assert_eq!(m.retries, 1);
    }

    #[test]
    fn nonfinite_measurement_is_degenerate() {
        let h = Harness::new().with_retry(RetryPolicy::immediate(2));
        let err = h
            .run_cell(&ctx(), |_| Ok(Measurement { mean: f64::NAN, ci95: 0.0, n: 5, retries: 0 }))
            .unwrap_err();
        match err {
            ExperimentError::CellFailed { last, .. } => {
                assert!(matches!(*last, ExperimentError::DegenerateStatistics { .. }))
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn run_value_rejects_degenerate_values_and_reports_retries() {
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::SimFault, Some(1));
        let h = Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan);
        let (v, retries) = h.run_value(&ctx(), |_| Ok(CellValue::Num(2.0)));
        assert_eq!(v.unwrap(), CellValue::Num(2.0));
        assert_eq!(retries, 1);

        let h = Harness::new().with_retry(RetryPolicy::immediate(2));
        let (v, _) = h.run_value(&ctx(), |_| Ok(CellValue::Num(f64::NAN)));
        assert!(matches!(v, Err(ExperimentError::CellFailed { .. })));
        assert_eq!(h.stats().cells_failed, 1);
    }

    #[test]
    fn journal_roundtrips_every_value_kind() {
        let dir = std::env::temp_dir().join(format!("spectrebench-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let _ = std::fs::remove_file(&path);

        let values: Vec<(&str, u64, CellValue)> = vec![
            ("a/le/[nopti]", 0, CellValue::Measurement(Measurement { mean: 1.5, ci95: 0.01, n: 10, retries: 1 })),
            ("a/le \"q\"", 3, CellValue::Num(2.5)),
            ("a/nums", 1, CellValue::Nums(vec![1.0, -2.5])),
            ("a/opt", 1, CellValue::OptNums(vec![Some(4.0), None])),
            ("a/ints", 9, CellValue::Ints(vec![7, 0, 123_456_789_000])),
            ("a/flags", 2, CellValue::Flags(vec![Some(true), Some(false), None])),
        ];
        {
            let j = Journal::open(&path).unwrap();
            for (k, s, v) in &values {
                j.record(k, *s, v).unwrap();
            }
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), values.len());
        for (k, s, v) in &values {
            assert_eq!(j.lookup(k, *s).as_ref(), Some(v), "{k}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_lookup_requires_a_matching_seed() {
        // Regression test: resume used to match cells by key alone, so a
        // sweep re-run under different seeding replayed stale values.
        let j = Journal::in_memory();
        j.record("Broadwell/lebench", 1, &CellValue::Num(10.0)).unwrap();
        assert_eq!(j.lookup("Broadwell/lebench", 2), None, "stale seed is skipped");
        assert_eq!(j.lookup("Broadwell/lebench", 1), Some(CellValue::Num(10.0)));
    }

    #[test]
    fn journal_skips_truncated_and_legacy_lines() {
        assert!(parse_journal_line("{\"cell\":\"a/b\",\"seed\":0,\"kind\":\"num\",\"v\":[1").is_none());
        assert!(parse_journal_line("").is_none());
        // The pre-plan format carried no seed or kind: stale, skipped.
        assert!(
            parse_journal_line("{\"cell\":\"a/b/c\",\"mean\":1.0,\"ci95\":0.1,\"n\":7,\"retries\":0}")
                .is_none()
        );
        let (key, seed, v) = parse_journal_line(
            "{\"cell\":\"a/b \\\"q\\\"\",\"seed\":4,\"kind\":\"meas\",\"mean\":2.5,\"ci95\":0.1,\"n\":7,\"retries\":3}",
        )
        .unwrap();
        assert_eq!(key, "a/b \"q\"");
        assert_eq!(seed, 4);
        assert_eq!(
            v,
            CellValue::Measurement(Measurement { mean: 2.5, ci95: 0.1, n: 7, retries: 3 })
        );
    }

    #[test]
    fn classify_line_covers_every_class() {
        let valid = encode_v2_line("a/b", 3, &CellValue::Num(1.5));
        let valid = valid.trim_end();
        assert!(matches!(classify_line(valid, false), LineClass::Valid(..)));
        assert_eq!(classify_line(JOURNAL_HEADER_V2, false), LineClass::Header);
        assert_eq!(classify_line("", false), LineClass::Blank);
        assert_eq!(classify_line("   ", false), LineClass::Blank);
        // Legacy v1 with seed+kind replays; pre-seed v1 is stale.
        assert!(matches!(
            classify_line("{\"cell\":\"a/b\",\"seed\":0,\"kind\":\"num\",\"v\":[2]}", false),
            LineClass::Valid(..)
        ));
        assert_eq!(
            classify_line("{\"cell\":\"a/b\",\"mean\":1.0,\"ci95\":0.1,\"n\":7,\"retries\":0}", false),
            LineClass::Stale
        );
        // A torn prefix of a valid v2 line: tail => truncated, mid-file
        // => corrupt.
        let torn = &valid[..valid.len() * 2 / 3];
        assert_eq!(classify_line(torn, true), LineClass::TruncatedTail);
        assert_eq!(classify_line(torn, false), LineClass::Corrupt);
        // A bit-flip keeps the closing brace, so even on the tail it is
        // corruption, not a crash artifact.
        let mut flipped = valid.as_bytes().to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        let flipped = String::from_utf8(flipped).unwrap();
        assert_eq!(classify_line(&flipped, true), LineClass::Corrupt);
        assert_eq!(classify_line(&flipped, false), LineClass::Corrupt);
        // A bad header version is corruption.
        assert_eq!(classify_line("#regen-journal v9", false), LineClass::Corrupt);
    }

    #[test]
    fn journal_open_counts_damage_and_skips_it() {
        let dir = std::env::temp_dir().join(format!("sb-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.jsonl");
        let good = encode_v2_line("a/good", 1, &CellValue::Num(4.0));
        let other = encode_v2_line("a/other", 1, &CellValue::Num(5.0));
        let mut text = String::from(JOURNAL_HEADER_V2);
        text.push('\n');
        text.push_str(&good);
        // Mid-file bit-flip: corrupt.
        let mut flipped = other.trim_end().as_bytes().to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        text.push_str(&String::from_utf8(flipped).unwrap());
        text.push('\n');
        // Stale pre-seed v1 line.
        text.push_str("{\"cell\":\"a/stale\",\"mean\":1.0,\"ci95\":0.1,\"n\":7,\"retries\":0}\n");
        // Torn tail: prefix of a valid line, no trailing newline.
        let torn_src = encode_v2_line("a/torn", 1, &CellValue::Num(6.0));
        text.push_str(&torn_src[..torn_src.len() * 2 / 3]);
        std::fs::write(&path, &text).unwrap();

        let j = Journal::open(&path).unwrap();
        let scan = *j.scan();
        assert_eq!(
            (scan.valid, scan.stale, scan.corrupt, scan.truncated),
            (1, 1, 1, 1),
            "{scan:?}"
        );
        assert_eq!(j.lookup("a/good", 1), Some(CellValue::Num(4.0)));
        assert_eq!(j.lookup("a/other", 1), None, "corrupt line must not replay");
        assert_eq!(j.lookup("a/torn", 1), None, "torn line must not replay");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsck_quarantines_damage_and_compacts() {
        let dir = std::env::temp_dir().join(format!("sb-fsck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fsck.jsonl");

        // Clean journal => severity 0, no quarantine file.
        let mut text = String::from(JOURNAL_HEADER_V2);
        text.push('\n');
        text.push_str(&encode_v2_line("a/x", 1, &CellValue::Num(1.0)));
        std::fs::write(&path, &text).unwrap();
        let report = fsck_journal(&path).unwrap();
        assert_eq!(report.severity(), 0);
        assert_eq!(report.entries, 1);
        assert!(report.quarantine.is_none());

        // Duplicate entries compact to one, later value winning; a
        // legacy v1 line upgrades to v2.
        text.push_str(&encode_v2_line("a/x", 1, &CellValue::Num(2.0)));
        text.push_str("{\"cell\":\"a/v1\",\"seed\":0,\"kind\":\"num\",\"v\":[7]}\n");
        // Corrupt line => severity 2 + quarantine.
        let mut flipped = encode_v2_line("a/bad", 1, &CellValue::Num(9.0)).trim_end().as_bytes().to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        text.push_str(&String::from_utf8(flipped).unwrap());
        text.push('\n');
        std::fs::write(&path, &text).unwrap();
        let report = fsck_journal(&path).unwrap();
        assert_eq!(report.severity(), 2);
        assert_eq!(report.entries, 2, "a/x compacted + a/v1 upgraded");
        assert_eq!((report.scan.valid, report.scan.corrupt), (3, 1));
        let qpath = report.quarantine.unwrap();
        assert!(std::fs::read_to_string(&qpath).unwrap().contains("a/bad") || !std::fs::read_to_string(&qpath).unwrap().is_empty());

        // The compacted journal is fully valid and replays both cells.
        let report = fsck_journal(&path).unwrap();
        assert_eq!(report.severity(), 0);
        let j = Journal::open(&path).unwrap();
        assert!(j.scan().is_clean());
        assert_eq!(j.lookup("a/x", 1), Some(CellValue::Num(2.0)), "later duplicate won");
        assert_eq!(j.lookup("a/v1", 0), Some(CellValue::Num(7.0)));

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&qpath);
    }

    #[test]
    fn panics_are_caught_as_typed_errors() {
        let h = Harness::new().with_retry(RetryPolicy::immediate(1));
        let (v, _) = h.run_value(&ctx(), |_| -> Result<CellValue, ExperimentError> {
            panic!("boom {}", 42)
        });
        let err = v.unwrap_err();
        assert!(err.is_panic(), "{err}");
        assert!(err.to_string().contains("boom 42"), "{err}");
        let s = h.stats();
        assert_eq!(s.panics_caught, 1, "one attempt, one panic");
        assert_eq!(s.cells_failed, 1);
    }

    #[test]
    fn injected_panic_fault_is_caught_and_retried() {
        let plan = FaultPlan::new().fail_cell("[panics]", FaultKind::PanicFault, Some(1));
        let h = Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan);
        let c = RunContext::new("exp", "TestCpu", "w", "panics");
        let (v, retries) = h.run_value(&c, |_| Ok(CellValue::Num(8.0)));
        assert_eq!(v.unwrap(), CellValue::Num(8.0), "recovers after the injected panic");
        assert_eq!(retries, 1);
        assert_eq!(h.stats().panics_caught, 1);
    }

    #[test]
    fn backoff_is_bounded() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(10), Duration::from_millis(80), "capped");
    }
}
