//! Fault-tolerant execution of measurement cells.
//!
//! Every number in the paper's tables and figures comes from a *cell*:
//! one (experiment, CPU model, workload, mitigation config) point in a
//! lattice. This module wraps the act of producing a cell's value with
//! the machinery a real benchmark rig needs to survive a long sweep:
//!
//! * **Typed errors** ([`ExperimentError`]) that carry the cell context,
//!   so a failure three layers down still names the CPU model and
//!   mitigation config it came from.
//! * **A watchdog** ([`Watchdog`]): an instruction budget handed to the
//!   simulator plus a wall-clock deadline enforced around each attempt.
//! * **Retry with bounded exponential backoff** ([`RetryPolicy`]); each
//!   attempt reseeds the noise stream (the attempt index is passed to
//!   the cell closure) so a retried cell draws fresh samples.
//! * **Deterministic fault injection** (a [`FaultPlan`] consulted before
//!   and after every attempt) so tests can prove recovery works.
//! * **A JSON-lines journal** ([`Journal`]) of completed cells, so an
//!   interrupted sweep resumes without re-measuring finished work.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use uarch::SimError;

use crate::faultplan::{FaultKind, FaultPlan};
use crate::stats::Measurement;

/// Identifies the lattice cell a run belongs to. Threaded into every
/// [`ExperimentError`] so failures are attributable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunContext {
    /// Experiment driver, e.g. `"figure2"` or `"tables9and10"`.
    pub experiment: String,
    /// CPU model name, e.g. `"Broadwell (Xeon E5-2699 v4)"`.
    pub cpu: String,
    /// Workload name, e.g. `"lebench"` or `"syscall"`.
    pub workload: String,
    /// Mitigation config (kernel cmdline fragment); empty for the
    /// experiment default.
    pub config: String,
}

impl RunContext {
    /// Builds a context; any field may be left empty.
    pub fn new(experiment: &str, cpu: &str, workload: &str, config: &str) -> RunContext {
        RunContext {
            experiment: experiment.to_string(),
            cpu: cpu.to_string(),
            workload: workload.to_string(),
            config: config.to_string(),
        }
    }

    /// Canonical journal / fault-plan key:
    /// `experiment/cpu/workload/[config]`. The config is bracketed so a
    /// fault rule for `[nopti]` does not also match `[nopti mds=off]`.
    pub fn cell_key(&self) -> String {
        if self.config.is_empty() {
            format!("{}/{}/{}", self.experiment, self.cpu, self.workload)
        } else {
            format!("{}/{}/{}/[{}]", self.experiment, self.cpu, self.workload, self.config)
        }
    }
}

impl fmt::Display for RunContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cell_key())
    }
}

/// Why a measurement cell (or a whole experiment) failed.
///
/// Every variant carries the [`RunContext`] it arose in.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The simulated machine failed (includes instruction-budget
    /// exhaustion, see [`ExperimentError::is_budget_exhausted`]).
    Sim { ctx: RunContext, source: SimError },
    /// The watchdog's wall-clock deadline expired (or a timeout was
    /// injected by the fault plan).
    Timeout { ctx: RunContext, deadline: Duration },
    /// A sandbox verifier (eBPF, JS) rejected the workload.
    VerifierRejected { ctx: RunContext, reason: String },
    /// The statistics layer rejected the samples (NaN / non-finite /
    /// corrupt data).
    DegenerateStatistics { ctx: RunContext, detail: String },
    /// An attribution lattice needs at least `needed` configs.
    InsufficientConfigs { ctx: RunContext, needed: usize, got: usize },
    /// A cell kept failing after exhausting the retry budget; `last` is
    /// the error from the final attempt.
    CellFailed { ctx: RunContext, attempts: u32, last: Box<ExperimentError> },
}

impl ExperimentError {
    /// Wraps a simulator error with its cell context.
    pub fn sim(ctx: &RunContext, source: SimError) -> ExperimentError {
        ExperimentError::Sim { ctx: ctx.clone(), source }
    }

    /// Wraps an architectural fault (e.g. a rejected MSR write) with its
    /// cell context.
    pub fn fault(ctx: &RunContext, fault: uarch::Fault, at: u64) -> ExperimentError {
        ExperimentError::Sim {
            ctx: ctx.clone(),
            source: SimError::UnhandledFault { fault, at },
        }
    }

    /// The context the failure arose in.
    pub fn context(&self) -> &RunContext {
        match self {
            ExperimentError::Sim { ctx, .. }
            | ExperimentError::Timeout { ctx, .. }
            | ExperimentError::VerifierRejected { ctx, .. }
            | ExperimentError::DegenerateStatistics { ctx, .. }
            | ExperimentError::InsufficientConfigs { ctx, .. }
            | ExperimentError::CellFailed { ctx, .. } => ctx,
        }
    }

    /// True if the root cause is the simulator's instruction budget.
    pub fn is_budget_exhausted(&self) -> bool {
        match self {
            ExperimentError::Sim { source, .. } => {
                matches!(source, SimError::InstructionBudgetExhausted)
            }
            ExperimentError::CellFailed { last, .. } => last.is_budget_exhausted(),
            _ => false,
        }
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Sim { ctx, source } => write!(f, "[{ctx}] simulator: {source}"),
            ExperimentError::Timeout { ctx, deadline } => {
                write!(f, "[{ctx}] watchdog: run exceeded {deadline:?}")
            }
            ExperimentError::VerifierRejected { ctx, reason } => {
                write!(f, "[{ctx}] verifier rejected workload: {reason}")
            }
            ExperimentError::DegenerateStatistics { ctx, detail } => {
                write!(f, "[{ctx}] degenerate statistics: {detail}")
            }
            ExperimentError::InsufficientConfigs { ctx, needed, got } => {
                write!(f, "[{ctx}] need at least {needed} configs, got {got}")
            }
            ExperimentError::CellFailed { ctx, attempts, last } => {
                write!(f, "[{ctx}] cell failed after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Bounded exponential backoff between retry attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per cell (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff never exceeds this.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Default for `regen`: 3 attempts, 10ms/80ms backoff.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
        }
    }

    /// Retry without sleeping — what tests use.
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts, base_delay: Duration::ZERO, max_delay: Duration::ZERO }
    }

    /// Delay before attempt `attempt` (0-based; attempt 0 has none).
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(16);
        (self.base_delay * factor).min(self.max_delay)
    }
}

/// Per-run resource limits, enforced by the harness (wall clock) and by
/// the simulator via [`Watchdog::instruction_budget`] (instructions).
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// Instruction budget experiment drivers must pass to `Machine::run`
    /// / `Hypervisor::run` for a single measured run.
    pub instruction_budget: u64,
    /// Wall-clock deadline for one attempt at a cell.
    pub wall_deadline: Duration,
}

impl Watchdog {
    /// Defaults sized for the heaviest cell (the VM sweep's 4G-instruction
    /// guest boot) with slack.
    pub fn standard() -> Watchdog {
        Watchdog {
            instruction_budget: 8_000_000_000,
            wall_deadline: Duration::from_secs(120),
        }
    }

    /// The budget capped to `cap` — drivers with a known-cheaper cell use
    /// this so a wedged simulation dies early.
    pub fn instruction_budget(&self, cap: u64) -> u64 {
        self.instruction_budget.min(cap)
    }
}

/// Counters the harness keeps while running a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Cells measured fresh (not satisfied from the journal).
    pub cells_run: u64,
    /// Cells satisfied from a resume journal without re-measuring.
    pub cells_from_journal: u64,
    /// Total retry attempts across all cells (first attempts excluded).
    pub retries: u64,
    /// Faults delivered by the fault plan.
    pub faults_injected: u64,
    /// Cells that failed permanently (retry budget exhausted).
    pub cells_failed: u64,
}

/// The fault-tolerant cell runner threaded through every experiment
/// driver. Cheap to construct; share by reference.
#[derive(Debug, Default)]
pub struct Harness {
    /// Retry/backoff schedule.
    pub retry: RetryPolicy,
    /// Per-run resource limits.
    pub watchdog: Watchdog,
    /// Deterministic fault injection (empty by default).
    pub plan: FaultPlan,
    journal: Option<Journal>,
    stats: RefCell<HarnessStats>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::standard()
    }
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog::standard()
    }
}

impl Harness {
    /// A harness with standard retry/watchdog settings, no fault plan,
    /// and no journal.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Builder: install a fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Harness {
        self.plan = plan;
        self
    }

    /// Builder: install a retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Harness {
        self.retry = retry;
        self
    }

    /// Builder: install a watchdog.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Harness {
        self.watchdog = watchdog;
        self
    }

    /// Builder: journal completed cells to (and resume from) `journal`.
    pub fn with_journal(mut self, journal: Journal) -> Harness {
        self.journal = Some(journal);
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> HarnessStats {
        *self.stats.borrow()
    }

    /// Runs one measurement cell with journaling, fault injection,
    /// watchdog, and retry.
    ///
    /// The closure receives the attempt index (0-based); drivers fold it
    /// into their noise seed so retries draw a fresh noise stream. On
    /// success the measurement's `retries` field records how many extra
    /// attempts were needed.
    pub fn run_cell(
        &self,
        ctx: &RunContext,
        mut f: impl FnMut(u32) -> Result<Measurement, ExperimentError>,
    ) -> Result<Measurement, ExperimentError> {
        let key = ctx.cell_key();
        if let Some(journal) = &self.journal {
            if let Some(m) = journal.lookup(&key) {
                self.stats.borrow_mut().cells_from_journal += 1;
                return Ok(m);
            }
        }
        let result = self.attempt_loop(ctx, |attempt| {
            let mut m = f(attempt)?;
            m.retries = attempt;
            if !m.mean.is_finite() || !m.ci95.is_finite() {
                return Err(ExperimentError::DegenerateStatistics {
                    ctx: ctx.clone(),
                    detail: format!("non-finite measurement (mean {}, ci95 {})", m.mean, m.ci95),
                });
            }
            Ok(m)
        });
        match result {
            Ok(m) => {
                self.stats.borrow_mut().cells_run += 1;
                if let Some(journal) = &self.journal {
                    journal.record(&key, &m);
                }
                Ok(m)
            }
            Err(e) => {
                self.stats.borrow_mut().cells_failed += 1;
                Err(e)
            }
        }
    }

    /// Runs a non-measurement cell (e.g. a speculation probe or a table
    /// row) with the same fault injection, watchdog, and retry — but no
    /// journaling, since the result is not a `Measurement`.
    pub fn run_attempts<T>(
        &self,
        ctx: &RunContext,
        f: impl FnMut(u32) -> Result<T, ExperimentError>,
    ) -> Result<T, ExperimentError> {
        let result = self.attempt_loop(ctx, f);
        if result.is_err() {
            self.stats.borrow_mut().cells_failed += 1;
        }
        result
    }

    fn attempt_loop<T>(
        &self,
        ctx: &RunContext,
        mut f: impl FnMut(u32) -> Result<T, ExperimentError>,
    ) -> Result<T, ExperimentError> {
        let key = ctx.cell_key();
        let mut last: Option<ExperimentError> = None;
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.borrow_mut().retries += 1;
                let delay = self.retry.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            let injected = self.plan.inject(&key, attempt);
            if injected.is_some() {
                self.stats.borrow_mut().faults_injected += 1;
            }
            let outcome = match injected {
                Some(FaultKind::SimFault) => Err(ExperimentError::Sim {
                    ctx: ctx.clone(),
                    source: SimError::UnhandledFault {
                        fault: uarch::Fault::GeneralProtection,
                        at: 0,
                    },
                }),
                Some(FaultKind::Timeout) => Err(ExperimentError::Timeout {
                    ctx: ctx.clone(),
                    deadline: self.watchdog.wall_deadline,
                }),
                Some(FaultKind::CorruptSample) => {
                    // Let the run complete, then garble its result: the
                    // harness's own non-finite guard (or the caller's)
                    // must catch it, proving corrupt data cannot leak
                    // into a table.
                    f(attempt).and_then(|_| {
                        Err(ExperimentError::DegenerateStatistics {
                            ctx: ctx.clone(),
                            detail: "injected corrupt sample".to_string(),
                        })
                    })
                }
                None => {
                    let started = Instant::now();
                    let r = f(attempt);
                    if r.is_ok() && started.elapsed() > self.watchdog.wall_deadline {
                        Err(ExperimentError::Timeout {
                            ctx: ctx.clone(),
                            deadline: self.watchdog.wall_deadline,
                        })
                    } else {
                        r
                    }
                }
            };
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
        }
        let attempts = self.retry.max_attempts.max(1);
        let last = last.unwrap_or(ExperimentError::Timeout {
            ctx: ctx.clone(),
            deadline: self.watchdog.wall_deadline,
        });
        Err(ExperimentError::CellFailed { ctx: ctx.clone(), attempts, last: Box::new(last) })
    }
}

/// JSON-lines journal of completed measurement cells.
///
/// One line per cell:
///
/// ```text
/// {"cell":"figure2/Broadwell (...)/lebench/[nopti]","mean":1.083,"ci95":0.004,"n":12,"retries":1}
/// ```
///
/// Hand-rolled (the workspace carries no serde); the writer escapes and
/// the reader accepts exactly this shape, tolerating unknown trailing
/// fields and skipping malformed lines.
#[derive(Debug, Default)]
pub struct Journal {
    path: Option<PathBuf>,
    entries: RefCell<HashMap<String, Measurement>>,
    file: RefCell<Option<File>>,
}

impl Journal {
    /// An in-memory journal (tests, or sweeps that only want dedup).
    pub fn in_memory() -> Journal {
        Journal::default()
    }

    /// Opens (or creates) a journal file, loading any completed cells
    /// already recorded in it.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let mut entries = HashMap::new();
        match File::open(path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    let line = line?;
                    if let Some((key, m)) = parse_journal_line(&line) {
                        entries.insert(key, m);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: Some(path.to_path_buf()),
            entries: RefCell::new(entries),
            file: RefCell::new(Some(file)),
        })
    }

    /// Where this journal persists, if anywhere.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of completed cells on record.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// True if no cells are on record.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// The recorded measurement for `key`, if the cell completed.
    pub fn lookup(&self, key: &str) -> Option<Measurement> {
        self.entries.borrow().get(key).copied()
    }

    /// Records a completed cell (and appends it to the backing file, if
    /// any; write errors are reported to stderr rather than aborting the
    /// sweep — losing a journal line only costs a re-measurement).
    pub fn record(&self, key: &str, m: &Measurement) {
        self.entries.borrow_mut().insert(key.to_string(), *m);
        if let Some(file) = self.file.borrow_mut().as_mut() {
            let line = format!(
                "{{\"cell\":\"{}\",\"mean\":{},\"ci95\":{},\"n\":{},\"retries\":{}}}\n",
                escape_json(key),
                m.mean,
                m.ci95,
                m.n,
                m.retries
            );
            if let Err(e) = file.write_all(line.as_bytes()) {
                eprintln!("warning: journal write failed ({e}); cell {key} will re-run on resume");
            }
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Parses one journal line; `None` for malformed input (a truncated
/// final line from a killed run is expected, not an error).
fn parse_journal_line(line: &str) -> Option<(String, Measurement)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let cell_raw = extract_string_field(line, "cell")?;
    let mean = extract_number_field(line, "mean")?;
    let ci95 = extract_number_field(line, "ci95")?;
    let n = extract_number_field(line, "n")? as u64;
    let retries = extract_number_field(line, "retries").unwrap_or(0.0) as u32;
    if !mean.is_finite() || !ci95.is_finite() {
        return None;
    }
    Some((unescape_json(&cell_raw), Measurement { mean, ci95, n, retries }))
}

/// Extracts the raw (still-escaped) value of `"name":"..."`.
fn extract_string_field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_string()),
            _ => end += 1,
        }
    }
    None
}

fn extract_number_field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::FaultKind;

    fn ctx() -> RunContext {
        RunContext::new("figure2", "Broadwell", "lebench", "nopti")
    }

    fn ok_measurement(_attempt: u32) -> Result<Measurement, ExperimentError> {
        Ok(Measurement { mean: 1.5, ci95: 0.01, n: 10, retries: 0 })
    }

    #[test]
    fn cell_key_brackets_config() {
        assert_eq!(ctx().cell_key(), "figure2/Broadwell/lebench/[nopti]");
        let no_config = RunContext::new("vm", "Zen 3", "boot", "");
        assert_eq!(no_config.cell_key(), "vm/Zen 3/boot");
    }

    #[test]
    fn clean_run_is_untouched() {
        let h = Harness::new().with_retry(RetryPolicy::immediate(3));
        let m = h.run_cell(&ctx(), ok_measurement).unwrap();
        assert_eq!(m.retries, 0);
        let s = h.stats();
        assert_eq!((s.cells_run, s.retries, s.faults_injected), (1, 0, 0));
    }

    #[test]
    fn transient_fault_is_retried_and_counted() {
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::SimFault, Some(2));
        let h = Harness::new().with_retry(RetryPolicy::immediate(4)).with_plan(plan);
        let m = h.run_cell(&ctx(), ok_measurement).unwrap();
        assert_eq!(m.retries, 2, "succeeded on the third attempt");
        let s = h.stats();
        assert_eq!((s.retries, s.faults_injected, s.cells_failed), (2, 2, 0));
    }

    #[test]
    fn permanent_fault_exhausts_retries() {
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::Timeout, None);
        let h = Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan);
        let err = h.run_cell(&ctx(), ok_measurement).unwrap_err();
        match &err {
            ExperimentError::CellFailed { attempts, last, .. } => {
                assert_eq!(*attempts, 3);
                assert!(matches!(**last, ExperimentError::Timeout { .. }));
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(err.context().config, "nopti");
        assert_eq!(h.stats().cells_failed, 1);
    }

    #[test]
    fn corrupt_sample_is_rejected_then_recovered() {
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::CorruptSample, Some(1));
        let h = Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan);
        let m = h.run_cell(&ctx(), ok_measurement).unwrap();
        assert_eq!(m.retries, 1);
    }

    #[test]
    fn nonfinite_measurement_is_degenerate() {
        let h = Harness::new().with_retry(RetryPolicy::immediate(2));
        let err = h
            .run_cell(&ctx(), |_| Ok(Measurement { mean: f64::NAN, ci95: 0.0, n: 5, retries: 0 }))
            .unwrap_err();
        match err {
            ExperimentError::CellFailed { last, .. } => {
                assert!(matches!(*last, ExperimentError::DegenerateStatistics { .. }))
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn journal_roundtrip_and_resume() {
        let dir = std::env::temp_dir().join(format!("spectrebench-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let _ = std::fs::remove_file(&path);

        {
            let journal = Journal::open(&path).unwrap();
            let h = Harness::new().with_retry(RetryPolicy::immediate(1)).with_journal(journal);
            h.run_cell(&ctx(), ok_measurement).unwrap();
            assert_eq!(h.stats().cells_run, 1);
        }
        // Reopen: the cell comes from the journal, not a fresh run.
        {
            let journal = Journal::open(&path).unwrap();
            assert_eq!(journal.len(), 1);
            let h = Harness::new().with_retry(RetryPolicy::immediate(1)).with_journal(journal);
            let mut ran = false;
            let m = h
                .run_cell(&ctx(), |_| {
                    ran = true;
                    ok_measurement(0)
                })
                .unwrap();
            assert!(!ran, "journaled cell must not re-run");
            assert_eq!(m.mean, 1.5);
            let s = h.stats();
            assert_eq!((s.cells_run, s.cells_from_journal), (0, 1));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_skips_truncated_lines() {
        assert!(parse_journal_line("{\"cell\":\"a/b/c\",\"mean\":1.0,\"ci").is_none());
        assert!(parse_journal_line("").is_none());
        let (key, m) =
            parse_journal_line("{\"cell\":\"a/b \\\"q\\\"\",\"mean\":2.5,\"ci95\":0.1,\"n\":7,\"retries\":3}")
                .unwrap();
        assert_eq!(key, "a/b \"q\"");
        assert_eq!((m.mean, m.ci95, m.n, m.retries), (2.5, 0.1, 7, 3));
    }

    #[test]
    fn backoff_is_bounded() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(10), Duration::from_millis(80), "capped");
    }
}
