//! Plain-text table rendering for experiment output.

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].len());
                line.push_str(&cells[i]);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a cycle count.
pub fn cycles(x: f64) -> String {
    format!("{x:.0}")
}

/// Formats paper-vs-measured with a ratio.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        format!("{measured:.0} (paper 0)")
    } else {
        format!("{measured:.0} (paper {paper:.0}, x{:.2})", measured / paper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["CPU", "overhead"]);
        t.row(&["Broadwell".into(), "51.8%".into()]);
        t.row(&["Zen 3".into(), "5.7%".into()]);
        let s = t.render();
        assert!(s.contains("CPU"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("Broadwell"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.518), "51.8%");
        assert_eq!(cycles(206.4), "206");
        assert!(vs_paper(210.0, 206.0).contains("x1.02"));
    }
}
