//! Per-mitigation microbenchmarks: the instruction sequences behind
//! Tables 3–8, measured on the simulator the same way the paper measured
//! them on hardware — timestamp deltas around tight loops, averaged over
//! many iterations (§5).
//!
//! The simulator's primitive latencies were *calibrated from* these same
//! tables, so these measurements largely verify the calibration — except
//! where costs are emergent (retpolines are real instruction sequences
//! whose cost comes out of call/store/ret-mispredict mechanics; IBRS
//! overhead comes from prediction actually being blocked).

use uarch::isa::{msr_index, spec_ctrl, Inst, Reg, Width};
use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::ProgramBuilder;

use crate::harness::{ExperimentError, RunContext};

const STACK_TOP: u64 = 0x20_0000;
const ITERS: u64 = 200;

/// The cell context a microbenchmark failure is reported under.
fn micro_ctx(model: &CpuModel, bench: &str) -> RunContext {
    RunContext::new("micro", model.microarch, bench, "")
}

/// A machine with a stack, in kernel mode, ready for microbenchmarks.
fn bench_machine(model: &CpuModel) -> Machine {
    let mut m = Machine::new(model.clone());
    let mut pt = PageTable::new();
    // User-accessible so measured loops can run in either mode (the
    // paper's Table 5 loop is a userspace benchmark).
    pt.map_range(STACK_TOP - 0x4000, 0x200, 4, Pte::user(0));
    pt.map(0x10_0000, Pte::user(0x300));
    let table = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(table, 0, false)));
    m.set_reg(Reg::SP, STACK_TOP - 64);
    m.mode = PrivMode::Kernel;
    m
}

/// Measures average cycles per iteration of `body`, subtracting the
/// cost of an empty loop (the paper's methodology of averaging over many
/// runs to eliminate noise).
fn measure_loop(
    model: &CpuModel,
    bench: &str,
    body: impl Fn(&mut ProgramBuilder),
) -> Result<f64, ExperimentError> {
    let ctx = micro_ctx(model, bench);
    let run = |with_body: bool| -> Result<u64, ExperimentError> {
        let mut m = bench_machine(model);
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.mov_imm(Reg::R0, ITERS);
        b.bind(top);
        if with_body {
            body(&mut b);
        }
        b.sub_imm(Reg::R0, 1);
        b.cmp_imm(Reg::R0, 0);
        b.jcc(uarch::Cond::Ne, top);
        b.push(Inst::Halt);
        m.load_program(b.link(0x1000));
        m.pc = 0x1000;
        let c0 = m.cycles();
        m.run(&mut NoEnv, 10_000_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
        Ok(m.cycles() - c0)
    };
    let with = run(true)?;
    let without = run(false)?;
    Ok((with.saturating_sub(without)) as f64 / ITERS as f64)
}

/// Table 3: `syscall` instruction cycles.
pub fn syscall_cycles(model: &CpuModel) -> Result<f64, ExperimentError> {
    let ctx = micro_ctx(model, "syscall");
    let mut m = bench_machine(model);
    // Entry stub: immediate sysret (kernel cost excluded by measuring the
    // transition instructions separately below).
    let mut b = ProgramBuilder::new();
    b.push(Inst::Sysret);
    m.load_program(b.link(0x8000));
    m.syscall_entry = Some(0x8000);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Syscall);
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.mode = PrivMode::User;
    m.pc = 0x1000;
    // Step to just after the syscall commits.
    let c0 = m.cycles();
    m.step(&mut NoEnv).map_err(|e| ExperimentError::sim(&ctx, e))?;
    Ok((m.cycles() - c0) as f64)
}

/// Table 3: `sysret` instruction cycles.
pub fn sysret_cycles(model: &CpuModel) -> Result<f64, ExperimentError> {
    let ctx = micro_ctx(model, "sysret");
    let mut m = bench_machine(model);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Sysret);
    m.load_program(b.link(0x8000));
    m.set_reg(Reg::R11, 0x1000);
    let mut b = ProgramBuilder::new();
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x8000;
    let c0 = m.cycles();
    m.step(&mut NoEnv).map_err(|e| ExperimentError::sim(&ctx, e))?;
    Ok((m.cycles() - c0) as f64)
}

/// Table 3: `mov %cr3` cycles (the PTI primitive). Returns `None` where
/// the paper reports N/A (no PTI deployed on the part).
pub fn swap_cr3_cycles(model: &CpuModel) -> Result<Option<f64>, ExperimentError> {
    if !model.needs_pti() {
        return Ok(None);
    }
    let ctx = micro_ctx(model, "swap_cr3");
    let mut m = bench_machine(model);
    let cr3 = m.mmu.cr3();
    m.set_reg(Reg::R1, cr3);
    let mut b = ProgramBuilder::new();
    b.push(Inst::MovCr3(Reg::R1));
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    let c0 = m.cycles();
    m.step(&mut NoEnv).map_err(|e| ExperimentError::sim(&ctx, e))?;
    Ok(Some((m.cycles() - c0) as f64))
}

/// Table 4: `verw` cycles. `Some` only on parts with the MD_CLEAR
/// microcode (the paper reports N/A elsewhere).
pub fn verw_cycles(model: &CpuModel) -> Result<Option<f64>, ExperimentError> {
    if !model.spec.md_clear {
        return Ok(None);
    }
    measure_loop(model, "verw", |b| {
        b.push(Inst::Verw);
    })
    .map(Some)
}

/// Table 8: `lfence` cycles, measured the way the paper's loop would see
/// it — with a load in flight, since a fully quiet lfence is nearly free
/// (the paper's own caveat, §5.4).
pub fn lfence_cycles(model: &CpuModel) -> Result<f64, ExperimentError> {
    let with_load_and_fence = measure_loop(model, "lfence", |b| {
        b.mov_imm(Reg::R2, 0x10_0000);
        b.push(Inst::Load { dst: Reg::R3, base: Reg::R2, offset: 0, width: Width::B8 });
        b.push(Inst::Lfence);
    })?;
    let load_only = measure_loop(model, "lfence", |b| {
        b.mov_imm(Reg::R2, 0x10_0000);
        b.push(Inst::Load { dst: Reg::R3, base: Reg::R2, offset: 0, width: Width::B8 });
    })?;
    Ok(with_load_and_fence - load_only)
}

/// Table 6: IBPB (wrmsr to `IA32_PRED_CMD`) cycles.
pub fn ibpb_cycles(model: &CpuModel) -> Result<f64, ExperimentError> {
    Ok(measure_loop(model, "ibpb", |b| {
        b.mov_imm(Reg::R2, 1);
        b.push(Inst::Wrmsr { msr: msr_index::IA32_PRED_CMD, src: Reg::R2 });
    })? - 1.0) // the mov
}

/// Table 7: RSB stuffing cycles (the kernel's per-switch fill), measured
/// via the context-switch primitive the kernel charges.
pub fn rsb_fill_cycles(model: &CpuModel) -> f64 {
    // The stuffing sequence cost is a calibrated primitive; report it
    // through the same accounting the kernel uses.
    model.lat.rsb_fill as f64
}

/// Table 5 measurement: cycles per indirect call under a given dispatch
/// mechanism, steady-state (trained predictor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Plain indirect call, no mitigation.
    Baseline,
    /// Plain indirect call with IBRS enabled.
    Ibrs,
    /// Generic retpoline thunk.
    RetpolineGeneric,
    /// AMD lfence retpoline.
    RetpolineAmd,
}

/// Measures one Table 5 cell. Returns `None` for inapplicable cells
/// (IBRS on Zen; the AMD retpoline is only meaningful on AMD parts).
pub fn indirect_call_cycles(
    model: &CpuModel,
    dispatch: Dispatch,
) -> Result<Option<f64>, ExperimentError> {
    match dispatch {
        Dispatch::Ibrs if !model.spec.ibrs_supported => return Ok(None),
        Dispatch::RetpolineAmd if model.vendor != uarch::Vendor::Amd => return Ok(None),
        _ => {}
    }
    let ctx = micro_ctx(model, "indirect_call");
    let mut m = bench_machine(model);
    if dispatch == Dispatch::Ibrs {
        m.msrs
            .write(msr_index::IA32_SPEC_CTRL, spec_ctrl::IBRS)
            .map_err(|f| ExperimentError::fault(&ctx, f, m.pc))?;
    }
    // The paper's Table 5 loop runs in user space.
    m.mode = PrivMode::User;

    // Callee: immediate return.
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    m.load_program(b.link(0x5000));

    // The measured loop: dispatch to the callee each iteration.
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    let thunk = b.new_label();
    b.mov_imm(Reg::R0, ITERS);
    b.mov_imm(Reg::R9, 0x5000);
    b.bind(top);
    match dispatch {
        Dispatch::Baseline | Dispatch::Ibrs => {
            b.push(Inst::CallInd(Reg::R9));
        }
        Dispatch::RetpolineAmd => {
            b.push(Inst::Lfence);
            b.push(Inst::CallInd(Reg::R9));
        }
        Dispatch::RetpolineGeneric => {
            b.call(thunk);
        }
    }
    b.sub_imm(Reg::R0, 1);
    b.cmp_imm(Reg::R0, 0);
    b.jcc(uarch::Cond::Ne, top);
    b.push(Inst::Halt);
    if dispatch == Dispatch::RetpolineGeneric {
        // Figure 4's sequence, target in R9.
        let capture = b.new_label();
        let set_target = b.new_label();
        b.bind(thunk);
        b.call(set_target);
        b.bind(capture);
        b.push(Inst::Pause);
        b.push(Inst::Lfence);
        b.jmp(capture);
        b.bind(set_target);
        b.push(Inst::Store { src: Reg::R9, base: Reg::SP, offset: 0, width: Width::B8 });
        b.push(Inst::Ret);
    }
    m.load_program(b.link(0x1000));

    // Warm up (train predictors / caches), then measure.
    m.pc = 0x1000;
    m.run(&mut NoEnv, 10_000_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
    m.pc = 0x1000;
    let c0 = m.cycles();
    m.run(&mut NoEnv, 10_000_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
    let total = (m.cycles() - c0) as f64 / ITERS as f64;

    // Subtract the loop scaffolding (sub/cmp/jcc ≈ 3 cycles + callee ret
    // + its stack pop), measured with a direct call instead.
    let mut m2 = bench_machine(model);
    m2.mode = PrivMode::User;
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    m2.load_program(b.link(0x5000));
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.mov_imm(Reg::R0, ITERS);
    b.bind(top);
    b.push(Inst::Call(0x5000));
    b.sub_imm(Reg::R0, 1);
    b.cmp_imm(Reg::R0, 0);
    b.jcc(uarch::Cond::Ne, top);
    b.push(Inst::Halt);
    m2.load_program(b.link(0x1000));
    m2.pc = 0x1000;
    m2.run(&mut NoEnv, 10_000_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
    m2.pc = 0x1000;
    let c0 = m2.cycles();
    m2.run(&mut NoEnv, 10_000_000).map_err(|e| ExperimentError::sim(&ctx, e))?;
    let scaffold = (m2.cycles() - c0) as f64 / ITERS as f64;

    Ok(Some(total - scaffold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::{paper_table3, paper_table5, CpuId};

    #[test]
    fn table3_measurements_match_paper_exactly() {
        for row in paper_table3() {
            let m = row.cpu.model();
            assert_eq!(syscall_cycles(&m).unwrap() as u64, row.syscall, "{} syscall", row.cpu);
            assert_eq!(sysret_cycles(&m).unwrap() as u64, row.sysret, "{} sysret", row.cpu);
            match row.swap_cr3 {
                Some(c) => {
                    assert_eq!(
                        swap_cr3_cycles(&m).unwrap().unwrap() as u64,
                        c,
                        "{} cr3",
                        row.cpu
                    )
                }
                None => assert!(swap_cr3_cycles(&m).unwrap().is_none(), "{} cr3 N/A", row.cpu),
            }
        }
    }

    #[test]
    fn table4_verw_matches_paper() {
        for (id, expect) in [
            (CpuId::Broadwell, Some(610.0)),
            (CpuId::SkylakeClient, Some(518.0)),
            (CpuId::CascadeLake, Some(458.0)),
            (CpuId::IceLakeServer, None),
            (CpuId::Zen3, None),
        ] {
            assert_eq!(verw_cycles(&id.model()).unwrap(), expect, "{id}");
        }
    }

    #[test]
    fn table5_baseline_and_retpoline_shapes() {
        for row in paper_table5() {
            let m = row.cpu.model();
            let baseline = indirect_call_cycles(&m, Dispatch::Baseline)
                .unwrap()
                .expect("baseline always applies");
            // The steady-state predicted indirect call lands on the
            // calibrated baseline within a couple of cycles of scaffold
            // noise.
            assert!(
                (baseline - row.baseline as f64).abs() <= 2.0,
                "{}: baseline {} vs paper {}",
                row.cpu,
                baseline,
                row.baseline
            );
            let generic = indirect_call_cycles(&m, Dispatch::RetpolineGeneric)
                .unwrap()
                .expect("generic applies everywhere");
            let extra = generic - baseline;
            // Emergent retpoline cost: within ±35% of the paper's column
            // (it comes out of real call/store/ret mechanics).
            let want = row.generic_extra as f64;
            assert!(
                (extra - want).abs() <= (want * 0.35).max(6.0),
                "{}: generic extra {:.1} vs paper {}",
                row.cpu,
                extra,
                want
            );
        }
    }

    #[test]
    fn table5_ibrs_column() {
        for row in paper_table5() {
            let m = row.cpu.model();
            match (row.ibrs_extra, indirect_call_cycles(&m, Dispatch::Ibrs).unwrap()) {
                (None, got) => assert!(got.is_none(), "{}: IBRS must be N/A", row.cpu),
                (Some(want), Some(with_ibrs)) => {
                    let baseline =
                        indirect_call_cycles(&m, Dispatch::Baseline).unwrap().unwrap();
                    let extra = with_ibrs - baseline;
                    assert!(
                        (extra - want as f64).abs() <= (want as f64 * 0.35).max(4.0),
                        "{}: IBRS extra {:.1} vs paper {}",
                        row.cpu,
                        extra,
                        want
                    );
                }
                (Some(_), None) => panic!("{}: expected an IBRS measurement", row.cpu),
            }
        }
    }

    #[test]
    fn table6_ibpb_matches_paper() {
        for (id, expect) in [
            (CpuId::Broadwell, 5600.0),
            (CpuId::CascadeLake, 340.0),
            (CpuId::Zen, 7400.0),
            (CpuId::Zen3, 800.0),
        ] {
            let got = ibpb_cycles(&id.model()).unwrap();
            assert!((got - expect).abs() <= 2.0, "{id}: {got} vs {expect}");
        }
    }

    #[test]
    fn table8_lfence_positive_and_ordered() {
        // In-flight-load lfence cost reflects Table 8's per-part ordering.
        let zen = lfence_cycles(&CpuId::Zen.model()).unwrap();
        let zen2 = lfence_cycles(&CpuId::Zen2.model()).unwrap();
        let icl = lfence_cycles(&CpuId::IceLakeClient.model()).unwrap();
        let bdw = lfence_cycles(&CpuId::Broadwell.model()).unwrap();
        assert!(zen > zen2, "Zen ({zen}) > Zen 2 ({zen2})");
        assert!(bdw > icl, "Broadwell ({bdw}) > Ice Lake Client ({icl})");
    }
}
