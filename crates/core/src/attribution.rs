//! Mitigation attribution by successive disabling (paper §4.1).
//!
//! "To measure the impact of individual mitigations, we run Linux with
//! the default set of mitigations enabled, and then use kernel boot
//! parameters to successively disable them to determine the overhead that
//! each one causes." Each slice of the stacked bars in Figures 2 and 3 is
//! the marginal cost of one mitigation: the difference between adjacent
//! configurations in the disabling order, normalized to the
//! everything-off baseline.
//!
//! Attribution is fault-tolerant: each configuration is one harness cell.
//! If a *middle* cell of the lattice fails permanently, the slices that
//! depended on it are bridged between the nearest measured neighbours and
//! marked [`Slice::degraded`], so a figure still renders with an honest
//! caveat instead of aborting. Only the two anchor cells (default config
//! and `mitigations=off` baseline) are load-bearing enough to abort on.

use sim_kernel::BootParams;

use crate::harness::{ExperimentError, Harness, RunContext};
use crate::stats::{measure_until, Measurement, NoiseModel, StopPolicy};

/// One attribution dimension: a mitigation and the boot parameter that
/// disables it.
#[derive(Debug, Clone, Copy)]
pub struct Toggle {
    /// Display name (matches the paper's figure legends).
    pub name: &'static str,
    /// Boot-parameter token that disables the mitigation.
    pub disable_param: &'static str,
}

/// The OS-level toggles in Figure 2's stacking order: the expensive
/// mitigations first, then everything else pooled as "other".
pub const OS_TOGGLES: [Toggle; 5] = [
    Toggle { name: "Page Table Isolation", disable_param: "nopti" },
    Toggle { name: "MDS buffer clearing", disable_param: "mds=off" },
    Toggle { name: "Spectre V2", disable_param: "nospectre_v2" },
    Toggle { name: "Spectre V1 (lfence)", disable_param: "nospectre_v1" },
    Toggle { name: "L1TF", disable_param: "l1tf=off" },
];

/// One slice of a stacked attribution bar.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Mitigation name.
    pub name: &'static str,
    /// Overhead attributable to this mitigation, as a fraction of the
    /// everything-off baseline (may be slightly negative within noise).
    pub overhead: f64,
    /// 95% CI half-width of the overhead estimate.
    pub ci95: f64,
    /// True if a lattice cell this slice depends on failed permanently
    /// and the overhead shown is bridged from the nearest measured
    /// neighbours rather than measured directly.
    pub degraded: bool,
}

/// A full attribution for one CPU and workload.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Total overhead of the default configuration vs everything-off.
    pub total: f64,
    /// Per-mitigation slices in disabling order, plus a final "other"
    /// slice for everything not individually toggled.
    pub slices: Vec<Slice>,
    /// Raw per-configuration measurements (first = default config,
    /// last = mitigations=off); `None` where the cell failed permanently.
    pub configs: Vec<Option<Measurement>>,
    /// Errors from cells that failed permanently (empty on a clean run).
    pub failures: Vec<ExperimentError>,
}

impl Attribution {
    /// True if any slice had to be bridged over a failed cell.
    pub fn is_degraded(&self) -> bool {
        self.slices.iter().any(|s| s.degraded)
    }
}

/// The cumulative successive-disable command lines for `toggles`:
/// default, then disabling one more mitigation each step, then the
/// master switch.
pub fn successive_disable_cmdlines(toggles: &[Toggle]) -> Vec<String> {
    let mut cmdlines: Vec<String> = vec![String::new()];
    let mut acc = String::new();
    for t in toggles {
        if !acc.is_empty() {
            acc.push(' ');
        }
        acc.push_str(t.disable_param);
        cmdlines.push(acc.clone());
    }
    cmdlines.push(format!("{acc} mitigations=off"));
    cmdlines
}

/// Runs the successive-disable attribution under `harness`.
///
/// `ctx` names the experiment/CPU/workload; each configuration becomes
/// one harness cell keyed by its command line (`"default"` for the empty
/// one). `workload` maps a boot command line to a deterministic score in
/// simulated cycles (lower is faster); the simulator is run once per
/// configuration and the paper's adaptive-CI methodology is then applied
/// over the (synthetic, seeded) run-to-run noise — see DESIGN.md's noise
/// note. Retried attempts fold the attempt index into the noise seed, so
/// a retry draws a fresh noise stream.
///
/// # Errors
///
/// [`ExperimentError::InsufficientConfigs`] for an empty toggle list;
/// the failure of an anchor cell (default config or `mitigations=off`)
/// is propagated because nothing can be normalized without them. A
/// failed middle cell does *not* error — it degrades the affected
/// slices (see [`Slice::degraded`]) and is recorded in
/// [`Attribution::failures`].
pub fn attribute(
    harness: &Harness,
    ctx: &RunContext,
    toggles: &[Toggle],
    noise_seed: u64,
    policy: StopPolicy,
    mut workload: impl FnMut(&BootParams) -> f64,
) -> Result<Attribution, ExperimentError> {
    if toggles.is_empty() {
        return Err(ExperimentError::InsufficientConfigs {
            ctx: ctx.clone(),
            needed: 2,
            got: 1,
        });
    }
    let cmdlines = successive_disable_cmdlines(toggles);

    let mut measurements: Vec<Option<Measurement>> = Vec::with_capacity(cmdlines.len());
    let mut failures = Vec::new();
    for (i, cmd) in cmdlines.iter().enumerate() {
        let cell_ctx = RunContext {
            config: if cmd.is_empty() { "default".to_string() } else { cmd.clone() },
            ..ctx.clone()
        };
        let result = harness.run_cell(&cell_ctx, |attempt| {
            let base = workload(&BootParams::parse(cmd));
            let mut noise = NoiseModel::paper_default(
                noise_seed
                    .wrapping_add(i as u64 * 7919)
                    .wrapping_add(attempt as u64 * 104_729),
            );
            measure_until(policy, || noise.apply(base)).map_err(|e| {
                ExperimentError::DegenerateStatistics { ctx: cell_ctx.clone(), detail: e.to_string() }
            })
        });
        match result {
            Ok(m) => measurements.push(Some(m)),
            Err(e) => {
                // Anchors are not bridgeable: without the default config
                // there is no total, without the baseline no denominator.
                if i == 0 || i == cmdlines.len() - 1 {
                    return Err(e);
                }
                failures.push(e);
                measurements.push(None);
            }
        }
    }

    let last = measurements.len() - 1;
    // Both anchors were just checked present above.
    let (off_m, default_m) = match (measurements[last], measurements[0]) {
        (Some(off), Some(d)) => (off, d),
        _ => {
            return Err(ExperimentError::InsufficientConfigs {
                ctx: ctx.clone(),
                needed: 2,
                got: measurements.iter().flatten().count(),
            })
        }
    };
    let off = off_m.mean;
    let total = default_m.mean / off - 1.0;

    // Slice i sits between measurements i and i+1. When either side is
    // missing, bridge between the nearest measured neighbours and split
    // the span's overhead evenly across the slices it covers.
    let nearest_prev = |i: usize| (0..=i).rev().find(|&j| measurements[j].is_some());
    let nearest_next = |i: usize| (i..measurements.len()).find(|&j| measurements[j].is_some());
    let mut slices = Vec::new();
    for i in 0..=toggles.len() {
        let name = if i < toggles.len() { toggles[i].name } else { "other" };
        let (lo_idx, hi_idx) = if i < toggles.len() {
            (i, i + 1)
        } else {
            (toggles.len(), last)
        };
        match (measurements[lo_idx], measurements[hi_idx]) {
            (Some(hi), Some(lo)) => slices.push(Slice {
                name,
                overhead: (hi.mean - lo.mean) / off,
                ci95: (hi.ci95 + lo.ci95) / off,
                degraded: false,
            }),
            _ => {
                let (prev, next) = match (nearest_prev(lo_idx), nearest_next(hi_idx)) {
                    (Some(p), Some(n)) => (p, n),
                    // Unreachable while the anchors are present, but keep
                    // the arithmetic total rather than indexing blindly.
                    _ => (0, last),
                };
                let (pm, nm) = match (measurements[prev], measurements[next]) {
                    (Some(p), Some(n)) => (p, n),
                    _ => (default_m, off_m),
                };
                let span = (next - prev).max(1) as f64;
                slices.push(Slice {
                    name,
                    overhead: (pm.mean - nm.mean) / off / span,
                    ci95: (pm.ci95 + nm.ci95) / off,
                    degraded: true,
                });
            }
        }
    }

    Ok(Attribution { total, slices, configs: measurements, failures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};
    use crate::harness::RetryPolicy;
    use cpu_models::broadwell;
    use workloads::lebench::{run_op, LeBenchOp};

    fn test_harness() -> Harness {
        Harness::new().with_retry(RetryPolicy::immediate(3))
    }

    fn test_ctx() -> RunContext {
        RunContext::new("attribution-test", "Broadwell", "synthetic", "")
    }

    fn synthetic_workload(p: &BootParams) -> f64 {
        let mut cost = 1000.0;
        if !p.nopti {
            cost += 100.0;
        }
        if !p.mds_off {
            cost += 50.0;
        }
        if !p.nospectre_v2 {
            cost += 20.0;
        }
        if p.mitigations_off {
            cost = 1000.0;
        }
        cost
    }

    #[test]
    fn cumulative_cmdlines_cover_all_toggles() {
        // Smoke-test the attribution plumbing with a cheap synthetic
        // workload whose cost depends on the parsed params.
        let att = attribute(
            &test_harness(),
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        assert_eq!(att.slices.len(), OS_TOGGLES.len() + 1);
        assert!(!att.is_degraded());
        assert!(att.failures.is_empty());
        assert!((att.total - 0.17).abs() < 0.02, "total {}", att.total);
        let pti = &att.slices[0];
        assert!((pti.overhead - 0.10).abs() < 0.02);
        let other = att.slices.last().unwrap();
        assert!(other.overhead.abs() < 0.02);
    }

    #[test]
    fn empty_toggles_is_insufficient() {
        let err = attribute(
            &test_harness(),
            &test_ctx(),
            &[],
            1,
            StopPolicy::default(),
            synthetic_workload,
        )
        .unwrap_err();
        assert!(matches!(err, ExperimentError::InsufficientConfigs { .. }));
    }

    #[test]
    fn failed_middle_cell_degrades_adjacent_slices() {
        // Permanently kill the [nopti] cell: the PTI and MDS slices must
        // come back bridged (degraded), everything else clean, and the
        // total must be unaffected (it only needs the anchors).
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::SimFault, None);
        let harness = test_harness().with_plan(plan);
        let att = attribute(
            &harness,
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        assert!(att.is_degraded());
        assert_eq!(att.failures.len(), 1);
        let degraded: Vec<&str> =
            att.slices.iter().filter(|s| s.degraded).map(|s| s.name).collect();
        assert_eq!(degraded, ["Page Table Isolation", "MDS buffer clearing"]);
        // The bridged span covers PTI (100) + MDS (50): each bridged
        // slice reports half the span.
        let pti = &att.slices[0];
        assert!((pti.overhead - 0.075).abs() < 0.02, "bridged PTI {}", pti.overhead);
        assert!((att.total - 0.17).abs() < 0.02);
        // Sum of slices still telescopes to the total.
        let sum: f64 = att.slices.iter().map(|s| s.overhead).sum();
        assert!((sum - att.total).abs() < 0.03, "sum {sum} vs total {}", att.total);
    }

    #[test]
    fn failed_baseline_cell_aborts() {
        let plan = FaultPlan::new().fail_cell("mitigations=off", FaultKind::Timeout, None);
        let harness = test_harness().with_plan(plan);
        let err = attribute(
            &harness,
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap_err();
        assert!(matches!(err, ExperimentError::CellFailed { .. }));
    }

    #[test]
    fn transient_faults_recover_with_identical_values() {
        // A fault plan that kills fewer runs than the retry budget must
        // reproduce the fault-free numbers exactly apart from the noise
        // reseed — and slice *ordering* must be identical.
        let clean = attribute(
            &test_harness(),
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::Timeout, Some(2));
        let harness = test_harness().with_plan(plan);
        let faulted = attribute(
            &harness,
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        assert!(!faulted.is_degraded());
        assert_eq!(faulted.configs[1].unwrap().retries, 2);
        let order = |a: &Attribution| {
            let mut names: Vec<&str> = a.slices.iter().map(|s| s.name).collect();
            names.sort_by(|x, y| {
                let ox = a.slices.iter().find(|s| s.name == *x).map(|s| s.overhead);
                let oy = a.slices.iter().find(|s| s.name == *y).map(|s| s.overhead);
                oy.partial_cmp(&ox).unwrap()
            });
            names
        };
        assert_eq!(order(&clean), order(&faulted));
    }

    #[test]
    fn attribution_of_real_getpid_on_broadwell() {
        // PTI and MDS must dominate getpid overhead on Broadwell (§5.1,
        // §5.2); the sum of slices must equal the total.
        let att = attribute(
            &test_harness(),
            &test_ctx(),
            &OS_TOGGLES,
            2,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            |p| run_op(&broadwell(), p, LeBenchOp::GetPid).cycles_per_op,
        )
        .unwrap();
        assert!(att.total > 0.5, "getpid overhead on Broadwell is large: {}", att.total);
        let sum: f64 = att.slices.iter().map(|s| s.overhead).sum();
        assert!(
            (sum - att.total).abs() < 0.05 + att.total * 0.1,
            "slices ({sum}) must sum to total ({})",
            att.total
        );
        let by_name = |n: &str| {
            att.slices.iter().find(|s| s.name.contains(n)).map(|s| s.overhead).unwrap()
        };
        assert!(by_name("Page Table") > 0.2, "PTI slice");
        assert!(by_name("MDS") > 0.2, "MDS slice");
        assert!(by_name("Page Table") + by_name("MDS") > att.total * 0.6);
    }
}
