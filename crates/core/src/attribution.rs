//! Mitigation attribution by successive disabling (paper §4.1).
//!
//! "To measure the impact of individual mitigations, we run Linux with
//! the default set of mitigations enabled, and then use kernel boot
//! parameters to successively disable them to determine the overhead that
//! each one causes." Each slice of the stacked bars in Figures 2 and 3 is
//! the marginal cost of one mitigation: the difference between adjacent
//! configurations in the disabling order, normalized to the
//! everything-off baseline.

use sim_kernel::BootParams;

use crate::stats::{measure_until, Measurement, NoiseModel, StopPolicy};

/// One attribution dimension: a mitigation and the boot parameter that
/// disables it.
#[derive(Debug, Clone, Copy)]
pub struct Toggle {
    /// Display name (matches the paper's figure legends).
    pub name: &'static str,
    /// Boot-parameter token that disables the mitigation.
    pub disable_param: &'static str,
}

/// The OS-level toggles in Figure 2's stacking order: the expensive
/// mitigations first, then everything else pooled as "other".
pub const OS_TOGGLES: [Toggle; 5] = [
    Toggle { name: "Page Table Isolation", disable_param: "nopti" },
    Toggle { name: "MDS buffer clearing", disable_param: "mds=off" },
    Toggle { name: "Spectre V2", disable_param: "nospectre_v2" },
    Toggle { name: "Spectre V1 (lfence)", disable_param: "nospectre_v1" },
    Toggle { name: "L1TF", disable_param: "l1tf=off" },
];

/// One slice of a stacked attribution bar.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Mitigation name.
    pub name: &'static str,
    /// Overhead attributable to this mitigation, as a fraction of the
    /// everything-off baseline (may be slightly negative within noise).
    pub overhead: f64,
    /// 95% CI half-width of the overhead estimate.
    pub ci95: f64,
}

/// A full attribution for one CPU and workload.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Total overhead of the default configuration vs everything-off.
    pub total: f64,
    /// Per-mitigation slices in disabling order, plus a final "other"
    /// slice for everything not individually toggled.
    pub slices: Vec<Slice>,
    /// Raw per-configuration measurements (first = default config,
    /// last = mitigations=off).
    pub configs: Vec<Measurement>,
}

/// Runs the successive-disable attribution.
///
/// `workload` maps a boot command line to a deterministic score in
/// simulated cycles (lower is faster); the simulator is run once per
/// configuration and the paper's adaptive-CI methodology is then applied
/// over the (synthetic, seeded) run-to-run noise — see DESIGN.md's noise
/// note.
pub fn attribute(
    toggles: &[Toggle],
    noise_seed: u64,
    policy: StopPolicy,
    mut workload: impl FnMut(&BootParams) -> f64,
) -> Attribution {
    // Build cumulative command lines: default, then disabling one more
    // mitigation each step, then the master switch.
    let mut cmdlines: Vec<String> = vec![String::new()];
    let mut acc = String::new();
    for t in toggles {
        if !acc.is_empty() {
            acc.push(' ');
        }
        acc.push_str(t.disable_param);
        cmdlines.push(acc.clone());
    }
    cmdlines.push(format!("{acc} mitigations=off"));

    let mut measurements = Vec::with_capacity(cmdlines.len());
    for (i, cmd) in cmdlines.iter().enumerate() {
        let base = workload(&BootParams::parse(cmd));
        let mut noise = NoiseModel::paper_default(noise_seed.wrapping_add(i as u64 * 7919));
        let m = measure_until(policy, || noise.apply(base));
        measurements.push(m);
    }

    let off = measurements.last().expect("at least two configs").mean;
    let total = measurements[0].mean / off - 1.0;
    let mut slices = Vec::new();
    for (i, t) in toggles.iter().enumerate() {
        let hi = &measurements[i];
        let lo = &measurements[i + 1];
        slices.push(Slice {
            name: t.name,
            overhead: (hi.mean - lo.mean) / off,
            ci95: (hi.ci95 + lo.ci95) / off,
        });
    }
    // Everything not individually toggled.
    let n = toggles.len();
    slices.push(Slice {
        name: "other",
        overhead: (measurements[n].mean - off) / off,
        ci95: (measurements[n].ci95 + measurements[n + 1].ci95) / off,
    });

    Attribution { total, slices, configs: measurements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::broadwell;
    use workloads::lebench::{run_op, LeBenchOp};

    #[test]
    fn cumulative_cmdlines_cover_all_toggles() {
        // Smoke-test the attribution plumbing with a cheap synthetic
        // workload whose cost depends on the parsed params.
        let att = attribute(
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            |p| {
                let mut cost = 1000.0;
                if !p.nopti {
                    cost += 100.0;
                }
                if !p.mds_off {
                    cost += 50.0;
                }
                if !p.nospectre_v2 {
                    cost += 20.0;
                }
                if p.mitigations_off {
                    cost = 1000.0;
                }
                cost
            },
        );
        assert_eq!(att.slices.len(), OS_TOGGLES.len() + 1);
        assert!((att.total - 0.17).abs() < 0.02, "total {}", att.total);
        let pti = &att.slices[0];
        assert!((pti.overhead - 0.10).abs() < 0.02);
        let other = att.slices.last().unwrap();
        assert!(other.overhead.abs() < 0.02);
    }

    #[test]
    fn attribution_of_real_getpid_on_broadwell() {
        // PTI and MDS must dominate getpid overhead on Broadwell (§5.1,
        // §5.2); the sum of slices must equal the total.
        let att = attribute(
            &OS_TOGGLES,
            2,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            |p| run_op(&broadwell(), p, LeBenchOp::GetPid).cycles_per_op,
        );
        assert!(att.total > 0.5, "getpid overhead on Broadwell is large: {}", att.total);
        let sum: f64 = att.slices.iter().map(|s| s.overhead).sum();
        assert!(
            (sum - att.total).abs() < 0.05 + att.total * 0.1,
            "slices ({sum}) must sum to total ({})",
            att.total
        );
        let by_name = |n: &str| {
            att.slices.iter().find(|s| s.name.contains(n)).map(|s| s.overhead).unwrap()
        };
        assert!(by_name("Page Table") > 0.2, "PTI slice");
        assert!(by_name("MDS") > 0.2, "MDS slice");
        assert!(by_name("Page Table") + by_name("MDS") > att.total * 0.6);
    }
}
