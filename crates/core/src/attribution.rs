//! Mitigation attribution by successive disabling (paper §4.1).
//!
//! "To measure the impact of individual mitigations, we run Linux with
//! the default set of mitigations enabled, and then use kernel boot
//! parameters to successively disable them to determine the overhead that
//! each one causes." Each slice of the stacked bars in Figures 2 and 3 is
//! the marginal cost of one mitigation: the difference between adjacent
//! configurations in the disabling order, normalized to the
//! everything-off baseline.
//!
//! Attribution is plan-shaped: [`attribute`] enumerates the lattice as
//! [`CellSpec`]s (one per configuration, computing the raw deterministic
//! workload score), hands them to the [`Executor`], and then runs the
//! pure reduce step — applying the paper's adaptive-CI methodology over
//! seeded synthetic noise and differencing adjacent configurations — over
//! the outcomes in plan order. Because the noise is applied in the
//! reduce, not in the cell, a retried or resumed cell reproduces exactly
//! the same numbers as a never-faulted run.
//!
//! Attribution is fault-tolerant: if a *middle* cell of the lattice fails
//! permanently, the slices that depended on it are bridged between the
//! nearest measured neighbours and marked [`Slice::degraded`], so a
//! figure still renders with an honest caveat instead of aborting. Only
//! the two anchor cells (default config and `mitigations=off` baseline)
//! are load-bearing enough to abort on.

use std::sync::Arc;

use sim_kernel::BootParams;

use crate::executor::Executor;
use crate::harness::{ExperimentError, RunContext};
use crate::plan::{CellOutcome, CellSpec, CellValue, ExperimentPlan};
use crate::stats::{measure_until, Measurement, NoiseModel, StopPolicy};

/// One attribution dimension: a mitigation and the boot parameter that
/// disables it.
#[derive(Debug, Clone, Copy)]
pub struct Toggle {
    /// Display name (matches the paper's figure legends).
    pub name: &'static str,
    /// Boot-parameter token that disables the mitigation.
    pub disable_param: &'static str,
}

/// The OS-level toggles in Figure 2's stacking order: the expensive
/// mitigations first, then everything else pooled as "other".
pub const OS_TOGGLES: [Toggle; 5] = [
    Toggle { name: "Page Table Isolation", disable_param: "nopti" },
    Toggle { name: "MDS buffer clearing", disable_param: "mds=off" },
    Toggle { name: "Spectre V2", disable_param: "nospectre_v2" },
    Toggle { name: "Spectre V1 (lfence)", disable_param: "nospectre_v1" },
    Toggle { name: "L1TF", disable_param: "l1tf=off" },
];

/// One slice of a stacked attribution bar.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Mitigation name.
    pub name: &'static str,
    /// Overhead attributable to this mitigation, as a fraction of the
    /// everything-off baseline (may be slightly negative within noise).
    pub overhead: f64,
    /// 95% CI half-width of the overhead estimate.
    pub ci95: f64,
    /// True if a lattice cell this slice depends on failed permanently
    /// and the overhead shown is bridged from the nearest measured
    /// neighbours rather than measured directly.
    pub degraded: bool,
}

/// A full attribution for one CPU and workload.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Total overhead of the default configuration vs everything-off.
    pub total: f64,
    /// Per-mitigation slices in disabling order, plus a final "other"
    /// slice for everything not individually toggled.
    pub slices: Vec<Slice>,
    /// Raw per-configuration measurements (first = default config,
    /// last = mitigations=off); `None` where the cell failed permanently.
    pub configs: Vec<Option<Measurement>>,
    /// Errors from cells that failed permanently (empty on a clean run).
    pub failures: Vec<ExperimentError>,
}

impl Attribution {
    /// True if any slice had to be bridged over a failed cell.
    pub fn is_degraded(&self) -> bool {
        self.slices.iter().any(|s| s.degraded)
    }
}

/// The cumulative successive-disable command lines for `toggles`:
/// default, then disabling one more mitigation each step, then the
/// master switch.
pub fn successive_disable_cmdlines(toggles: &[Toggle]) -> Vec<String> {
    let mut cmdlines: Vec<String> = vec![String::new()];
    let mut acc = String::new();
    for t in toggles {
        if !acc.is_empty() {
            acc.push(' ');
        }
        acc.push_str(t.disable_param);
        cmdlines.push(acc.clone());
    }
    cmdlines.push(format!("{acc} mitigations=off"));
    cmdlines
}

/// Enumerates the successive-disable lattice for `ctx` as plan cells:
/// one per configuration, in disabling order, computing the raw
/// (noise-free) workload score. The config label is the command line
/// (`"default"` for the empty one), matching the canonical convention in
/// [`crate::cells`] so other experiments' cells can share the cache.
pub fn lattice_cells(
    ctx: &RunContext,
    toggles: &[Toggle],
    workload: impl Fn(&BootParams) -> f64 + Send + Sync + 'static,
) -> Vec<CellSpec> {
    let w = Arc::new(workload);
    let cmdlines = successive_disable_cmdlines(toggles);
    let last = cmdlines.len() - 1;
    cmdlines
        .into_iter()
        .enumerate()
        .map(|(i, cmd)| {
            let cell_ctx = RunContext {
                config: if cmd.is_empty() { "default".to_string() } else { cmd.clone() },
                ..ctx.clone()
            };
            let w = Arc::clone(&w);
            let cell = CellSpec::new(cell_ctx, 0, move |_| {
                Ok(CellValue::Num(w(&BootParams::parse(&cmd))))
            });
            // The default and mitigations=off cells are the anchors of
            // every derived slice; [`reduce`] aborts the whole figure if
            // either fails, so the circuit breaker must not skip them.
            if i == 0 || i == last {
                cell.critical()
            } else {
                cell
            }
        })
        .collect()
}

/// The pure reduce step: folds the executor's per-configuration outcomes
/// (in lattice order) into an [`Attribution`].
///
/// Each successful outcome's raw score is wrapped in the paper's
/// adaptive-CI methodology over synthetic noise seeded from `noise_seed`
/// and the configuration index — never the attempt or the schedule, so
/// the result is identical for any worker count and for retried or
/// resumed cells. A failed middle cell degrades the adjacent slices; a
/// failed anchor aborts.
pub fn reduce(
    ctx: &RunContext,
    toggles: &[Toggle],
    noise_seed: u64,
    policy: StopPolicy,
    outcomes: &[CellOutcome],
) -> Result<Attribution, ExperimentError> {
    let expected = toggles.len() + 2;
    if outcomes.len() != expected {
        return Err(ExperimentError::InsufficientConfigs {
            ctx: ctx.clone(),
            needed: expected,
            got: outcomes.len(),
        });
    }
    let last = outcomes.len() - 1;
    let mut measurements: Vec<Option<Measurement>> = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for (i, out) in outcomes.iter().enumerate() {
        let measured = out.num().and_then(|base| {
            let mut noise =
                NoiseModel::paper_default(noise_seed.wrapping_add(i as u64 * 7919));
            measure_until(policy, || noise.apply(base))
                .map_err(|e| ExperimentError::DegenerateStatistics {
                    ctx: out.ctx.clone(),
                    detail: e.to_string(),
                })
                .map(|mut m| {
                    m.retries = out.retries;
                    m
                })
        });
        match measured {
            Ok(m) => measurements.push(Some(m)),
            Err(e) => {
                // Anchors are not bridgeable: without the default config
                // there is no total, without the baseline no denominator.
                if i == 0 || i == last {
                    return Err(e);
                }
                failures.push(e);
                measurements.push(None);
            }
        }
    }

    // Both anchors were just checked present above.
    let (off_m, default_m) = match (measurements[last], measurements[0]) {
        (Some(off), Some(d)) => (off, d),
        _ => {
            return Err(ExperimentError::InsufficientConfigs {
                ctx: ctx.clone(),
                needed: 2,
                got: measurements.iter().flatten().count(),
            })
        }
    };
    let off = off_m.mean;
    let total = default_m.mean / off - 1.0;

    // Slice i sits between measurements i and i+1. When either side is
    // missing, bridge between the nearest measured neighbours and split
    // the span's overhead evenly across the slices it covers.
    let nearest_prev = |i: usize| (0..=i).rev().find(|&j| measurements[j].is_some());
    let nearest_next = |i: usize| (i..measurements.len()).find(|&j| measurements[j].is_some());
    let mut slices = Vec::new();
    for i in 0..=toggles.len() {
        let name = if i < toggles.len() { toggles[i].name } else { "other" };
        let (lo_idx, hi_idx) = if i < toggles.len() {
            (i, i + 1)
        } else {
            (toggles.len(), last)
        };
        match (measurements[lo_idx], measurements[hi_idx]) {
            (Some(hi), Some(lo)) => slices.push(Slice {
                name,
                overhead: (hi.mean - lo.mean) / off,
                ci95: (hi.ci95 + lo.ci95) / off,
                degraded: false,
            }),
            _ => {
                let (prev, next) = match (nearest_prev(lo_idx), nearest_next(hi_idx)) {
                    (Some(p), Some(n)) => (p, n),
                    // Unreachable while the anchors are present, but keep
                    // the arithmetic total rather than indexing blindly.
                    _ => (0, last),
                };
                let (pm, nm) = match (measurements[prev], measurements[next]) {
                    (Some(p), Some(n)) => (p, n),
                    _ => (default_m, off_m),
                };
                let span = (next - prev).max(1) as f64;
                slices.push(Slice {
                    name,
                    overhead: (pm.mean - nm.mean) / off / span,
                    ci95: (pm.ci95 + nm.ci95) / off,
                    degraded: true,
                });
            }
        }
    }

    Ok(Attribution { total, slices, configs: measurements, failures })
}

/// Runs the successive-disable attribution through `exec`.
///
/// `ctx` names the experiment/CPU/workload; each configuration becomes
/// one plan cell keyed by its command line (`"default"` for the empty
/// one). `workload` maps a boot command line to a deterministic score in
/// simulated cycles (lower is faster); the simulator is run once per
/// configuration — or not at all, when another experiment already put
/// the same (CPU, workload, config) cell in the executor's cache — and
/// the paper's adaptive-CI methodology is applied over (synthetic,
/// seeded) run-to-run noise in the reduce step; see DESIGN.md's noise
/// note.
///
/// # Errors
///
/// [`ExperimentError::InsufficientConfigs`] for an empty toggle list;
/// the failure of an anchor cell (default config or `mitigations=off`)
/// is propagated because nothing can be normalized without them. A
/// failed middle cell does *not* error — it degrades the affected
/// slices (see [`Slice::degraded`]) and is recorded in
/// [`Attribution::failures`].
pub fn attribute(
    exec: &Executor,
    ctx: &RunContext,
    toggles: &[Toggle],
    noise_seed: u64,
    policy: StopPolicy,
    workload: impl Fn(&BootParams) -> f64 + Send + Sync + 'static,
) -> Result<Attribution, ExperimentError> {
    if toggles.is_empty() {
        return Err(ExperimentError::InsufficientConfigs {
            ctx: ctx.clone(),
            needed: 2,
            got: 1,
        });
    }
    let mut plan = ExperimentPlan::new(&ctx.experiment);
    for cell in lattice_cells(ctx, toggles, workload) {
        plan.push(cell);
    }
    let outcomes = exec.execute(&plan);
    reduce(ctx, toggles, noise_seed, policy, &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{FaultKind, FaultPlan};
    use crate::harness::{Harness, RetryPolicy};
    use cpu_models::broadwell;
    use workloads::lebench::{run_op, LeBenchOp};

    fn test_exec() -> Executor {
        Executor::new(Harness::new().with_retry(RetryPolicy::immediate(3)))
    }

    fn test_ctx() -> RunContext {
        RunContext::new("attribution-test", "Broadwell", "synthetic", "")
    }

    fn synthetic_workload(p: &BootParams) -> f64 {
        let mut cost = 1000.0;
        if !p.nopti {
            cost += 100.0;
        }
        if !p.mds_off {
            cost += 50.0;
        }
        if !p.nospectre_v2 {
            cost += 20.0;
        }
        if p.mitigations_off {
            cost = 1000.0;
        }
        cost
    }

    #[test]
    fn cumulative_cmdlines_cover_all_toggles() {
        // Smoke-test the attribution plumbing with a cheap synthetic
        // workload whose cost depends on the parsed params.
        let att = attribute(
            &test_exec(),
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        assert_eq!(att.slices.len(), OS_TOGGLES.len() + 1);
        assert!(!att.is_degraded());
        assert!(att.failures.is_empty());
        assert!((att.total - 0.17).abs() < 0.02, "total {}", att.total);
        let pti = &att.slices[0];
        assert!((pti.overhead - 0.10).abs() < 0.02);
        let other = att.slices.last().unwrap();
        assert!(other.overhead.abs() < 0.02);
    }

    #[test]
    fn empty_toggles_is_insufficient() {
        let err = attribute(
            &test_exec(),
            &test_ctx(),
            &[],
            1,
            StopPolicy::default(),
            synthetic_workload,
        )
        .unwrap_err();
        assert!(matches!(err, ExperimentError::InsufficientConfigs { .. }));
    }

    #[test]
    fn failed_middle_cell_degrades_adjacent_slices() {
        // Permanently kill the [nopti] cell: the PTI and MDS slices must
        // come back bridged (degraded), everything else clean, and the
        // total must be unaffected (it only needs the anchors).
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::SimFault, None);
        let exec =
            Executor::new(Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan));
        let att = attribute(
            &exec,
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        assert!(att.is_degraded());
        assert_eq!(att.failures.len(), 1);
        let degraded: Vec<&str> =
            att.slices.iter().filter(|s| s.degraded).map(|s| s.name).collect();
        assert_eq!(degraded, ["Page Table Isolation", "MDS buffer clearing"]);
        // The bridged span covers PTI (100) + MDS (50): each bridged
        // slice reports half the span.
        let pti = &att.slices[0];
        assert!((pti.overhead - 0.075).abs() < 0.02, "bridged PTI {}", pti.overhead);
        assert!((att.total - 0.17).abs() < 0.02);
        // Sum of slices still telescopes to the total.
        let sum: f64 = att.slices.iter().map(|s| s.overhead).sum();
        assert!((sum - att.total).abs() < 0.03, "sum {sum} vs total {}", att.total);
    }

    #[test]
    fn failed_baseline_cell_aborts() {
        let plan = FaultPlan::new().fail_cell("mitigations=off", FaultKind::Timeout, None);
        let exec =
            Executor::new(Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan));
        let err = attribute(
            &exec,
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap_err();
        assert!(matches!(err, ExperimentError::CellFailed { .. }));
    }

    #[test]
    fn transient_faults_recover_with_identical_values() {
        // A fault plan that kills fewer runs than the retry budget must
        // reproduce the fault-free numbers *exactly*: noise is seeded in
        // the reduce step from the configuration index, never the
        // attempt, so recovery is invisible apart from the retry count.
        let clean = attribute(
            &test_exec(),
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        let plan = FaultPlan::new().fail_cell("[nopti]", FaultKind::Timeout, Some(2));
        let exec =
            Executor::new(Harness::new().with_retry(RetryPolicy::immediate(3)).with_plan(plan));
        let faulted = attribute(
            &exec,
            &test_ctx(),
            &OS_TOGGLES,
            1,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            synthetic_workload,
        )
        .unwrap();
        assert!(!faulted.is_degraded());
        assert_eq!(faulted.configs[1].unwrap().retries, 2);
        for (c, f) in clean.slices.iter().zip(&faulted.slices) {
            assert_eq!(c.overhead, f.overhead, "{}", c.name);
            assert_eq!(c.ci95, f.ci95, "{}", c.name);
        }
        assert_eq!(clean.total, faulted.total);
    }

    #[test]
    fn attribution_of_real_getpid_on_broadwell() {
        // PTI and MDS must dominate getpid overhead on Broadwell (§5.1,
        // §5.2); the sum of slices must equal the total.
        let att = attribute(
            &test_exec(),
            &test_ctx(),
            &OS_TOGGLES,
            2,
            StopPolicy { min_runs: 3, max_runs: 6, target_relative_ci: 0.05 },
            |p| run_op(&broadwell(), p, LeBenchOp::GetPid).cycles_per_op,
        )
        .unwrap();
        assert!(att.total > 0.5, "getpid overhead on Broadwell is large: {}", att.total);
        let sum: f64 = att.slices.iter().map(|s| s.overhead).sum();
        assert!(
            (sum - att.total).abs() < 0.05 + att.total * 0.1,
            "slices ({sum}) must sum to total ({})",
            att.total
        );
        let by_name = |n: &str| {
            att.slices.iter().find(|s| s.name.contains(n)).map(|s| s.overhead).unwrap()
        };
        assert!(by_name("Page Table") > 0.2, "PTI slice");
        assert!(by_name("MDS") > 0.2, "MDS slice");
        assert!(by_name("Page Table") + by_name("MDS") > att.total * 0.6);
    }
}
