//! Declarative experiment plans.
//!
//! Every driver used to hand-roll the same loop: enumerate a lattice of
//! (CPU, workload, mitigation-config) cells and call the harness on each
//! one, serially. A [`CellSpec`] turns one lattice point into *data* —
//! its [`RunContext`], a seed, and a pure compute closure — and an
//! [`ExperimentPlan`] is the whole lattice. The [`crate::executor`]
//! consumes plans: it schedules cells across a worker pool, memoizes
//! results in a content-addressed cache, and journals completions, while
//! the driver's *reduce* step (noise wrapping, ratios, attribution)
//! stays pure and runs over the returned [`CellOutcome`]s in plan order.
//!
//! The cache key deliberately drops the experiment name: a cell's value
//! is determined by (CPU, workload, config, seed) alone, so the
//! mitigations-off anchor that Figure 2, the ablations, and the SMT
//! trade-off all request is simulated exactly once per sweep.

use std::sync::Arc;

use crate::harness::{ExperimentError, RunContext};
use crate::stats::Measurement;

/// The value a cell can produce. One variant per result shape the 13
/// drivers need; typed accessors reject shape mismatches with an
/// [`ExperimentError`] instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// A noise-wrapped measurement (legacy `run_cell`-style cells).
    Measurement(Measurement),
    /// One deterministic scalar (a geomean, a score, cycles/op).
    Num(f64),
    /// A fixed-length vector of scalars.
    Nums(Vec<f64>),
    /// Scalars where `None` means "not applicable on this part".
    OptNums(Vec<Option<f64>>),
    /// Raw counters (cycles, exits, syscalls, encoded probe results).
    Ints(Vec<u64>),
    /// Table 1-style cells: used / needed-but-off / empty.
    Flags(Vec<Option<bool>>),
}

impl CellValue {
    /// Short tag used in journal lines and shape-mismatch errors.
    pub fn kind(&self) -> &'static str {
        match self {
            CellValue::Measurement(_) => "meas",
            CellValue::Num(_) => "num",
            CellValue::Nums(_) => "nums",
            CellValue::OptNums(_) => "optnums",
            CellValue::Ints(_) => "ints",
            CellValue::Flags(_) => "flags",
        }
    }

    /// True if any contained float is non-finite (the executor rejects
    /// such values so corrupt data cannot reach a table).
    pub fn is_degenerate(&self) -> bool {
        match self {
            CellValue::Measurement(m) => !m.mean.is_finite() || !m.ci95.is_finite(),
            CellValue::Num(x) => !x.is_finite(),
            CellValue::Nums(xs) => xs.iter().any(|x| !x.is_finite()),
            CellValue::OptNums(xs) => xs.iter().flatten().any(|x| !x.is_finite()),
            CellValue::Ints(_) | CellValue::Flags(_) => false,
        }
    }

    fn mismatch(&self, ctx: &RunContext, wanted: &'static str) -> ExperimentError {
        ExperimentError::DegenerateStatistics {
            ctx: ctx.clone(),
            detail: format!("expected a {wanted} cell, got {}", self.kind()),
        }
    }

    /// The scalar, or a shape-mismatch error.
    pub fn as_num(&self, ctx: &RunContext) -> Result<f64, ExperimentError> {
        match self {
            CellValue::Num(x) => Ok(*x),
            other => Err(other.mismatch(ctx, "num")),
        }
    }

    /// The measurement, or a shape-mismatch error.
    pub fn as_measurement(&self, ctx: &RunContext) -> Result<Measurement, ExperimentError> {
        match self {
            CellValue::Measurement(m) => Ok(*m),
            other => Err(other.mismatch(ctx, "meas")),
        }
    }

    /// The scalar vector, or a shape-mismatch error.
    pub fn as_nums(&self, ctx: &RunContext) -> Result<&[f64], ExperimentError> {
        match self {
            CellValue::Nums(xs) => Ok(xs),
            other => Err(other.mismatch(ctx, "nums")),
        }
    }

    /// The optional-scalar vector, or a shape-mismatch error.
    pub fn as_opt_nums(&self, ctx: &RunContext) -> Result<&[Option<f64>], ExperimentError> {
        match self {
            CellValue::OptNums(xs) => Ok(xs),
            other => Err(other.mismatch(ctx, "optnums")),
        }
    }

    /// The counter vector, or a shape-mismatch error.
    pub fn as_ints(&self, ctx: &RunContext) -> Result<&[u64], ExperimentError> {
        match self {
            CellValue::Ints(xs) => Ok(xs),
            other => Err(other.mismatch(ctx, "ints")),
        }
    }

    /// The flag vector, or a shape-mismatch error.
    pub fn as_flags(&self, ctx: &RunContext) -> Result<&[Option<bool>], ExperimentError> {
        match self {
            CellValue::Flags(xs) => Ok(xs),
            other => Err(other.mismatch(ctx, "flags")),
        }
    }
}

/// The compute closure of a cell: attempt index in, value out. Pure up
/// to determinism — given the same cell and attempt it must produce the
/// same value, which is what makes caching and parallel scheduling
/// invisible.
pub type CellFn = Arc<dyn Fn(u32) -> Result<CellValue, ExperimentError> + Send + Sync>;

/// One declarative lattice cell: where it lives ([`RunContext`]), the
/// seed that (together with the content key) addresses its cached
/// value, and how to compute it.
#[derive(Clone)]
pub struct CellSpec {
    /// Full cell identity (`experiment/cpu/workload/[config]`); the
    /// experiment segment is used for fault injection and error
    /// attribution but *not* for caching.
    pub ctx: RunContext,
    /// Seed folded into the cache/journal key. Deterministic raw
    /// simulations use 0; seeded cells must put every value-determining
    /// seed here so a stale journal entry cannot be replayed.
    pub seed: u64,
    /// A cell the driver's reduce step cannot bridge over (lattice
    /// anchors): the panic circuit breaker still attempts these when
    /// open, because skipping one aborts the whole artifact — the
    /// opposite of the breaker's degrade-gracefully purpose.
    pub critical: bool,
    compute: CellFn,
}

impl std::fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec")
            .field("ctx", &self.ctx)
            .field("seed", &self.seed)
            .field("critical", &self.critical)
            .finish_non_exhaustive()
    }
}

impl CellSpec {
    /// Builds a cell from its context, seed, and compute closure.
    pub fn new(
        ctx: RunContext,
        seed: u64,
        compute: impl Fn(u32) -> Result<CellValue, ExperimentError> + Send + Sync + 'static,
    ) -> CellSpec {
        CellSpec { ctx, seed, critical: false, compute: Arc::new(compute) }
    }

    /// Marks the cell critical: the panic circuit breaker must attempt
    /// it even when open, because no reduce step can bridge over it.
    pub fn critical(mut self) -> CellSpec {
        self.critical = true;
        self
    }

    /// The content-addressed cache key: the cell key *minus* the
    /// experiment segment, plus the seed. Two experiments requesting
    /// the same (CPU, workload, config, seed) share one simulation.
    pub fn cache_key(&self) -> (String, u64) {
        (self.ctx.content_key(), self.seed)
    }

    /// Runs the compute closure for one attempt.
    pub fn compute(&self, attempt: u32) -> Result<CellValue, ExperimentError> {
        (self.compute)(attempt)
    }
}

/// A whole experiment as data: its name and the lattice cells it needs.
/// The driver's reduce step consumes the executor's outcomes in the
/// same order the cells were pushed.
#[derive(Debug, Clone, Default)]
pub struct ExperimentPlan {
    /// Experiment driver name (e.g. `"figure2"`).
    pub experiment: String,
    /// Cells in enumeration order; outcomes come back in this order.
    pub cells: Vec<CellSpec>,
}

impl ExperimentPlan {
    /// An empty plan for `experiment`.
    pub fn new(experiment: &str) -> ExperimentPlan {
        ExperimentPlan { experiment: experiment.to_string(), cells: Vec::new() }
    }

    /// Appends a cell and returns its index (= its outcome's index).
    pub fn push(&mut self, cell: CellSpec) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Where a cell's value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Simulated in this sweep.
    Fresh,
    /// Served from the in-memory cross-experiment cache (includes
    /// duplicate cells within one plan).
    Cache,
    /// Replayed from a resume journal.
    Journal,
}

/// The executor's verdict on one cell, in plan order.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's identity (with the experiment segment).
    pub ctx: RunContext,
    /// The value, or why the cell failed permanently.
    pub value: Result<CellValue, ExperimentError>,
    /// Extra attempts the harness needed (0 on a first-try success or a
    /// cache/journal hit).
    pub retries: u32,
    /// Fresh, cached, or journaled.
    pub source: CellSource,
}

impl CellOutcome {
    /// The scalar value, propagating cell failure or shape mismatch.
    pub fn num(&self) -> Result<f64, ExperimentError> {
        match &self.value {
            Ok(v) => v.as_num(&self.ctx),
            Err(e) => Err(e.clone()),
        }
    }

    /// The counter vector, propagating cell failure or shape mismatch.
    pub fn ints(&self) -> Result<&[u64], ExperimentError> {
        match &self.value {
            Ok(v) => v.as_ints(&self.ctx),
            Err(e) => Err(e.clone()),
        }
    }

    /// The optional-scalar vector, propagating failure or mismatch.
    pub fn opt_nums(&self) -> Result<&[Option<f64>], ExperimentError> {
        match &self.value {
            Ok(v) => v.as_opt_nums(&self.ctx),
            Err(e) => Err(e.clone()),
        }
    }

    /// The flag vector, propagating failure or mismatch.
    pub fn flags(&self) -> Result<&[Option<bool>], ExperimentError> {
        match &self.value {
            Ok(v) => v.as_flags(&self.ctx),
            Err(e) => Err(e.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_drops_the_experiment_segment() {
        let a = CellSpec::new(
            RunContext::new("figure2", "Broadwell", "lebench", "default"),
            0,
            |_| Ok(CellValue::Num(1.0)),
        );
        let b = CellSpec::new(
            RunContext::new("ablations", "Broadwell", "lebench", "default"),
            0,
            |_| Ok(CellValue::Num(1.0)),
        );
        assert_eq!(a.cache_key(), b.cache_key());
        // ...but the seed still separates.
        let c = CellSpec { seed: 7, ..b.clone() };
        assert_ne!(b.cache_key(), c.cache_key());
    }

    #[test]
    fn accessors_reject_shape_mismatches() {
        let ctx = RunContext::new("t", "c", "w", "");
        let v = CellValue::Num(2.0);
        assert_eq!(v.as_num(&ctx).map_err(|_| ()), Ok(2.0));
        assert!(v.as_ints(&ctx).is_err());
        assert!(CellValue::Ints(vec![1]).as_num(&ctx).is_err());
        assert!(CellValue::Num(f64::NAN).is_degenerate());
        assert!(!CellValue::Ints(vec![1, 2]).is_degenerate());
        assert!(CellValue::OptNums(vec![None, Some(f64::INFINITY)]).is_degenerate());
    }
}
