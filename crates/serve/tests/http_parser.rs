//! Fragmentation-equivalence property tests for the incremental HTTP
//! parser.
//!
//! The event-driven front end feeds [`RequestParser`] whatever byte
//! fragments the socket happens to produce. The server's correctness
//! therefore rests on one property: **the parse result is a function of
//! the byte stream, never of its framing**. These tests pin it three
//! ways for every wire in a corpus of valid and malformed request
//! streams:
//!
//!   1. byte-by-byte (the most adversarial dribble),
//!   2. seeded random fragment sizes (many seeds, including splits that
//!      land inside `\r\n`, inside percent-escapes, inside the blank
//!      line), and
//!   3. one pipelined burst (the whole stream in a single `push`).
//!
//! All three must yield the identical sequence of parsed requests, and
//! — for malformed input — the identical error string after the
//! identical number of successfully parsed requests. There is no
//! "lenient when buffered, strict when dribbled" mode to drift into.

use serve::http::{HttpError, RequestParser};

/// A tiny deterministic xorshift64* generator — the repo's no-external-
/// crates policy applies to tests too, and seeded determinism is the
/// point: a failure names its seed and replays exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform in `1..=max`.
    fn frag(&mut self, max: usize) -> usize {
        1 + (self.next() as usize) % max
    }
}

/// One observed parser step: a parsed request (summarised) or the
/// sticky error string that ended the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    Request(String),
    Error(String),
}

/// Flattens every field routing can see into a comparable string, so
/// "identical result" means identical method, decoded path, query
/// pairs, header pairs, and keep-alive disposition.
fn fingerprint(r: &serve::http::Request) -> String {
    format!(
        "{} {} q={:?} h={:?} ka={}",
        r.method, r.path, r.query, r.headers, r.keep_alive
    )
}

/// Harvests every request the parser can currently yield. Returns
/// `false` once the parser reports its (sticky) error, after which the
/// framing loop stops pushing — exactly what the server does.
fn drain(parser: &mut RequestParser, out: &mut Vec<Step>) -> bool {
    loop {
        match parser.next_request() {
            Ok(Some(r)) => out.push(Step::Request(fingerprint(&r))),
            Ok(None) => return true,
            Err(HttpError::Malformed(msg)) => {
                out.push(Step::Error(msg));
                return false;
            }
            Err(HttpError::Io(e)) => unreachable!("push-parser cannot do i/o: {e}"),
        }
    }
}

/// Parses `wire` delivered as the given fragment sizes (the last
/// fragment takes any remainder) and returns the observed step
/// sequence.
fn parse_fragmented(wire: &[u8], mut frag: impl FnMut(usize) -> usize) -> Vec<Step> {
    let mut parser = RequestParser::new();
    let mut out = Vec::new();
    let mut at = 0;
    while at < wire.len() {
        let n = frag(wire.len() - at).min(wire.len() - at);
        parser.push(&wire[at..at + n]);
        at += n;
        if !drain(&mut parser, &mut out) {
            return out;
        }
    }
    out
}

/// The three framings under test, plus 32 seeded random ones.
fn all_framings(wire: &[u8]) -> Vec<(String, Vec<Step>)> {
    let mut results = Vec::new();
    results.push(("byte-by-byte".to_string(), parse_fragmented(wire, |_| 1)));
    results.push(("one burst".to_string(), parse_fragmented(wire, |rest| rest)));
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        results.push((
            format!("seed {seed}"),
            parse_fragmented(wire, move |_| rng.frag(11)),
        ));
    }
    results
}

/// Asserts every framing of `wire` observes the same step sequence and
/// returns that sequence.
fn assert_framing_invariant(label: &str, wire: &[u8]) -> Vec<Step> {
    let mut framings = all_framings(wire).into_iter();
    let (first_name, expect) = framings.next().expect("framings");
    for (name, got) in framings {
        assert_eq!(
            got, expect,
            "{label}: framing {name:?} disagrees with {first_name:?}"
        );
    }
    expect
}

/// Valid request streams: each entry is a full pipelined wire plus the
/// number of requests it must parse to.
fn valid_corpus() -> Vec<(&'static str, Vec<u8>, usize)> {
    vec![
        ("bare GET", b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(), 1),
        (
            "query + headers",
            b"GET /artifact/table1?quick=1&seed=0 HTTP/1.1\r\nHost: x\r\nAccept: text/plain\r\n\r\n"
                .to_vec(),
            1,
        ),
        (
            "percent-encoded target",
            b"GET /cell/fig7%2Fleft?x=a%20b HTTP/1.1\r\n\r\n".to_vec(),
            1,
        ),
        (
            "declared body then pipelined follow-up",
            b"POST /shutdown HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n"
                .to_vec(),
            2,
        ),
        (
            "HTTP/1.0 opt-in keep-alive",
            b"GET /metrics HTTP/1.0\r\nConnection: keep-alive\r\n\r\n".to_vec(),
            1,
        ),
        (
            "bare-LF line endings",
            b"GET /healthz HTTP/1.1\nHost: y\n\n".to_vec(),
            1,
        ),
        (
            "pipelined burst of four",
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\nGET /results HTTP/1.1\r\nConnection: close\r\n\r\nGET /artifact/table2 HTTP/1.1\r\n\r\n"
                .to_vec(),
            4,
        ),
    ]
}

/// Malformed heads: each entry is a wire (possibly with valid requests
/// first), the number of requests parsed before the failure, and the
/// exact error string every framing must report.
fn malformed_corpus() -> Vec<(&'static str, Vec<u8>, usize, &'static str)> {
    let mut corpus = vec![
        (
            "garbage request line",
            b"NONSENSE\r\n\r\n".to_vec(),
            0,
            r#"bad request line: "NONSENSE""#,
        ),
        (
            "unsupported version",
            b"GET /x HTTP/2.0\r\n\r\n".to_vec(),
            0,
            r#"unsupported version: "HTTP/2.0""#,
        ),
        (
            "bad percent-escape in target",
            b"GET /%zz HTTP/1.1\r\n\r\n".to_vec(),
            0,
            r#"bad percent-encoding in target: "/%zz""#,
        ),
        (
            "truncated percent-escape in target",
            b"GET /a%2 HTTP/1.1\r\n\r\n".to_vec(),
            0,
            r#"bad percent-encoding in target: "/a%2""#,
        ),
        (
            "colonless header line",
            b"GET / HTTP/1.1\r\nno colon here\r\n\r\n".to_vec(),
            0,
            r#"bad header line: "no colon here""#,
        ),
        (
            "non-UTF-8 head",
            b"GET /\xff HTTP/1.1\r\n\r\n".to_vec(),
            0,
            "non-UTF-8 header",
        ),
        (
            "oversized declared body",
            b"POST / HTTP/1.1\r\nContent-Length: 70000\r\n\r\n".to_vec(),
            0,
            "request body too large",
        ),
        (
            "valid request, then malformed pipelined follow-up",
            b"GET /healthz HTTP/1.1\r\n\r\nBROKEN\r\n\r\n".to_vec(),
            1,
            r#"bad request line: "BROKEN""#,
        ),
    ];
    // A single header line over the 8 KiB limit: rejected while
    // buffering, so even the byte-dribbled framing never stores it.
    let mut long = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    long.extend(std::iter::repeat_n(b'a', 9 * 1024));
    long.extend(b"\r\n\r\n");
    corpus.push(("oversized header line", long, 0, "header line too long"));
    // A 65th header: rejected as soon as the line count passes the cap,
    // before the head even completes.
    let mut many = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..65 {
        many.extend(format!("X-H{i}: v\r\n").as_bytes());
    }
    many.extend(b"\r\n");
    corpus.push(("too many headers", many, 0, "too many headers"));
    corpus
}

#[test]
fn every_framing_of_a_valid_stream_parses_identically() {
    for (label, wire, want_requests) in valid_corpus() {
        let steps = assert_framing_invariant(label, &wire);
        assert_eq!(
            steps.len(),
            want_requests,
            "{label}: expected {want_requests} request(s), got {steps:?}"
        );
        assert!(
            steps.iter().all(|s| matches!(s, Step::Request(_))),
            "{label}: unexpected error step in {steps:?}"
        );
    }
}

#[test]
fn every_framing_of_a_malformed_stream_fails_identically() {
    for (label, wire, want_ok, want_error) in malformed_corpus() {
        let steps = assert_framing_invariant(label, &wire);
        let (errors, requests): (Vec<_>, Vec<_>) =
            steps.iter().partition(|s| matches!(s, Step::Error(_)));
        assert_eq!(requests.len(), want_ok, "{label}: {steps:?}");
        assert_eq!(
            errors,
            vec![&Step::Error(want_error.to_string())],
            "{label}: {steps:?}"
        );
        // The error is sticky: pushing more bytes after it never
        // resurrects the connection.
        let mut parser = RequestParser::new();
        parser.push(&wire);
        while parser.next_request().is_ok() {}
        parser.push(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert!(
            matches!(parser.next_request(), Err(HttpError::Malformed(m)) if m == want_error),
            "{label}: error was not sticky"
        );
    }
}

#[test]
fn a_pipelined_burst_equals_its_requests_parsed_one_at_a_time() {
    // The concatenation property from the other side: parsing the
    // concatenated burst yields exactly the per-request parses, in
    // order. This is what lets the server treat `k` pipelined requests
    // as `k` independent ones.
    let requests: Vec<&[u8]> = vec![
        b"GET /artifact/table2 HTTP/1.1\r\n\r\n",
        b"GET /cell/table2/0?quick=1 HTTP/1.1\r\nHost: z\r\n\r\n",
        b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
        b"GET /results HTTP/1.1\r\nConnection: close\r\n\r\n",
    ];
    let mut burst = Vec::new();
    let mut individually = Vec::new();
    for r in &requests {
        burst.extend_from_slice(r);
        individually.extend(parse_fragmented(r, |rest| rest));
    }
    assert_eq!(parse_fragmented(&burst, |rest| rest), individually);
}

#[test]
fn eof_completion_is_framing_independent() {
    // `...\r\n\r` + EOF: the head's final newline never arrives.
    // `finish_eof` grants one implied newline; the result must not
    // depend on how the bytes dribbled in beforehand.
    let wire = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r";
    let mut expect = None;
    for frag_size in [1usize, 3, wire.len()] {
        let mut parser = RequestParser::new();
        for chunk in wire.chunks(frag_size) {
            parser.push(chunk);
            assert!(parser.next_request().expect("no error").is_none());
        }
        let got = parser
            .finish_eof()
            .expect("eof completes the head")
            .map(|r| fingerprint(&r));
        assert!(got.is_some());
        match &expect {
            None => expect = Some(got),
            Some(e) => assert_eq!(&got, e, "frag size {frag_size}"),
        }
    }
}
