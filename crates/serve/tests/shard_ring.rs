//! Property tests for the consistent-hash routing ring.
//!
//! The cluster's correctness leans on three ring properties: the
//! assignment is a pure function of the shard-set *identity* (not of
//! construction order, process, or any `HashMap` iteration order);
//! removing one shard moves only the keys that shard owned, about
//! K/N of them, and strands nothing; and the assignment spreads keys
//! over every shard. These tests pin all three over a realistic
//! content-key population.

use serve::HashRing;

/// A population shaped like real content keys: `cpu/workload/[config]`.
fn keys() -> Vec<String> {
    let cpus = ["coffee-lake", "cascade-lake", "ice-lake", "skylake", "zen2"];
    let workloads = ["apache", "nginx", "redis", "pgbench", "compile", "syscall"];
    let mut keys = Vec::new();
    for cpu in cpus {
        for workload in workloads {
            for cfg in 0..20 {
                keys.push(format!("{cpu}/{workload}/[mitigation-set {cfg}]"));
            }
        }
    }
    keys
}

#[test]
fn assignment_is_a_function_of_shard_set_identity() {
    let population = keys();
    let a = HashRing::new(4);
    let b = HashRing::with_shards(&[0, 1, 2, 3]);
    // Construction order of the shard list must not matter either.
    let c = HashRing::with_shards(&[3, 1, 0, 2]);
    for key in &population {
        let owner = a.owner(key);
        assert_eq!(owner, b.owner(key), "explicit shard list diverged on {key}");
        assert_eq!(owner, c.owner(key), "shard list order leaked into routing of {key}");
    }
}

#[test]
fn every_shard_owns_a_fair_share() {
    let population = keys();
    let ring = HashRing::new(4);
    let mut counts = [0usize; 4];
    for key in &population {
        counts[ring.owner(key)] += 1;
    }
    let fair = population.len() / 4;
    for (shard, &count) in counts.iter().enumerate() {
        assert!(
            count > fair / 3,
            "shard {shard} owns {count} of {} keys (fair share {fair}): ring is badly skewed",
            population.len()
        );
    }
}

#[test]
fn removing_one_shard_moves_only_its_keys() {
    let population = keys();
    let full = HashRing::new(4);
    let removed = 2usize;
    let reduced = HashRing::with_shards(&[0, 1, 3]);
    let mut moved = 0usize;
    for key in &population {
        let before = full.owner(key);
        let after = reduced.owner(key);
        assert_ne!(after, removed, "{key} routed to the removed shard");
        if before != removed {
            // Consistent hashing's defining property: survivors keep
            // every key they already owned.
            assert_eq!(before, after, "{key} moved between surviving shards");
        } else {
            moved += 1;
        }
    }
    // The removed shard owned roughly K/N keys; all of them (and only
    // them) relocated.
    let expected = population.len() / 4;
    assert!(
        moved > expected / 3 && moved < expected * 3,
        "moved {moved} keys, expected about {expected}"
    );
}

#[test]
fn routing_is_pinned_across_processes() {
    // Hardcoded expected owners: any change to the hash, vnode count,
    // or point layout breaks cross-process agreement between proxies
    // and must show up here as a deliberate diff.
    let ring = HashRing::new(4);
    let pinned = [
        ("coffee-lake/apache/[mitigation-set 0]", 1),
        ("zen2/syscall/[mitigation-set 19]", 3),
        ("table1", 3),
        ("figure2", 3),
        ("results", 2),
        ("cascade-lake/redis/[mitigation-set 7]", 1),
    ];
    for (key, owner) in pinned {
        assert_eq!(
            ring.owner(key),
            owner,
            "routing of {key} changed: every proxy in a rolling deploy must agree on ownership"
        );
    }
}
