//! The frozen PR 5 acceptor model: thread-per-connection,
//! `Connection: close`, one request per socket.
//!
//! Kept in-tree for the same reason `crates/uarch` keeps its seed
//! interpreter as `reference.rs`: `regen bench-serve` measures the
//! event-driven front end *against* this model on the same
//! [`Core`] — same routing, same caches, same response bytes — so the
//! committed speedup in `BENCH_serve.json` compares acceptor models
//! and nothing else. Do not optimize this module; its slowness is the
//! baseline.
//!
//! Differences from the real PR 5 server are deliberate and minimal:
//! the shared `Core` replaces the old inline routing (so both front
//! ends provably serve identical bytes), and admission control is
//! omitted (the bench drives it below capacity; rejection behaviour is
//! the event loop's to prove).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spectrebench::obs::EventKind;

use crate::core::{Action, Core, RunSummary, ServerConfig};
use crate::http::{HttpError, Request, Response};

/// The baseline server: [`BaselineServer::bind`], then
/// [`BaselineServer::run`] (blocks until drained via
/// [`BaselineHandle::drain`] or a served `POST /shutdown`).
pub struct BaselineServer {
    core: Arc<Core>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

/// Clonable drain handle.
#[derive(Clone)]
pub struct BaselineHandle {
    core: Arc<Core>,
}

impl BaselineHandle {
    /// Stops the accept loop; in-flight connection threads finish.
    pub fn drain(&self) {
        self.core.draining.store(true, Ordering::SeqCst);
    }
}

impl BaselineServer {
    /// Binds the listener and builds the shared core.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<BaselineServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = Arc::new(Core::new(cfg)?);
        Ok(BaselineServer { core, listener, local_addr })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A drain handle.
    pub fn handle(&self) -> BaselineHandle {
        BaselineHandle { core: Arc::clone(&self.core) }
    }

    /// Accepts until drained: every connection costs a fresh thread,
    /// serves exactly one request, and closes — the PR 5 model.
    pub fn run(self) -> RunSummary {
        std::thread::scope(|s| {
            loop {
                if self.core.is_draining() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let core = Arc::clone(&self.core);
                        s.spawn(move || serve_one(&core, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        self.core.summary()
    }
}

/// Parses and answers one request, then closes the connection.
fn serve_one(core: &Core, mut stream: TcpStream) {
    core.connections.fetch_add(1, Ordering::SeqCst);
    let arrived = Instant::now();
    let _ = stream.set_read_timeout(Some(core.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(core.cfg.io_timeout));
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let request = match Request::parse(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Malformed(m)) => {
            let _ = Response::text(400, format!("regend: {m}\n")).write_to(&mut stream);
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    core.admitted.fetch_add(1, Ordering::SeqCst);
    core.in_flight.fetch_add(1, Ordering::SeqCst);
    core.bus.emit("regend", "", "", 0, EventKind::RequestReceived { queue_depth: 0 });
    let (endpoint, action) = core.route(&request, 0);
    let response = match action {
        Action::Done(r) => r,
        Action::Slow(work) => core.execute(&work, &request.path),
        Action::StartDrain(r) => {
            core.draining.store(true, Ordering::SeqCst);
            r
        }
    };
    let status = response.status;
    let _ = response.write_to(&mut stream);
    core.served.fetch_add(1, Ordering::SeqCst);
    core.in_flight.fetch_sub(1, Ordering::SeqCst);
    let micros = arrived.elapsed().as_micros() as u64;
    core.bus.emit(endpoint, &request.path, "", 0, EventKind::RequestCompleted { status, micros });
}
